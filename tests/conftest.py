"""Shared fixtures: the paper's Figure 2 network, small chains, and a
seeded research-Internet session.

Fixture scopes are chosen for speed: the 165-AS topology and its sensor
session are expensive enough to share per test session; they are treated
as read-only by every test that uses them (tests that need to mutate build
their own).
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.runner import make_session
from repro.measurement.sensors import random_stub_placement
from repro.netsim.builders import chain_network, figure2_network
from repro.netsim.gen.internet import research_internet
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState


@pytest.fixture
def fig2():
    """The paper's Figure 2 internetwork (fresh per test)."""
    return figure2_network()


@pytest.fixture
def fig2_sim(fig2):
    """Simulator over the Figure 2 network, converging all sensor ASes."""
    return Simulator(fig2.net, [fig2.asn("A"), fig2.asn("B"), fig2.asn("C")])


@pytest.fixture
def nominal():
    return NetworkState.nominal()


@pytest.fixture
def chain5():
    """A 5-AS chain with 2 routers per AS (Figure 4 shape)."""
    builder, names = chain_network(n_ases=5, routers_per_as=2)
    return builder, names


@pytest.fixture(scope="session")
def research_topo():
    """One seeded 165-AS research-Internet topology (read-only)."""
    return research_internet(seed=1234)


@pytest.fixture(scope="session")
def research_session(research_topo):
    """A 10-sensor random-stub session over the shared topology
    (read-only: do not inject state into its sampler)."""
    rng = random.Random("conftest-session")
    routers = random_stub_placement(research_topo, 10, rng)
    return make_session(research_topo, routers, rng)
