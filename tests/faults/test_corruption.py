"""Corruption injection (lying data) and its detection guarantees.

Three contracts:

1. each corruption seam plants a record violating exactly its paired
   invariant (unit tests on ``corrupt_trace`` and the plan);
2. **strict detects 100 % of seeded corruptions** — for any scenario
   whose injection counters are non-zero, a strict-validated re-run of
   the *same* deterministic plan raises ``ValidationError``;
3. a quarantine-policy sweep completes at every rate in
   {0.05, 0.1, 0.2, 0.5} with zero unhandled exceptions and every drop
   accounted on the ``DegradationReport``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.errors import ScenarioError, ValidationError
from repro.experiments.runner import (
    RunnerStats,
    make_session,
    run_kind_batch,
    run_scenario,
)
from repro.experiments.jobs import CoreAsx, ResearchTopoFactory, StubPlacement
from repro.faults import (
    CORRUPTION_MODES,
    FORGED_ADDRESS_PREFIX,
    DegradationReport,
    FaultConfig,
    FaultPlan,
)
from repro.measurement.sensors import random_stub_placement
from repro.netsim.gen.internet import research_internet
from repro.netsim.traceroute import (
    FORGED_ROUTER_ID,
    TraceHop,
    TraceResult,
    corrupt_trace,
)

#: Injection-side counters on DegradationReport, one per corruption mode.
INJECTION_COUNTERS = (
    "hops_forged",
    "hops_duplicated",
    "loops_injected",
    "reach_bits_flipped",
    "stale_replays",
    "feed_messages_duplicated",
    "feed_messages_misordered",
    "lg_stale_answers",
)


def _trace(n=5):
    hops = tuple(
        TraceHop(address=f"10.0.0.{i}", router_id=i) for i in range(1, n + 1)
    )
    return TraceResult(src_router=1, dst_router=n, hops=hops, reached=True)


class TestCorruptTrace:
    def test_forge_inserts_off_topology_hop(self):
        trace = _trace()
        forged_address = FORGED_ADDRESS_PREFIX + "9"
        corrupted, applied = corrupt_trace(trace, forge=(2, forged_address))
        assert applied == ("hop-forge",)
        assert corrupted.hops[2].address == forged_address
        assert corrupted.hops[2].router_id == FORGED_ROUTER_ID
        # The cached original is never mutated.
        assert len(trace.hops) == 5

    def test_duplicate_creates_consecutive_repeat(self):
        corrupted, applied = corrupt_trace(_trace(), duplicate_at=2)
        assert applied == ("hop-dup",)
        assert corrupted.hops[2] == corrupted.hops[3]

    def test_loop_creates_nonadjacent_revisit(self):
        corrupted, applied = corrupt_trace(_trace(), loop=(1, 3))
        assert applied == ("loop-inject",)
        addresses = [h.address for h in corrupted.hops]
        revisit = addresses.index(addresses[1], 2)
        assert revisit - 1 >= 2  # genuinely non-adjacent: a loop, not a dup

    def test_too_short_traces_are_left_alone(self):
        trace = _trace(2)
        corrupted, applied = corrupt_trace(trace, duplicate_at=1, loop=(0, 1))
        assert corrupted is trace
        assert applied == ()

    def test_reached_flag_and_endpoints_survive(self):
        corrupted, _ = corrupt_trace(
            _trace(), forge=(2, FORGED_ADDRESS_PREFIX + "1")
        )
        assert corrupted.reached == _trace().reached
        assert corrupted.hops[0] == _trace().hops[0]
        assert corrupted.hops[-1] == _trace().hops[-1]


class TestCorruptionPlan:
    def test_corruption_config_activates_only_corruption_modes(self):
        config = FaultConfig.corruption(0.3)
        assert config.any_faults()
        assert config.any_corruption()
        assert config.trace_drop_rate == 0.0  # omission modes stay off
        assert len(CORRUPTION_MODES) == 8

    def test_decisions_are_deterministic_and_order_independent(self):
        a = FaultPlan("s", FaultConfig.corruption(0.5))
        b = FaultPlan("s", FaultConfig.corruption(0.5))
        keys = [("10.0.0.1", "10.0.9.9", "post", 6), ("10.0.0.2", "10.0.9.8", "pre", 4)]
        forward = [a.forge_hop(*k) for k in keys]
        backward = [b.forge_hop(*k) for k in reversed(keys)]
        assert forward == list(reversed(backward))
        assert [a.flip_reach_bit(s, d, e) for s, d, e, _ in keys] == [
            b.flip_reach_bit(s, d, e) for s, d, e, _ in keys
        ]


@pytest.fixture(scope="module")
def corruption_session():
    topo = research_internet(n_tier2=4, n_stub=16, seed=23)
    rng = random.Random("corruption-session")
    session = make_session(
        topo,
        random_stub_placement(topo, 6, rng),
        rng,
        intra_failures_only=True,
    )
    return topo, session


class TestStrictDetectsEverySeededCorruption:
    def test_no_false_negatives(self, corruption_session):
        """Whenever injection fired, a strict re-run of the identical
        plan raises; whenever nothing fired, it diagnoses clean."""
        topo, session = corruption_session
        diagnosers = {"nd-edge": NetDiagnoser("nd-edge")}
        asx = topo.core_asns[0]
        plan = FaultPlan("strict-detect", FaultConfig.corruption(0.25))
        detected = injected_runs = clean_runs = 0
        for n in range(12):
            scenario = session.sampler.sample("link-1")
            faults = plan.scoped(n)
            # Pass 1, no validation: count what injection actually did.
            try:
                record = run_scenario(
                    session, scenario, diagnosers, asx=asx, faults=faults
                )
            except ScenarioError:
                continue  # no failed link probed: nothing to detect
            injected = any(
                getattr(record.degradation, counter)
                for counter in INJECTION_COUNTERS
            )
            # Pass 2, same deterministic plan, strict screening.
            if injected:
                injected_runs += 1
                with pytest.raises(ValidationError):
                    run_scenario(
                        session,
                        scenario,
                        diagnosers,
                        asx=asx,
                        faults=faults,
                        validation="strict",
                    )
                detected += 1
            else:
                clean_runs += 1
                run_scenario(
                    session,
                    scenario,
                    diagnosers,
                    asx=asx,
                    faults=faults,
                    validation="strict",
                )
        assert detected == injected_runs  # 100 % of seeded corruptions
        assert injected_runs > 0  # the test actually exercised detection

    def test_strict_on_clean_inputs_is_a_no_op(self, corruption_session):
        topo, session = corruption_session
        scenario = session.sampler.sample("link-1")
        diagnosers = {"nd-edge": NetDiagnoser("nd-edge")}
        record = run_scenario(
            session,
            scenario,
            diagnosers,
            asx=topo.core_asns[0],
            validation="strict",
        )
        assert record.degradation is not None
        assert not record.degradation.is_degraded()


class TestQuarantineSweepAccounting:
    @pytest.mark.parametrize("rate", [0.05, 0.1, 0.2, 0.5])
    def test_sweep_completes_with_all_drops_accounted(self, rate):
        stats = RunnerStats()
        records = run_kind_batch(
            topo_factory=ResearchTopoFactory(
                topo_seed=101, n_tier2=4, n_stub=16
            ),
            placement_fn=StubPlacement(6),
            kinds=("link-1",),
            diagnosers={"nd-edge": NetDiagnoser("nd-edge")},
            placements=1,
            failures_per_placement=3,
            seed=7,
            asx_selector=CoreAsx(),
            intra_failures_only=True,
            fault_config=FaultConfig.corruption(rate),
            validation="quarantine",
            stats=stats,
        )
        assert stats.jobs_failed == 0  # zero unhandled exceptions
        assert len(records["link-1"]) == 3
        # Every stale replay surfaces as exactly one dropped stale round,
        # and every quarantined record was first counted as a violation.
        assert stats.stale_rounds_dropped == stats.stale_replays
        assert stats.lg_paths_quarantined == stats.lg_stale_answers
        screened = (
            stats.traces_repaired
            + stats.traces_quarantined
            + stats.stale_rounds_dropped
            + stats.feed_messages_repaired
            + stats.feed_messages_quarantined
            + stats.lg_paths_quarantined
        )
        if any(getattr(stats, c) for c in INJECTION_COUNTERS):
            assert stats.invariant_violations > 0
            assert screened > 0
        assert stats.traces_repaired == 0  # quarantine never repairs


class TestTotalCorruptionBestEffort:
    def test_everything_quarantined_masks_but_never_crashes(
        self, corruption_session
    ):
        """Rate 1.0 + quarantine leaves nothing to diagnose: the run must
        complete with empty best-effort scores, not divide or crash."""
        topo, session = corruption_session
        diagnosers = {
            "tomo": NetDiagnoser("tomo"),
            "nd-edge": NetDiagnoser("nd-edge"),
        }
        plan = FaultPlan("total", FaultConfig.corruption(1.0))
        record = None
        for n in range(5):
            scenario = session.sampler.sample("link-1")
            try:
                record = run_scenario(
                    session,
                    scenario,
                    diagnosers,
                    asx=topo.core_asns[0],
                    faults=plan.scoped(n),
                    validation="quarantine",
                )
            except ScenarioError:
                continue
            break
        assert record is not None
        assert record.degradation.masked_failures == 1
        for score in record.scores.values():
            assert score.link.sensitivity == 0.0
            assert score.hypothesis_size == 0
