"""Fault injection at every measurement seam, and graceful degradation.

The contract under test is twofold: each seam honours its fault plan
deterministically (unit tests), and a diagnosis run under *any* fault
rate in [0, 0.5] completes without an unhandled exception while
accounting for everything it lost (integration sweep).
"""

from __future__ import annotations

import random

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.core.pathset import EPOCH_POST, EPOCH_PRE
from repro.errors import ControlPlaneFeedError, ScenarioError
from repro.experiments.runner import make_session, run_scenario
from repro.faults import DegradationReport, FaultConfig, FaultPlan
from repro.measurement.collector import (
    collect_control_plane,
    make_lg_lookup,
    take_snapshot,
)
from repro.measurement.probing import probe_mesh
from repro.measurement.sensors import random_stub_placement, surviving_sensors
from repro.netsim.gen.internet import research_internet
from repro.netsim.lookingglass import (
    FlakyLookingGlassService,
    LookingGlassRateLimited,
    LookingGlassService,
    LookingGlassUnavailable,
)
from repro.netsim.traceroute import TraceHop, TraceResult, degrade_trace


@pytest.fixture(scope="module")
def small_session():
    topo = research_internet(n_tier2=4, n_stub=16, seed=21)
    rng = random.Random("faults-session")
    return topo, make_session(
        topo, random_stub_placement(topo, 6, rng), rng,
        intra_failures_only=True,
    )


def _trace():
    hops = tuple(
        TraceHop(address=f"10.0.0.{i}", router_id=i) for i in range(1, 6)
    )
    return TraceResult(src_router=1, dst_router=5, hops=hops, reached=True)


class TestDegradeTrace:
    def test_truncation_marks_unreached(self):
        trace = _trace()
        cut = degrade_trace(trace, truncate_at=2)
        assert len(cut.hops) == 2
        assert not cut.reached
        assert cut.failure_reason == "fault:truncated"
        # The cached original is never mutated.
        assert trace.reached and len(trace.hops) == 5

    def test_anonymize_stars_out_hops(self):
        trace = _trace()
        anon = degrade_trace(trace, anonymize={1, 3})
        assert anon.addresses()[1] is None and anon.addresses()[3] is None
        assert anon.addresses()[0] == "10.0.0.1"
        # Router ids (ground truth) survive for the simulator's benefit.
        assert anon.router_path() == trace.router_path()

    def test_no_faults_returns_the_same_object(self):
        trace = _trace()
        assert degrade_trace(trace) is trace
        assert degrade_trace(trace, anonymize={99}) is trace


class TestProbeAndSensorSeams:
    def test_drop_rate_one_empties_the_mesh(self, small_session):
        _topo, session = small_session
        plan = FaultPlan(1, FaultConfig(trace_drop_rate=1.0))
        report = DegradationReport()
        store = probe_mesh(
            session.sim, session.sensors, session.base_state,
            epoch=EPOCH_PRE, faults=plan, report=report,
        )
        n_pairs = len(session.sensors) * (len(session.sensors) - 1)
        assert len(store.pairs()) == 0
        assert report.probes_dropped == n_pairs

    def test_sensor_dropout_is_epoch_independent(self, small_session):
        _topo, session = small_session
        plan = FaultPlan(2, FaultConfig(sensor_dropout_rate=0.5))
        up_a = surviving_sensors(session.sensors, plan)
        up_b = surviving_sensors(session.sensors, plan)
        # Keyed on address only: both probing rounds see the same overlay.
        assert [s.address for s in up_a] == [s.address for s in up_b]
        assert 0 < len(up_a) < len(session.sensors)
        report = DegradationReport()
        surviving_sensors(session.sensors, plan, report)
        assert report.sensors_down == len(session.sensors) - len(up_a)

    def test_snapshot_reconciles_partial_rounds(self, small_session):
        _topo, session = small_session
        scenario = session.sampler.sample("link-1")
        plan = FaultPlan(3, FaultConfig(trace_drop_rate=0.3))
        report = DegradationReport()
        snapshot = take_snapshot(
            session.sim, session.sensors, session.base_state,
            scenario.after_state, faults=plan, report=report,
        )
        # The snapshot invariants held (construction validates them) and
        # the reconciliation accounted for what the faults removed.
        assert set(snapshot.before.pairs()) == set(snapshot.after.pairs())
        assert report.probes_dropped > 0
        assert report.is_degraded()


class TestLookingGlassSeam:
    def test_failure_rate_one_always_raises(self, small_session):
        topo, session = small_session
        service = LookingGlassService.everywhere(session.net)
        flaky = FlakyLookingGlassService(
            service, FaultPlan(4, FaultConfig(lg_failure_rate=1.0))
        )
        routing = session.sim.routing(session.base_state)
        prefix = next(iter(routing.prefixes))
        asn = topo.core_asns[0]
        with pytest.raises(LookingGlassUnavailable):
            flaky.query(asn, prefix, routing, "10.0.0.1", EPOCH_PRE, 0)

    def test_query_budget_rate_limits(self, small_session):
        topo, session = small_session
        service = LookingGlassService.everywhere(session.net)
        flaky = FlakyLookingGlassService(
            service, FaultPlan(4, FaultConfig(lg_query_budget=2))
        )
        routing = session.sim.routing(session.base_state)
        prefix = next(iter(routing.prefixes))
        asn = topo.core_asns[0]
        flaky.query(asn, prefix, routing)
        flaky.query(asn, prefix, routing)
        with pytest.raises(LookingGlassRateLimited):
            flaky.query(asn, prefix, routing)

    def test_lookup_degrades_to_none_after_retries(self, small_session):
        _topo, session = small_session
        service = LookingGlassService.everywhere(session.net)
        plan = FaultPlan(5, FaultConfig(lg_failure_rate=1.0))
        report = DegradationReport()
        schedule = []
        lookup = make_lg_lookup(
            session.sim, service, session.base_state, session.base_state,
            faults=plan, report=report, max_attempts=3,
            backoff_base=0.1, sleep=schedule.append,
        )
        dst = session.sensors[0].address
        asn = session.net.asn_of_router(session.sensors[1].router_id)
        assert lookup(asn, dst, EPOCH_POST) is None
        assert report.lg_failures == 3
        assert report.lg_retries == 2
        assert report.lg_exhausted == 1
        # Exponential backoff with seeded jitter: each delay lands in
        # [0.5, 1.5) of base * 2**attempt, and the exact values are a
        # pure function of the plan seed + query key.
        assert len(schedule) == 2
        for attempt, delay in enumerate(schedule):
            nominal = 0.1 * (2 ** attempt)
            assert 0.5 * nominal <= delay < 1.5 * nominal
        assert schedule == [
            0.1 * (2 ** attempt)
            * (0.5 + plan.lg_backoff_jitter(asn, dst, EPOCH_POST, attempt))
            for attempt in range(2)
        ]

    def test_backoff_jitter_is_reproducible(self, small_session):
        _topo, session = small_session
        service = LookingGlassService.everywhere(session.net)
        dst = session.sensors[0].address
        asn = session.net.asn_of_router(session.sensors[1].router_id)
        schedules = []
        for _run in range(2):
            plan = FaultPlan(5, FaultConfig(lg_failure_rate=1.0))
            schedule = []
            lookup = make_lg_lookup(
                session.sim, service, session.base_state,
                session.base_state, faults=plan, max_attempts=3,
                backoff_base=0.1, sleep=schedule.append,
            )
            assert lookup(asn, dst, EPOCH_POST) is None
            schedules.append(schedule)
        assert schedules[0] == schedules[1]

    def test_clean_plan_matches_direct_service(self, small_session):
        _topo, session = small_session
        service = LookingGlassService.everywhere(session.net)
        plan = FaultPlan(6, FaultConfig())
        lookup = make_lg_lookup(
            session.sim, service, session.base_state, session.base_state,
            faults=plan,
        )
        clean = make_lg_lookup(
            session.sim, service, session.base_state, session.base_state,
        )
        dst = session.sensors[0].address
        asn = session.net.asn_of_router(session.sensors[1].router_id)
        assert lookup(asn, dst, EPOCH_PRE) == clean(asn, dst, EPOCH_PRE)


class TestControlPlaneSeam:
    def test_feed_outage_raises_typed_error(self, small_session):
        topo, session = small_session
        scenario = session.sampler.sample("link-1")
        plan = FaultPlan(7, FaultConfig(feed_outage_rate=1.0))
        report = DegradationReport()
        with pytest.raises(ControlPlaneFeedError):
            collect_control_plane(
                session.sim, topo.core_asns[0], session.base_state,
                scenario.after_state, faults=plan, report=report,
            )
        assert report.feed_outages == 1

    def test_total_loss_yields_empty_degraded_view(self, small_session):
        topo, session = small_session
        scenario = session.sampler.sample("link-1")
        clean = collect_control_plane(
            session.sim, topo.core_asns[0], session.base_state,
            scenario.after_state,
        )
        plan = FaultPlan(
            8, FaultConfig(withdrawal_loss_rate=1.0, igp_loss_rate=1.0)
        )
        report = DegradationReport()
        view = collect_control_plane(
            session.sim, topo.core_asns[0], session.base_state,
            scenario.after_state, faults=plan, report=report,
        )
        assert view.is_empty()
        lost = len(clean.withdrawals) + len(clean.igp_link_down)
        if lost:
            assert view.is_degraded()
            assert (
                report.withdrawals_lost + report.igp_lost == lost
            )


class TestGracefulDegradationSweep:
    @pytest.mark.parametrize("rate", [0.0, 0.1, 0.25, 0.5])
    def test_no_unhandled_exception_at_any_rate(self, small_session, rate):
        topo, session = small_session
        diagnosers = {
            "tomo": NetDiagnoser("tomo"),
            "nd-edge": NetDiagnoser("nd-edge"),
            "nd-bgpigp": NetDiagnoser("nd-bgpigp"),
            "nd-lg": NetDiagnoser("nd-lg"),
        }
        lg_service = LookingGlassService.everywhere(session.net)
        plan = FaultPlan(f"sweep/{rate}", FaultConfig.uniform(rate))
        produced = 0
        for attempt in range(12):
            try:
                scenario = session.sampler.sample("link-1")
                record = run_scenario(
                    session, scenario, diagnosers,
                    asx=topo.core_asns[0], lg_service=lg_service,
                    faults=plan.scoped(attempt),
                )
            except ScenarioError:
                continue  # sampling rejection, not a fault-handling bug
            produced += 1
            assert set(record.scores) == set(diagnosers)
            assert record.degradation is not None
            if rate == 0.0:
                assert not record.degradation.is_degraded()
            if produced >= 4:
                break
        assert produced >= 1
