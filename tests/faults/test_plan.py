"""Unit tests for the deterministic fault plan and its configuration."""

import pickle

import pytest

from repro.errors import FaultInjectionError
from repro.faults import FAULT_MODES, DegradationReport, FaultConfig, FaultPlan


class TestFaultConfig:
    def test_default_injects_nothing(self):
        config = FaultConfig()
        assert not config.any_faults()

    def test_uniform_drives_every_probability_field(self):
        config = FaultConfig.uniform(0.3)
        assert config.trace_drop_rate == 0.3
        assert config.hop_anon_rate == 0.3
        assert config.lg_failure_rate == 0.3
        assert config.feed_outage_rate == 0.3
        assert config.igp_delay_rate == 0.3
        assert config.any_faults()

    def test_uniform_zero_is_no_faults(self):
        assert not FaultConfig.uniform(0.0).any_faults()

    @pytest.mark.parametrize("bad", [-0.1, 1.1, 2.0])
    def test_rates_outside_unit_interval_rejected(self, bad):
        with pytest.raises(FaultInjectionError):
            FaultConfig(trace_drop_rate=bad)

    def test_negative_lg_budget_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(lg_query_budget=-1)

    def test_lg_budget_alone_counts_as_faults(self):
        assert FaultConfig(lg_query_budget=3).any_faults()

    def test_five_fault_modes_documented(self):
        assert len(FAULT_MODES) == 5
        assert set(FAULT_MODES) == {
            "traceroute", "sensor", "lg", "bgp-feed", "igp-feed",
        }


class TestFaultPlanDeterminism:
    def test_same_seed_same_decisions(self):
        config = FaultConfig.uniform(0.5)
        a, b = FaultPlan(7, config), FaultPlan("7", config)
        for dst in range(50):
            key = ("s", f"d{dst}", "T-")
            assert a.drop_trace(*key) == b.drop_trace(*key)
            assert a.anonymize_hop(*key, dst) == b.anonymize_hop(*key, dst)
            assert a.sensor_down(f"10.0.{dst}.1") == b.sensor_down(
                f"10.0.{dst}.1"
            )

    def test_decisions_are_call_order_independent(self):
        config = FaultConfig.uniform(0.5)
        keys = [("s", f"d{i}", "T+") for i in range(40)]
        plan = FaultPlan(3, config)
        forward = [plan.drop_trace(*key) for key in keys]
        # A fresh plan queried in reverse must reproduce every decision.
        plan2 = FaultPlan(3, config)
        backward = [plan2.drop_trace(*key) for key in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ_somewhere(self):
        config = FaultConfig.uniform(0.5)
        a, b = FaultPlan(1, config), FaultPlan(2, config)
        keys = [("s", f"d{i}", "T-") for i in range(100)]
        assert [a.drop_trace(*k) for k in keys] != [
            b.drop_trace(*k) for k in keys
        ]

    def test_rate_zero_never_fires_rate_one_always_fires(self):
        never = FaultPlan(0, FaultConfig())
        always = FaultPlan(0, FaultConfig.uniform(1.0))
        for index in range(20):
            key = ("src", f"dst{index}", "T-")
            assert not never.drop_trace(*key)
            assert not never.feed_outage()
            assert always.drop_trace(*key)
            assert always.sensor_down(f"10.1.{index}.1")
        assert always.feed_outage()

    def test_truncate_keeps_a_nonempty_strict_prefix(self):
        plan = FaultPlan(5, FaultConfig(trace_truncate_rate=1.0))
        for n_hops in range(2, 12):
            keep = plan.truncate_trace("s", f"d{n_hops}", "T-", n_hops)
            assert keep is not None
            assert 1 <= keep <= n_hops - 1

    def test_truncate_needs_at_least_two_hops(self):
        plan = FaultPlan(5, FaultConfig(trace_truncate_rate=1.0))
        assert plan.truncate_trace("s", "d", "T-", 1) is None
        assert plan.truncate_trace("s", "d", "T-", 0) is None

    def test_intermediate_rate_fires_sometimes(self):
        plan = FaultPlan(11, FaultConfig.uniform(0.5))
        fired = [
            plan.drop_trace("s", f"d{i}", "T-") for i in range(200)
        ]
        assert any(fired) and not all(fired)
        # Crude binomial sanity: 200 draws at p=0.5 land well inside.
        assert 60 <= sum(fired) <= 140

    def test_scoped_plans_are_independent_but_deterministic(self):
        config = FaultConfig.uniform(0.5)
        plan = FaultPlan(9, config)
        a, b = plan.scoped("link-1/1"), plan.scoped("link-1/2")
        keys = [("s", f"d{i}", "T-") for i in range(60)]
        assert [a.drop_trace(*k) for k in keys] != [
            b.drop_trace(*k) for k in keys
        ]
        again = FaultPlan(9, config).scoped("link-1/1")
        assert [a.drop_trace(*k) for k in keys] == [
            again.drop_trace(*k) for k in keys
        ]

    def test_pickle_round_trip_preserves_decisions(self):
        plan = FaultPlan(13, FaultConfig.uniform(0.4))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        keys = [("s", f"d{i}", "T+") for i in range(30)]
        assert [plan.drop_trace(*k) for k in keys] == [
            clone.drop_trace(*k) for k in keys
        ]


class TestDegradationReport:
    def test_fresh_report_is_clean(self):
        report = DegradationReport()
        assert not report.is_degraded()
        assert sum(report.as_dict().values()) == 0

    def test_counters_mark_degraded(self):
        report = DegradationReport()
        report.probes_dropped += 1
        assert report.is_degraded()

    def test_diagnoser_errors_tracked_per_label(self):
        report = DegradationReport()
        report.record_diagnoser_error("nd-edge")
        report.record_diagnoser_error("nd-edge")
        report.record_diagnoser_error("tomo")
        assert report.degraded_diagnoses == 3
        assert report.diagnoser_errors == {"nd-edge": 2, "tomo": 1}
        assert report.is_degraded()

    def test_merge_sums_counters_and_dedups_notes(self):
        a, b = DegradationReport(), DegradationReport()
        a.probes_dropped = 2
        a.note("control-plane feed outage")
        b.probes_dropped = 3
        b.lg_retries = 1
        b.record_diagnoser_error("tomo")
        b.note("control-plane feed outage")
        b.note("failure masked by measurement faults")
        a.merge(b)
        assert a.probes_dropped == 5
        assert a.lg_retries == 1
        assert a.diagnoser_errors == {"tomo": 1}
        assert a.notes == [
            "control-plane feed outage",
            "failure masked by measurement faults",
        ]
