"""Golden-figure smoke tests.

Fig 6 and Fig 10 are rendered at a deliberately tiny scale and their
stable lines — series points and summary statistics, everything except
wall-clock accounting — are compared against checked-in goldens.  A
runner refactor (parallel backend, job restructuring, RNG plumbing) that
silently shifts any experimental result fails here first.

Regenerate after an *intentional* change of results::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/experiments/test_goldens.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import fig6_tomo, fig10_bgpigp
from repro.experiments.figures.base import FigureConfig, FigureResult

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

#: Tiny but non-degenerate: one placement over the full 165-AS topology.
SMOKE_CONFIG = FigureConfig(
    seed=0, topo_seed=100, placements=1, failures_per_placement=3, n_sensors=8
)


def stable_lines(result: FigureResult) -> str:
    """The deterministic content of a figure result, one line per datum.

    Timings (``runner_stats``) and rendering cosmetics are excluded:
    this is the data a refactor must not move.
    """
    lines = [f"{result.figure_id}: {result.title}"]
    for series in result.series:
        for x, y in series.points:
            lines.append(f"series {series.name} {x:.9f} {y:.9f}")
    for name in sorted(result.summaries):
        summary = result.summaries[name]
        parts = " ".join(
            f"{key}={summary[key]:.9f}" for key in sorted(summary)
        )
        lines.append(f"summary {name} {parts}")
    return "\n".join(lines) + "\n"


def check_golden(result: FigureResult) -> None:
    golden_path = GOLDEN_DIR / f"{result.figure_id}.txt"
    text = stable_lines(result)
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(text)
        pytest.skip(f"golden regenerated at {golden_path}")
    assert golden_path.exists(), (
        f"missing golden {golden_path}; regenerate with "
        "REPRO_UPDATE_GOLDENS=1"
    )
    assert text == golden_path.read_text(), (
        f"{result.figure_id} drifted from its golden — if the change is "
        "intentional, regenerate with REPRO_UPDATE_GOLDENS=1"
    )


#: Both hitting-set paths: the vectorized default and the set-based
#: reference behind the ``REPRO_NO_VECTORIZE`` escape hatch.  One golden
#: file serves both — the contract is bit-for-bit identity.
SOLVER_PATHS = pytest.mark.parametrize(
    "no_vectorize", ["0", "1"], ids=["vectorized", "set-based"]
)


class TestGoldenFigures:
    @SOLVER_PATHS
    def test_fig6_matches_golden(self, monkeypatch, no_vectorize):
        monkeypatch.setenv("REPRO_NO_VECTORIZE", no_vectorize)
        check_golden(fig6_tomo.run(SMOKE_CONFIG))

    @SOLVER_PATHS
    def test_fig10_matches_golden(self, monkeypatch, no_vectorize):
        monkeypatch.setenv("REPRO_NO_VECTORIZE", no_vectorize)
        check_golden(fig10_bgpigp.run(SMOKE_CONFIG))
