"""Smoke tests for every figure harness at a tiny configuration.

Each test regenerates the figure's series with one placement and a handful
of failures, then checks the qualitative claim the paper states for it.
The benchmarks run the same harnesses at larger scale; here we only verify
the machinery and the direction of every effect.
"""

import pytest

from repro.experiments.figures import (
    FIGURES,
    FigureConfig,
    fig5_placement,
    fig6_tomo,
    fig7_ndedge,
    fig8_specificity,
    fig9_diag_vs_spec,
    fig10_bgpigp,
    fig11_blocked,
    fig12_lg,
)

TINY = FigureConfig(placements=1, failures_per_placement=4, topo_seed=200)


@pytest.fixture(scope="module")
def fig6_result():
    return fig6_tomo.run(TINY)


class TestFigureRegistry:
    def test_all_figures_registered(self):
        from repro.experiments.figures import figure_sort_key

        assert sorted(FIGURES, key=figure_sort_key) == [
            "5", "6", "7", "8", "9", "10", "11", "12", "degradation",
        ]


class TestFig5:
    def test_placement_ordering(self):
        result = fig5_placement.run(
            FigureConfig(placements=1, topo_seed=200), sensor_counts=(8, 16)
        )
        last = {s.name: s.points[-1][1] for s in result.series}
        assert last["same-as"] >= last["distant-as"]
        assert last["same-as"] >= last["random"]
        assert last["distant-split"] >= last["distant-as"]
        assert "diagnosability" in result.render()

    def test_diagnosability_grows_with_sensors(self):
        result = fig5_placement.run(
            FigureConfig(placements=1, topo_seed=200), sensor_counts=(4, 32)
        )
        same_as = result.series_by_name("same-as").points
        assert same_as[-1][1] >= same_as[0][1]


class TestFig6:
    def test_single_failure_sensitivity_high(self, fig6_result):
        assert fig6_result.summaries["link-1"]["mean"] >= 0.7

    def test_multi_failure_sensitivity_lower(self, fig6_result):
        assert (
            fig6_result.summaries["link-3"]["mean"]
            < fig6_result.summaries["link-1"]["mean"]
        )

    def test_misconfig_sensitivity_zero(self, fig6_result):
        assert fig6_result.summaries["misconfig"]["frac_zero"] >= 0.75

    def test_cdf_points_are_monotone(self, fig6_result):
        for series in fig6_result.series:
            ys = [y for _x, y in series.points]
            assert ys == sorted(ys)
            assert ys[-1] == pytest.approx(1.0)


class TestFig7:
    def test_nd_edge_dominates_tomo(self):
        result = fig7_ndedge.run(TINY)
        for kind in fig7_ndedge.KINDS:
            nd = result.summaries[f"nd-edge/{kind}"]["mean"]
            tomo = result.summaries[f"tomo/{kind}"]["mean"]
            assert nd >= tomo
            assert nd >= 0.75


class TestFig8:
    def test_specificity_high_and_misconfig_better(self):
        result = fig8_specificity.run(TINY)
        link = result.summaries["link-1"]["mean"]
        mis = result.summaries["misconfig"]["mean"]
        assert link >= 0.85
        assert mis >= link - 0.02  # misconfig at least comparable


class TestFig9:
    def test_scatter_and_trend_exist(self):
        result = fig9_diag_vs_spec.run(
            FigureConfig(placements=1, failures_per_placement=3, topo_seed=200),
            sensor_counts=(5, 15),
        )
        scatter = result.series_by_name("scatter").points
        assert scatter
        assert all(0.0 <= x <= 1.0 and 0.0 <= y <= 1.0 for x, y in scatter)
        assert result.summaries["specificity"]["mean"] >= 0.75


class TestFig10:
    def test_control_plane_never_hurts(self):
        result = fig10_bgpigp.run(TINY)
        nd_edge_spec = result.summaries["nd-edge/specificity"]["mean"]
        bgpigp_spec = result.summaries["nd-bgpigp/specificity"]["mean"]
        assert bgpigp_spec >= nd_edge_spec - 1e-9
        nd_edge_sens = result.summaries["nd-edge/sensitivity"]["mean"]
        bgpigp_sens = result.summaries["nd-bgpigp/sensitivity"]["mean"]
        assert bgpigp_sens == pytest.approx(nd_edge_sens, abs=0.15)


class TestFig11:
    def test_nd_lg_beats_ignoring_uh_links_when_blocked(self):
        result = fig11_blocked.run(TINY, blocked_fractions=(0.0, 0.6))
        lg = dict(result.series_by_name("nd-lg/as-sensitivity").points)
        plain = dict(result.series_by_name("nd-bgpigp/as-sensitivity").points)
        assert lg[0.6] >= plain[0.6]
        assert plain[0.6] <= plain[0.0]  # 1 - f_b decay


class TestFig12:
    def test_lg_availability_helps(self):
        result = fig12_lg.run(
            TINY, blocked_fractions=(0.5,), lg_fractions=(0.05, 1.0)
        )
        curve = dict(result.series_by_name("nd-lg/f_b=0.5").points)
        flat = dict(result.series_by_name("nd-bgpigp/f_b=0.5").points)
        assert curve[1.0] >= flat[1.0]
        assert curve[1.0] >= curve[0.05] - 1e-9
