"""Resilience harness for the experiment runner.

The contracts under test:

* a worker process dying mid-placement fails that placement only — the
  rest of the sweep completes and is bit-identical to running the
  surviving placements alone;
* a placement exceeding ``job_timeout`` is charged, its stuck worker is
  reclaimed, and innocent in-flight placements are re-run uncharged;
* transient in-worker exceptions are retried with bounded backoff;
* a results journal checkpoints completed placements, refuses foreign
  sweeps, tolerates a truncated tail, and ``resume=True`` completes an
  interrupted sweep with output identical to an uninterrupted run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.errors import ReproError
from repro.experiments.jobs import CoreAsx, ResearchTopoFactory, StubPlacement
from repro.experiments.journal import RunJournal
from repro.experiments.runner import (
    RunnerStats,
    build_placement_jobs,
    run_kind_batch,
)

_FACTORY = ResearchTopoFactory(topo_seed=7, n_tier2=4, n_stub=16)


@dataclass(frozen=True)
class CrashingTopoFactory:
    """Kills its worker process outright for one placement index."""

    crash_index: int

    def __call__(self, placement_index: int):
        if placement_index == self.crash_index:
            os._exit(17)
        return _FACTORY(placement_index)


@dataclass(frozen=True)
class HangingTopoFactory:
    """Sleeps far past any job timeout for one placement index."""

    hang_index: int

    def __call__(self, placement_index: int):
        if placement_index == self.hang_index:
            time.sleep(60)
        return _FACTORY(placement_index)


@dataclass(frozen=True)
class FlakyOnceTopoFactory:
    """Raises on the first build of one placement, succeeds after.

    Cross-attempt state lives in a sentinel file so the behaviour
    survives the process boundary between retry attempts.
    """

    fail_index: int
    sentinel: str

    def __call__(self, placement_index: int):
        if placement_index == self.fail_index and not os.path.exists(
            self.sentinel
        ):
            Path(self.sentinel).touch()
            raise RuntimeError("transient topology-build failure")
        return _FACTORY(placement_index)


@dataclass(frozen=True)
class RefusingTopoFactory:
    """Fails loudly if any placement is (re)built at all."""

    def __call__(self, placement_index: int):
        raise AssertionError(
            f"placement {placement_index} was rebuilt; expected it to be "
            "replayed from the journal"
        )


def _batch(topo_factory, **overrides):
    batch = dict(
        topo_factory=topo_factory,
        placement_fn=StubPlacement(5),
        kinds=("link-1",),
        diagnosers={
            "tomo": NetDiagnoser("tomo"),
            "nd-edge": NetDiagnoser("nd-edge"),
        },
        placements=3,
        failures_per_placement=2,
        seed=0,
        asx_selector=CoreAsx(),
        retry_backoff_seconds=0.0,
        sleep=lambda _seconds: None,
    )
    batch.update(overrides)
    return batch


@pytest.fixture(scope="module")
def clean_records():
    return run_kind_batch(**_batch(_FACTORY), workers=1)


class TestCrashIsolation:
    def test_dead_worker_fails_one_placement_not_the_sweep(self):
        stats = RunnerStats()
        records = run_kind_batch(
            **_batch(CrashingTopoFactory(crash_index=1)),
            workers=2,
            max_job_retries=0,
            stats=stats,
        )
        survivors = sorted(p.placement_index for p in stats.per_placement)
        assert survivors == [0, 2]
        assert stats.jobs_crashed >= 1
        assert stats.jobs_failed == 1
        # The surviving placements' records are exactly what running
        # those placements alone produces — nothing was perturbed.
        jobs = build_placement_jobs(
            _FACTORY,
            StubPlacement(5),
            ("link-1",),
            {"tomo": NetDiagnoser("tomo"), "nd-edge": NetDiagnoser("nd-edge")},
            placements=3,
            failures_per_placement=2,
            seed=0,
            asx_selector=CoreAsx(),
        )
        expected = [jobs[0].run(), jobs[2].run()]
        assert records["link-1"] == [
            record
            for result in expected
            for record in result.records["link-1"]
        ]

    def test_crashing_placement_is_retried_before_dropping(self):
        stats = RunnerStats()
        run_kind_batch(
            **_batch(CrashingTopoFactory(crash_index=0), placements=2),
            workers=2,
            max_job_retries=2,
            stats=stats,
        )
        # Deterministic crasher: every retry crashes again until the
        # budget is spent, then the sweep moves on.
        assert stats.jobs_retried == 2
        assert stats.jobs_failed == 1
        assert sorted(p.placement_index for p in stats.per_placement) == [1]


class TestJobTimeouts:
    def test_hung_placement_times_out_and_sweep_completes(self):
        stats = RunnerStats()
        records = run_kind_batch(
            **_batch(HangingTopoFactory(hang_index=1), placements=2),
            workers=2,
            job_timeout=3.0,
            max_job_retries=0,
            stats=stats,
        )
        assert stats.jobs_timed_out == 1
        assert stats.jobs_failed == 1
        assert sorted(p.placement_index for p in stats.per_placement) == [0]
        assert len(records["link-1"]) > 0


class TestBoundedRetries:
    def test_transient_exception_retried_serially(self, tmp_path, clean_records):
        stats = RunnerStats()
        factory = FlakyOnceTopoFactory(
            fail_index=1, sentinel=str(tmp_path / "failed-once")
        )
        records = run_kind_batch(
            **_batch(factory), workers=1, max_job_retries=2, stats=stats
        )
        assert stats.jobs_retried == 1
        assert stats.jobs_failed == 0
        assert records == clean_records

    def test_transient_exception_retried_in_workers(self, tmp_path, clean_records):
        stats = RunnerStats()
        factory = FlakyOnceTopoFactory(
            fail_index=1, sentinel=str(tmp_path / "failed-once-par")
        )
        records = run_kind_batch(
            **_batch(factory), workers=2, max_job_retries=2, stats=stats
        )
        assert stats.jobs_retried == 1
        assert stats.jobs_failed == 0
        assert records == clean_records

    def test_exhausted_retries_drop_the_placement(self, clean_records):
        @dataclass(frozen=True)
        class AlwaysRaises:
            def __call__(self, placement_index: int):
                raise RuntimeError("permanent failure")

        stats = RunnerStats()
        records = run_kind_batch(
            **_batch(AlwaysRaises(), placements=1),
            workers=1,
            max_job_retries=1,
            stats=stats,
        )
        assert stats.jobs_retried == 1
        assert stats.jobs_failed == 1
        assert records == {"link-1": []}


class TestSerialFallbackAccounting:
    def test_unpicklable_jobs_count_a_serial_fallback(self, clean_records):
        stats = RunnerStats()
        batch = _batch(_FACTORY)
        batch["asx_selector"] = lambda topo, rng: topo.core_asns[0]
        records = run_kind_batch(**batch, workers=3, stats=stats)
        assert stats.serial_fallbacks == 1
        assert stats.workers == 1
        assert records == clean_records


class TestJournalAndResume:
    def test_resume_replays_without_rerunning(self, tmp_path, clean_records):
        journal = tmp_path / "sweep.journal"
        first = run_kind_batch(
            **_batch(_FACTORY), workers=1, journal=journal
        )
        assert first == clean_records
        stats = RunnerStats()
        resumed = run_kind_batch(
            **_batch(RefusingTopoFactory()),
            workers=1,
            journal=journal,
            resume=True,
            stats=stats,
        )
        assert resumed == clean_records
        assert stats.placements_resumed == 3

    def test_interrupted_sweep_resumes_to_identical_output(
        self, tmp_path, clean_records
    ):
        # Interrupt: placement 1's worker dies, the journal keeps 0 and 2.
        journal = tmp_path / "interrupted.journal"
        partial_stats = RunnerStats()
        run_kind_batch(
            **_batch(CrashingTopoFactory(crash_index=1)),
            workers=2,
            max_job_retries=0,
            journal=journal,
            stats=partial_stats,
        )
        assert partial_stats.jobs_failed == 1
        # Resume with the healthy factory: only placement 1 runs, and the
        # merged output matches an uninterrupted clean run exactly.
        stats = RunnerStats()
        resumed = run_kind_batch(
            **_batch(_FACTORY),
            workers=2,
            journal=journal,
            resume=True,
            stats=stats,
        )
        assert stats.placements_resumed == 2
        assert resumed == clean_records

    def test_truncated_tail_is_recovered_from(self, tmp_path, clean_records):
        journal = tmp_path / "truncated.journal"
        run_kind_batch(**_batch(_FACTORY), workers=1, journal=journal)
        raw = journal.read_bytes()
        journal.write_bytes(raw[:-200])  # crash mid-append: chop the tail
        stats = RunnerStats()
        resumed = run_kind_batch(
            **_batch(_FACTORY),
            workers=1,
            journal=journal,
            resume=True,
            stats=stats,
        )
        assert 1 <= stats.placements_resumed < 3
        assert resumed == clean_records

    def test_foreign_journal_refused(self, tmp_path):
        journal = tmp_path / "foreign.journal"
        run_kind_batch(**_batch(_FACTORY), workers=1, journal=journal)
        with pytest.raises(ReproError):
            run_kind_batch(
                **_batch(_FACTORY, seed=999),
                workers=1,
                journal=journal,
                resume=True,
            )

    def test_journal_object_with_custom_fingerprint(self, tmp_path, clean_records):
        journal = RunJournal(tmp_path / "custom.journal", fingerprint="v1")
        run_kind_batch(**_batch(_FACTORY), workers=1, journal=journal)
        resumed = run_kind_batch(
            **_batch(RefusingTopoFactory()),
            workers=1,
            journal=journal,
            resume=True,
        )
        assert resumed == clean_records
