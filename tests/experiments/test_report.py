"""Unit tests for the text/ASCII rendering of figure results."""

import pytest

from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.report import (
    render_ascii_chart,
    render_figure,
    render_runner_stats,
)
from repro.experiments.runner import RunnerStats


@pytest.fixture
def result():
    return FigureResult(
        figure_id="figT",
        title="test figure",
        series=[
            Series("alpha", [(0.0, 0.0), (1.0, 1.0)], "x", "y"),
            Series("beta", [(0.0, 1.0), (1.0, 0.0)], "x", "y"),
        ],
        summaries={"alpha": {"n": 2.0, "mean": 0.5}},
        notes=["alpha rises", "beta falls"],
    )


class TestRenderFigure:
    def test_contains_all_sections(self, result):
        text = render_figure(result)
        assert "figT: test figure" in text
        assert "-- alpha" in text and "-- beta" in text
        assert "summaries" in text and "mean=0.500" in text
        assert "alpha rises" in text
        assert "o=alpha" in text  # the chart legend

    def test_chart_can_be_disabled(self, result):
        text = render_figure(result, chart=False)
        assert "o=alpha" not in text
        assert "-- alpha" in text

    def test_result_render_method(self, result):
        assert result.render() == render_figure(result)

    def test_series_by_name(self, result):
        assert result.series_by_name("beta").points[0] == (0.0, 1.0)
        with pytest.raises(KeyError):
            result.series_by_name("gamma")


class TestAsciiChart:
    def test_markers_land_at_extremes(self):
        chart = render_ascii_chart(
            [Series("s", [(0.0, 0.0), (10.0, 5.0)], "x", "y")],
            width=20,
            height=6,
        )
        lines = chart.splitlines()
        assert lines[0].endswith("o")  # top-right: the maximum point
        assert "5.00" in lines[0]
        assert "0.00" in lines[5]

    def test_empty_series_handled(self):
        assert render_ascii_chart([]) == "(no data points)"

    def test_degenerate_single_point(self):
        chart = render_ascii_chart([Series("s", [(1.0, 1.0)], "x", "y")])
        assert "o" in chart

    def test_many_series_cycle_markers(self):
        series = [
            Series(f"s{i}", [(float(i), float(i))], "x", "y") for i in range(10)
        ]
        chart = render_ascii_chart(series)
        assert "o=s0" in chart and "o=s8" in chart  # marker cycle wraps


class TestFigureConfigDefaults:
    def test_defaults_are_bench_scale(self):
        config = FigureConfig()
        assert config.placements < 10
        assert config.failures_per_placement < 100
        assert config.n_sensors == 10


class TestRenderRunnerStats:
    def test_reports_caches_convergence_and_times(self):
        stats = RunnerStats(
            workers=2,
            placements=4,
            records=40,
            scenarios_sampled=50,
            scenarios_rejected=10,
            trace_cache_entries=100,
            trace_cache_hits=75,
            trace_cache_misses=25,
            trace_cache_evictions=5,
            routing_cache_entries=20,
            routing_cache_hits=30,
            routing_cache_misses=10,
            routing_cache_evictions=2,
            full_converges=4,
            incremental_converges=36,
            prefixes_converged=120,
            prefixes_reused=280,
            setup_seconds=4.0,
            scenario_seconds=8.0,
            wall_seconds=6.0,
        )
        text = render_runner_stats(stats)
        assert "trace cache:" in text and "(hit-rate=0.75)" in text
        assert "routing cache:" in text and "evictions=2" in text
        assert "convergence: full=4  incremental=36" in text
        assert "(reuse-rate=0.70)" in text
        # Phase times are aggregate CPU seconds; wall is reported apart.
        assert "setup-cpu=4.00s" in text
        assert "aggregate CPU seconds across 2 worker(s)" in text
        assert "wall=6.00s" in text and "(cpu/wall=2.00x)" in text

    def test_zero_denominators_render_as_zero_rates(self):
        text = render_runner_stats(RunnerStats())
        assert "(hit-rate=0.00)" in text
        assert "(reuse-rate=0.00)" in text
        assert "(cpu/wall=0.00x)" in text
