"""Unit tests for figure-module helpers (placement resolution, sweeps)."""

import random

import pytest

from repro.experiments.figures import fig5_placement
from repro.experiments.figures.base import FigureConfig
from repro.netsim.gen.internet import research_internet


@pytest.fixture(scope="module")
def topo():
    return research_internet(seed=321)


class TestFig5Helpers:
    def test_distant_pair_homed_to_different_cores(self, topo):
        as_a, as_b = fig5_placement._distant_pair(topo)
        assert topo.providers[as_a] == [topo.core_asns[0]]
        assert topo.providers[as_b] == [topo.core_asns[1]]
        assert as_a != as_b

    def test_intermediate_routers_exclude_the_endpoints(self, topo):
        as_a, as_b = fig5_placement._distant_pair(topo)
        intermediates = fig5_placement._intermediate_routers(topo, as_a, as_b)
        assert intermediates, "distant tier-2s must transit other ASes"
        net = topo.net
        for rid in intermediates:
            assert net.asn_of_router(rid) not in (as_a, as_b)

    @pytest.mark.parametrize("placement", fig5_placement.PLACEMENTS)
    def test_every_placement_resolves(self, topo, placement):
        rng = random.Random(placement)
        routers = fig5_placement._placement_routers(placement, topo, 6, rng)
        assert len(routers) == 6

    def test_unknown_placement_rejected(self, topo):
        with pytest.raises(ValueError):
            fig5_placement._placement_routers("moon", topo, 6, random.Random(1))

    def test_placement_diagnosability_is_normalised(self):
        rng = random.Random("fig5-helper")
        value = fig5_placement.placement_diagnosability("random", 6, 321, rng)
        assert 0.0 < value <= 1.0


class TestFigureConfigPropagation:
    def test_custom_sensor_counts_respected(self):
        result = fig5_placement.run(
            FigureConfig(placements=1, topo_seed=321), sensor_counts=(4,)
        )
        for series in result.series:
            assert [x for x, _y in series.points] == [4.0]
