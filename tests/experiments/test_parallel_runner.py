"""Determinism harness for the parallel experiment runner.

The contract under test: ``run_kind_batch(..., workers=n)`` returns
**bit-identical** record lists to the serial path for any ``n``, because
every placement job reproduces the historical per-placement RNG seeding
(``f"{seed}/{i}"``) in an isolated process.  ``scaling_sweep`` points
must likewise match serially on every non-timing field.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.experiments.jobs import (
    CoreAsx,
    RandomStubAsx,
    ResearchTopoFactory,
    StubPlacement,
)
from repro.experiments.runner import (
    RunnerStats,
    build_placement_jobs,
    resolve_workers,
    run_kind_batch,
)
from repro.experiments.scaling import scaling_sweep

#: A small, fast batch that still exercises AS-X, blocking and LGs.
SMALL_BATCH = dict(
    topo_factory=ResearchTopoFactory(topo_seed=7, n_tier2=4, n_stub=16),
    placement_fn=StubPlacement(5),
    kinds=("link-1", "misconfig"),
    diagnosers={
        "tomo": NetDiagnoser("tomo"),
        "nd-edge": NetDiagnoser("nd-edge"),
        "nd-bgpigp": NetDiagnoser("nd-bgpigp"),
    },
    placements=3,
    failures_per_placement=3,
    seed=0,
    asx_selector=CoreAsx(),
    blocked_fraction=0.2,
    lg_fraction=0.5,
)


@pytest.fixture(scope="module")
def serial_records():
    return run_kind_batch(**SMALL_BATCH, workers=1)


class TestParallelEquivalence:
    def test_workers3_records_identical(self, serial_records):
        parallel = run_kind_batch(**SMALL_BATCH, workers=3)
        assert set(parallel) == set(serial_records)
        for kind, records in serial_records.items():
            assert len(parallel[kind]) == len(records)
            for serial_rec, parallel_rec in zip(records, parallel[kind]):
                # Field-by-field: a plain == would hide *which* field drifted.
                assert serial_rec.kind == parallel_rec.kind
                assert serial_rec.description == parallel_rec.description
                assert serial_rec.diagnosability == parallel_rec.diagnosability
                assert serial_rec.n_failed_pairs == parallel_rec.n_failed_pairs
                assert (
                    serial_rec.n_rerouted_pairs == parallel_rec.n_rerouted_pairs
                )
                assert set(serial_rec.scores) == set(parallel_rec.scores)
                for label, score in serial_rec.scores.items():
                    other = parallel_rec.scores[label]
                    for field in dataclasses.fields(score):
                        assert getattr(score, field.name) == getattr(
                            other, field.name
                        ), f"{label}.{field.name} drifted under workers=3"

    def test_workers3_bytes_identical(self, serial_records):
        # repr() of the nested dataclasses is an exact content encoding
        # (shortest-round-trip floats, ordered dicts); raw pickle bytes
        # would additionally encode object-identity sharing, which a
        # process boundary legitimately changes without changing content.
        parallel = run_kind_batch(**SMALL_BATCH, workers=3)
        assert repr(parallel).encode() == repr(serial_records).encode()
        assert parallel == serial_records

    def test_workers0_resolves_to_cpu_count(self, serial_records):
        assert run_kind_batch(**SMALL_BATCH, workers=0) == serial_records

    def test_stats_agree_across_backends(self):
        serial_stats, parallel_stats = RunnerStats(), RunnerStats()
        run_kind_batch(**SMALL_BATCH, workers=1, stats=serial_stats)
        run_kind_batch(**SMALL_BATCH, workers=3, stats=parallel_stats)
        for field in (
            "placements",
            "records",
            "scenarios_sampled",
            "scenarios_rejected",
            "budget_exhaustions",
            "trace_cache_entries",
            "routing_cache_entries",
        ):
            assert getattr(serial_stats, field) == getattr(
                parallel_stats, field
            ), f"RunnerStats.{field} differs between serial and parallel"
        assert parallel_stats.workers == 3
        assert len(parallel_stats.per_placement) == SMALL_BATCH["placements"]

    def test_unpicklable_jobs_fall_back_to_serial(self, serial_records, caplog):
        batch = dict(SMALL_BATCH)
        batch["asx_selector"] = lambda topo, rng: topo.core_asns[0]
        # The lambda changes nothing semantically (CoreAsx() does the
        # same), so the fallback must reproduce the serial records.
        with caplog.at_level("WARNING", logger="repro.experiments.runner"):
            records = run_kind_batch(**batch, workers=3)
        assert records == serial_records
        assert any("not picklable" in message for message in caplog.messages)


@pytest.mark.slow
def test_workers2_identical_on_full_research_internet():
    """Same contract at the paper's (22, 140) scale — the slow lane."""
    batch = dict(
        topo_factory=ResearchTopoFactory(topo_seed=100),
        placement_fn=StubPlacement(10),
        kinds=("link-1", "link-3"),
        diagnosers={
            "nd-edge": NetDiagnoser("nd-edge"),
            "nd-bgpigp": NetDiagnoser("nd-bgpigp"),
        },
        placements=2,
        failures_per_placement=3,
        seed=0,
        asx_selector=CoreAsx(),
    )
    assert run_kind_batch(**batch, workers=2) == run_kind_batch(
        **batch, workers=1
    )


class TestJobPlumbing:
    def test_jobs_are_picklable(self):
        jobs = build_placement_jobs(
            SMALL_BATCH["topo_factory"],
            SMALL_BATCH["placement_fn"],
            SMALL_BATCH["kinds"],
            SMALL_BATCH["diagnosers"],
            placements=4,
            failures_per_placement=2,
            seed=9,
            asx_selector=RandomStubAsx(),
        )
        assert [job.placement_index for job in jobs] == [0, 1, 2, 3]
        restored = pickle.loads(pickle.dumps(jobs))
        assert [job.seed for job in restored] == [9, 9, 9, 9]

    def test_resolve_workers(self):
        assert resolve_workers(1, 10) == 1
        assert resolve_workers(4, 2) == 2  # capped at the job count
        assert resolve_workers(0, 64) >= 1  # 0 = all cores
        with pytest.raises(ValueError):
            resolve_workers(-1, 4)


class TestScalingSweepEquivalence:
    SIZES = ((4, 16), (6, 24))

    @staticmethod
    def _deterministic_fields(point):
        return {
            field.name: getattr(point, field.name)
            for field in dataclasses.fields(point)
            if not field.name.endswith("_seconds")
        }

    def test_parallel_points_match_serial(self):
        serial = scaling_sweep(
            sizes=self.SIZES, n_sensors=5, failures=2, seed=0, workers=1
        )
        parallel = scaling_sweep(
            sizes=self.SIZES, n_sensors=5, failures=2, seed=0, workers=2
        )
        assert [self._deterministic_fields(p) for p in serial] == [
            self._deterministic_fields(p) for p in parallel
        ]
