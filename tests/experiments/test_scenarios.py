"""Unit tests for failure-scenario sampling (admission rules, pools)."""

import random

import pytest

from repro.errors import ScenarioError
from repro.experiments.scenarios import SCENARIO_KINDS, ScenarioSampler
from repro.netsim.events import (
    CompositeEvent,
    LinkFailureEvent,
    MisconfigurationEvent,
    RouterFailureEvent,
)


@pytest.fixture
def sampler(research_session):
    return research_session.sampler


class TestDiscovery:
    def test_probed_sets_are_consistent(self, sampler):
        assert sampler.probed_links
        assert set(sampler.probed_inter_links) <= set(sampler.probed_links)
        assert set(sampler.probed_intra_links) <= set(sampler.probed_links)
        assert set(sampler.probed_inter_links) | set(
            sampler.probed_intra_links
        ) == set(sampler.probed_links)

    def test_gateways_excluded_from_router_pool(self, sampler, research_session):
        gateways = {s.router_id for s in research_session.sensors}
        assert not gateways & set(sampler.probed_routers)


class TestAdmission:
    def test_link_failures_break_some_pair(self, sampler):
        for count in (1, 2, 3):
            scenario = sampler.sample(f"link-{count}")
            assert isinstance(scenario.event, LinkFailureEvent)
            assert len(scenario.event.link_ids) == count
            assert sampler._mesh_broken(scenario.after_state)

    def test_sampled_links_are_probed(self, sampler):
        scenario = sampler.sample("link-2")
        assert set(scenario.event.link_ids) <= set(sampler.probed_links)

    def test_router_failure_admission(self, sampler):
        scenario = sampler.sample("router")
        assert isinstance(scenario.event, RouterFailureEvent)
        assert scenario.event.router_id in sampler.probed_routers
        assert sampler._mesh_broken(scenario.after_state)

    def test_misconfig_is_partial_by_default(self, sampler):
        scenario = sampler.sample("misconfig")
        assert isinstance(scenario.event, MisconfigurationEvent)
        assert sampler._mesh_broken(scenario.after_state)
        assert sampler._misconfig_is_partial(scenario.event, scenario.after_state)

    def test_misconfig_filters_whole_neighbor_group(
        self, sampler, research_session
    ):
        scenario = sampler.sample("misconfig")
        export_filter = scenario.event.export_filter
        routing = research_session.sim.routing(research_session.base_state)
        exporter_asn = research_session.net.asn_of_router(export_filter.at_router)
        groups = {}
        for prefix in routing.advertised(export_filter.link_id, exporter_asn):
            route = routing.best(exporter_asn, prefix)
            groups.setdefault(route.neighbor_asn, set()).add(prefix)
        assert set(export_filter.prefixes) in groups.values()

    def test_misconfig_plus_link_composes(self, sampler):
        scenario = sampler.sample("misconfig+link")
        assert isinstance(scenario.event, CompositeEvent)
        kinds = {type(e) for e in scenario.event.events}
        assert kinds == {MisconfigurationEvent, LinkFailureEvent}

    def test_unknown_kind_rejected(self, sampler):
        with pytest.raises(ScenarioError):
            sampler.sample("meteor-strike")

    def test_impossible_count_rejected(self, sampler):
        with pytest.raises(ScenarioError):
            sampler.sample_link_failures(10_000)

    def test_all_declared_kinds_sample(self, sampler):
        for kind in SCENARIO_KINDS:
            scenario = sampler.sample(kind)
            assert scenario.kind == kind


class TestIntraOnlyPool:
    def test_intra_pool_restricts_failures(self, research_topo):
        import random as _random

        from repro.experiments.runner import make_session
        from repro.measurement.sensors import random_stub_placement

        rng = _random.Random("intra-pool")
        session = make_session(
            research_topo,
            random_stub_placement(research_topo, 10, rng),
            rng,
            intra_failures_only=True,
        )
        scenario = session.sampler.sample("link-1")
        lid = scenario.event.link_ids[0]
        assert not session.net.is_interdomain(lid)
