"""Fault-plan determinism across execution backends.

The contract: an identical seed produces an identical fault schedule —
and therefore identical records, scores and degradation accounting —
whether the sweep runs serially, across worker processes, or twice in a
row.  Every fault decision is a pure function of
``(seed, fault kind, decision key)``, so nothing about scheduling can
perturb it.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.experiments.jobs import CoreAsx, ResearchTopoFactory, StubPlacement
from repro.experiments.runner import RunnerStats, run_kind_batch
from repro.faults import DegradationReport, FaultConfig

#: A small faulted batch exercising every fault mode at once.
FAULTY_BATCH = dict(
    topo_factory=ResearchTopoFactory(topo_seed=7, n_tier2=4, n_stub=16),
    placement_fn=StubPlacement(5),
    kinds=("link-1",),
    diagnosers={
        "tomo": NetDiagnoser("tomo"),
        "nd-edge": NetDiagnoser("nd-edge"),
        "nd-bgpigp": NetDiagnoser("nd-bgpigp"),
        "nd-lg": NetDiagnoser("nd-lg"),
    },
    placements=3,
    failures_per_placement=3,
    seed=0,
    asx_selector=CoreAsx(),
    lg_fraction=1.0,
    intra_failures_only=True,
    fault_config=FaultConfig.uniform(0.2),
)


@pytest.fixture(scope="module")
def serial_records():
    return run_kind_batch(**FAULTY_BATCH, workers=1)


class TestFaultSchedulesAreDeterministic:
    def test_rerun_is_bit_identical(self, serial_records):
        again = run_kind_batch(**FAULTY_BATCH, workers=1)
        assert repr(again).encode() == repr(serial_records).encode()
        assert again == serial_records

    def test_workers3_injects_the_same_faults(self, serial_records):
        parallel = run_kind_batch(**FAULTY_BATCH, workers=3)
        assert parallel == serial_records
        # Spell out the degradation reports: identical fault-by-fault.
        for kind, records in serial_records.items():
            for serial_rec, parallel_rec in zip(records, parallel[kind]):
                s_report = serial_rec.degradation
                p_report = parallel_rec.degradation
                assert s_report is not None and p_report is not None
                for field in DegradationReport._COUNTER_FIELDS:
                    assert getattr(s_report, field) == getattr(
                        p_report, field
                    ), f"{field} drifted under workers=3"
                assert s_report.diagnoser_errors == p_report.diagnoser_errors
                assert s_report.notes == p_report.notes

    def test_faults_actually_fired(self, serial_records):
        reports = [
            record.degradation
            for records in serial_records.values()
            for record in records
        ]
        assert reports
        assert any(report.is_degraded() for report in reports)

    def test_stats_fault_counters_agree_across_backends(self):
        serial_stats, parallel_stats = RunnerStats(), RunnerStats()
        run_kind_batch(**FAULTY_BATCH, workers=1, stats=serial_stats)
        run_kind_batch(**FAULTY_BATCH, workers=3, stats=parallel_stats)
        assert serial_stats.any_faults_seen()
        for field in DegradationReport._COUNTER_FIELDS:
            assert getattr(serial_stats, field) == getattr(
                parallel_stats, field
            ), f"RunnerStats.{field} differs between serial and parallel"

    def test_different_seed_changes_the_schedule(self, serial_records):
        batch = dict(FAULTY_BATCH)
        batch["seed"] = 1
        assert run_kind_batch(**batch, workers=1) != serial_records

    def test_zero_rate_config_matches_no_config(self):
        clean = dict(FAULTY_BATCH)
        clean["fault_config"] = None
        zero = dict(FAULTY_BATCH)
        zero["fault_config"] = FaultConfig.uniform(0.0)
        assert run_kind_batch(**zero, workers=1) == run_kind_batch(
            **clean, workers=1
        )

    def test_record_fields_identical_under_faults(self, serial_records):
        parallel = run_kind_batch(**FAULTY_BATCH, workers=2)
        for kind, records in serial_records.items():
            for serial_rec, parallel_rec in zip(records, parallel[kind]):
                for label, score in serial_rec.scores.items():
                    other = parallel_rec.scores[label]
                    for field in dataclasses.fields(score):
                        assert getattr(score, field.name) == getattr(
                            other, field.name
                        ), f"{label}.{field.name} drifted under workers=2"


#: The corruption axis under quarantine screening: every corruption mode
#: plus the validation pipeline, across process boundaries.
CORRUPT_BATCH = dict(
    topo_factory=ResearchTopoFactory(topo_seed=7, n_tier2=4, n_stub=16),
    placement_fn=StubPlacement(5),
    kinds=("link-1",),
    diagnosers={
        "tomo": NetDiagnoser("tomo"),
        "nd-edge": NetDiagnoser("nd-edge"),
    },
    placements=3,
    failures_per_placement=3,
    seed=0,
    asx_selector=CoreAsx(),
    blocked_fraction=0.3,
    lg_fraction=1.0,
    intra_failures_only=True,
    fault_config=FaultConfig.corruption(0.2),
    validation="quarantine",
)


class TestCorruptionSchedulesAreDeterministic:
    def test_workers3_corrupts_and_screens_identically(self):
        serial_stats, parallel_stats = RunnerStats(), RunnerStats()
        serial = run_kind_batch(**CORRUPT_BATCH, workers=1, stats=serial_stats)
        parallel = run_kind_batch(
            **CORRUPT_BATCH, workers=3, stats=parallel_stats
        )
        assert serial == parallel
        assert serial_stats.any_corruption_seen()
        assert serial_stats.any_validation_seen()
        for field in DegradationReport._COUNTER_FIELDS:
            assert getattr(serial_stats, field) == getattr(
                parallel_stats, field
            ), f"RunnerStats.{field} differs between serial and parallel"
