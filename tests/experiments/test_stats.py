"""The shared nearest-rank percentile: edge cases pinned and properties
checked.  This helper replaced two divergent private copies (the stream
report's and the stream benchmark's) — these tests are the contract that
keeps the next copy from forking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.experiments.stats import percentile

values = st.lists(
    st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=50,
)
quantiles = st.floats(0.0, 1.0, allow_nan=False)


class TestEdgeCases:
    def test_empty_input_is_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile((), 0.99) == 0.0

    def test_single_element_is_every_percentile(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_two_elements(self):
        # rank = round(q * 1): q < .5 -> min, q > .5 -> max.
        assert percentile([3.0, 9.0], 0.0) == 3.0
        assert percentile([9.0, 3.0], 0.49) == 3.0
        assert percentile([3.0, 9.0], 0.51) == 9.0
        assert percentile([3.0, 9.0], 1.0) == 9.0

    def test_p99_of_small_samples_is_the_max(self):
        """The latency benches report p99 over a handful of episode
        latencies; nearest-rank must surface the max, not interpolate
        below it."""
        assert percentile([5, 1, 4, 2, 3], 0.99) == 5
        assert percentile(list(range(50)), 0.99) == 49

    def test_out_of_range_q_raises(self):
        with pytest.raises(ReproError):
            percentile([1.0], -0.01)
        with pytest.raises(ReproError):
            percentile([1.0], 1.01)

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0


class TestProperties:
    @given(data=values, q=quantiles)
    def test_result_is_always_an_observed_value(self, data, q):
        assert percentile(data, q) in data

    @given(data=values)
    def test_q0_is_min_and_q1_is_max(self, data):
        assert percentile(data, 0.0) == min(data)
        assert percentile(data, 1.0) == max(data)

    @given(data=values, lo=quantiles, hi=quantiles)
    def test_monotone_in_q(self, data, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        assert percentile(data, lo) <= percentile(data, hi)

    @given(data=values, q=quantiles)
    def test_invariant_under_permutation(self, data, q):
        assert percentile(data, q) == percentile(sorted(data), q)
        assert percentile(data, q) == percentile(list(reversed(data)), q)
