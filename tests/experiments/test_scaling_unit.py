"""Unit tests for the scaling sweep harness."""

import pytest

from repro.experiments.scaling import ScalePoint, render_scaling, scaling_sweep


class TestScalingSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return scaling_sweep(sizes=((4, 16), (8, 32)), failures=2, seed=1)

    def test_sizes_recorded(self, points):
        assert [(p.n_tier2, p.n_stub) for p in points] == [(4, 16), (8, 32)]
        assert points[0].n_ases == 23
        assert points[1].n_ases == 43

    def test_measurements_are_sane(self, points):
        for p in points:
            assert p.convergence_seconds >= 0.0
            assert p.mesh_seconds >= 0.0
            assert p.diagnosis_seconds > 0.0
            assert 0.0 < p.diagnosability <= 1.0
            assert 0.0 <= p.nd_edge_sensitivity <= 1.0
            assert 0.0 <= p.nd_edge_specificity <= 1.0

    def test_growth_monotone_in_structure(self, points):
        assert points[1].n_routers > points[0].n_routers
        assert points[1].n_links > points[0].n_links

    def test_render_table(self, points):
        table = render_scaling(points)
        lines = table.splitlines()
        assert len(lines) == 3  # header + two rows
        assert "ASes" in lines[0] and "bgpigp" in lines[0]
        assert "23" in lines[1]
