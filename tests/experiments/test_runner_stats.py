"""Unit tests for the experiment runner, scoring helpers and statistics."""

import random

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.errors import ReproError
from repro.experiments.runner import (
    PlacementStats,
    RunnerStats,
    choose_blocked_ases,
    covered_ases,
    ground_truth_ases,
    ground_truth_links,
    run_scenario,
)
from repro.experiments.stats import binned_means, cdf, mean, ratio, summarize
from repro.netsim.events import LinkFailureEvent


class TestGroundTruth:
    def test_ground_truth_links_are_physical(self, research_session):
        lid = research_session.sampler.probed_links[0]
        event = LinkFailureEvent((lid,))
        truth = ground_truth_links(research_session.net, event)
        assert len(truth) == 1
        link = research_session.net.link(lid)
        token = next(iter(truth))
        assert {token.lo, token.hi} == {
            research_session.net.router(link.a).address,
            research_session.net.router(link.b).address,
        }

    def test_ground_truth_ases(self, research_session):
        lid = research_session.sampler.probed_inter_links[0]
        truth = ground_truth_ases(research_session.net, LinkFailureEvent((lid,)))
        assert truth == frozenset(research_session.net.link_asns(lid))


class TestCoverage:
    def test_covered_ases_include_sensor_ases(self, research_session):
        covered = covered_ases(research_session, research_session.base_state)
        sensor_asns = {
            research_session.net.asn_of_router(s.router_id)
            for s in research_session.sensors
        }
        assert sensor_asns <= covered

    def test_blocked_choice_respects_protections(self, research_session):
        rng = random.Random(1)
        asx = research_session.topo.core_asns[0]
        blocked = choose_blocked_ases(
            research_session, 1.0, rng, protected=frozenset({asx})
        )
        assert asx not in blocked
        sensor_asns = {
            research_session.net.asn_of_router(s.router_id)
            for s in research_session.sensors
        }
        assert not blocked & sensor_asns

    def test_blocked_choice_honors_multi_as_protected_set(
        self, research_session
    ):
        rng = random.Random(2)
        protected = frozenset(
            covered_ases(research_session, research_session.base_state)
        )
        # Protecting the whole covered set leaves nothing to block, even
        # at fraction 1.0 — AS-X never hides from itself, however large
        # the protected set grows.
        assert (
            choose_blocked_ases(research_session, 1.0, rng, protected=protected)
            == frozenset()
        )

    def test_blocked_fraction_zero_is_empty(self, research_session):
        assert (
            choose_blocked_ases(research_session, 0.0, random.Random(1))
            == frozenset()
        )


class TestRunScenario:
    def test_record_carries_scores_for_every_diagnoser(self, research_session):
        scenario = research_session.sampler.sample("link-1")
        record = run_scenario(
            research_session,
            scenario,
            {
                "tomo": NetDiagnoser("tomo"),
                "nd-edge": NetDiagnoser("nd-edge"),
            },
        )
        assert set(record.scores) == {"tomo", "nd-edge"}
        assert record.kind == "link-1"
        assert 0.0 < record.diagnosability <= 1.0
        assert record.n_failed_pairs > 0
        for score in record.scores.values():
            assert 0.0 <= score.link.sensitivity <= 1.0
            assert 0.0 <= score.link.specificity <= 1.0
            assert 0.0 <= score.as_level.sensitivity <= 1.0
            assert score.hypothesis_size >= score.physical_hypothesis_size >= 0

    def test_control_plane_diagnoser_gets_its_view(self, research_session):
        scenario = research_session.sampler.sample("link-1")
        record = run_scenario(
            research_session,
            scenario,
            {"nd-bgpigp": NetDiagnoser("nd-bgpigp")},
            asx=research_session.topo.core_asns[0],
        )
        assert "nd-bgpigp" in record.scores


class TestStats:
    def test_mean_and_empty(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ReproError):
            mean([])

    def test_cdf_shape(self):
        points = cdf([0.5, 0.0, 0.5, 1.0])
        assert points == [(0.0, 0.25), (0.5, 0.75), (1.0, 1.0)]
        with pytest.raises(ReproError):
            cdf([])

    def test_summarize_extreme_masses(self):
        summary = summarize([0.0, 0.0, 1.0, 0.5])
        assert summary["frac_zero"] == 0.5
        assert summary["frac_one"] == 0.25
        assert summary["n"] == 4.0
        assert 0.0 <= summary["p10"] <= summary["p50"] <= summary["p90"] <= 1.0

    def test_binned_means_trend(self):
        points = [(0.0, 0.0), (0.1, 0.2), (0.9, 0.8), (1.0, 1.0)]
        trend = binned_means(points, bins=2)
        assert len(trend) == 2
        assert trend[0][1] < trend[1][1]

    def test_binned_means_degenerate_x(self):
        assert binned_means([(0.5, 1.0), (0.5, 0.0)]) == [(0.5, 0.5)]

    def test_ratio_tolerates_zero_denominator(self):
        assert ratio(3.0, 4.0) == 0.75
        assert ratio(3.0, 0.0) == 0.0


class TestStatsAccounting:
    def test_record_cache_stats_copies_known_keys_only(self):
        stats = PlacementStats(placement_index=0)
        stats.record_cache_stats(
            {
                "trace_cache_hits": 7,
                "routing_cache_evictions": 2,
                "prefixes_reused": 40,
                "not_a_field": 99,
            }
        )
        assert stats.trace_cache_hits == 7
        assert stats.routing_cache_evictions == 2
        assert stats.prefixes_reused == 40
        assert not hasattr(stats, "not_a_field")

    def test_absorb_sums_cache_and_convergence_counters(self):
        total = RunnerStats(workers=2)
        for index in range(2):
            placement = PlacementStats(
                placement_index=index,
                records=5,
                trace_cache_hits=10,
                trace_cache_evictions=1,
                routing_cache_misses=3,
                full_converges=1,
                incremental_converges=4,
                prefixes_converged=20,
                prefixes_reused=60,
                setup_seconds=1.5,
                scenario_seconds=2.5,
            )
            total.absorb(placement)
        assert total.placements == 2
        assert total.records == 10
        assert total.trace_cache_hits == 20
        assert total.trace_cache_evictions == 2
        assert total.routing_cache_misses == 6
        assert total.full_converges == 2
        assert total.incremental_converges == 8
        assert total.prefixes_converged == 40
        assert total.prefixes_reused == 120
        # Phase times sum across placements: aggregate CPU seconds, while
        # wall_seconds stays whatever the batch caller measured.
        assert total.setup_seconds == 3.0
        assert total.scenario_seconds == 5.0
        assert total.wall_seconds == 0.0
        assert len(total.per_placement) == 2


class TestEnsembleAccounting:
    """Ensemble verdict tallies on the degradation/runner stats path."""

    def test_degradation_report_records_verdicts_without_degrading(self):
        from repro.faults.report import DegradationReport

        report = DegradationReport()
        report.record_ensemble_verdict("agree")
        report.record_ensemble_verdict("partial")
        report.record_ensemble_verdict("conflict")
        assert report.ensemble_agreements == 1
        assert report.ensemble_partials == 1
        assert report.ensemble_conflicts == 1
        # Observations, not faults: an agreeing ensemble is not degraded.
        assert not report.is_degraded()

    def test_unknown_verdict_raises_typed_error(self):
        from repro.errors import EmpathyError
        from repro.faults.report import DegradationReport

        with pytest.raises(EmpathyError):
            DegradationReport().record_ensemble_verdict("shrug")

    def test_runner_stats_fold_and_disagreement_view(self):
        from repro.experiments.runner import PlacementStats, RunnerStats
        from repro.faults.report import DegradationReport

        report = DegradationReport()
        report.record_ensemble_verdict("agree")
        report.record_ensemble_verdict("conflict")
        placement = PlacementStats(placement_index=0)
        placement.record_degradation(report)
        stats = RunnerStats()
        stats.absorb(placement)
        assert stats.any_ensemble_seen()
        assert not stats.any_faults_seen()
        tally = stats.ensemble_disagreement()
        assert tally.as_dict() == {"agree": 1, "partial": 0, "conflict": 1}
        assert tally.agreement_rate() == pytest.approx(0.5)

    def test_render_surfaces_the_ensemble_line(self):
        from repro.experiments.report import render_runner_stats
        from repro.experiments.runner import RunnerStats
        from repro.faults.report import DegradationReport

        stats = RunnerStats()
        quiet = render_runner_stats(stats)
        assert "ensemble:" not in quiet

        from repro.experiments.runner import PlacementStats

        report = DegradationReport()
        report.record_ensemble_verdict("agree")
        placement = PlacementStats(placement_index=0)
        placement.record_degradation(report)
        stats.absorb(placement)
        text = render_runner_stats(stats)
        assert "-- runner stats" in text
        assert "ensemble: agree=1  partial=0  conflict=0" in text
        assert "agreement-rate=1.00" in text
