"""Tests for the two command-line entry points."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as figures_main


class TestTopLevelCli:
    def test_topology_command_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "topo.json"
        code = repro_main(
            [
                "topology",
                "--seed",
                "5",
                "--tier2",
                "3",
                "--stubs",
                "8",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["format"] == "repro-topology-v1"
        assert len(data["ases"]) == 14  # 3 cores + 3 tier-2 + 8 stubs
        assert "wrote" in capsys.readouterr().out

    def test_diagnose_command_reports_scores(self, capsys):
        code = repro_main(
            [
                "diagnose",
                "--kind",
                "link-1",
                "--sensors",
                "6",
                "--seed",
                "2",
                "--topo-seed",
                "200",
                "--algorithms",
                "tomo",
                "nd-edge",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ground truth:" in out
        assert "nd-edge" in out and "sensitivity=" in out

    def test_diagnose_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            repro_main(["diagnose", "--kind", "meteor"])


class TestFiguresCli:
    def test_single_figure_renders(self, capsys):
        code = figures_main(
            ["--figure", "5", "--placements", "1", "--failures", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "regenerated" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            figures_main(["--figure", "99"])


class TestReplayCli:
    def test_save_and_replay_roundtrip(self, tmp_path, capsys):
        archive = tmp_path / "case.json"
        code = repro_main(
            [
                "diagnose",
                "--kind",
                "link-1",
                "--sensors",
                "6",
                "--seed",
                "4",
                "--topo-seed",
                "210",
                "--save-scenario",
                str(archive),
            ]
        )
        assert code == 0
        assert archive.exists()
        capsys.readouterr()
        code = repro_main(["replay", str(archive), "--algorithms", "nd-edge"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replaying:" in out
        assert "true-positives=" in out
        # The true link is marked in the replayed hypothesis listing.
        assert "**" in out

    def test_replay_rejects_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "not-a-scenario"}')
        assert repro_main(["replay", str(bogus)]) == 2


class TestFiguresJsonExport:
    def test_json_out_writes_series_file(self, tmp_path, capsys):
        import json

        code = figures_main(
            [
                "--figure",
                "5",
                "--placements",
                "1",
                "--failures",
                "2",
                "--json-out",
                str(tmp_path),
            ]
        )
        assert code == 0
        data = json.loads((tmp_path / "fig5.json").read_text())
        assert data["figure_id"] == "fig5"
        assert data["series"]
        assert all("points" in s for s in data["series"])


class TestCorruptionCli:
    def test_corrupt_sweep_defaults_to_quarantine(self, capsys):
        code = repro_main(
            [
                "degradation",
                "--corrupt",
                "--rates",
                "0.2",
                "--placements",
                "1",
                "--failures",
                "2",
                "--sensors",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "corruption rate (validation=quarantine)" in out
        assert "corruption: hops forged=" in out
        assert "validation: violations=" in out

    def test_validation_flag_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            repro_main(["degradation", "--validation", "lenient"])


class TestTypedErrorsExitCleanly:
    """Both entry points catch the typed pipeline errors: one line on
    stderr, exit code 2, no traceback."""

    @pytest.mark.parametrize(
        "error_type", ["TopologyError", "ControlPlaneFeedError", "ValidationError"]
    )
    def test_top_level_cli(self, error_type, monkeypatch, capsys):
        import repro.__main__ as cli
        from repro import errors

        if error_type == "ValidationError":
            error = errors.ValidationError("trace-loop", "probe a->b [post]")
        else:
            error = getattr(errors, error_type)("injected for the test")

        def explode(args):
            raise error

        monkeypatch.setattr(cli, "_cmd_topology", explode)
        code = cli.main(["topology"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1

    def test_figures_cli(self, monkeypatch, capsys):
        from repro import errors
        from repro.experiments.figures import FIGURES

        def explode(config):
            raise errors.ValidationError("feed-order", "igp message #3")

        monkeypatch.setitem(FIGURES, "5", explode)
        code = figures_main(["--figure", "5"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error: " in captured.err
        assert "feed-order" in captured.err

    def test_strict_validation_error_is_one_line(self, monkeypatch, capsys):
        """The rendered message names invariant and record, on one line."""
        from repro import errors

        error = errors.ValidationError(
            "trace-epoch", "probe 10.0.0.1->10.0.9.9 [post]", "stale tag"
        )
        assert "trace-epoch" in str(error)
        assert "\n" not in str(error)
