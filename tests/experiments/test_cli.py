"""Tests for the two command-line entry points."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as figures_main


class TestTopLevelCli:
    def test_topology_command_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "topo.json"
        code = repro_main(
            [
                "topology",
                "--seed",
                "5",
                "--tier2",
                "3",
                "--stubs",
                "8",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["format"] == "repro-topology-v1"
        assert len(data["ases"]) == 14  # 3 cores + 3 tier-2 + 8 stubs
        assert "wrote" in capsys.readouterr().out

    def test_diagnose_command_reports_scores(self, capsys):
        code = repro_main(
            [
                "diagnose",
                "--kind",
                "link-1",
                "--sensors",
                "6",
                "--seed",
                "2",
                "--topo-seed",
                "200",
                "--algorithms",
                "tomo",
                "nd-edge",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ground truth:" in out
        assert "nd-edge" in out and "sensitivity=" in out

    def test_diagnose_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            repro_main(["diagnose", "--kind", "meteor"])


class TestFiguresCli:
    def test_single_figure_renders(self, capsys):
        code = figures_main(
            ["--figure", "5", "--placements", "1", "--failures", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "regenerated" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            figures_main(["--figure", "99"])


class TestReplayCli:
    def test_save_and_replay_roundtrip(self, tmp_path, capsys):
        archive = tmp_path / "case.json"
        code = repro_main(
            [
                "diagnose",
                "--kind",
                "link-1",
                "--sensors",
                "6",
                "--seed",
                "4",
                "--topo-seed",
                "210",
                "--save-scenario",
                str(archive),
            ]
        )
        assert code == 0
        assert archive.exists()
        capsys.readouterr()
        code = repro_main(["replay", str(archive), "--algorithms", "nd-edge"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replaying:" in out
        assert "true-positives=" in out
        # The true link is marked in the replayed hypothesis listing.
        assert "**" in out

    def test_replay_rejects_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "not-a-scenario"}')
        assert repro_main(["replay", str(bogus)]) == 2


class TestFiguresJsonExport:
    def test_json_out_writes_series_file(self, tmp_path, capsys):
        import json

        code = figures_main(
            [
                "--figure",
                "5",
                "--placements",
                "1",
                "--failures",
                "2",
                "--json-out",
                str(tmp_path),
            ]
        )
        assert code == 0
        data = json.loads((tmp_path / "fig5.json").read_text())
        assert data["figure_id"] == "fig5"
        assert data["series"]
        assert all("points" in s for s in data["series"])
