"""Empathy-event mining over synthetic trace deltas."""

from repro.core.linkspace import UhNode, ip_link
from repro.empathy.delta import KIND_FAILED, KIND_REROUTED, TraceDelta
from repro.empathy.mining import EmpathyEvent, mine_events

L1 = ip_link("10.0.0.1", "10.0.0.2")
L2 = ip_link("10.0.0.3", "10.0.0.4")
L3 = ip_link("10.0.0.5", "10.0.0.6")


def delta(pair, lost, kind=KIND_FAILED, gained=frozenset()):
    return TraceDelta(
        pair=pair,
        kind=kind,
        lost=frozenset(lost),
        gained=frozenset(gained),
        divergence_index=1,
    )


class TestMineEvents:
    def test_shared_identified_link_merges_into_one_event(self):
        events = mine_events(
            [delta(("a", "x"), {L1, L2}), delta(("b", "y"), {L1, L3})]
        )
        assert len(events) == 1
        assert events[0].pairs == (("a", "x"), ("b", "y"))
        # Localized to the shared segment: the common lost link.
        assert events[0].segment == frozenset({L1})
        assert events[0].failures == 2
        assert events[0].support == 2

    def test_disjoint_lost_sets_stay_separate_events(self):
        events = mine_events(
            [delta(("a", "x"), {L1}), delta(("b", "y"), {L2})]
        )
        assert len(events) == 2
        assert [e.segment for e in events] == [frozenset({L1}), frozenset({L2})]

    def test_unidentified_links_cannot_witness_empathy(self):
        """A UH link belongs to one trace by construction; even a forged
        shared instance must not glue two deltas into one event."""
        uh = ip_link("10.0.0.1", UhNode("a", "x", "post", 2))
        events = mine_events(
            [delta(("a", "x"), {uh}), delta(("b", "y"), {uh})]
        )
        assert len(events) == 2
        # Singleton events fall back to their own lost set.
        assert all(e.segment == frozenset({uh}) for e in events)

    def test_chained_cluster_is_peeled_into_two_events(self):
        """A~B via L1 and B~C via L2 with empty triple intersection: the
        greedy peel anchors on the widest-support link (sort_key breaks
        the tie towards L1) and re-mines the remainder."""
        events = mine_events(
            [
                delta(("a", "x"), {L1}),
                delta(("b", "y"), {L1, L2}),
                delta(("c", "z"), {L2}),
            ]
        )
        assert len(events) == 2
        by_pairs = {e.pairs: e.segment for e in events}
        assert by_pairs[(("a", "x"), ("b", "y"))] == frozenset({L1})
        assert by_pairs[(("c", "z"),)] == frozenset({L2})

    def test_reroute_members_counted_separately_from_failures(self):
        events = mine_events(
            [
                delta(("a", "x"), {L1}),
                delta(("b", "y"), {L1}, kind=KIND_REROUTED),
            ]
        )
        assert len(events) == 1
        assert events[0].failures == 1
        assert events[0].support == 2

    def test_empty_lost_deltas_are_ignored(self):
        events = mine_events(
            [
                delta(("a", "x"), set(), kind=KIND_REROUTED, gained={L1}),
                delta(("b", "y"), {L2}),
            ]
        )
        assert len(events) == 1
        assert events[0].pairs == (("b", "y"),)

    def test_deterministic_order_regardless_of_input_order(self):
        forward = [delta(("a", "x"), {L1}), delta(("b", "y"), {L2})]
        assert mine_events(forward) == mine_events(list(reversed(forward)))

    def test_no_deltas_no_events(self):
        assert mine_events([]) == ()

    def test_event_is_hashable_value_object(self):
        event = EmpathyEvent(pairs=(("a", "x"),), segment=frozenset({L1}), failures=1)
        assert event in {event}
