"""CLI coverage for ``python -m repro crossval`` and the EmpathyError
exit-code contract on both entry points."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as figures_main

CROSSVAL_FAST = [
    "crossval",
    "--placements",
    "1",
    "--failures",
    "2",
    "--kinds",
    "link-1",
]


class TestCrossvalCli:
    def test_renders_metrics_and_agreement_matrix(self, capsys):
        assert repro_main(CROSSVAL_FAST) == 0
        out = capsys.readouterr().out
        assert "crossval: per-kind diagnoser metrics" in out
        assert "agreement matrix (ensemble verdicts)" in out
        assert "nd-edge|empathy:" in out

    def test_single_diagnoser_exits_2(self, capsys):
        code = repro_main(CROSSVAL_FAST + ["--diagnosers", "nd-edge"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "at least two diagnosers" in err

    def test_nd_lg_is_not_a_crossval_choice(self):
        with pytest.raises(SystemExit):
            repro_main(CROSSVAL_FAST + ["--diagnosers", "nd-edge", "nd-lg"])

    def test_diagnose_accepts_registry_names(self, capsys):
        code = repro_main(
            ["diagnose", "--kind", "link-1", "--algorithms", "empathy", "scfs"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "empathy" in out
        assert "scfs" in out


class TestEmpathyErrorExitCode:
    def test_top_level_cli_exits_2(self, monkeypatch, capsys):
        import repro.__main__ as cli
        from repro.errors import EmpathyError

        def explode(args):
            raise EmpathyError("injected for the test")

        monkeypatch.setattr(cli, "_cmd_crossval", explode)
        code = cli.main(["crossval"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1

    def test_figures_cli_exits_2(self, monkeypatch, capsys):
        from repro.errors import EmpathyError
        from repro.experiments.figures import FIGURES

        def explode(config):
            raise EmpathyError("ensemble misconfigured")

        monkeypatch.setitem(FIGURES, "5", explode)
        code = figures_main(["--figure", "5"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error: ensemble misconfigured" in captured.err
