"""EmpathyDiagnoser end-to-end plus the Diagnoser protocol contract."""

import pickle

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.core.protocol import Diagnoser
from repro.empathy import EmpathyDiagnoser
from repro.errors import DiagnosisError


@pytest.fixture
def b1b2_snapshot(fig2, fig2_sim, nominal):
    from repro.measurement.collector import take_snapshot
    from repro.measurement.sensors import deploy_sensors
    from repro.netsim.events import LinkFailureEvent

    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    lid = fig2.link_between("b1", "b2").lid
    after = fig2_sim.apply(LinkFailureEvent((lid,)))
    return take_snapshot(fig2_sim, sensors, nominal, after)


class TestDiagnoserProtocol:
    @pytest.mark.parametrize(
        "instance",
        [
            EmpathyDiagnoser(),
            NetDiagnoser("nd-edge"),
            NetDiagnoser("scfs"),
            NetDiagnoser("tomo"),
        ],
        ids=lambda d: getattr(d, "variant", "?"),
    )
    def test_engines_satisfy_the_protocol(self, instance):
        assert isinstance(instance, Diagnoser)
        assert isinstance(instance.variant, str)
        assert isinstance(instance.poolable, bool)

    def test_ensemble_satisfies_the_protocol(self):
        from repro.empathy import EnsembleDiagnoser

        assert isinstance(EnsembleDiagnoser(), Diagnoser)

    def test_non_diagnoser_rejected(self):
        assert not isinstance(object(), Diagnoser)


class TestEmpathyDiagnoser:
    def test_variant_and_poolability(self):
        engine = EmpathyDiagnoser()
        assert engine.variant == "empathy"
        assert engine.poolable

    def test_requires_a_failure(self, fig2, fig2_sim, nominal):
        from repro.measurement.collector import take_snapshot
        from repro.measurement.sensors import deploy_sensors

        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2")]
        )
        quiet = take_snapshot(fig2_sim, sensors, nominal, nominal)
        with pytest.raises(DiagnosisError):
            EmpathyDiagnoser().diagnose(quiet)

    def test_localizes_the_failed_link(self, fig2, b1b2_snapshot):
        from repro.core.linkspace import physical_link

        link = fig2.link_between("b1", "b2")
        broken = physical_link(
            fig2.net.router(link.a).address, fig2.net.router(link.b).address
        )
        result = EmpathyDiagnoser().diagnose(b1b2_snapshot)
        assert result.algorithm == "empathy"
        assert broken in result.physical_hypothesis()
        assert result.fully_explained

    def test_working_paths_prune_the_segment(self, b1b2_snapshot):
        """Links seen alive on T+ working paths never survive into the
        hypothesis — the empathy twin of tomo's exoneration rule."""
        result = EmpathyDiagnoser().diagnose(b1b2_snapshot)
        alive = {
            link
            for pair in b1b2_snapshot.working_pairs()
            for link in b1b2_snapshot.after.get(pair).links()
        }
        assert not (set(result.hypothesis) & alive)
        assert not (set(result.hypothesis) & set(result.excluded))

    def test_details_carry_per_event_attribution(self, b1b2_snapshot):
        result = EmpathyDiagnoser().diagnose(b1b2_snapshot)
        empathy = result.details["empathy"]
        assert empathy["events"] >= 1
        assert empathy["failed_traces"] >= 1
        events = result.details["empathy_events"]
        assert len(events) == empathy["events"]
        for event in events:
            assert event["pairs"]
            assert event["segment_size"] == len(event["segment"])
            assert all("->" in pair for pair in event["pairs"])

    def test_picklable_for_worker_pools(self, b1b2_snapshot):
        engine = pickle.loads(pickle.dumps(EmpathyDiagnoser()))
        direct = EmpathyDiagnoser().diagnose(b1b2_snapshot)
        assert engine.diagnose(b1b2_snapshot).hypothesis == direct.hypothesis

    def test_diagnosis_is_deterministic(self, b1b2_snapshot):
        first = EmpathyDiagnoser().diagnose(b1b2_snapshot)
        second = EmpathyDiagnoser().diagnose(b1b2_snapshot)
        assert first.hypothesis == second.hypothesis
        assert first.excluded == second.excluded
        assert first.details == second.details
