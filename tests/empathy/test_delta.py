"""Per-pair trace deltas on the paper's Figure 2 network."""

import pytest

from repro.empathy.delta import KIND_FAILED, KIND_REROUTED, TraceDelta, compute_deltas


@pytest.fixture
def b1b2_snapshot(fig2, fig2_sim, nominal):
    """Snapshot of the b1-b2 link failure with all three sensors."""
    from repro.measurement.collector import take_snapshot
    from repro.measurement.sensors import deploy_sensors
    from repro.netsim.events import LinkFailureEvent

    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    lid = fig2.link_between("b1", "b2").lid
    after = fig2_sim.apply(LinkFailureEvent((lid,)))
    return take_snapshot(fig2_sim, sensors, nominal, after)


class TestComputeDeltas:
    def test_every_changed_pair_gets_exactly_one_delta(self, b1b2_snapshot):
        deltas = compute_deltas(b1b2_snapshot)
        changed = set(b1b2_snapshot.failed_pairs()) | set(
            b1b2_snapshot.rerouted_pairs()
        )
        assert {d.pair for d in deltas} == changed
        assert len(deltas) == len(changed)

    def test_kinds_follow_snapshot_classification(self, b1b2_snapshot):
        failed = set(b1b2_snapshot.failed_pairs())
        for delta in compute_deltas(b1b2_snapshot):
            expected = KIND_FAILED if delta.pair in failed else KIND_REROUTED
            assert delta.kind == expected

    def test_failed_pair_lost_suffix_contains_the_failed_link(
        self, fig2, b1b2_snapshot
    ):
        """The lost set of every failed pair must contain the broken
        physical link — the localization guarantee the miner builds on."""
        from repro.core.linkspace import physical_link

        link = fig2.link_between("b1", "b2")
        broken = physical_link(
            fig2.net.router(link.a).address, fig2.net.router(link.b).address
        )
        failed = [
            d for d in compute_deltas(b1b2_snapshot) if d.kind == KIND_FAILED
        ]
        assert failed  # b1-b2 cuts at least one pair in Figure 2
        for delta in failed:
            physical = {
                l.physical() for l in delta.lost if l.identified
            }
            assert broken in physical

    def test_divergence_index_at_least_one(self, b1b2_snapshot):
        # Both traces start at the source sensor, so the common prefix is
        # never empty.
        for delta in compute_deltas(b1b2_snapshot):
            assert delta.divergence_index >= 1

    def test_deltas_are_in_pair_order_and_frozen(self, b1b2_snapshot):
        deltas = compute_deltas(b1b2_snapshot)
        assert [d.pair for d in deltas] == sorted(d.pair for d in deltas)
        with pytest.raises(AttributeError):
            deltas[0].kind = "other"

    def test_changed_property(self):
        from repro.core.linkspace import ip_link

        l = ip_link("10.0.0.1", "10.0.0.2")
        assert TraceDelta(("a", "b"), KIND_FAILED, frozenset({l}), frozenset(), 1).changed
        assert not TraceDelta(("a", "b"), KIND_REROUTED, frozenset(), frozenset(), 1).changed

    def test_quiet_snapshot_yields_no_deltas(self, fig2, fig2_sim, nominal):
        from repro.measurement.collector import take_snapshot
        from repro.measurement.sensors import deploy_sensors

        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2")]
        )
        snapshot = take_snapshot(fig2_sim, sensors, nominal, nominal)
        assert compute_deltas(snapshot) == ()
