"""Ensemble verdict grading, the disagreement tally, and the registry."""

import pickle

import pytest

from repro.core.linkspace import physical_link
from repro.empathy import (
    VERDICT_AGREE,
    VERDICT_CONFLICT,
    VERDICT_PARTIAL,
    VERDICTS,
    EnsembleDiagnoser,
    EnsembleDisagreement,
    compare_hypotheses,
)
from repro.errors import DiagnosisError, EmpathyError

PL1 = physical_link("10.0.0.1", "10.0.0.2")
PL2 = physical_link("10.0.0.3", "10.0.0.4")
PL3 = physical_link("10.0.0.5", "10.0.0.6")


@pytest.fixture
def b1b2_snapshot(fig2, fig2_sim, nominal):
    from repro.measurement.collector import take_snapshot
    from repro.measurement.sensors import deploy_sensors
    from repro.netsim.events import LinkFailureEvent

    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    lid = fig2.link_between("b1", "b2").lid
    after = fig2_sim.apply(LinkFailureEvent((lid,)))
    return take_snapshot(fig2_sim, sensors, nominal, after)


class TestCompareHypotheses:
    def test_identical_sets_agree(self):
        assert compare_hypotheses(frozenset({PL1}), frozenset({PL1})) == VERDICT_AGREE

    def test_both_empty_agree(self):
        assert compare_hypotheses(frozenset(), frozenset()) == VERDICT_AGREE

    def test_overlap_is_partial(self):
        assert (
            compare_hypotheses(frozenset({PL1, PL2}), frozenset({PL1, PL3}))
            == VERDICT_PARTIAL
        )

    def test_disjoint_is_conflict(self):
        assert compare_hypotheses(frozenset({PL1}), frozenset({PL2})) == VERDICT_CONFLICT

    def test_one_empty_is_conflict(self):
        assert compare_hypotheses(frozenset(), frozenset({PL1})) == VERDICT_CONFLICT


class TestEnsembleDisagreement:
    def test_record_and_rate(self):
        tally = EnsembleDisagreement()
        for verdict in ("agree", "agree", "partial", "conflict"):
            tally.record(verdict)
        assert tally.total == 4
        assert tally.agreement_rate() == pytest.approx(0.75)
        assert tally.as_dict() == {"agree": 2, "partial": 1, "conflict": 1}

    def test_empty_tally_rate_is_one(self):
        assert EnsembleDisagreement().agreement_rate() == 1.0

    def test_merge_sums_counters(self):
        a = EnsembleDisagreement(agree=1, partial=2)
        b = EnsembleDisagreement(conflict=3)
        a.merge(b)
        assert a.as_dict() == {"agree": 1, "partial": 2, "conflict": 3}

    def test_unknown_verdict_raises_typed_error(self):
        with pytest.raises(EmpathyError):
            EnsembleDisagreement().record("shrug")

    def test_verdicts_ordered_best_to_worst(self):
        assert VERDICTS == ("agree", "partial", "conflict")


class TestEnsembleDiagnoser:
    def test_fewer_than_two_members_rejected(self):
        from repro.empathy import EmpathyDiagnoser

        with pytest.raises(EmpathyError):
            EnsembleDiagnoser({"solo": EmpathyDiagnoser()})
        with pytest.raises(EmpathyError):
            EnsembleDiagnoser({})

    def test_default_members_and_poolability(self):
        ensemble = EnsembleDiagnoser()
        assert ensemble.variant == "ensemble"
        assert set(ensemble.members) == {"nd-edge", "empathy"}
        assert ensemble.poolable

    def test_nd_lg_member_blocks_pooling(self):
        from repro.core.diagnoser import NetDiagnoser

        ensemble = EnsembleDiagnoser(
            {"nd-edge": NetDiagnoser("nd-edge"), "nd-lg": NetDiagnoser("nd-lg")}
        )
        assert not ensemble.poolable

    def test_requires_a_failure(self, fig2, fig2_sim, nominal):
        from repro.measurement.collector import take_snapshot
        from repro.measurement.sensors import deploy_sensors

        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2")]
        )
        quiet = take_snapshot(fig2_sim, sensors, nominal, nominal)
        with pytest.raises(DiagnosisError):
            EnsembleDiagnoser().diagnose(quiet)

    def test_verdict_and_attribution_in_details(self, b1b2_snapshot):
        result = EnsembleDiagnoser().diagnose(b1b2_snapshot)
        ensemble = result.details["ensemble"]
        assert result.algorithm == "ensemble"
        assert ensemble["verdict"] in VERDICTS
        assert list(ensemble["pairwise"]) == ["nd-edge|empathy"]
        assert ensemble["pairwise"]["nd-edge|empathy"] == ensemble["verdict"]
        assert set(ensemble["members"]) == {"nd-edge", "empathy"}
        assert ensemble["errors"] == {}

    def test_hypothesis_is_the_member_union(self, b1b2_snapshot):
        from repro.core.diagnoser import NetDiagnoser
        from repro.empathy import EmpathyDiagnoser

        result = EnsembleDiagnoser().diagnose(b1b2_snapshot)
        nd = NetDiagnoser("nd-edge").diagnose(b1b2_snapshot)
        emp = EmpathyDiagnoser().diagnose(b1b2_snapshot)
        assert result.hypothesis == nd.hypothesis | emp.hypothesis

    def test_members_agree_on_figure2_single_failure(self, b1b2_snapshot):
        """Both families localize the b1-b2 cut — the verdict must at
        least overlap (no conflict on the textbook scenario)."""
        result = EnsembleDiagnoser().diagnose(b1b2_snapshot)
        assert result.details["ensemble"]["verdict"] != VERDICT_CONFLICT

    def test_failing_member_is_reported_not_fatal(self, b1b2_snapshot):
        from repro.empathy import EmpathyDiagnoser

        class Broken:
            variant = "broken"
            poolable = True

            def diagnose(self, snapshot, control=None, lg_lookup=None):
                raise DiagnosisError("boom")

        ensemble = EnsembleDiagnoser(
            {"empathy": EmpathyDiagnoser(), "broken": Broken()}
        )
        result = ensemble.diagnose(b1b2_snapshot)
        assert result.details["ensemble"]["errors"] == {"broken": "boom"}
        assert result.details["ensemble"]["verdict"] == VERDICT_AGREE  # solo

    def test_all_members_failing_raises(self, b1b2_snapshot):
        class Broken:
            variant = "broken"
            poolable = True

            def diagnose(self, snapshot, control=None, lg_lookup=None):
                raise DiagnosisError("boom")

        ensemble = EnsembleDiagnoser({"b1": Broken(), "b2": Broken()})
        with pytest.raises(DiagnosisError):
            ensemble.diagnose(b1b2_snapshot)

    def test_picklable_for_worker_pools(self, b1b2_snapshot):
        ensemble = pickle.loads(pickle.dumps(EnsembleDiagnoser()))
        direct = EnsembleDiagnoser().diagnose(b1b2_snapshot)
        revived = ensemble.diagnose(b1b2_snapshot)
        assert revived.hypothesis == direct.hypothesis
        assert revived.details == direct.details


class TestRegistry:
    def test_every_registered_name_constructs_a_diagnoser(self):
        from repro.core.protocol import Diagnoser
        from repro.diagnosers import DIAGNOSER_NAMES, make_diagnoser

        assert "scfs" in DIAGNOSER_NAMES
        assert "empathy" in DIAGNOSER_NAMES
        assert "ensemble" in DIAGNOSER_NAMES
        for name in DIAGNOSER_NAMES:
            engine = make_diagnoser(name)
            assert isinstance(engine, Diagnoser)
            assert engine.variant == name

    def test_unknown_name_raises_typed_error(self):
        from repro.diagnosers import make_diagnoser, make_diagnosers

        with pytest.raises(EmpathyError):
            make_diagnoser("quantum")
        with pytest.raises(EmpathyError):
            make_diagnosers(("nd-edge", "quantum"))

    def test_mapping_spec_forwards_options(self):
        from repro.diagnosers import make_diagnosers

        engines = make_diagnosers(
            {"nd-bgpigp": {"ignore_unidentified": True}, "empathy": None}
        )
        assert list(engines) == ["nd-bgpigp", "empathy"]
        assert engines["nd-bgpigp"].variant == "nd-bgpigp"
