"""The crossval experiment and the PR's acceptance thresholds.

The headline numbers asserted here are the issue's acceptance criteria:
on single-link failures over the research-165 population the empathy
engine must reach recall >= 0.9, and hitting-set vs empathy must agree
(at least overlap) on >= 0.8 of scenarios.
"""

import pytest

from repro.errors import EmpathyError
from repro.experiments.crossval import (
    CrossvalConfig,
    CrossvalResult,
    ScenarioOutcome,
    run_crossval,
)


@pytest.fixture(scope="module")
def default_sweep():
    """One full default sweep (research-165, 2 placements), shared."""
    return run_crossval(CrossvalConfig())


class TestAcceptance:
    def test_empathy_recall_on_single_link_failures(self, default_sweep):
        assert default_sweep.mean_recall("empathy", "link-1") >= 0.9

    def test_hitting_set_vs_empathy_agreement(self, default_sweep):
        assert default_sweep.agreement_rate("nd-edge", "empathy") >= 0.8

    def test_every_kind_produced_scenarios(self, default_sweep):
        for kind in default_sweep.config.kinds:
            assert default_sweep._select("empathy", kind)
            assert default_sweep._select("nd-edge", kind)

    def test_outcomes_cover_both_diagnosers_equally(self, default_sweep):
        per_label = {
            label: len(default_sweep._select(label))
            for label in default_sweep.config.diagnosers
        }
        assert len(set(per_label.values())) == 1
        assert default_sweep.scenarios_run > 0

    def test_costs_are_measured(self, default_sweep):
        assert default_sweep.mean_cost_ms("empathy") > 0.0
        assert default_sweep.mean_cost_ms("nd-edge") > 0.0


class TestCrossvalResult:
    def test_render_mentions_metrics_and_matrix(self, default_sweep):
        text = default_sweep.render()
        assert "crossval: per-kind diagnoser metrics" in text
        assert "agreement matrix" in text
        assert "nd-edge|empathy:" in text

    def test_agreement_rate_accepts_either_key_order(self, default_sweep):
        assert default_sweep.agreement_rate(
            "empathy", "nd-edge"
        ) == default_sweep.agreement_rate("nd-edge", "empathy")

    def test_unknown_pair_raises_typed_error(self):
        result = CrossvalResult(config=CrossvalConfig())
        with pytest.raises(EmpathyError):
            result.agreement_rate("nd-edge", "empathy")

    def test_means_of_empty_selection_are_zero(self):
        result = CrossvalResult(config=CrossvalConfig())
        assert result.mean_recall("empathy") == 0.0
        assert result.mean_precision("empathy") == 0.0

    def test_outcome_is_a_frozen_record(self):
        outcome = ScenarioOutcome("link-1", "empathy", 1.0, 1.0, 0.5, 2)
        with pytest.raises(AttributeError):
            outcome.recall = 0.0


class TestCrossvalValidation:
    def test_single_diagnoser_rejected(self):
        with pytest.raises(EmpathyError):
            run_crossval(CrossvalConfig(diagnosers=("nd-edge",)))

    def test_nd_lg_rejected(self):
        with pytest.raises(EmpathyError):
            run_crossval(CrossvalConfig(diagnosers=("nd-edge", "nd-lg")))

    def test_determinism_same_seed_same_outcomes(self, default_sweep):
        def scores(result):
            # cost_ms is wall-clock and legitimately varies run to run.
            return [
                (o.kind, o.label, o.precision, o.recall, o.hypothesis_size)
                for o in result.outcomes
            ]

        again = run_crossval(CrossvalConfig())
        assert scores(again) == scores(default_sweep)
        assert {
            key: tally.as_dict() for key, tally in again.matrix.items()
        } == {
            key: tally.as_dict() for key, tally in default_sweep.matrix.items()
        }
