"""Property-based tests on data structures: tokens, paths, graphs, SCFS."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import InferredGraph
from repro.core.linkspace import (
    UhNode,
    ip_link,
    physical_link,
    sort_key,
    undirected_projection,
)
from repro.core.pathset import ProbePath
from repro.core.scfs import scfs

addresses = st.integers(1, 250).map(lambda i: f"10.0.0.{i}")


@given(a=addresses, b=addresses)
def test_physical_link_is_order_insensitive(a, b):
    assert physical_link(a, b) == physical_link(b, a)


@given(a=addresses, b=addresses)
def test_directed_tokens_project_to_one_physical(a, b):
    forward, backward = ip_link(a, b), ip_link(b, a)
    assert undirected_projection([forward, backward]) == frozenset(
        {physical_link(a, b)}
    )


@given(hops=st.lists(addresses, min_size=2, max_size=8, unique=True))
def test_probe_path_links_reconstruct_hops(hops):
    path = ProbePath(src=hops[0], dst=hops[-1], hops=tuple(hops), reached=True)
    links = path.links()
    assert len(links) == len(hops) - 1
    rebuilt = [links[0].src] + [link.dst for link in links]
    assert rebuilt == list(hops)


@given(
    paths=st.lists(
        st.lists(addresses, min_size=2, max_size=6, unique=True),
        min_size=1,
        max_size=6,
    )
)
def test_inferred_graph_traversals_partition_tokens(paths):
    probe_paths = []
    for index, hops in enumerate(paths):
        probe_paths.append(
            ProbePath(
                src=hops[0],
                dst=hops[-1],
                hops=tuple(hops),
                reached=True,
            )
        )
    # Pairs must be unique per store semantics; the graph itself accepts
    # duplicates, merging their traversals.
    graph = InferredGraph()
    for index, path in enumerate(probe_paths):
        graph.add_path((path.src, f"probe-{index}"), path.links())
    for token in graph.tokens():
        assert graph.traversed_by(token)
    # Token ordering is a total order.
    keys = [sort_key(t) for t in graph.tokens()]
    assert keys == sorted(keys)


@st.composite
def random_tree(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    parent = {}
    for node in range(1, n):
        parent[node] = draw(st.integers(min_value=0, max_value=node - 1))
    leaves = [n for n in range(1, len(parent) + 1) if n not in parent.values()]
    if 0 not in parent.values():
        leaves.append(0)  # degenerate: root with no children handled below
    status = {leaf: draw(st.booleans()) for leaf in leaves if leaf != 0}
    return parent, status


@given(data=random_tree())
@settings(max_examples=80)
def test_scfs_blames_iff_bad_leaves_exist(data):
    parent, status = data
    if not status:
        return
    blamed = scfs(parent, 0, status)
    if all(status.values()):
        assert blamed == frozenset()
    else:
        assert blamed
    # Every blamed edge exists in the tree and points away from the root.
    for par, child in blamed:
        assert parent.get(child) == par


@given(
    src=addresses,
    dst=addresses,
    epoch=st.sampled_from(["pre", "post"]),
    index=st.integers(0, 30),
)
def test_uh_nodes_identity(src, dst, epoch, index):
    a = UhNode(src, dst, epoch, index)
    b = UhNode(src, dst, epoch, index)
    assert a == b and hash(a) == hash(b)
    other = UhNode(src, dst, "post" if epoch == "pre" else "pre", index)
    assert a != other
