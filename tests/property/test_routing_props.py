"""Property-based tests on the routing substrate over random topologies.

Random small internetworks (a provider core plus customer trees with
random multihoming) are generated from hypothesis-drawn seeds; the
properties assert the invariants every converged state must satisfy:
loop-free AS paths, valley-freeness, data-plane/control-plane agreement,
and monotonicity of failures.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.bgp import BgpEngine
from repro.netsim.forwarding import data_path
from repro.netsim.topology import (
    Internetwork,
    NetworkState,
    Relationship,
    Tier,
)


def random_internetwork(seed: int):
    """A small random hierarchy: 2 peering cores, a few customer ASes."""
    rng = random.Random(seed)
    net = Internetwork()
    net.add_as(1, "core1", Tier.CORE)
    net.add_as(2, "core2", Tier.CORE)
    cores = {
        1: [net.add_router(1).rid for _ in range(2)],
        2: [net.add_router(2).rid for _ in range(2)],
    }
    for asn, routers in cores.items():
        net.add_link(routers[0], routers[1])
    net.set_relationship(1, 2, Relationship.PEER)
    net.add_link(cores[1][0], cores[2][0])
    edge_asns = []
    for index in range(rng.randint(2, 5)):
        asn = 10 + index
        net.add_as(asn, f"edge{index}", Tier.STUB)
        router = net.add_router(asn).rid
        providers = rng.sample([1, 2], rng.randint(1, 2))
        for provider in providers:
            net.set_relationship(asn, provider, Relationship.CUSTOMER_PROVIDER)
            net.add_link(router, rng.choice(cores[provider]))
        edge_asns.append(asn)
    return net, edge_asns


def relationship_sequence(net, as_path):
    return [
        net.relationship(a, b) for a, b in zip(as_path, as_path[1:])
    ]


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_converged_paths_are_loop_free_and_valley_free(seed):
    net, edges = random_internetwork(seed)
    engine = BgpEngine.for_sensor_ases(net, edges)
    routing = engine.converge(NetworkState.nominal())
    for prefix in routing.prefixes:
        for autsys in net.ases():
            path = routing.as_path(autsys.asn, prefix)
            if path is None:
                continue
            assert len(path) == len(set(path)), "AS-path loop"
            rels = relationship_sequence(net, path)
            # Valley-free: once the path goes down (provider->customer) or
            # sideways (peer), it may never go up or sideways again.
            descended = False
            for rel in rels:
                if descended:
                    assert rel is Relationship.PROVIDER_CUSTOMER
                if rel in (Relationship.PROVIDER_CUSTOMER, Relationship.PEER):
                    descended = True


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_data_plane_agrees_with_control_plane(seed):
    """If the source AS holds a route and no element is failed, the walk
    reaches the destination and visits exactly the route's AS path."""
    net, edges = random_internetwork(seed)
    engine = BgpEngine.for_sensor_ases(net, edges)
    state = NetworkState.nominal()
    routing = engine.converge(state)
    dst_asn = edges[0]
    prefix = net.autonomous_system(dst_asn).prefix
    dst_router = net.autonomous_system(dst_asn).router_ids[0]
    for autsys in net.ases():
        src_router = autsys.router_ids[0]
        expected = routing.as_path(autsys.asn, prefix)
        outcome = data_path(net, routing, state, src_router, dst_router)
        assert outcome.reached
        visited = []
        for rid in outcome.router_path:
            asn = net.asn_of_router(rid)
            if not visited or visited[-1] != asn:
                visited.append(asn)
        assert tuple(visited) == expected


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    kill=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_failures_only_shrink_reachability(seed, kill):
    """Removing links can never create new routes."""
    net, edges = random_internetwork(seed)
    engine = BgpEngine.for_sensor_ases(net, edges)
    nominal = engine.converge(NetworkState.nominal())
    links = [l.lid for l in net.links()]
    rng = random.Random(seed + 1)
    dead = rng.sample(links, min(kill, len(links)))
    failed = engine.converge(NetworkState.nominal().with_failed_links(dead))
    for prefix in nominal.prefixes:
        assert failed.reachable_ases(prefix) <= nominal.reachable_ases(prefix)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_convergence_is_deterministic(seed):
    net_a, edges_a = random_internetwork(seed)
    net_b, edges_b = random_internetwork(seed)
    state = NetworkState.nominal()
    routing_a = BgpEngine.for_sensor_ases(net_a, edges_a).converge(state)
    routing_b = BgpEngine.for_sensor_ases(net_b, edges_b).converge(state)
    for prefix in routing_a.prefixes:
        for autsys in net_a.ases():
            assert routing_a.as_path(autsys.asn, prefix) == routing_b.as_path(
                autsys.asn, prefix
            )
