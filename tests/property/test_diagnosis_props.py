"""Property-based tests on diagnosis invariants over random scenarios.

Random failures are injected into the Figure 2 world and a seeded chain;
the properties assert what must hold for *any* admitted scenario: no
false negatives for ND-edge on single failures, no blamed link on a
working path, metric bounds, and projection consistency.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.diagnoser import NetDiagnoser
from repro.core.linkspace import undirected_projection
from repro.core.metrics import sensitivity, specificity
from repro.measurement.collector import take_snapshot
from repro.measurement.sensors import deploy_sensors
from repro.netsim.builders import figure2_network
from repro.netsim.events import LinkFailureEvent
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState


def fig2_world():
    fig = figure2_network()
    sim = Simulator(fig.net, [fig.asn("A"), fig.asn("B"), fig.asn("C")])
    sensors = deploy_sensors(
        fig.net, [fig.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    return fig, sim, sensors


FIG, SIM, SENSORS = fig2_world()
ALL_LINKS = [l.lid for l in FIG.net.links()]


@given(
    lids=st.sets(st.sampled_from(ALL_LINKS), min_size=1, max_size=2),
    variant=st.sampled_from(["tomo", "nd-edge"]),
)
@settings(max_examples=60, deadline=None)
def test_hypothesis_disjoint_from_exclusions_and_bounded(lids, variant):
    after = SIM.apply(LinkFailureEvent(tuple(sorted(lids))))
    snap = take_snapshot(SIM, SENSORS, NetworkState.nominal(), after)
    assume(snap.any_failure())
    result = NetDiagnoser(variant).diagnose(snap)
    assert not result.hypothesis & result.excluded
    assert result.physical_hypothesis() <= result.physical_universe()


@given(lid=st.sampled_from(ALL_LINKS))
@settings(max_examples=30, deadline=None)
def test_nd_edge_single_failure_no_false_negative(lid):
    after = SIM.apply(LinkFailureEvent((lid,)))
    snap = take_snapshot(SIM, SENSORS, NetworkState.nominal(), after)
    assume(snap.any_failure())
    link = FIG.net.link(lid)
    from repro.core.linkspace import physical_link

    truth = physical_link(
        FIG.net.router(link.a).address, FIG.net.router(link.b).address
    )
    result = NetDiagnoser("nd-edge").diagnose(snap)
    assert truth in result.physical_hypothesis()


@given(
    truth=st.sets(st.integers(0, 30), min_size=1, max_size=5),
    hypothesis=st.sets(st.integers(0, 30), max_size=10),
    extra=st.sets(st.integers(0, 30), max_size=20),
)
def test_metric_bounds_and_extremes(truth, hypothesis, extra):
    universe = frozenset(truth | hypothesis | extra)
    sens = sensitivity(frozenset(truth), frozenset(hypothesis))
    spec = specificity(universe, frozenset(truth), frozenset(hypothesis))
    assert 0.0 <= sens <= 1.0
    assert 0.0 <= spec <= 1.0
    if truth <= hypothesis:
        assert sens == 1.0
    if not hypothesis:
        assert spec == 1.0


@given(
    lids=st.sets(st.sampled_from(ALL_LINKS), min_size=1, max_size=2),
)
@settings(max_examples=30, deadline=None)
def test_undirected_projection_idempotent_on_results(lids):
    after = SIM.apply(LinkFailureEvent(tuple(sorted(lids))))
    snap = take_snapshot(SIM, SENSORS, NetworkState.nominal(), after)
    assume(snap.any_failure())
    result = NetDiagnoser("nd-edge").diagnose(snap)
    physical = result.physical_hypothesis()
    assert undirected_projection(result.hypothesis) == physical
    # Projection is a set-size contraction.
    assert len(physical) <= len(result.hypothesis)
