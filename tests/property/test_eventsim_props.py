"""Validation of the fixpoint BGP engine against the event-driven one.

For Gao-Rexford-compliant configurations the stable routing state is
unique, so the message-level simulation must land on exactly the state the
Gauss-Seidel fixpoint computes — for every topology, failure state, and
message-delay schedule.  This is the evidence that replacing C-BGP with a
fixpoint preserves the paper's observables.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.bgp import BgpEngine
from repro.netsim.bgp.eventsim import EventDrivenBgp
from repro.netsim.builders import figure2_network
from repro.netsim.topology import ExportFilter, NetworkState

from tests.property.test_routing_props import random_internetwork


def assert_same_state(net, reference, candidate):
    for prefix in reference.prefixes:
        for autsys in net.ases():
            assert candidate.as_path(autsys.asn, prefix) == reference.as_path(
                autsys.asn, prefix
            ), f"AS {autsys.asn} disagrees on {prefix}"
    for link in net.inter_links():
        for asn in net.link_asns(link.lid):
            assert candidate.advertised(link.lid, asn) == reference.advertised(
                link.lid, asn
            ), f"Adj-RIB-Out disagrees on link {link.lid} exporter {asn}"


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=25, deadline=None)
def test_eventsim_matches_fixpoint_on_random_topologies(seed):
    net, edges = random_internetwork(seed)
    prefixes = {net.autonomous_system(a).prefix: a for a in edges}
    state = NetworkState.nominal()
    fixpoint = BgpEngine(net, prefixes).converge(state)
    eventful = EventDrivenBgp(net, prefixes).converge(state)
    assert_same_state(net, fixpoint, eventful)


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    jitter_seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_eventsim_is_timing_independent(seed, jitter_seed):
    """Randomised message delays must not change the outcome (the
    Gao-Rexford safety property)."""
    net, edges = random_internetwork(seed)
    prefixes = {net.autonomous_system(a).prefix: a for a in edges}
    state = NetworkState.nominal()
    deterministic = EventDrivenBgp(net, prefixes).converge(state)
    jittered = EventDrivenBgp(
        net, prefixes, rng=random.Random(jitter_seed)
    ).converge(state)
    assert_same_state(net, deterministic, jittered)


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    kill=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_eventsim_matches_fixpoint_under_failures(seed, kill):
    net, edges = random_internetwork(seed)
    prefixes = {net.autonomous_system(a).prefix: a for a in edges}
    rng = random.Random(seed ^ 0xBEEF)
    links = [l.lid for l in net.links()]
    state = NetworkState.nominal().with_failed_links(
        rng.sample(links, min(kill, len(links)))
    )
    fixpoint = BgpEngine(net, prefixes).converge(state)
    eventful = EventDrivenBgp(net, prefixes).converge(state)
    assert_same_state(net, fixpoint, eventful)


class TestEventSimOnFigure2:
    @pytest.fixture
    def world(self):
        fig = figure2_network()
        prefixes = {
            fig.net.autonomous_system(fig.asn(name)).prefix: fig.asn(name)
            for name in ("A", "B", "C")
        }
        return fig, prefixes

    def test_matches_fixpoint_nominal(self, world):
        fig, prefixes = world
        state = NetworkState.nominal()
        fixpoint = BgpEngine(fig.net, prefixes).converge(state)
        eventful = EventDrivenBgp(fig.net, prefixes).converge(state)
        assert_same_state(fig.net, fixpoint, eventful)

    def test_matches_fixpoint_with_export_filter(self, world):
        fig, prefixes = world
        link = fig.link_between("x2", "y1")
        state = NetworkState.nominal().with_filter(
            ExportFilter(
                link_id=link.lid,
                at_router=fig.router("y1").rid,
                prefixes=frozenset(
                    {fig.net.autonomous_system(fig.asn("C")).prefix}
                ),
            )
        )
        fixpoint = BgpEngine(fig.net, prefixes).converge(state)
        eventful = EventDrivenBgp(fig.net, prefixes).converge(state)
        assert_same_state(fig.net, fixpoint, eventful)

    def test_message_log_is_populated_and_finite(self, world):
        fig, prefixes = world
        sim = EventDrivenBgp(fig.net, prefixes)
        sim.converge(NetworkState.nominal())
        assert sim.message_log
        # Announcements dominate; withdrawals never appear in a cold start.
        assert all(m.route is not None for m in sim.message_log)

    def test_withdrawals_appear_after_failure_restart(self, world):
        """Re-converging from scratch after a failure does not produce
        withdrawal messages (cold start); the *diff* semantics of
        messages.py models the incremental transition instead — this test
        documents that boundary."""
        fig, prefixes = world
        lid = fig.link_between("y4", "b1").lid
        sim = EventDrivenBgp(fig.net, prefixes)
        sim.converge(NetworkState.nominal().with_failed_links([lid]))
        assert all(m.route is not None for m in sim.message_log)
