"""Property-based tests for the logical-link expansion (§3.1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linkspace import (
    ORIGIN_TAG,
    UNKNOWN_TAG,
    IpLink,
    LogicalLink,
    undirected_projection,
)
from repro.core.logical import logicalize
from repro.core.pathset import ProbePath


@st.composite
def random_as_path_world(draw):
    """A random hop sequence with a consistent hop->AS mapping.

    Hops are grouped into runs of the same AS (as real paths are); the AS
    sequence never immediately repeats.
    """
    n_segments = draw(st.integers(min_value=1, max_value=5))
    asns = []
    previous = None
    for _ in range(n_segments):
        asn = draw(st.integers(min_value=1, max_value=9).filter(
            lambda a: a != previous
        ))
        asns.append(asn)
        previous = asn
    hops = []
    mapping = {}
    counter = [0]

    def fresh_address(asn):
        counter[0] += 1
        address = f"10.{asn}.0.{counter[0]}"
        mapping[address] = asn
        return address

    for asn in asns:
        run = draw(st.integers(min_value=1, max_value=3))
        for _ in range(run):
            hops.append(fresh_address(asn))
    return hops, mapping


@given(world=random_as_path_world())
@settings(max_examples=80)
def test_token_count_matches_hop_pairs(world):
    hops, mapping = world
    if len(hops) < 2:
        return
    path = ProbePath(src=hops[0], dst=hops[-1], hops=tuple(hops), reached=True)
    tokens = logicalize(path, mapping.get)
    assert len(tokens) == len(hops) - 1


@given(world=random_as_path_world())
@settings(max_examples=80)
def test_intradomain_pairs_stay_physical_interdomain_get_tagged(world):
    hops, mapping = world
    if len(hops) < 2:
        return
    path = ProbePath(src=hops[0], dst=hops[-1], hops=tuple(hops), reached=True)
    for token, (u, v) in zip(logicalize(path, mapping.get), zip(hops, hops[1:])):
        same_as = mapping[u] == mapping[v]
        if same_as:
            assert isinstance(token, IpLink)
            assert (token.src, token.dst) == (u, v)
        else:
            assert isinstance(token, LogicalLink)
            assert (token.src, token.dst) == (u, v)
            assert token.tag == ORIGIN_TAG or token.tag >= 1


@given(world=random_as_path_world())
@settings(max_examples=80)
def test_terminal_interdomain_token_is_origin_tagged(world):
    hops, mapping = world
    if len(hops) < 2:
        return
    path = ProbePath(src=hops[0], dst=hops[-1], hops=tuple(hops), reached=True)
    tokens = logicalize(path, mapping.get)
    logical = [t for t in tokens if isinstance(t, LogicalLink)]
    if logical:
        assert logical[-1].tag == ORIGIN_TAG  # the last AS change ends the path


@given(world=random_as_path_world())
@settings(max_examples=80)
def test_truncated_paths_never_claim_origin(world):
    hops, mapping = world
    if len(hops) < 2:
        return
    path = ProbePath(
        src=hops[0], dst="10.99.0.1", hops=tuple(hops), reached=False
    )
    tokens = logicalize(path, mapping.get)
    logical = [t for t in tokens if isinstance(t, LogicalLink)]
    if logical:
        # The trailing AS change's continuation was cut off: unknown.
        assert logical[-1].tag == UNKNOWN_TAG
        # Earlier AS changes observed their continuation: real tags.
        for token in logical[:-1]:
            assert token.tag != ORIGIN_TAG


@given(world=random_as_path_world())
@settings(max_examples=60)
def test_projection_is_consistent_with_raw_links(world):
    hops, mapping = world
    if len(hops) < 2:
        return
    path = ProbePath(src=hops[0], dst=hops[-1], hops=tuple(hops), reached=True)
    logical = undirected_projection(logicalize(path, mapping.get))
    physical = undirected_projection(path.links())
    assert logical == physical
