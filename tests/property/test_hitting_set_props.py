"""Property-based tests for the hitting-set solvers (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitsets import numpy_available
from repro.core.hitting_set import (
    _greedy_hitting_set_numpy,
    _greedy_hitting_set_python,
    clear_exact_cache,
    exact_hitting_set,
    greedy_hitting_set,
)
from repro.core.linkspace import ip_link

# A small universe of link tokens.
TOKENS = [ip_link(f"10.0.0.{i}", f"10.0.1.{i}") for i in range(12)]

token_sets = st.lists(
    st.sets(st.sampled_from(TOKENS), min_size=1, max_size=5),
    min_size=0,
    max_size=8,
)


@given(sets=token_sets)
def test_greedy_hits_every_set_when_feasible(sets):
    result = greedy_hitting_set(sets)
    # No exclusions: every set has candidates, so everything is explained.
    assert result.fully_explained
    for s in sets:
        assert s & result.hypothesis


@given(sets=token_sets, excluded=st.sets(st.sampled_from(TOKENS), max_size=6))
def test_greedy_never_selects_excluded_links(sets, excluded):
    result = greedy_hitting_set(sets, excluded=excluded)
    assert not (result.hypothesis - result.preseeded) & excluded
    # Sets whose candidates were all excluded are reported, not hidden.
    for unexplained in result.unexplained_failures:
        assert unexplained <= frozenset(excluded) | result.hypothesis
        assert not unexplained & result.hypothesis


@given(sets=token_sets)
def test_greedy_hypothesis_is_subset_of_candidates(sets):
    result = greedy_hitting_set(sets)
    universe = set().union(*sets) if sets else set()
    assert result.hypothesis <= universe


@given(sets=token_sets, preseed=st.sets(st.sampled_from(TOKENS), max_size=3))
def test_preseed_always_lands_in_hypothesis(sets, preseed):
    result = greedy_hitting_set(sets, preseed=preseed)
    assert frozenset(preseed) <= result.hypothesis


@given(sets=token_sets)
def test_greedy_is_deterministic(sets):
    a = greedy_hitting_set(sets)
    b = greedy_hitting_set(list(sets))
    assert a.hypothesis == b.hypothesis
    assert a.iterations == b.iterations


@given(
    sets=st.lists(
        st.sets(st.sampled_from(TOKENS[:8]), min_size=1, max_size=4),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=60)
def test_exact_is_minimal_and_greedy_is_valid(sets):
    exact = exact_hitting_set(sets)
    greedy = greedy_hitting_set(sets)
    assert exact is not None
    # Exact hits everything.
    for s in sets:
        assert s & exact
    # Greedy is a valid hitting set and never smaller than the optimum.
    assert len(exact) <= len(greedy.hypothesis)


@given(
    sets=token_sets,
    reroutes=st.lists(
        st.sets(st.sampled_from(TOKENS), min_size=1, max_size=4), max_size=4
    ),
)
def test_reroute_sets_are_also_explained(sets, reroutes):
    result = greedy_hitting_set(sets, reroute_sets=reroutes)
    assert result.fully_explained
    for s in reroutes:
        assert s & result.hypothesis


# --- vectorized == set-based equivalence -------------------------------

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable"
)


@st.composite
def cluster_maps(draw):
    """A random partition of TOKENS into link clusters (§3.4); only
    groups of two or more enter the map, mirroring nd_edge's UH
    clustering."""
    order = draw(st.permutations(TOKENS))
    mapping = {}
    index = 0
    while index < len(order):
        size = draw(st.integers(min_value=1, max_value=3))
        group = frozenset(order[index : index + size])
        index += size
        if len(group) > 1:
            for token in group:
                mapping[token] = group
    return mapping


@needs_numpy
@given(
    sets=token_sets,
    reroutes=st.lists(
        st.sets(st.sampled_from(TOKENS), min_size=1, max_size=4), max_size=4
    ),
    excluded=st.sets(st.sampled_from(TOKENS), max_size=5),
    preseed=st.sets(st.sampled_from(TOKENS), max_size=2),
    failure_weight=st.integers(min_value=0, max_value=3),
    reroute_weight=st.integers(min_value=0, max_value=3),
    clusters=st.none() | cluster_maps(),
)
@settings(max_examples=150)
def test_vectorized_greedy_is_bit_identical(
    sets, reroutes, excluded, preseed, failure_weight, reroute_weight, clusters
):
    """The full GreedyResult (hypothesis, unexplained tuples in input
    order, iteration count, preseeds) matches across implementations for
    every kwarg combination — including zero weights and clusters."""
    kwargs = dict(
        excluded=excluded,
        preseed=preseed,
        failure_weight=failure_weight,
        reroute_weight=reroute_weight,
        cluster_of=None if clusters is None else clusters.get,
    )
    reference = _greedy_hitting_set_python(sets, reroutes, **kwargs)
    vectorized = _greedy_hitting_set_numpy(sets, reroutes, **kwargs)
    assert reference == vectorized


@needs_numpy
@given(sets=token_sets, duplicates=st.integers(min_value=2, max_value=3))
@settings(max_examples=80)
def test_vectorized_tie_classes_match_with_duplicated_sets(sets, duplicates):
    """Duplicating every set forces score ties among all its members;
    both paths must admit exactly one winner per tie-equivalence class."""
    tied = [s for s in sets for _ in range(duplicates)]
    reference = _greedy_hitting_set_python(tied)
    vectorized = _greedy_hitting_set_numpy(tied)
    assert reference == vectorized
    assert reference.iterations == vectorized.iterations


@needs_numpy
@given(
    sets=st.lists(
        st.sets(st.sampled_from(TOKENS), min_size=1, max_size=4),
        min_size=1,
        max_size=5,
    ),
    reroutes=st.lists(
        st.sets(st.sampled_from(TOKENS), min_size=1, max_size=4),
        min_size=1,
        max_size=4,
    ),
)
@settings(max_examples=60)
def test_vectorized_zero_weight_drops_sets_from_tie_classes(sets, reroutes):
    """Zero-weight sets score nothing and never split an equivalence
    class — in either implementation."""
    for weights in ((0, 1), (1, 0), (0, 0)):
        kwargs = dict(failure_weight=weights[0], reroute_weight=weights[1])
        reference = _greedy_hitting_set_python(sets, reroutes, **kwargs)
        vectorized = _greedy_hitting_set_numpy(sets, reroutes, **kwargs)
        assert reference == vectorized


@given(
    sets=st.lists(
        st.sets(st.sampled_from(TOKENS[:8]), min_size=1, max_size=4),
        min_size=1,
        max_size=6,
    ),
    budget=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=60)
def test_exact_budget_truncation_is_stable_and_sound(sets, budget):
    """A truncated exact search either proves an optimum or returns
    None — and the memoized second call agrees with the first."""
    clear_exact_cache()
    first = exact_hitting_set(sets, max_expansions=budget)
    second = exact_hitting_set(sets, max_expansions=budget)
    assert first == second
    if first is not None:
        for s in sets:
            assert s & first
        # A solution under a truncated budget is still the optimum.
        full = exact_hitting_set(sets)
        assert full is not None
        assert len(full) == len(first)
