"""Property-based tests for the hitting-set solvers (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hitting_set import exact_hitting_set, greedy_hitting_set
from repro.core.linkspace import ip_link

# A small universe of link tokens.
TOKENS = [ip_link(f"10.0.0.{i}", f"10.0.1.{i}") for i in range(12)]

token_sets = st.lists(
    st.sets(st.sampled_from(TOKENS), min_size=1, max_size=5),
    min_size=0,
    max_size=8,
)


@given(sets=token_sets)
def test_greedy_hits_every_set_when_feasible(sets):
    result = greedy_hitting_set(sets)
    # No exclusions: every set has candidates, so everything is explained.
    assert result.fully_explained
    for s in sets:
        assert s & result.hypothesis


@given(sets=token_sets, excluded=st.sets(st.sampled_from(TOKENS), max_size=6))
def test_greedy_never_selects_excluded_links(sets, excluded):
    result = greedy_hitting_set(sets, excluded=excluded)
    assert not (result.hypothesis - result.preseeded) & excluded
    # Sets whose candidates were all excluded are reported, not hidden.
    for unexplained in result.unexplained_failures:
        assert unexplained <= frozenset(excluded) | result.hypothesis
        assert not unexplained & result.hypothesis


@given(sets=token_sets)
def test_greedy_hypothesis_is_subset_of_candidates(sets):
    result = greedy_hitting_set(sets)
    universe = set().union(*sets) if sets else set()
    assert result.hypothesis <= universe


@given(sets=token_sets, preseed=st.sets(st.sampled_from(TOKENS), max_size=3))
def test_preseed_always_lands_in_hypothesis(sets, preseed):
    result = greedy_hitting_set(sets, preseed=preseed)
    assert frozenset(preseed) <= result.hypothesis


@given(sets=token_sets)
def test_greedy_is_deterministic(sets):
    a = greedy_hitting_set(sets)
    b = greedy_hitting_set(list(sets))
    assert a.hypothesis == b.hypothesis
    assert a.iterations == b.iterations


@given(
    sets=st.lists(
        st.sets(st.sampled_from(TOKENS[:8]), min_size=1, max_size=4),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=60)
def test_exact_is_minimal_and_greedy_is_valid(sets):
    exact = exact_hitting_set(sets)
    greedy = greedy_hitting_set(sets)
    assert exact is not None
    # Exact hits everything.
    for s in sets:
        assert s & exact
    # Greedy is a valid hitting set and never smaller than the optimum.
    assert len(exact) <= len(greedy.hypothesis)


@given(
    sets=token_sets,
    reroutes=st.lists(
        st.sets(st.sampled_from(TOKENS), min_size=1, max_size=4), max_size=4
    ),
)
def test_reroute_sets_are_also_explained(sets, reroutes):
    result = greedy_hitting_set(sets, reroute_sets=reroutes)
    assert result.fully_explained
    for s in reroutes:
        assert s & result.hypothesis
