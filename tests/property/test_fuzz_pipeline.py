"""Pipeline fuzzing: random composite events must never crash diagnosis,
and the system invariants must hold whatever happens.

This is the robustness backstop: hypothesis drives random combinations of
link failures, router failures, misconfigurations and TE weight changes
into the Figure 2 world and asserts the pipeline's contracts — snapshots
validate, diagnoses complete, hypotheses avoid exclusions, metrics stay in
range — regardless of how pathological the combination is.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diagnoser import NetDiagnoser
from repro.core.metrics import sensitivity, specificity
from repro.errors import DiagnosisError
from repro.measurement.collector import collect_control_plane, take_snapshot
from repro.measurement.sensors import deploy_sensors
from repro.netsim.builders import figure2_network
from repro.netsim.events import (
    CompositeEvent,
    LinkFailureEvent,
    MisconfigurationEvent,
    RouterFailureEvent,
    WeightChangeEvent,
)
from repro.netsim.simulator import Simulator
from repro.netsim.topology import ExportFilter, NetworkState

FIG = figure2_network()
SIM = Simulator(FIG.net, [FIG.asn("A"), FIG.asn("B"), FIG.asn("C")])
SENSORS = deploy_sensors(
    FIG.net, [FIG.sensor_routers[s] for s in ("s1", "s2", "s3")]
)
GATEWAYS = {s.router_id for s in SENSORS}
ALL_LINKS = [l.lid for l in FIG.net.links()]
INTER_LINKS = [l.lid for l in FIG.net.inter_links()]
NON_GATEWAY_ROUTERS = [
    r.rid for r in FIG.net.routers() if r.rid not in GATEWAYS
]
PREFIXES = [a.prefix for a in FIG.net.ases()]


@st.composite
def random_event(draw):
    pieces = []
    for lid in draw(st.sets(st.sampled_from(ALL_LINKS), max_size=2)):
        pieces.append(LinkFailureEvent((lid,)))
    if draw(st.booleans()):
        pieces.append(
            RouterFailureEvent(draw(st.sampled_from(NON_GATEWAY_ROUTERS)))
        )
    if draw(st.booleans()):
        lid = draw(st.sampled_from(INTER_LINKS))
        link = FIG.net.link(lid)
        pieces.append(
            MisconfigurationEvent(
                ExportFilter(
                    link_id=lid,
                    at_router=draw(st.sampled_from(link.endpoints())),
                    prefixes=frozenset(
                        draw(st.sets(st.sampled_from(PREFIXES), min_size=1,
                                     max_size=2))
                    ),
                )
            )
        )
    if draw(st.booleans()):
        pieces.append(
            WeightChangeEvent(
                draw(st.sampled_from(ALL_LINKS)), draw(st.integers(1, 60))
            )
        )
    if not pieces:
        pieces.append(LinkFailureEvent((draw(st.sampled_from(ALL_LINKS)),)))
    return CompositeEvent(tuple(pieces))


@given(event=random_event())
@settings(max_examples=50, deadline=None)
def test_pipeline_survives_any_event_combination(event):
    after = SIM.apply(event)
    snapshot = take_snapshot(SIM, SENSORS, NetworkState.nominal(), after)
    if not snapshot.any_failure():
        return  # troubleshooter not invoked; nothing to assert
    control = collect_control_plane(SIM, FIG.asn("X"), NetworkState.nominal(), after)
    for variant in ("tomo", "nd-edge", "nd-bgpigp"):
        result = NetDiagnoser(variant).diagnose(snapshot, control=control)
        # Contracts that must hold for any input:
        assert not result.hypothesis & result.excluded
        assert result.physical_hypothesis() <= result.physical_universe()
        truth = event.physical_ground_truth(FIG.net)
        if truth:
            universe = result.physical_universe()
            hyp = result.physical_hypothesis()
            from repro.experiments.runner import ground_truth_links

            truth_tokens = ground_truth_links(FIG.net, event)
            visible = truth_tokens & universe
            if visible:
                assert 0.0 <= sensitivity(visible, hyp) <= 1.0
            assert 0.0 <= specificity(universe, truth_tokens, hyp) <= 1.0


@given(event=random_event())
@settings(max_examples=25, deadline=None)
def test_no_failure_means_no_invocation(event):
    after = SIM.apply(event)
    snapshot = take_snapshot(SIM, SENSORS, NetworkState.nominal(), after)
    if snapshot.any_failure():
        return
    # The facade refuses to diagnose a healthy mesh — by contract.
    import pytest

    with pytest.raises(DiagnosisError):
        NetDiagnoser("tomo").diagnose(snapshot)
