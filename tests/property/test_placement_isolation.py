"""Property: placement jobs are RNG-isolated.

The parallel runner's determinism rests on one invariant: the records a
placement index produces depend only on that index (and the batch
parameters), never on which other placements ran, in what order, or in
which process.  Hypothesis drives reordered and subset executions of the
same job set and checks every execution reproduces the per-index
reference — any cross-placement RNG bleed (say, a module-level RNG or a
cache shared across sessions) breaks this immediately.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diagnoser import NetDiagnoser
from repro.experiments.jobs import ResearchTopoFactory, StubPlacement
from repro.experiments.runner import PlacementJob

N_PLACEMENTS = 4


def _job(placement_index: int) -> PlacementJob:
    return PlacementJob(
        placement_index=placement_index,
        seed=11,
        topo_factory=ResearchTopoFactory(topo_seed=3, n_tier2=4, n_stub=16),
        placement_fn=StubPlacement(5),
        kinds=("link-1",),
        diagnosers={"nd-edge": NetDiagnoser("nd-edge")},
        failures_per_placement=2,
    )


@lru_cache(maxsize=None)
def _reference(placement_index: int):
    """Records of one placement run alone (the isolation baseline)."""
    return repr(_job(placement_index).run().records)


@settings(max_examples=10, deadline=None)
@given(
    order=st.lists(
        st.sampled_from(range(N_PLACEMENTS)),
        min_size=1,
        max_size=N_PLACEMENTS,
        unique=True,
    )
)
def test_reordering_and_subsetting_never_changes_a_placements_records(order):
    for index in order:
        assert repr(_job(index).run().records) == _reference(index), (
            f"placement {index} produced different records when run in "
            f"order {order} — cross-placement RNG bleed"
        )
