"""Property-based serialization round-trips over random structures."""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.topology import ExportFilter, NetworkState
from repro.serialize import (
    state_from_dict,
    state_to_dict,
    token_from_dict,
    token_to_dict,
    topology_from_dict,
    topology_to_dict,
)

from tests.property.test_routing_props import random_internetwork


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=25, deadline=None)
def test_random_topology_roundtrip(seed):
    net, _edges = random_internetwork(seed)
    data = topology_to_dict(net)
    # JSON-stability: serialise through actual JSON text.
    rebuilt = topology_from_dict(json.loads(json.dumps(data)))
    assert topology_to_dict(rebuilt) == data


@given(
    failed_links=st.sets(st.integers(0, 50), max_size=5),
    failed_routers=st.sets(st.integers(0, 50), max_size=3),
    overrides=st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 99)), max_size=4
    ),
    filters=st.lists(
        st.tuples(
            st.integers(0, 50),
            st.integers(0, 50),
            st.sets(st.sampled_from(["10.0.16.0/20", "10.0.32.0/20"]), min_size=1),
        ),
        max_size=3,
    ),
)
def test_random_state_roundtrip(failed_links, failed_routers, overrides, filters):
    state = NetworkState(
        failed_links=frozenset(failed_links),
        failed_routers=frozenset(failed_routers),
        filters=tuple(
            ExportFilter(link_id=l, at_router=r, prefixes=frozenset(p))
            for l, r, p in filters
        ),
        weight_overrides=tuple(overrides),
    )
    data = json.loads(json.dumps(state_to_dict(state)))
    assert state_from_dict(data) == state


@st.composite
def random_token(draw):
    from repro.core.linkspace import IpLink, LogicalLink, PhysicalLink, UhNode

    kind = draw(st.sampled_from(["ip", "uh", "logical", "physical"]))
    address = st.integers(1, 200).map(lambda i: f"10.0.0.{i}")
    if kind == "logical":
        return LogicalLink(draw(address), draw(address), draw(st.integers(-1, 300)))
    if kind == "physical":
        return PhysicalLink(draw(address), draw(address))
    a = draw(address)
    if kind == "uh":
        b = UhNode(draw(address), draw(address), draw(st.sampled_from(["pre", "post"])), draw(st.integers(0, 20)))
    else:
        b = draw(address)
    return IpLink(a, b)


@given(token=random_token())
def test_random_token_roundtrip(token):
    data = json.loads(json.dumps(token_to_dict(token)))
    assert token_from_dict(data) == token
