"""Unit tests for the BGP substrate: routes, policies, engine, messages."""

import pytest

from repro.errors import RoutingError
from repro.netsim.bgp import BgpEngine, BgpRoute, withdrawals_observed_by
from repro.netsim.bgp import policy
from repro.netsim.builders import figure2_network
from repro.netsim.topology import (
    ExportFilter,
    Internetwork,
    NetworkState,
    Relationship,
    Tier,
)


class TestBgpRoute:
    def test_origin_route_properties(self):
        route = BgpRoute("10.0.16.0/20", (), 100, None, None)
        assert route.is_origin
        assert route.neighbor_asn is None
        assert route.origin_asn is None

    def test_learned_route_properties(self):
        route = BgpRoute("10.0.16.0/20", (7, 9), 80, 3, 11)
        assert not route.is_origin
        assert route.neighbor_asn == 7
        assert route.origin_asn == 9
        assert route.traverses(9)
        assert not route.traverses(11)

    def test_preference_order(self):
        high_pref = BgpRoute("p", (5, 6, 7), policy.LOCAL_PREF_CUSTOMER, 1, 1)
        low_pref = BgpRoute("p", (5,), policy.LOCAL_PREF_PROVIDER, 1, 1)
        assert high_pref.preference_key() > low_pref.preference_key()

    def test_shorter_path_wins_at_equal_pref(self):
        short = BgpRoute("p", (5, 9), 80, 1, 1)
        long = BgpRoute("p", (5, 6, 9), 80, 1, 1)
        assert short.preference_key() > long.preference_key()

    def test_lower_neighbor_wins_at_equal_length(self):
        low = BgpRoute("p", (5, 9), 80, 1, 1)
        high = BgpRoute("p", (6, 9), 80, 1, 1)
        assert low.preference_key() > high.preference_key()


class TestPolicy:
    def test_local_pref_ordering(self):
        assert (
            policy.local_pref(Relationship.PROVIDER_CUSTOMER)
            > policy.local_pref(Relationship.PEER)
            > policy.local_pref(Relationship.CUSTOMER_PROVIDER)
        )

    def test_valley_free_export_matrix(self):
        customer = Relationship.PROVIDER_CUSTOMER  # neighbour is my customer
        peer = Relationship.PEER
        provider = Relationship.CUSTOMER_PROVIDER
        # Own and customer routes go everywhere.
        for to_rel in (customer, peer, provider):
            assert policy.may_export(None, to_rel)
            assert policy.may_export(customer, to_rel)
        # Peer/provider routes go to customers only.
        for learned in (peer, provider):
            assert policy.may_export(learned, customer)
            assert not policy.may_export(learned, peer)
            assert not policy.may_export(learned, provider)

    def test_filtered(self):
        f = ExportFilter(link_id=4, at_router=2, prefixes=frozenset({"p"}))
        assert policy.filtered([f], 4, 2, "p")
        assert not policy.filtered([f], 4, 2, "q")
        assert not policy.filtered([], 4, 2, "p")


class TestEngineOnFigure2:
    @pytest.fixture
    def converged(self):
        fig = figure2_network()
        engine = BgpEngine.for_sensor_ases(
            fig.net, [fig.asn("A"), fig.asn("B"), fig.asn("C")]
        )
        return fig, engine, engine.converge(NetworkState.nominal())

    def test_every_as_reaches_every_prefix(self, converged):
        fig, engine, routing = converged
        for prefix in routing.prefixes:
            for autsys in fig.net.ases():
                assert routing.has_route(autsys.asn, prefix), (
                    f"AS {autsys.asn} lacks {prefix}"
                )

    def test_as_paths_follow_the_hierarchy(self, converged):
        fig, _engine, routing = converged
        prefix_b = fig.net.autonomous_system(fig.asn("B")).prefix
        assert routing.as_path(fig.asn("A"), prefix_b) == (
            fig.asn("A"),
            fig.asn("X"),
            fig.asn("Y"),
            fig.asn("B"),
        )

    def test_origin_as_path_is_itself(self, converged):
        fig, _engine, routing = converged
        prefix_b = fig.net.autonomous_system(fig.asn("B")).prefix
        assert routing.as_path(fig.asn("B"), prefix_b) == (fig.asn("B"),)

    def test_no_as_path_contains_loops(self, converged):
        fig, _engine, routing = converged
        for prefix in routing.prefixes:
            for autsys in fig.net.ases():
                path = routing.as_path(autsys.asn, prefix)
                assert path is not None
                assert len(path) == len(set(path))

    def test_convergence_is_cached(self, converged):
        _fig, engine, routing = converged
        assert engine.converge(NetworkState.nominal()) is routing

    def test_export_filter_blocks_prefix(self, converged):
        fig, engine, _nominal = converged
        prefix_c = fig.net.autonomous_system(fig.asn("C")).prefix
        link = fig.link_between("x2", "y1")
        state = NetworkState.nominal().with_filter(
            ExportFilter(
                link_id=link.lid,
                at_router=fig.router("y1").rid,
                prefixes=frozenset({prefix_c}),
            )
        )
        routing = engine.converge(state)
        # X (and its customer A) lose the route towards C; B is unaffected.
        assert not routing.has_route(fig.asn("X"), prefix_c)
        assert not routing.has_route(fig.asn("A"), prefix_c)
        prefix_b = fig.net.autonomous_system(fig.asn("B")).prefix
        assert routing.has_route(fig.asn("X"), prefix_b)

    def test_link_failure_withdraws_route(self, converged):
        fig, engine, _nominal = converged
        prefix_b = fig.net.autonomous_system(fig.asn("B")).prefix
        lid = fig.link_between("y4", "b1").lid
        routing = engine.converge(NetworkState.nominal().with_failed_links([lid]))
        for name in ("A", "X", "Y", "C"):
            assert not routing.has_route(fig.asn(name), prefix_b)

    def test_adj_rib_out_respects_valley_freeness(self, converged):
        fig, _engine, routing = converged
        # Y must not announce B's prefix to C (peer-less: C is customer, ok)
        # but A must never transit: A announces only its own prefix upstream.
        link = fig.link_between("a2", "x1")
        exported = routing.advertised(link.lid, fig.asn("A"))
        assert exported == frozenset(
            {fig.net.autonomous_system(fig.asn("A")).prefix}
        )

    def test_engine_rejects_foreign_prefix(self):
        fig = figure2_network()
        with pytest.raises(RoutingError):
            BgpEngine(fig.net, {"192.168.0.0/24": fig.asn("A")})


class TestMultihomingFailover:
    @pytest.fixture
    def multihomed(self):
        """Stub S multihomed to providers P1 and P2 which peer."""
        net = Internetwork()
        net.add_as(1, "p1", Tier.CORE)
        net.add_as(2, "p2", Tier.CORE)
        net.add_as(3, "s", Tier.STUB)
        p1 = net.add_router(1).rid
        p2 = net.add_router(2).rid
        s = net.add_router(3).rid
        net.set_relationship(1, 2, Relationship.PEER)
        net.set_relationship(3, 1, Relationship.CUSTOMER_PROVIDER)
        net.set_relationship(3, 2, Relationship.CUSTOMER_PROVIDER)
        l1 = net.add_link(s, p1)
        net.add_link(s, p2)
        net.add_link(p1, p2)
        engine = BgpEngine.for_sensor_ases(net, [3])
        return net, engine, l1.lid

    def test_failover_to_second_provider(self, multihomed):
        net, engine, l1 = multihomed
        prefix = net.autonomous_system(3).prefix
        nominal = engine.converge(NetworkState.nominal())
        assert nominal.as_path(1, prefix) == (1, 3)  # direct customer route
        failed = engine.converge(NetworkState.nominal().with_failed_links([l1]))
        assert failed.as_path(1, prefix) == (1, 2, 3)  # via the peer

    def test_withdrawal_observed_on_surviving_session(self, multihomed):
        net, engine, l1 = multihomed
        prefix = net.autonomous_system(3).prefix
        before = engine.converge(NetworkState.nominal())
        after_state = NetworkState.nominal().with_failed_links([l1])
        after = engine.converge(after_state)
        # P1 still hears the prefix from P2?  No: peer routes are not
        # exported to peers, so P2->P1 never carried it; but S->P1 session
        # died, which is a reset, not a withdrawal.
        withdrawals = withdrawals_observed_by(net, 1, before, after, after_state)
        assert withdrawals == []

    def test_customer_withdrawal_seen_by_provider(self):
        """Chain S - M - P: when S's access dies, P hears a withdrawal
        from M on a session that stays up."""
        net = Internetwork()
        net.add_as(1, "p", Tier.CORE)
        net.add_as(2, "m", Tier.TIER2)
        net.add_as(3, "s", Tier.STUB)
        p = net.add_router(1).rid
        m = net.add_router(2).rid
        s = net.add_router(3).rid
        net.set_relationship(2, 1, Relationship.CUSTOMER_PROVIDER)
        net.set_relationship(3, 2, Relationship.CUSTOMER_PROVIDER)
        pm = net.add_link(p, m)
        ms = net.add_link(m, s)
        engine = BgpEngine.for_sensor_ases(net, [3])
        before = engine.converge(NetworkState.nominal())
        after_state = NetworkState.nominal().with_failed_links([ms.lid])
        after = engine.converge(after_state)
        withdrawals = withdrawals_observed_by(net, 1, before, after, after_state)
        assert len(withdrawals) == 1
        w = withdrawals[0]
        assert w.prefix == net.autonomous_system(3).prefix
        assert w.from_asn == 2
        assert w.link_id == pm.lid
        assert w.at_router == p
        assert w.from_router == m
