"""Unit tests for failure events, the simulator facade and Looking Glasses."""

import pytest

from repro.errors import MeasurementError, ScenarioError
from repro.netsim.events import (
    CompositeEvent,
    LinkFailureEvent,
    MisconfigurationEvent,
    RouterFailureEvent,
)
from repro.netsim.lookingglass import LookingGlassService
from repro.netsim.topology import ExportFilter, NetworkState


class TestEvents:
    def test_link_failure_event(self, fig2):
        lid = fig2.link_between("b1", "b2").lid
        event = LinkFailureEvent((lid,))
        state = event.apply_to(NetworkState.nominal())
        assert lid in state.failed_links
        assert event.physical_ground_truth(fig2.net) == frozenset({lid})
        assert "b1-b2" in event.describe(fig2.net)

    def test_link_failure_rejects_empty_and_duplicates(self):
        with pytest.raises(ScenarioError):
            LinkFailureEvent(())
        with pytest.raises(ScenarioError):
            LinkFailureEvent((1, 1))

    def test_router_failure_event(self, fig2):
        rid = fig2.router("y1").rid
        event = RouterFailureEvent(rid)
        state = event.apply_to(NetworkState.nominal())
        assert rid in state.failed_routers
        truth = event.physical_ground_truth(fig2.net)
        assert truth == frozenset(l.lid for l in fig2.net.links_of_router(rid))

    def test_misconfiguration_event(self, fig2):
        link = fig2.link_between("x2", "y1")
        filt = ExportFilter(
            link_id=link.lid,
            at_router=fig2.router("y1").rid,
            prefixes=frozenset({"10.0.80.0/20"}),
        )
        event = MisconfigurationEvent(filt)
        state = event.apply_to(NetworkState.nominal())
        assert state.filters == (filt,)
        assert event.physical_ground_truth(fig2.net) == frozenset({link.lid})
        assert "no longer announces" in event.describe(fig2.net)

    def test_composite_event(self, fig2):
        lid = fig2.link_between("b1", "b2").lid
        rid = fig2.router("c1").rid
        event = CompositeEvent((LinkFailureEvent((lid,)), RouterFailureEvent(rid)))
        state = event.apply_to(NetworkState.nominal())
        assert lid in state.failed_links and rid in state.failed_routers
        assert event.physical_ground_truth(fig2.net) >= frozenset({lid})
        with pytest.raises(ScenarioError):
            CompositeEvent(())


class TestSimulatorFacade:
    def test_trace_caching(self, fig2, fig2_sim, nominal):
        s1 = fig2.sensor_routers["s1"]
        s2 = fig2.sensor_routers["s2"]
        assert fig2_sim.trace(nominal, s1, s2) is fig2_sim.trace(nominal, s1, s2)

    def test_apply_defaults_to_nominal(self, fig2, fig2_sim):
        lid = fig2.link_between("b1", "b2").lid
        state = fig2_sim.apply(LinkFailureEvent((lid,)))
        assert lid in state.failed_links

    def test_igp_link_down_scoped_to_asx(self, fig2, fig2_sim, nominal):
        intra = fig2.link_between("y1", "y4")
        state = nominal.with_failed_links([intra.lid])
        assert [l.lid for l in fig2_sim.igp_link_down(fig2.asn("Y"), state)] == [
            intra.lid
        ]
        assert fig2_sim.igp_link_down(fig2.asn("X"), state) == []

    def test_withdrawals_at_asx(self, fig2, fig2_sim, nominal):
        lid = fig2.link_between("y4", "b1").lid
        after = nominal.with_failed_links([lid])
        withdrawals = fig2_sim.withdrawals(fig2.asn("X"), nominal, after)
        prefix_b = fig2.net.autonomous_system(fig2.asn("B")).prefix
        assert [w.prefix for w in withdrawals] == [prefix_b]
        assert withdrawals[0].from_asn == fig2.asn("Y")

    def test_mapper_is_shared_and_correct(self, fig2, fig2_sim):
        a1 = fig2.router("a1")
        assert fig2_sim.mapper.asn_of(a1.address) == fig2.asn("A")


class TestLookingGlass:
    def test_query_returns_as_path(self, fig2, fig2_sim, nominal):
        lg = LookingGlassService.everywhere(fig2.net)
        routing = fig2_sim.routing(nominal)
        prefix_b = fig2.net.autonomous_system(fig2.asn("B")).prefix
        path = lg.query(fig2.asn("A"), prefix_b, routing)
        assert path == (fig2.asn("A"), fig2.asn("X"), fig2.asn("Y"), fig2.asn("B"))

    def test_unavailable_lg_returns_none(self, fig2, fig2_sim, nominal):
        lg = LookingGlassService(fig2.net, [fig2.asn("X")])
        routing = fig2_sim.routing(nominal)
        prefix_b = fig2.net.autonomous_system(fig2.asn("B")).prefix
        assert lg.query(fig2.asn("A"), prefix_b, routing) is None
        assert lg.query(fig2.asn("X"), prefix_b, routing) is not None
        assert lg.has_lg(fig2.asn("X")) and not lg.has_lg(fig2.asn("A"))

    def test_no_route_indistinguishable_from_no_lg(self, fig2, fig2_sim, nominal):
        lg = LookingGlassService.everywhere(fig2.net)
        lid = fig2.link_between("y4", "b1").lid
        state = nominal.with_failed_links([lid])
        routing = fig2_sim.routing(state)
        prefix_b = fig2.net.autonomous_system(fig2.asn("B")).prefix
        assert lg.query(fig2.asn("A"), prefix_b, routing) is None

    def test_unconverged_prefix_rejected(self, fig2, fig2_sim, nominal):
        lg = LookingGlassService.everywhere(fig2.net)
        routing = fig2_sim.routing(nominal)
        with pytest.raises(MeasurementError):
            lg.query(fig2.asn("A"), "10.15.0.0/20", routing)
