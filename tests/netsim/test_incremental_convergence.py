"""Incremental re-convergence must be indistinguishable from full recompute.

The engine's incremental path (baseline + per-prefix dependency sets) is a
pure optimisation: for every degradation state its :class:`RoutingState`
must be *identical* in content to the one a from-scratch fixpoint produces.
These tests pin that equivalence over seeded random failure states on both
a small hub-and-spoke internetwork and the research-Internet generator,
plus the counters/sharing semantics and the ``REPRO_FULL_CONVERGE``
escape hatch.
"""

import random

import pytest

from repro.netsim.bgp import BgpEngine
from repro.netsim.gen.hubspoke import build_hub_and_spoke
from repro.netsim.gen.internet import research_internet
from repro.netsim.topology import (
    ExportFilter,
    Internetwork,
    NetworkState,
    Relationship,
    Tier,
)


def hubspoke_internetwork():
    """Two hub-and-spoke providers peering, with four stub customers."""
    net = Internetwork()
    net.add_as(1, "prov1", Tier.TIER2)
    net.add_as(2, "prov2", Tier.TIER2)
    prov = {
        1: build_hub_and_spoke(net, 1, spokes=4),
        2: build_hub_and_spoke(net, 2, spokes=4),
    }
    net.set_relationship(1, 2, Relationship.PEER)
    net.add_link(prov[1]["hubs"][0], prov[2]["hubs"][0])
    stub_asns = []
    for index in range(4):
        asn = 10 + index
        net.add_as(asn, f"stub{index}", Tier.STUB)
        rid = net.add_router(asn).rid
        provider = 1 if index % 2 == 0 else 2
        net.set_relationship(asn, provider, Relationship.CUSTOMER_PROVIDER)
        net.add_link(rid, prov[provider]["spokes"][index % 4])
        if index == 0:  # one multihomed stub
            net.set_relationship(asn, 2, Relationship.CUSTOMER_PROVIDER)
            net.add_link(rid, prov[2]["spokes"][1])
        stub_asns.append(asn)
    return net, stub_asns


def random_degradations(net, rng, n_states, max_links=3):
    """Seeded single- and multi-link/router failure states."""
    inter = [l.lid for l in net.inter_links()]
    intra = [l.lid for l in net.links() if not net.is_interdomain(l.lid)]
    states = []
    for _ in range(n_states):
        lids = rng.sample(inter, min(len(inter), rng.randint(1, max_links)))
        if intra and rng.random() < 0.5:
            lids.append(rng.choice(intra))
        state = NetworkState.nominal().with_failed_links(lids)
        if rng.random() < 0.3:
            link = net.link(rng.choice(inter))
            state = state.with_failed_routers([rng.choice([link.a, link.b])])
        states.append(state)
    return states


def assert_incremental_matches_full(net, sensor_asns, states):
    incremental = BgpEngine.for_sensor_ases(net, sensor_asns)
    full = BgpEngine.for_sensor_ases(net, sensor_asns, incremental=False)
    # Converging nominal first makes it the baseline for both engines.
    assert incremental.converge(NetworkState.nominal()).equivalent_to(
        full.converge(NetworkState.nominal())
    )
    # An intra-domain-only failure never perturbs the AS-level decision
    # process: the incremental engine must reuse every prefix for it.
    intra = next(
        l.lid for l in net.links() if not net.is_interdomain(l.lid)
    )
    states = list(states) + [NetworkState.nominal().with_failed_links([intra])]
    for state in states:
        assert incremental.converge(state).equivalent_to(full.converge(state))
    assert incremental.counters.incremental_converges > 0
    assert full.counters.incremental_converges == 0
    assert incremental.counters.prefixes_reused > 0
    assert full.counters.prefixes_reused == 0
    # The optimisation never does *more* fixpoint work than full mode.
    assert (
        incremental.counters.prefixes_converged
        < full.counters.prefixes_converged
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_equivalence_on_hubspoke_topology(seed):
    net, stubs = hubspoke_internetwork()
    rng = random.Random(seed)
    states = random_degradations(net, rng, n_states=8)
    assert_incremental_matches_full(net, stubs, states)


@pytest.mark.parametrize("seed", [11, 12])
def test_equivalence_on_research_internet(seed):
    topo = research_internet(n_tier2=4, n_stub=10, seed=seed)
    rng = random.Random(seed)
    states = random_degradations(topo.net, rng, n_states=5)
    sensors = topo.stub_asns[:6]
    assert_incremental_matches_full(topo.net, sensors, states)


def test_equivalence_with_export_filters():
    net, stubs = hubspoke_internetwork()
    incremental = BgpEngine.for_sensor_ases(net, stubs)
    full = BgpEngine.for_sensor_ases(net, stubs, incremental=False)
    incremental.converge(NetworkState.nominal())
    full.converge(NetworkState.nominal())
    prefix = net.autonomous_system(stubs[0]).prefix
    for link in net.inter_links():
        state = NetworkState.nominal().with_filter(
            ExportFilter(
                link_id=link.lid,
                at_router=link.a,
                prefixes=frozenset({prefix}),
            )
        )
        assert incremental.converge(state).equivalent_to(full.converge(state))


def test_unaffected_prefixes_share_baseline_rib_objects():
    """Some single-link failure must split the prefixes: the affected ones
    get fresh RIBs, the rest share the baseline's objects untouched."""
    net, stubs = hubspoke_internetwork()
    engine = BgpEngine.for_sensor_ases(net, stubs)
    baseline = engine.converge(NetworkState.nominal())
    n_prefixes = len(engine.prefixes)
    for link in net.inter_links():
        before_converged = engine.counters.prefixes_converged
        before_reused = engine.counters.prefixes_reused
        routing = engine.converge(
            NetworkState.nominal().with_failed_links([link.lid])
        )
        reconverged = engine.counters.prefixes_converged - before_converged
        reused = engine.counters.prefixes_reused - before_reused
        if reconverged and reused:
            break
    else:
        pytest.fail("no single-link failure split the prefix set")
    # Strict subset of the prefixes re-converged for the failure state.
    assert reconverged + reused == n_prefixes
    assert 0 < reconverged < n_prefixes
    shared = [
        prefix
        for prefix in engine.prefixes
        if routing.shares_rib_with(baseline, prefix)
    ]
    assert len(shared) == reused


def test_restoration_states_fall_back_to_full_converge():
    """A state that is not a pure degradation of the baseline (a link the
    baseline had failed comes back up) must take the full path."""
    net, stubs = hubspoke_internetwork()
    engine = BgpEngine.for_sensor_ases(net, stubs)
    lid = net.inter_links()[0].lid
    engine.converge(NetworkState.nominal().with_failed_links([lid]))
    assert engine.counters.full_converges == 1
    engine.converge(NetworkState.nominal())  # restoration vs baseline
    assert engine.counters.full_converges == 2
    assert engine.counters.incremental_converges == 0


def test_escape_hatch_forces_full_converge(monkeypatch):
    net, stubs = hubspoke_internetwork()
    engine = BgpEngine.for_sensor_ases(net, stubs)
    engine.converge(NetworkState.nominal())
    monkeypatch.setenv("REPRO_FULL_CONVERGE", "1")
    lid = net.inter_links()[0].lid
    forced = engine.converge(NetworkState.nominal().with_failed_links([lid]))
    assert engine.counters.full_converges == 2
    assert engine.counters.incremental_converges == 0
    # The forced result still matches what the incremental path computes.
    monkeypatch.delenv("REPRO_FULL_CONVERGE")
    fresh = BgpEngine.for_sensor_ases(net, stubs)
    fresh.converge(NetworkState.nominal())
    assert fresh.converge(
        NetworkState.nominal().with_failed_links([lid])
    ).equivalent_to(forced)
    assert fresh.counters.incremental_converges == 1


def test_baseline_survives_cache_eviction():
    """With a tiny LRU the baseline stays pinned and incremental
    re-convergence keeps working after evictions."""
    net, stubs = hubspoke_internetwork()
    engine = BgpEngine.for_sensor_ases(net, stubs, cache_capacity=2)
    nominal = NetworkState.nominal()
    baseline = engine.converge(nominal)
    lids = [l.lid for l in net.inter_links()]
    for lid in lids[:5]:
        engine.converge(nominal.with_failed_links([lid]))
    assert engine._cache.evictions > 0
    assert engine.converge(nominal) is baseline
    assert engine.counters.full_converges == 1
