"""Unit tests for the topology model (ASes, routers, links, state)."""

import pytest

from repro.errors import TopologyError
from repro.netsim.topology import (
    ExportFilter,
    Internetwork,
    NetworkState,
    Relationship,
    Tier,
)


@pytest.fixture
def two_as_net():
    net = Internetwork()
    net.add_as(1, "one", Tier.CORE)
    net.add_as(2, "two", Tier.STUB)
    r1 = net.add_router(1, "r1")
    r2 = net.add_router(1, "r2")
    r3 = net.add_router(2, "r3")
    net.set_relationship(2, 1, Relationship.CUSTOMER_PROVIDER)
    net.add_link(r1.rid, r2.rid, weight=3)
    net.add_link(r2.rid, r3.rid)
    return net, (r1, r2, r3)


class TestConstruction:
    def test_duplicate_as_rejected(self):
        net = Internetwork()
        net.add_as(1, "a", Tier.STUB)
        with pytest.raises(TopologyError):
            net.add_as(1, "b", Tier.STUB)

    def test_router_requires_known_as(self):
        net = Internetwork()
        with pytest.raises(TopologyError):
            net.add_router(42)

    def test_self_link_rejected(self, two_as_net):
        net, (r1, _r2, _r3) = two_as_net
        with pytest.raises(TopologyError):
            net.add_link(r1.rid, r1.rid)

    def test_parallel_link_rejected(self, two_as_net):
        net, (r1, r2, _r3) = two_as_net
        with pytest.raises(TopologyError):
            net.add_link(r2.rid, r1.rid)

    def test_interdomain_link_requires_relationship(self):
        net = Internetwork()
        net.add_as(1, "a", Tier.STUB)
        net.add_as(2, "b", Tier.STUB)
        ra = net.add_router(1)
        rb = net.add_router(2)
        with pytest.raises(TopologyError):
            net.add_link(ra.rid, rb.rid)

    def test_invalid_weight_rejected(self, two_as_net):
        net, (r1, _r2, r3) = two_as_net
        with pytest.raises(TopologyError):
            net.add_link(r1.rid, r3.rid, weight=0)

    def test_duplicate_relationship_rejected(self, two_as_net):
        net, _ = two_as_net
        with pytest.raises(TopologyError):
            net.set_relationship(1, 2, Relationship.PEER)

    def test_router_addresses_resolve_back(self, two_as_net):
        net, routers = two_as_net
        for router in routers:
            assert net.router_by_address(router.address).rid == router.rid


class TestRelationships:
    def test_relationship_is_viewpoint_sensitive(self, two_as_net):
        net, _ = two_as_net
        assert net.relationship(2, 1) is Relationship.CUSTOMER_PROVIDER
        assert net.relationship(1, 2) is Relationship.PROVIDER_CUSTOMER

    def test_peer_is_symmetric(self):
        net = Internetwork()
        net.add_as(1, "a", Tier.CORE)
        net.add_as(2, "b", Tier.CORE)
        net.set_relationship(1, 2, Relationship.PEER)
        assert net.relationship(1, 2) is Relationship.PEER
        assert net.relationship(2, 1) is Relationship.PEER

    def test_undeclared_relationship_is_none(self, two_as_net):
        net, _ = two_as_net
        net.add_as(9, "nine", Tier.STUB)
        assert net.relationship(1, 9) is None


class TestLookupsAndPredicates:
    def test_link_between(self, two_as_net):
        net, (r1, r2, r3) = two_as_net
        link = net.link_between(r2.rid, r1.rid)
        assert link is not None and link.weight == 3
        assert net.link_between(r1.rid, r3.rid) is None

    def test_is_interdomain(self, two_as_net):
        net, (r1, r2, r3) = two_as_net
        intra = net.link_between(r1.rid, r2.rid)
        inter = net.link_between(r2.rid, r3.rid)
        assert not net.is_interdomain(intra.lid)
        assert net.is_interdomain(inter.lid)

    def test_intra_and_inter_links(self, two_as_net):
        net, (r1, r2, _r3) = two_as_net
        assert [l.a for l in net.intra_links(1)] == [r1.rid]
        assert len(net.inter_links()) == 1
        assert len(net.inter_links_of_as(1)) == 1
        assert len(net.inter_links_of_as(2)) == 1

    def test_link_asns_and_endpoint_in_as(self, two_as_net):
        net, (_r1, r2, r3) = two_as_net
        inter = net.link_between(r2.rid, r3.rid)
        assert net.link_asns(inter.lid) == (1, 2)
        assert net.endpoint_in_as(inter.lid, 1) == r2.rid
        assert net.endpoint_in_as(inter.lid, 2) == r3.rid
        with pytest.raises(TopologyError):
            net.endpoint_in_as(inter.lid, 99)

    def test_link_other_endpoint(self, two_as_net):
        net, (r1, r2, _r3) = two_as_net
        link = net.link_between(r1.rid, r2.rid)
        assert link.other(r1.rid) == r2.rid
        assert link.other(r2.rid) == r1.rid
        with pytest.raises(TopologyError):
            link.other(999)

    def test_unknown_lookups_raise(self, two_as_net):
        net, _ = two_as_net
        with pytest.raises(TopologyError):
            net.router(999)
        with pytest.raises(TopologyError):
            net.link(999)
        with pytest.raises(TopologyError):
            net.autonomous_system(999)
        with pytest.raises(TopologyError):
            net.router_by_address("1.2.3.4")


class TestNetworkState:
    def test_nominal_state(self):
        state = NetworkState.nominal()
        assert state.is_nominal()

    def test_with_failed_links_is_persistent(self):
        base = NetworkState.nominal()
        failed = base.with_failed_links([3, 4])
        assert base.is_nominal()
        assert failed.failed_links == frozenset({3, 4})
        assert failed.with_failed_links([5]).failed_links == frozenset({3, 4, 5})

    def test_states_are_hashable_and_equal_by_value(self):
        a = NetworkState.nominal().with_failed_links([1])
        b = NetworkState.nominal().with_failed_links([1])
        assert a == b and hash(a) == hash(b)

    def test_link_up_accounts_for_router_failures(self, two_as_net):
        net, (r1, r2, _r3) = two_as_net
        link = net.link_between(r1.rid, r2.rid)
        assert net.link_up(link.lid, NetworkState.nominal())
        assert not net.link_up(
            link.lid, NetworkState.nominal().with_failed_routers([r1.rid])
        )
        assert not net.link_up(
            link.lid, NetworkState.nominal().with_failed_links([link.lid])
        )

    def test_filters_compose(self):
        f1 = ExportFilter(link_id=1, at_router=2, prefixes=frozenset({"10.0.16.0/20"}))
        state = NetworkState.nominal().with_filter(f1)
        assert state.filters == (f1,)
        assert f1.blocks(1, 2, "10.0.16.0/20")
        assert not f1.blocks(1, 3, "10.0.16.0/20")
        assert not f1.blocks(1, 2, "10.0.32.0/20")
