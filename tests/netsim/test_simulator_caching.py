"""Caching and identity semantics of the Simulator facade."""

import pytest

from repro.netsim.events import LinkFailureEvent
from repro.netsim.simulator import Simulator


class TestCaches:
    def test_routing_cache_keyed_on_state_value(self, fig2, fig2_sim, nominal):
        lid = fig2.link_between("b1", "b2").lid
        state_a = nominal.with_failed_links([lid])
        state_b = nominal.with_failed_links([lid])
        assert state_a is not state_b
        assert fig2_sim.routing(state_a) is fig2_sim.routing(state_b)

    def test_trace_cache_keyed_on_state_value(self, fig2, fig2_sim, nominal):
        # Two distinct NetworkState objects with equal content must hit
        # the same cache entry — the parallel runner relies on per-state
        # value keying, not object identity.
        lid = fig2.link_between("b1", "b2").lid
        state_a = nominal.with_failed_links([lid])
        state_b = nominal.with_failed_links([lid])
        assert state_a is not state_b
        src = fig2.sensor_routers["s1"]
        dst = fig2.sensor_routers["s2"]
        first = fig2_sim.trace(state_a, src, dst)
        assert fig2_sim.trace(state_b, src, dst) is first

    def test_mutated_state_does_not_return_stale_trace(
        self, fig2, fig2_sim, nominal
    ):
        src = fig2.sensor_routers["s1"]
        dst = fig2.sensor_routers["s2"]
        healthy = fig2_sim.trace(nominal, src, dst)
        # Fail a link on the healthy path: the changed state must miss
        # the cache and the new trace must not walk the dead link.
        on_path = {
            frozenset(hop) for hop in zip(healthy.router_path(), healthy.router_path()[1:])
        }
        lid = next(
            link.lid
            for link in fig2.net.links()
            if frozenset((link.a, link.b)) in on_path
        )
        failed = nominal.with_failed_links([lid])
        rerouted = fig2_sim.trace(failed, src, dst)
        assert rerouted is not healthy
        dead = fig2.net.link(lid)
        hops = list(zip(rerouted.router_path(), rerouted.router_path()[1:]))
        assert frozenset((dead.a, dead.b)) not in {
            frozenset(hop) for hop in hops
        }
        # The healthy entry stays cached and unclobbered.
        assert fig2_sim.trace(nominal, src, dst) is healthy

    def test_trace_cache_distinguishes_blocked_sets(self, fig2, fig2_sim, nominal):
        src = fig2.sensor_routers["s1"]
        dst = fig2.sensor_routers["s2"]
        plain = fig2_sim.trace(nominal, src, dst)
        blocked = fig2_sim.trace(
            nominal, src, dst, blocked_ases=frozenset({fig2.asn("Y")})
        )
        assert plain is not blocked
        assert all(h.identified for h in plain.hops)
        assert any(not h.identified for h in blocked.hops)
        # Both variants stay cached independently.
        assert fig2_sim.trace(nominal, src, dst) is plain
        assert (
            fig2_sim.trace(
                nominal, src, dst, blocked_ases=frozenset({fig2.asn("Y")})
            )
            is blocked
        )

    def test_destination_asns_is_sorted_and_deduped(self, fig2):
        sim = Simulator(fig2.net, [fig2.asn("C"), fig2.asn("A"), fig2.asn("A")])
        assert sim.destination_asns == (fig2.asn("A"), fig2.asn("C"))

    def test_mapper_is_stable_across_calls(self, fig2_sim):
        assert fig2_sim.mapper is fig2_sim.mapper

    def test_igp_cache_shared_between_traces(self, fig2, fig2_sim, nominal):
        fig2_sim.trace(nominal, fig2.sensor_routers["s1"], fig2.sensor_routers["s2"])
        view_before = fig2_sim.igp_cache.view(fig2.asn("Y"), nominal)
        fig2_sim.trace(nominal, fig2.sensor_routers["s1"], fig2.sensor_routers["s3"])
        assert fig2_sim.igp_cache.view(fig2.asn("Y"), nominal) is view_before

    def test_apply_composes_with_existing_state(self, fig2, fig2_sim, nominal):
        lid_a = fig2.link_between("b1", "b2").lid
        lid_b = fig2.link_between("c1", "c2").lid
        first = fig2_sim.apply(LinkFailureEvent((lid_a,)))
        second = fig2_sim.apply(LinkFailureEvent((lid_b,)), base=first)
        assert second.failed_links == frozenset({lid_a, lid_b})
