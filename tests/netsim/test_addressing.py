"""Unit tests for prefix allocation and IP-to-AS mapping."""

import pytest

from repro.errors import AddressingError
from repro.netsim.addressing import IpToAsMapper, PrefixAllocator


class TestPrefixAllocator:
    def test_allocates_distinct_prefixes(self):
        alloc = PrefixAllocator()
        p1 = alloc.allocate_as(1)
        p2 = alloc.allocate_as(2)
        assert p1 != p2
        assert p1.endswith("/20")
        assert alloc.prefix_of(1) == p1

    def test_rejects_double_allocation(self):
        alloc = PrefixAllocator()
        alloc.allocate_as(7)
        with pytest.raises(AddressingError):
            alloc.allocate_as(7)

    def test_rejects_out_of_range_asn(self):
        alloc = PrefixAllocator()
        with pytest.raises(AddressingError):
            alloc.allocate_as(0)
        with pytest.raises(AddressingError):
            alloc.allocate_as(1 << 20)

    def test_router_addresses_are_inside_prefix_and_unique(self):
        alloc = PrefixAllocator()
        alloc.allocate_as(3)
        addresses = [alloc.next_router_address(3) for _ in range(50)]
        assert len(set(addresses)) == 50
        mapper = IpToAsMapper.from_allocator(alloc)
        assert all(mapper.asn_of(a) == 3 for a in addresses)

    def test_sensor_addresses_disjoint_from_router_addresses(self):
        alloc = PrefixAllocator()
        alloc.allocate_as(3)
        routers = {alloc.next_router_address(3) for _ in range(20)}
        sensors = {alloc.next_sensor_address(3) for _ in range(20)}
        assert not routers & sensors

    def test_address_queries_require_allocation(self):
        alloc = PrefixAllocator()
        with pytest.raises(AddressingError):
            alloc.next_router_address(9)
        with pytest.raises(AddressingError):
            alloc.next_sensor_address(9)
        with pytest.raises(AddressingError):
            alloc.prefix_of(9)

    def test_deterministic_across_instances(self):
        a, b = PrefixAllocator(), PrefixAllocator()
        for alloc in (a, b):
            alloc.allocate_as(5)
        assert [a.next_router_address(5) for _ in range(5)] == [
            b.next_router_address(5) for _ in range(5)
        ]

    def test_sensor_pool_exhaustion(self):
        alloc = PrefixAllocator()
        alloc.allocate_as(2)
        for _ in range(1024):
            alloc.next_sensor_address(2)
        with pytest.raises(AddressingError):
            alloc.next_sensor_address(2)


class TestIpToAsMapper:
    def test_longest_prefix_match(self):
        mapper = IpToAsMapper()
        mapper.register("10.0.0.0/8", 1)
        mapper.register("10.1.0.0/16", 2)
        assert mapper.asn_of("10.1.2.3") == 2
        assert mapper.asn_of("10.2.2.3") == 1

    def test_unknown_address_maps_to_none(self):
        mapper = IpToAsMapper()
        mapper.register("10.0.16.0/20", 1)
        assert mapper.asn_of("192.168.1.1") is None
        assert mapper.prefix_containing("192.168.1.1") is None

    def test_invalid_address_raises(self):
        mapper = IpToAsMapper()
        with pytest.raises(AddressingError):
            mapper.asn_of("not-an-ip")

    def test_conflicting_registration_raises(self):
        mapper = IpToAsMapper()
        mapper.register("10.0.16.0/20", 1)
        with pytest.raises(AddressingError):
            mapper.register("10.0.16.0/20", 2)
        mapper.register("10.0.16.0/20", 1)  # idempotent re-registration is fine

    def test_prefix_containing(self):
        mapper = IpToAsMapper()
        mapper.register("10.0.16.0/20", 1)
        assert mapper.prefix_containing("10.0.17.9") == "10.0.16.0/20"

    def test_memo_invalidated_on_register(self):
        mapper = IpToAsMapper()
        mapper.register("10.0.0.0/8", 1)
        assert mapper.asn_of("10.0.16.5") == 1
        mapper.register("10.0.16.0/20", 2)
        assert mapper.asn_of("10.0.16.5") == 2

    def test_from_allocator_covers_every_as(self):
        alloc = PrefixAllocator()
        for asn in (1, 2, 3):
            alloc.allocate_as(asn)
        mapper = IpToAsMapper.from_allocator(alloc)
        assert len(mapper) == 3
        for asn in (1, 2, 3):
            assert mapper.asn_of(alloc.next_router_address(asn)) == asn
