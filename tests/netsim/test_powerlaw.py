"""Tests for the seeded power-law internet generator.

Determinism is the load-bearing property: scaling sweeps hand sizes to
worker processes, so the same ``(n_ases, seed)`` must produce a
byte-identical topology no matter which process builds it.
"""

import json
from concurrent.futures import ProcessPoolExecutor
from statistics import median

import pytest

from repro.errors import TopologyError
from repro.netsim.gen.powerlaw import powerlaw_internet
from repro.netsim.topology import Tier
from repro.netsim.validate import validate_gao_rexford
from repro.serialize import topology_to_dict


def _topology_json(spec):
    """Canonical JSON of one generated topology (picklable helper)."""
    n_ases, seed = spec
    topo = powerlaw_internet(n_ases, seed=seed)
    return json.dumps(topology_to_dict(topo.net), sort_keys=True)


class TestDeterminism:
    def test_same_seed_rebuild_is_byte_identical(self):
        assert _topology_json((200, 7)) == _topology_json((200, 7))

    def test_different_seeds_differ(self):
        assert _topology_json((200, 0)) != _topology_json((200, 1))

    def test_worker_processes_match_serial(self):
        """Builds fanned out over 3 workers equal the serial builds —
        the generator draws only from its own ``random.Random``."""
        specs = [(150, 0), (150, 1), (200, 2)]
        serial = [_topology_json(spec) for spec in specs]
        with ProcessPoolExecutor(max_workers=3) as pool:
            fanned = list(pool.map(_topology_json, specs))
        assert serial == fanned


class TestValidity:
    def test_gao_rexford_clean(self):
        topo = powerlaw_internet(300, seed=2)
        assert validate_gao_rexford(topo.net) == []

    def test_tier_mix_covers_every_as(self):
        topo = powerlaw_internet(250, seed=0, n_core=3)
        assert len(topo.core_asns) == 3
        assert len(topo.all_asns) == 250
        assert set(topo.all_asns) == (
            set(topo.core_asns) | set(topo.transit_asns) | set(topo.stub_asns)
        )
        # Every non-core AS bought transit from somebody.
        for asn in topo.transit_asns + topo.stub_asns:
            assert topo.providers[asn]
        # Stubs are leaves of the provider relation: nobody buys from them.
        stub_set = set(topo.stub_asns)
        for providers in topo.providers.values():
            assert not stub_set & set(providers)

    def test_stub_router_accessor(self):
        topo = powerlaw_internet(100, seed=0)
        stub = topo.stub_asns[0]
        rid = topo.stub_router(stub)
        assert topo.net.asn_of_router(rid) == stub
        assert topo.net.autonomous_system(stub).tier is Tier.STUB
        with pytest.raises(TopologyError):
            topo.stub_router(topo.core_asns[0])


class TestDegreeDistribution:
    def test_customer_degrees_are_heavy_tailed(self):
        """Preferential attachment concentrates customers on a few hubs:
        the busiest provider serves several times the median provider."""
        topo = powerlaw_internet(400, seed=0)
        degrees = sorted(
            (topo.customer_degree(asn) for asn in topo.core_asns + topo.transit_asns),
            reverse=True,
        )
        assert degrees[0] >= 3 * max(1, median(degrees))
        # Degrees account for every purchased transit edge.
        assert sum(degrees) == sum(len(p) for p in topo.providers.values())

    def test_transit_stub_ratio_tracks_fraction(self):
        topo = powerlaw_internet(500, seed=0, transit_fraction=0.2)
        n_non_core = 500 - len(topo.core_asns)
        assert len(topo.transit_asns) == pytest.approx(0.2 * n_non_core, abs=2)
        assert len(topo.stub_asns) == n_non_core - len(topo.transit_asns)


class TestValidation:
    def test_too_few_ases_rejected(self):
        with pytest.raises(TopologyError):
            powerlaw_internet(4, seed=0)

    def test_bad_transit_fraction_rejected(self):
        with pytest.raises(TopologyError):
            powerlaw_internet(100, seed=0, transit_fraction=1.5)

    def test_as_count_over_address_plan_rejected(self):
        with pytest.raises(TopologyError):
            powerlaw_internet(70_000, seed=0)
