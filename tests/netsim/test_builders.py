"""Unit tests for the topology builder helpers and paper fixtures."""

import pytest

from repro.errors import TopologyError
from repro.netsim.builders import TopologyBuilder, chain_network, figure2_network
from repro.netsim.topology import Relationship, Tier


class TestTopologyBuilder:
    def test_named_construction(self):
        b = TopologyBuilder()
        b.autonomous_system("A", Tier.STUB, routers=2)
        b.autonomous_system("B", Tier.CORE, routers=1)
        b.customer_of("A", "B")
        link = b.link("a2", "b1")
        assert b.net.is_interdomain(link.lid)
        assert b.router("a1").asn == b.asn("A")

    def test_duplicate_as_name_rejected(self):
        b = TopologyBuilder()
        b.autonomous_system("A")
        with pytest.raises(TopologyError):
            b.autonomous_system("A")

    def test_unknown_names_raise(self):
        b = TopologyBuilder()
        with pytest.raises(TopologyError):
            b.router("nope")
        with pytest.raises(TopologyError):
            b.asn("nope")

    def test_explicit_asn(self):
        b = TopologyBuilder()
        assert b.autonomous_system("A", asn=77) == 77
        assert b.autonomous_system("B") == 78

    def test_peers_declaration(self):
        b = TopologyBuilder()
        b.autonomous_system("A")
        b.autonomous_system("B")
        b.peers("A", "B")
        assert b.net.relationship(b.asn("A"), b.asn("B")) is Relationship.PEER


class TestFigure2Fixture:
    def test_all_named_elements_resolve(self, fig2):
        for name in ("a1", "a2", "x1", "x2", "y1", "y2", "y3", "y4", "b1", "b2"):
            assert fig2.router(name).name == name
        for asn in ("A", "X", "Y", "B", "C"):
            fig2.asn(asn)
        assert set(fig2.sensor_routers) == {"s1", "s2", "s3"}

    def test_link_between_helper(self, fig2):
        link = fig2.link_between("x2", "y1")
        assert fig2.net.is_interdomain(link.lid)
        with pytest.raises(TopologyError):
            fig2.link_between("a1", "b1")

    def test_y_internal_shortcut_preferred(self, fig2):
        """y1-y4 direct must beat y1-y2-y3-y4 so the paper's paths hold."""
        direct = fig2.link_between("y1", "y4").weight
        detour = (
            fig2.link_between("y1", "y2").weight
            + fig2.link_between("y2", "y3").weight
            + fig2.link_between("y3", "y4").weight
        )
        assert direct < detour


class TestChainNetwork:
    def test_chain_is_linear_and_valley_free(self):
        b, names = chain_network(n_ases=5, routers_per_as=1)
        assert names == ["N1", "N2", "N3", "N4", "N5"]
        net = b.net
        assert net.num_ases == 5
        assert len(net.inter_links()) == 4
        middle = b.asn("N3")
        # Relationships climb to the middle and descend after it.
        assert (
            net.relationship(b.asn("N1"), b.asn("N2"))
            is Relationship.CUSTOMER_PROVIDER
        )
        assert (
            net.relationship(b.asn("N5"), b.asn("N4"))
            is Relationship.CUSTOMER_PROVIDER
        )
        assert net.autonomous_system(middle).tier is Tier.CORE

    def test_multi_router_chain_connectivity(self):
        b, names = chain_network(n_ases=3, routers_per_as=2)
        net = b.net
        for name in names:
            assert len(net.intra_links(b.asn(name))) == 1

    def test_end_to_end_forwarding_through_chain(self):
        from repro.netsim.simulator import Simulator
        from repro.netsim.topology import NetworkState

        b, names = chain_network(n_ases=5, routers_per_as=1)
        first = b.router("n11").rid
        last = b.router("n51").rid
        sim = Simulator(b.net, [b.asn(names[0]), b.asn(names[-1])])
        trace = sim.trace(NetworkState.nominal(), first, last)
        assert trace.reached
        assert len(trace.hops) == 5

    def test_too_short_chain_rejected(self):
        with pytest.raises(TopologyError):
            chain_network(n_ases=1)
