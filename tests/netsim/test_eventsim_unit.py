"""Unit tests for the event-driven BGP simulator (beyond the equivalence
property tests: message mechanics, guards, speaker behaviour)."""

import pytest

from repro.errors import RoutingError
from repro.netsim.bgp.eventsim import BgpMessage, EventDrivenBgp
from repro.netsim.builders import TopologyBuilder
from repro.netsim.topology import NetworkState, Relationship, Tier


@pytest.fixture
def triangle():
    """Three ASes: origin stub S under providers P and Q that peer."""
    b = TopologyBuilder()
    b.autonomous_system("P", Tier.CORE, routers=1)
    b.autonomous_system("Q", Tier.CORE, routers=1)
    b.autonomous_system("S", Tier.STUB, routers=1)
    b.peers("P", "Q")
    b.customer_of("S", "P")
    b.customer_of("S", "Q")
    b.link("p1", "q1")
    b.link("s1", "p1")
    b.link("s1", "q1")
    prefixes = {b.net.autonomous_system(b.asn("S")).prefix: b.asn("S")}
    return b, prefixes


class TestMessageMechanics:
    def test_cold_start_announces_only(self, triangle):
        b, prefixes = triangle
        sim = EventDrivenBgp(b.net, prefixes)
        sim.converge(NetworkState.nominal())
        assert sim.message_log
        assert all(m.route is not None for m in sim.message_log)
        # The origin never announces a path containing the receiver.
        for message in sim.message_log:
            assert message.to_asn not in message.route

    def test_no_duplicate_adjacent_announcements(self, triangle):
        """Adj-out diffing suppresses no-op re-announcements: per session
        and prefix, consecutive messages always differ."""
        b, prefixes = triangle
        sim = EventDrivenBgp(b.net, prefixes)
        sim.converge(NetworkState.nominal())
        per_session = {}
        for message in sim.message_log:
            key = (message.link_id, message.from_asn, message.to_asn)
            assert per_session.get(key) != message.route
            per_session[key] = message.route

    def test_peers_do_not_relay_peer_routes(self, triangle):
        b, prefixes = triangle
        sim = EventDrivenBgp(b.net, prefixes)
        routing = sim.converge(NetworkState.nominal())
        # P learnt S directly (customer); it exports to its peer Q, but Q
        # must not re-export P's version anywhere (valley-freeness): Q's
        # best is its own customer route.
        prefix = next(iter(prefixes))
        assert routing.as_path(b.asn("P"), prefix) == (b.asn("P"), b.asn("S"))
        assert routing.as_path(b.asn("Q"), prefix) == (b.asn("Q"), b.asn("S"))

    def test_dead_origin_produces_silence(self, triangle):
        b, prefixes = triangle
        sim = EventDrivenBgp(b.net, prefixes)
        state = NetworkState.nominal().with_failed_routers(
            [b.router("s1").rid]
        )
        routing = sim.converge(state)
        assert sim.message_log == []
        prefix = next(iter(prefixes))
        assert routing.as_path(b.asn("P"), prefix) is None

    def test_failover_uses_peer_transit_when_allowed(self, triangle):
        """With S-P down, P reaches S... only if valley-freeness allows:
        Q's route to S is a customer route, exported to peer P."""
        b, prefixes = triangle
        lid = b.net.link_between(b.router("s1").rid, b.router("p1").rid).lid
        state = NetworkState.nominal().with_failed_links([lid])
        routing = EventDrivenBgp(b.net, prefixes).converge(state)
        prefix = next(iter(prefixes))
        assert routing.as_path(b.asn("P"), prefix) == (
            b.asn("P"),
            b.asn("Q"),
            b.asn("S"),
        )

    def test_foreign_prefix_rejected(self, triangle):
        b, _prefixes = triangle
        with pytest.raises(RoutingError):
            EventDrivenBgp(b.net, {"192.168.0.0/24": b.asn("S")})

    def test_message_is_a_value_object(self):
        a = BgpMessage("p", 1, 2, 3, (2, 9))
        b = BgpMessage("p", 1, 2, 3, (2, 9))
        assert a == b
        assert BgpMessage("p", 1, 2, 3, None).route is None
