"""Unit tests for data-plane forwarding and traceroute simulation."""

import pytest

from repro.netsim.forwarding import IgpCache, data_path
from repro.netsim.topology import NetworkState
from repro.netsim.traceroute import trace_route


def names(fig, router_path):
    return [fig.net.router(rid).name for rid in router_path]


class TestDataPath:
    def test_nominal_path_matches_figure2(self, fig2, fig2_sim, nominal):
        routing = fig2_sim.routing(nominal)
        outcome = data_path(
            fig2.net,
            routing,
            nominal,
            fig2.sensor_routers["s1"],
            fig2.sensor_routers["s2"],
        )
        assert outcome.reached
        assert names(fig2, outcome.router_path) == [
            "a1", "a2", "x1", "x2", "y1", "y4", "b1", "b2",
        ]

    def test_same_as_uses_igp_only(self, fig2, fig2_sim, nominal):
        routing = fig2_sim.routing(nominal)
        y1, y3 = fig2.router("y1").rid, fig2.router("y3").rid
        outcome = data_path(fig2.net, routing, nominal, y1, y3)
        assert outcome.reached
        assert names(fig2, outcome.router_path) == ["y1", "y2", "y3"]

    def test_same_router_trivial(self, fig2, fig2_sim, nominal):
        routing = fig2_sim.routing(nominal)
        a1 = fig2.router("a1").rid
        outcome = data_path(fig2.net, routing, nominal, a1, a1)
        assert outcome.reached and outcome.router_path == (a1,)

    def test_no_route_blackhole(self, fig2, fig2_sim, nominal):
        lid = fig2.link_between("y4", "b1").lid
        state = nominal.with_failed_links([lid])
        routing = fig2_sim.routing(state)
        outcome = data_path(
            fig2.net,
            routing,
            state,
            fig2.sensor_routers["s1"],
            fig2.sensor_routers["s2"],
        )
        assert not outcome.reached
        assert outcome.failure_reason == "no-route"

    def test_igp_partition_in_destination_as(self, fig2, fig2_sim, nominal):
        lid = fig2.link_between("b1", "b2").lid
        state = nominal.with_failed_links([lid])
        routing = fig2_sim.routing(state)
        outcome = data_path(
            fig2.net,
            routing,
            state,
            fig2.sensor_routers["s1"],
            fig2.sensor_routers["s2"],
        )
        assert not outcome.reached
        assert outcome.failure_reason == "igp-partition"
        assert names(fig2, outcome.router_path)[-1] == "b1"

    def test_dead_source(self, fig2, fig2_sim, nominal):
        state = nominal.with_failed_routers([fig2.router("a1").rid])
        routing = fig2_sim.routing(state)
        outcome = data_path(
            fig2.net,
            routing,
            state,
            fig2.router("a1").rid,
            fig2.sensor_routers["s2"],
        )
        assert not outcome.reached
        assert outcome.failure_reason == "dead-endpoint"
        assert outcome.router_path == ()

    def test_dead_destination_router(self, fig2, fig2_sim, nominal):
        state = nominal.with_failed_routers([fig2.router("b2").rid])
        routing = fig2_sim.routing(state)
        outcome = data_path(
            fig2.net,
            routing,
            state,
            fig2.sensor_routers["s1"],
            fig2.router("b2").rid,
        )
        assert not outcome.reached

    def test_igp_cache_is_reused(self, fig2, fig2_sim, nominal):
        cache = IgpCache(fig2.net)
        view_a = cache.view(fig2.asn("Y"), nominal)
        view_b = cache.view(fig2.asn("Y"), nominal)
        assert view_a is view_b
        other = cache.view(fig2.asn("Y"), nominal.with_failed_links([0]))
        assert other is not view_a


class TestTraceroute:
    def test_hops_report_router_addresses(self, fig2, fig2_sim, nominal):
        routing = fig2_sim.routing(nominal)
        trace = trace_route(
            fig2.net,
            routing,
            nominal,
            fig2.sensor_routers["s1"],
            fig2.sensor_routers["s3"],
        )
        assert trace.reached
        assert all(hop.identified for hop in trace.hops)
        assert trace.addresses()[0] == fig2.net.router(
            fig2.sensor_routers["s1"]
        ).address

    def test_blocked_as_yields_stars(self, fig2, fig2_sim, nominal):
        routing = fig2_sim.routing(nominal)
        trace = trace_route(
            fig2.net,
            routing,
            nominal,
            fig2.sensor_routers["s1"],
            fig2.sensor_routers["s2"],
            blocked_ases=frozenset({fig2.asn("Y")}),
        )
        hidden = [h for h in trace.hops if not h.identified]
        assert len(hidden) == 2  # y1 and y4
        assert {fig2.net.asn_of_router(h.router_id) for h in hidden} == {
            fig2.asn("Y")
        }

    def test_endpoints_identified_even_when_blocked(self, fig2, fig2_sim, nominal):
        routing = fig2_sim.routing(nominal)
        trace = trace_route(
            fig2.net,
            routing,
            nominal,
            fig2.sensor_routers["s1"],
            fig2.sensor_routers["s2"],
            blocked_ases=frozenset({fig2.asn("A"), fig2.asn("B")}),
        )
        assert trace.hops[0].identified  # source gateway
        assert trace.hops[-1].identified  # destination gateway
        assert not trace.hops[1].identified  # a2 hidden

    def test_failed_trace_is_truncated(self, fig2, fig2_sim, nominal):
        lid = fig2.link_between("b1", "b2").lid
        state = nominal.with_failed_links([lid])
        trace = trace_route(
            fig2.net,
            fig2_sim.routing(state),
            state,
            fig2.sensor_routers["s1"],
            fig2.sensor_routers["s2"],
        )
        assert not trace.reached
        assert names(fig2, trace.router_path())[-1] == "b1"

    def test_interior_of_blocked_as_stays_dark_on_failed_trace(
        self, fig2, fig2_sim, nominal
    ):
        lid = fig2.link_between("b1", "b2").lid
        state = nominal.with_failed_links([lid])
        trace = trace_route(
            fig2.net,
            fig2_sim.routing(state),
            state,
            fig2.sensor_routers["s1"],
            fig2.sensor_routers["s2"],
            blocked_ases=frozenset({fig2.asn("B")}),
        )
        assert not trace.reached
        # The last hop (b1, inside blocked B) is not an endpoint: dark.
        assert not trace.hops[-1].identified
