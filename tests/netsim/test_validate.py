"""Tests for the Gao-Rexford topology validator."""

import pytest

from repro.netsim.builders import TopologyBuilder
from repro.netsim.gen.internet import research_internet
from repro.netsim.topology import Relationship, Tier
from repro.netsim.validate import validate_gao_rexford


class TestValidator:
    def test_generated_topologies_are_clean(self):
        topo = research_internet(n_tier2=4, n_stub=12, seed=6)
        assert validate_gao_rexford(topo.net) == []

    def test_figure2_is_clean(self, fig2):
        assert validate_gao_rexford(fig2.net) == []

    def test_provider_cycle_detected(self):
        b = TopologyBuilder()
        for name in ("A", "B", "C"):
            b.autonomous_system(name, Tier.TIER2, routers=1)
        # A pays B, B pays C, C pays A: everyone is their own provider.
        b.customer_of("A", "B")
        b.customer_of("B", "C")
        b.customer_of("C", "A")
        b.link("a1", "b1")
        b.link("b1", "c1")
        b.link("c1", "a1")
        issues = validate_gao_rexford(b.net)
        kinds = {i.kind for i in issues}
        assert "provider-cycle" in kinds
        cycle = next(i for i in issues if i.kind == "provider-cycle")
        assert "AS" in cycle.detail

    def test_isolated_as_detected(self):
        b = TopologyBuilder()
        b.autonomous_system("A", Tier.STUB, routers=1)
        b.autonomous_system("B", Tier.STUB, routers=1)
        b.autonomous_system("LONER", Tier.STUB, routers=1)
        b.customer_of("A", "B")
        b.link("a1", "b1")
        issues = validate_gao_rexford(b.net)
        assert any(
            i.kind == "isolated-as" and "LONER" in i.detail for i in issues
        )

    def test_single_as_world_is_not_isolated(self):
        b = TopologyBuilder()
        b.autonomous_system("A", Tier.STUB, routers=2)
        b.link("a1", "a2")
        assert validate_gao_rexford(b.net) == []

    def test_peering_cycles_are_fine(self):
        """Only customer/provider cycles are unsafe; a peering triangle
        (like the three cores) is standard."""
        b = TopologyBuilder()
        for name in ("A", "B", "C"):
            b.autonomous_system(name, Tier.CORE, routers=1)
        b.peers("A", "B")
        b.peers("B", "C")
        b.peers("A", "C")
        b.link("a1", "b1")
        b.link("b1", "c1")
        b.link("c1", "a1")
        assert validate_gao_rexford(b.net) == []


class TestAsRanking:
    def test_ranking_from_figure2_diagnosis(self, fig2, fig2_sim, nominal):
        from repro.core import NetDiagnoser, rank_suspect_ases
        from repro.measurement.collector import take_snapshot
        from repro.measurement.sensors import deploy_sensors
        from repro.netsim.events import LinkFailureEvent

        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
        )
        lid = fig2.link_between("b1", "b2").lid
        after = fig2_sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(fig2_sim, sensors, nominal, after)
        result = NetDiagnoser("nd-edge").diagnose(snap)
        names = {a.asn: a.name for a in fig2.net.ases()}
        ranked = rank_suspect_ases(result, snap.asn_of, names=names)
        assert ranked
        # AS B (where b1-b2 lives) must top the ranking.
        assert ranked[0].asn == fig2.asn("B")
        assert ranked[0].name == "B"
        weights = [s.weight for s in ranked]
        assert weights == sorted(weights, reverse=True)

    def test_empty_hypothesis_ranks_nothing(self, fig2):
        from repro.core import rank_suspect_ases
        from repro.core.graph import InferredGraph
        from repro.core.result import DiagnosisResult

        result = DiagnosisResult(
            algorithm="tomo", hypothesis=frozenset(), graph=InferredGraph()
        )
        assert rank_suspect_ases(result, lambda _a: None) == []


class TestAsRankingVoteSplitting:
    def test_uh_endpoints_split_votes_across_tags(self):
        from repro.core import rank_suspect_ases
        from repro.core.graph import InferredGraph
        from repro.core.linkspace import UhNode, ip_link
        from repro.core.result import DiagnosisResult

        uh = UhNode("s", "d", "pre", 3)
        token = ip_link("10.0.16.1", uh)
        result = DiagnosisResult(
            algorithm="nd-lg",
            hypothesis=frozenset({token}),
            graph=InferredGraph(),
            details={"uh_tags": {uh: frozenset({7, 8})}},
        )
        ranked = rank_suspect_ases(result, {"10.0.16.1": 1}.get)
        weights = {s.asn: s.weight for s in ranked}
        # Identified endpoint: half a vote on AS 1; UH endpoint: half a
        # vote split across {7, 8}.
        assert weights[1] == 0.5
        assert weights[7] == weights[8] == 0.25
