"""Unit tests for the topology generators (core maps, hub-spoke, internet)."""

import pytest

from repro.netsim.gen.abilene import ABILENE_CIRCUITS, ABILENE_POPS, build_abilene
from repro.netsim.gen.geant import GEANT_CIRCUITS, GEANT_POPS, build_geant
from repro.netsim.gen.hubspoke import HUB_AND_SPOKE_SIZE, build_hub_and_spoke
from repro.netsim.gen.internet import research_internet
from repro.netsim.gen.wide import WIDE_CIRCUITS, WIDE_POPS, build_wide
from repro.netsim.topology import Internetwork, Tier


def _fresh_as(asn=1, tier=Tier.CORE):
    net = Internetwork()
    net.add_as(asn, f"as{asn}", tier)
    return net


class TestCoreMaps:
    @pytest.mark.parametrize(
        "pops,circuits,builder",
        [
            (ABILENE_POPS, ABILENE_CIRCUITS, build_abilene),
            (GEANT_POPS, GEANT_CIRCUITS, build_geant),
            (WIDE_POPS, WIDE_CIRCUITS, build_wide),
        ],
        ids=["abilene", "geant", "wide"],
    )
    def test_map_is_connected_and_complete(self, pops, circuits, builder):
        net = _fresh_as()
        routers = builder(net, 1)
        assert set(routers) == set(pops)
        assert net.num_links == len(circuits)
        # Connectivity: BFS over intra links reaches every PoP.
        seen = {next(iter(routers.values()))}
        frontier = list(seen)
        while frontier:
            rid = frontier.pop()
            for link in net.links_of_router(rid):
                other = link.other(rid)
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        assert seen == set(routers.values())

    def test_abilene_size_matches_2007_map(self):
        assert len(ABILENE_POPS) == 11
        assert len(ABILENE_CIRCUITS) == 14


class TestHubAndSpoke:
    def test_twelve_node_layout(self):
        net = _fresh_as(tier=Tier.TIER2)
        layout = build_hub_and_spoke(net, 1)
        assert len(layout["hubs"]) == 2
        assert len(layout["spokes"]) == HUB_AND_SPOKE_SIZE - 2
        assert net.num_routers == HUB_AND_SPOKE_SIZE
        # Literal hub-and-spoke: every spoke is single-homed.
        for spoke in layout["spokes"]:
            assert len(net.links_of_router(spoke)) == 1

    def test_spoke_links_are_cut_links(self):
        """A spoke failure partitions the AS internally — the property the
        blocked-traceroute experiments depend on."""
        from repro.netsim.igp import IgpView
        from repro.netsim.topology import NetworkState

        net = _fresh_as(tier=Tier.TIER2)
        layout = build_hub_and_spoke(net, 1)
        spoke = layout["spokes"][0]
        lid = net.links_of_router(spoke)[0].lid
        view = IgpView(net, 1, NetworkState.nominal().with_failed_links([lid]))
        assert view.path(layout["hubs"][0], spoke) is None


class TestResearchInternet:
    def test_default_inventory_matches_paper(self):
        topo = research_internet(seed=5)
        assert len(topo.core_asns) == 3
        assert len(topo.tier2_asns) == 22
        assert len(topo.stub_asns) == 140
        assert topo.net.num_ases == 165

    def test_multihoming_fractions_exact(self):
        topo = research_internet(seed=5)
        t2_multi = sum(1 for a in topo.tier2_asns if len(topo.providers[a]) == 2)
        stub_multi = sum(1 for a in topo.stub_asns if len(topo.providers[a]) == 2)
        assert t2_multi == round(0.5 * 22)
        assert stub_multi == round(0.25 * 140)

    def test_same_seed_reproduces_topology(self):
        a = research_internet(seed=9)
        b = research_internet(seed=9)
        assert a.net.num_links == b.net.num_links
        assert [l.endpoints() for l in a.net.links()] == [
            l.endpoints() for l in b.net.links()
        ]

    def test_different_seed_changes_wiring(self):
        a = research_internet(seed=9)
        b = research_internet(seed=10)
        assert [l.endpoints() for l in a.net.links()] != [
            l.endpoints() for l in b.net.links()
        ]

    def test_cores_fully_meshed(self):
        topo = research_internet(seed=5)
        pairs = set()
        for link in topo.net.inter_links():
            asns = topo.net.link_asns(link.lid)
            if all(a in topo.core_asns for a in asns):
                pairs.add(asns)
        assert pairs == {(1, 2), (1, 3), (2, 3)}

    def test_every_stub_has_a_provider_link(self):
        topo = research_internet(seed=5)
        for asn in topo.stub_asns:
            router = topo.stub_router(asn)
            assert topo.net.links_of_router(router), f"stub {asn} is isolated"

    def test_stub_router_rejects_non_stub(self):
        topo = research_internet(seed=5)
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            topo.stub_router(topo.core_asns[0])

    def test_scaled_down_generation(self):
        topo = research_internet(n_tier2=4, n_stub=10, seed=3)
        assert topo.net.num_ases == 17
        assert len(topo.tier2_asns) == 4


class TestAlternativeTier2Styles:
    def test_ring_is_two_connected(self):
        from repro.netsim.gen.hubspoke import build_ring
        from repro.netsim.igp import IgpView
        from repro.netsim.topology import NetworkState

        net = _fresh_as(tier=Tier.TIER2)
        layout = build_ring(net, 1)
        assert net.num_routers == 12
        assert net.num_links == 12
        # Any single internal link failure is survivable on a ring.
        routers = layout["hubs"] + layout["spokes"]
        lid = net.links_of_router(routers[0])[0].lid
        view = IgpView(net, 1, NetworkState.nominal().with_failed_links([lid]))
        assert all(
            view.path(routers[0], other) is not None for other in routers[1:]
        )

    def test_ladder_has_two_planes(self):
        from repro.netsim.gen.hubspoke import build_ladder

        net = _fresh_as(tier=Tier.TIER2)
        layout = build_ladder(net, 1)
        assert net.num_routers == 12
        # 2 chains of 5 links + 6 rungs.
        assert net.num_links == 16
        assert len(layout["hubs"]) == 2

    def test_research_internet_accepts_styles(self):
        for style in ("hubspoke", "ring", "ladder"):
            topo = research_internet(
                n_tier2=3, n_stub=6, seed=2, tier2_style=style
            )
            assert topo.net.num_ases == 12

    def test_unknown_style_rejected(self):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            research_internet(n_tier2=2, n_stub=4, tier2_style="torus")
