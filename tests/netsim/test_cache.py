"""Unit tests for the bounded LRU cache behind the simulation caches."""

import pytest

from repro.errors import ReproError
from repro.netsim.cache import LruCache


class TestLruCache:
    def test_get_put_roundtrip_and_counters(self):
        cache = LruCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.counters() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
        }

    def test_eviction_drops_least_recently_used(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_recency_without_evicting(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        assert cache.evictions == 0
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_zero_capacity_is_unbounded(self):
        cache = LruCache(capacity=0)
        for index in range(1000):
            cache.put(index, index)
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ReproError):
            LruCache(capacity=-1)

    def test_clear_preserves_counters(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_contains_does_not_touch_recency_or_counters(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # must NOT refresh "a"
        assert cache.hits == 0 and cache.misses == 0
        cache.put("c", 3)
        assert "a" not in cache  # "a" was still the LRU entry

    def test_items_lists_lru_first_without_touching_state(self):
        cache = LruCache(capacity=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" is now the LRU entry
        assert cache.items() == [("b", 2), ("a", 1)]
        # Listing is pure inspection: no counters, no recency change.
        assert cache.hits == 1 and cache.misses == 0
        cache.put("c", 3)
        cache.put("d", 4)  # evicts "b", still the LRU after items()
        assert "b" not in cache

    def test_pop_removes_without_counting(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a") is None  # absent: no error, no miss
        assert len(cache) == 0
        assert cache.counters() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
        }

    def test_pop_frees_capacity(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.pop("a")
        cache.put("c", 3)  # fits in the freed slot: nothing evicted
        assert cache.evictions == 0
        assert "b" in cache and "c" in cache


class TestLruCacheEdgeCases:
    def test_capacity_zero_never_evicts_and_counts(self):
        cache = LruCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.counters() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
        }

    def test_capacity_one_keeps_exactly_the_last_entry(self):
        cache = LruCache(capacity=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" not in cache
        assert cache.get("b") == 2
        assert len(cache) == 1
        assert cache.evictions == 1
        cache.put("b", 20)  # refresh in place: full but nothing to evict
        assert cache.evictions == 1
        assert cache.get("b") == 20

    def test_reinsert_after_eviction_is_a_fresh_entry(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.get("a") is None  # one honest miss
        cache.put("a", 10)  # re-insert: evicts "b", the current LRU
        assert cache.get("a") == 10
        assert "b" not in cache
        assert cache.evictions == 2

    def test_hits_plus_misses_equals_lookups(self):
        cache = LruCache(capacity=3)
        lookups = 0
        for index in range(20):
            cache.put(index % 5, index)
            for key in (index % 5, index % 7, "never-inserted"):
                cache.get(key)
                lookups += 1
        assert cache.hits + cache.misses == lookups
        assert cache.hits > 0 and cache.misses > 0


class TestLruCacheCounterInvariants:
    """pop/items/__contains__ are accounting-neutral: only get() counts.

    The sliding window leans on this — eviction sweeps (items + pop) and
    membership checks must not skew the hit-rate the report prints."""

    def test_hits_plus_misses_survives_interleaved_pops(self):
        cache = LruCache(capacity=4)
        lookups = 0
        for index in range(30):
            cache.put(index % 6, index)
            cache.get(index % 6)
            lookups += 1
            if index % 3 == 0:
                cache.pop(index % 6)  # policy eviction: not a lookup
                cache.get(index % 6)  # honest miss after the pop
                lookups += 1
        assert cache.hits + cache.misses == lookups
        assert cache.misses > 0

    def test_pop_missing_key_counts_nothing(self):
        cache = LruCache(capacity=2)
        assert cache.pop("absent") is None
        assert cache.counters() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
        }

    def test_items_never_perturbs_recency(self):
        """Scanning items() must leave the LRU order untouched: the next
        over-capacity put still evicts the true LRU entry, and the scan
        itself counts no lookups."""
        cache = LruCache(capacity=3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")  # recency now b < c < a
        before = cache.counters()
        assert [key for key, _value in cache.items()] == ["b", "c", "a"]
        assert cache.counters() == before
        cache.put("d", "d")  # evicts "b", not the first-scanned entry
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_contains_counts_nothing(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
        assert cache.hits == 0 and cache.misses == 0
