"""Unit tests for the bounded LRU cache behind the simulation caches."""

import pytest

from repro.errors import ReproError
from repro.netsim.cache import LruCache


class TestLruCache:
    def test_get_put_roundtrip_and_counters(self):
        cache = LruCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.counters() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
        }

    def test_eviction_drops_least_recently_used(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_recency_without_evicting(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        assert cache.evictions == 0
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_zero_capacity_is_unbounded(self):
        cache = LruCache(capacity=0)
        for index in range(1000):
            cache.put(index, index)
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ReproError):
            LruCache(capacity=-1)

    def test_clear_preserves_counters(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_contains_does_not_touch_recency_or_counters(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # must NOT refresh "a"
        assert cache.hits == 0 and cache.misses == 0
        cache.put("c", 3)
        assert "a" not in cache  # "a" was still the LRU entry
