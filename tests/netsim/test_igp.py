"""Unit tests for the per-AS link-state IGP."""

import pytest

from repro.errors import RoutingError
from repro.netsim.igp import IgpView, igp_link_down_events
from repro.netsim.topology import Internetwork, NetworkState, Tier


@pytest.fixture
def diamond():
    """One AS shaped a--b--d / a--c--d with a heavy shortcut a--d."""
    net = Internetwork()
    net.add_as(1, "one", Tier.CORE)
    a = net.add_router(1, "a").rid
    b = net.add_router(1, "b").rid
    c = net.add_router(1, "c").rid
    d = net.add_router(1, "d").rid
    net.add_link(a, b, weight=1)
    net.add_link(b, d, weight=1)
    net.add_link(a, c, weight=1)
    net.add_link(c, d, weight=2)
    net.add_link(a, d, weight=5)
    return net, (a, b, c, d)


class TestShortestPaths:
    def test_prefers_lowest_cost(self, diamond):
        net, (a, b, _c, d) = diamond
        view = IgpView(net, 1, NetworkState.nominal())
        assert view.path(a, d) == [a, b, d]
        assert view.distance(a, d) == 2

    def test_trivial_path(self, diamond):
        net, (a, *_rest) = diamond
        view = IgpView(net, 1, NetworkState.nominal())
        assert view.path(a, a) == [a]
        assert view.distance(a, a) == 0

    def test_reroutes_around_failed_link(self, diamond):
        net, (a, b, c, d) = diamond
        lid = net.link_between(b, d).lid
        view = IgpView(net, 1, NetworkState.nominal().with_failed_links([lid]))
        assert view.path(a, d) == [a, c, d]
        assert view.distance(a, d) == 3

    def test_reroutes_around_failed_router(self, diamond):
        net, (a, b, c, d) = diamond
        state = NetworkState.nominal().with_failed_routers([b])
        view = IgpView(net, 1, state)
        assert view.path(a, d) == [a, c, d]

    def test_partition_returns_none(self, diamond):
        net, (a, b, c, d) = diamond
        lids = [
            net.link_between(b, d).lid,
            net.link_between(c, d).lid,
            net.link_between(a, d).lid,
        ]
        view = IgpView(net, 1, NetworkState.nominal().with_failed_links(lids))
        assert view.path(a, d) is None
        assert view.distance(a, d) is None
        assert not view.reachable(a, d)

    def test_failed_endpoint_unreachable(self, diamond):
        net, (a, _b, _c, d) = diamond
        view = IgpView(net, 1, NetworkState.nominal().with_failed_routers([d]))
        assert view.path(a, d) is None

    def test_foreign_router_rejected(self, diamond):
        net, (a, *_rest) = diamond
        net.add_as(2, "two", Tier.STUB)
        foreign = net.add_router(2).rid
        view = IgpView(net, 1, NetworkState.nominal())
        with pytest.raises(RoutingError):
            view.path(a, foreign)

    def test_deterministic_tie_break(self):
        """Equal-cost paths resolve to the lexicographically smallest."""
        net = Internetwork()
        net.add_as(1, "one", Tier.CORE)
        a = net.add_router(1).rid
        b = net.add_router(1).rid
        c = net.add_router(1).rid
        d = net.add_router(1).rid
        net.add_link(a, b, weight=1)
        net.add_link(b, d, weight=1)
        net.add_link(a, c, weight=1)
        net.add_link(c, d, weight=1)
        view = IgpView(net, 1, NetworkState.nominal())
        assert view.path(a, d) == [a, b, d]  # b < c


class TestLinkDownEvents:
    def test_reports_failed_intra_links_only(self, diamond):
        net, (a, b, _c, _d) = diamond
        net.add_as(2, "two", Tier.STUB)
        ext = net.add_router(2).rid
        from repro.netsim.topology import Relationship

        net.set_relationship(2, 1, Relationship.CUSTOMER_PROVIDER)
        inter = net.add_link(a, ext)
        intra = net.link_between(a, b)
        state = NetworkState.nominal().with_failed_links([intra.lid, inter.lid])
        events = igp_link_down_events(net, 1, state)
        assert [l.lid for l in events] == [intra.lid]

    def test_router_failure_downs_its_links(self, diamond):
        net, (a, b, _c, _d) = diamond
        state = NetworkState.nominal().with_failed_routers([a])
        down = {l.lid for l in igp_link_down_events(net, 1, state)}
        expected = {l.lid for l in net.links_of_router(a)}
        assert down == expected

    def test_nominal_state_has_no_events(self, diamond):
        net, _ = diamond
        assert igp_link_down_events(net, 1, NetworkState.nominal()) == []
