"""Tests for the measurement-timing-skew hazard and its mitigation (§6)."""

import random

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.core.linkspace import physical_link
from repro.errors import MeasurementError
from repro.measurement.sensors import deploy_sensors
from repro.measurement.skew import (
    pick_stale_sensors,
    remeasure,
    take_skewed_snapshot,
)
from repro.netsim.events import LinkFailureEvent


@pytest.fixture
def world(fig2, fig2_sim):
    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    return fig2, fig2_sim, sensors


class TestPickStaleSensors:
    def test_fraction_is_respected(self, world):
        _fig, _sim, sensors = world
        rng = random.Random(1)
        assert len(pick_stale_sensors(sensors, 0.0, rng)) == 0
        assert len(pick_stale_sensors(sensors, 1.0, rng)) == 3
        assert len(pick_stale_sensors(sensors, 0.34, rng)) == 1

    def test_invalid_fraction_rejected(self, world):
        _fig, _sim, sensors = world
        with pytest.raises(MeasurementError):
            pick_stale_sensors(sensors, 1.5, random.Random(1))


class TestSkewedSnapshot:
    def test_no_stale_sensors_equals_clean_snapshot(self, world, nominal):
        fig, sim, sensors = world
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        skewed = take_skewed_snapshot(sim, sensors, nominal, after, ())
        clean = remeasure(sim, sensors, nominal, after)
        assert set(skewed.failed_pairs()) == set(clean.failed_pairs())

    def test_stale_source_reports_prefailure_world(self, world, nominal):
        fig, sim, sensors = world
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        # s1 is stale: its outbound probes still see the old world.
        snap = take_skewed_snapshot(
            sim, sensors, nominal, after, {sensors[0].sensor_id}
        )
        s1, s2 = sensors[0].address, sensors[1].address
        assert (s1, s2) in set(snap.working_pairs())  # stale lie
        assert (s2, s1) in set(snap.failed_pairs())  # fresh truth

    def test_unknown_stale_id_rejected(self, world, nominal):
        fig, sim, sensors = world
        with pytest.raises(MeasurementError):
            take_skewed_snapshot(sim, sensors, nominal, nominal, {99})

    def test_stale_lie_suppresses_the_forward_evidence(self, world, nominal):
        """The §6 hazard end to end: a stale 'working' report kills the
        forward failure evidence and exonerates the forward tokens over
        the failed link.  Directedness limits the damage — the reverse
        probes (from synchronised sensors) still blame the physical link
        from the other side — but the forward direction is lost."""
        from repro.core.linkspace import ip_link, physical_projection

        fig, sim, sensors = world
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        skewed = take_skewed_snapshot(
            sim, sensors, nominal, after, {sensors[0].sensor_id}
        )
        degraded = NetDiagnoser("nd-edge").diagnose(skewed)
        forward = ip_link(
            fig.router("y4").address, fig.router("b1").address
        )
        reverse = ip_link(
            fig.router("b1").address, fig.router("y4").address
        )
        directed = physical_projection(degraded.hypothesis)
        assert forward not in directed  # the stale lie exonerated it
        assert reverse in directed  # fresh reverse evidence survives

    def test_remeasure_restores_sensitivity(self, world, nominal):
        fig, sim, sensors = world
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        truth = physical_link(
            fig.router("y4").address, fig.router("b1").address
        )
        clean = remeasure(sim, sensors, nominal, after)
        repaired = NetDiagnoser("nd-edge").diagnose(clean)
        assert truth in repaired.physical_hypothesis()
