"""Unit tests for sensor deployment, placements and the probing mesh."""

import random

import pytest

from repro.core.linkspace import UhNode
from repro.core.pathset import EPOCH_POST, EPOCH_PRE
from repro.errors import MeasurementError
from repro.measurement.probing import probe_mesh, probe_pair
from repro.measurement.sensors import (
    deploy_sensors,
    distant_as_placement,
    distant_split_placement,
    random_stub_placement,
    same_as_placement,
)
from repro.netsim.events import LinkFailureEvent
from repro.netsim.simulator import Simulator


class TestDeployment:
    def test_sensor_addresses_live_in_host_as(self, fig2):
        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2")]
        )
        mapper = fig2.net.ip_to_as_mapper()
        assert mapper.asn_of(sensors[0].address) == fig2.asn("A")
        assert mapper.asn_of(sensors[1].address) == fig2.asn("B")
        assert sensors[0].name == "s1"

    def test_multiple_sensors_per_router_get_distinct_addresses(self, fig2):
        rid = fig2.sensor_routers["s1"]
        sensors = deploy_sensors(fig2.net, [rid, rid, rid])
        assert len({s.address for s in sensors}) == 3

    def test_empty_overlay_rejected(self, fig2):
        with pytest.raises(MeasurementError):
            deploy_sensors(fig2.net, [])


class TestPlacements:
    def test_random_stub_placement_distinct_ases(self, research_topo):
        rng = random.Random(3)
        routers = random_stub_placement(research_topo, 10, rng)
        asns = {research_topo.net.asn_of_router(r) for r in routers}
        assert len(asns) == 10

    def test_random_stub_placement_bounds(self, research_topo):
        with pytest.raises(MeasurementError):
            random_stub_placement(research_topo, 10_000, random.Random(3))

    def test_same_as_placement_within_one_as(self, research_topo):
        net = research_topo.net
        rng = random.Random(3)
        abilene = research_topo.core_asns[0]
        routers = same_as_placement(net, abilene, 5, rng)
        assert all(net.asn_of_router(r) == abilene for r in routers)
        assert len(set(routers)) == 5  # distinct while available
        big = same_as_placement(net, abilene, 30, rng)
        assert len(big) == 30  # shared routers once exhausted

    def test_distant_as_placement_splits_evenly(self, research_topo):
        net = research_topo.net
        a, b = research_topo.core_asns[0], research_topo.core_asns[1]
        routers = distant_as_placement(net, a, b, 9, random.Random(3))
        in_a = sum(1 for r in routers if net.asn_of_router(r) == a)
        assert in_a == 4 and len(routers) == 9

    def test_distant_split_uses_intermediates(self, research_topo):
        net = research_topo.net
        a, b = research_topo.core_asns[0], research_topo.core_asns[1]
        mid = research_topo.core_routers["WIDE"]["notemachi"]
        routers = distant_split_placement(
            net, a, b, 8, random.Random(3), intermediate_routers=[mid], split=2
        )
        assert routers.count(mid) == 2

    def test_distant_split_without_candidates_rejected(self, research_topo):
        net = research_topo.net
        with pytest.raises(MeasurementError):
            distant_split_placement(
                net,
                research_topo.stub_asns[0],
                research_topo.stub_asns[1],
                6,
                random.Random(3),
            )


class TestProbing:
    @pytest.fixture
    def fig2_probe(self, fig2, fig2_sim):
        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
        )
        return fig2, fig2_sim, sensors

    def test_mesh_covers_all_ordered_pairs(self, fig2_probe, nominal):
        fig, sim, sensors = fig2_probe
        store = probe_mesh(sim, sensors, nominal)
        assert len(store) == 6
        for path in store.paths():
            assert path.reached
            assert path.hops[0] == path.src
            assert path.hops[-1] == path.dst

    def test_failed_probe_is_truncated_without_destination(
        self, fig2_probe, nominal
    ):
        fig, sim, sensors = fig2_probe
        lid = fig.link_between("y4", "b1").lid
        state = sim.apply(LinkFailureEvent((lid,)))
        path = probe_pair(sim, sensors[0], sensors[1], state, epoch=EPOCH_POST)
        assert not path.reached
        assert path.hops[-1] != path.dst

    def test_blocked_hops_become_uh_nodes(self, fig2_probe, nominal):
        fig, sim, sensors = fig2_probe
        store = probe_mesh(
            sim, sensors, nominal, blocked_ases=frozenset({fig.asn("Y")})
        )
        path = store.get((sensors[0].address, sensors[1].address))
        stars = [h for h in path.hops if isinstance(h, UhNode)]
        assert stars
        for star in stars:
            assert star.src == sensors[0].address
            assert star.dst == sensors[1].address
            assert star.epoch == EPOCH_PRE
            assert path.hops[star.index] is star
