"""Tests for the beyond-the-paper extensions: placement optimisation and
robust failure detection."""

import random

import pytest

from repro.errors import MeasurementError
from repro.measurement.detection import FailureDetector
from repro.measurement.placement_opt import greedy_placement
from repro.measurement.probing import probe_mesh
from repro.measurement.sensors import deploy_sensors
from repro.netsim.gen.internet import research_internet
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState


class TestGreedyPlacement:
    @pytest.fixture(scope="class")
    def small_topo(self):
        return research_internet(n_tier2=6, n_stub=24, seed=11)

    def test_greedy_beats_random_on_average(self, small_topo):
        from repro.core.diagnosability import diagnosability
        from repro.core.graph import InferredGraph

        net = small_topo.net
        candidates = [small_topo.stub_router(a) for a in small_topo.stub_asns]
        rng = random.Random(5)
        placement, steps = greedy_placement(
            net, candidates, n_sensors=6, rng=rng, sample_size=8
        )
        assert len(placement) == 6
        greedy_score = steps[-1].diagnosability

        def random_score(seed):
            r = random.Random(seed)
            routers = r.sample(candidates, 6)
            sensors = deploy_sensors(net, routers)
            sim = Simulator(net, {net.asn_of_router(x) for x in routers})
            store = probe_mesh(sim, sensors, NetworkState.nominal())
            return diagnosability(InferredGraph.from_paths(store.paths()))

        random_scores = [random_score(s) for s in range(4)]
        assert greedy_score >= sum(random_scores) / len(random_scores) - 0.05

    def test_steps_are_monotone_in_placement_size(self, small_topo):
        candidates = [small_topo.stub_router(a) for a in small_topo.stub_asns]
        _placement, steps = greedy_placement(
            small_topo.net,
            candidates,
            n_sensors=5,
            rng=random.Random(1),
            sample_size=6,
        )
        assert len(steps) == 4  # bootstrap pair produces one step, then +3
        assert all(0.0 <= s.diagnosability <= 1.0 for s in steps)

    def test_seed_routers_are_kept(self, small_topo):
        candidates = [small_topo.stub_router(a) for a in small_topo.stub_asns]
        seed = candidates[:2]
        placement, _steps = greedy_placement(
            small_topo.net,
            candidates,
            n_sensors=4,
            seed_routers=seed,
            rng=random.Random(1),
            sample_size=6,
        )
        assert placement[:2] == seed

    def test_invalid_budgets_rejected(self, small_topo):
        candidates = [small_topo.stub_router(a) for a in small_topo.stub_asns]
        with pytest.raises(MeasurementError):
            greedy_placement(small_topo.net, candidates, n_sensors=1)
        with pytest.raises(MeasurementError):
            greedy_placement(small_topo.net, candidates[:2], n_sensors=5)
        with pytest.raises(MeasurementError):
            greedy_placement(
                small_topo.net,
                candidates,
                n_sensors=2,
                seed_routers=candidates[:3],
            )


class TestFailureDetector:
    PAIR = ("10.0.0.1", "10.0.0.2")

    def test_transient_flap_never_alarms(self):
        detector = FailureDetector(confirmations=3)
        assert detector.observe_round([(self.PAIR, False)]) == frozenset()
        assert detector.observe_round([(self.PAIR, True)]) == frozenset()
        assert detector.observe_round([(self.PAIR, False)]) == frozenset()
        assert not detector.should_invoke_troubleshooter()

    def test_persistent_failure_alarms_once(self):
        detector = FailureDetector(confirmations=3)
        for _ in range(2):
            assert detector.observe_round([(self.PAIR, False)]) == frozenset()
        assert detector.observe_round([(self.PAIR, False)]) == frozenset(
            {self.PAIR}
        )
        # Staying down does not re-alarm.
        assert detector.observe_round([(self.PAIR, False)]) == frozenset()
        assert detector.alarmed_pairs == frozenset({self.PAIR})

    def test_recovery_clears_alarm(self):
        detector = FailureDetector(confirmations=2)
        detector.observe_round([(self.PAIR, False)])
        detector.observe_round([(self.PAIR, False)])
        assert detector.should_invoke_troubleshooter()
        detector.observe_round([(self.PAIR, True)])
        assert not detector.should_invoke_troubleshooter()

    def test_pairs_are_independent(self):
        other = ("10.0.0.3", "10.0.0.4")
        detector = FailureDetector(confirmations=2)
        detector.observe_round([(self.PAIR, False), (other, True)])
        newly = detector.observe_round([(self.PAIR, False), (other, False)])
        assert newly == frozenset({self.PAIR})

    def test_confirmations_one_is_immediate(self):
        detector = FailureDetector(confirmations=1)
        assert detector.observe_round([(self.PAIR, False)]) == frozenset(
            {self.PAIR}
        )

    def test_invalid_confirmations_rejected(self):
        with pytest.raises(MeasurementError):
            FailureDetector(confirmations=0)

    def test_reset(self):
        detector = FailureDetector(confirmations=1)
        detector.observe_round([(self.PAIR, False)])
        detector.reset()
        assert not detector.should_invoke_troubleshooter()

    def test_integration_with_simulated_flap(self, fig2, fig2_sim, nominal):
        """Drive the detector from real meshes: a flapping link alarms only
        while the failure persists long enough."""
        from repro.netsim.events import LinkFailureEvent

        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2")]
        )
        lid = fig2.link_between("y4", "b1").lid
        down = fig2_sim.apply(LinkFailureEvent((lid,)))

        def round_statuses(state):
            store = probe_mesh(fig2_sim, sensors, state)
            return [(p.pair, p.reached) for p in store.paths()]

        detector = FailureDetector(confirmations=2)
        detector.observe_round(round_statuses(down))    # flap down...
        detector.observe_round(round_statuses(nominal))  # ...and back up
        assert not detector.should_invoke_troubleshooter()
        detector.observe_round(round_statuses(down))
        detector.observe_round(round_statuses(down))
        assert detector.should_invoke_troubleshooter()
