"""Unit tests for the AS-X-side collector (snapshots, control, LG glue)."""

import pytest

from repro.core.pathset import EPOCH_POST, EPOCH_PRE
from repro.errors import MeasurementError
from repro.measurement.collector import (
    collect_control_plane,
    make_lg_lookup,
    take_snapshot,
)
from repro.measurement.sensors import deploy_sensors
from repro.netsim.events import LinkFailureEvent
from repro.netsim.lookingglass import LookingGlassService


@pytest.fixture
def setup(fig2, fig2_sim):
    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    return fig2, fig2_sim, sensors


class TestTakeSnapshot:
    def test_snapshot_epochs_and_asn_mapping(self, setup, nominal):
        fig, sim, sensors = setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        assert all(p.epoch == EPOCH_PRE for p in snap.before.paths())
        assert all(p.epoch == EPOCH_POST for p in snap.after.paths())
        assert snap.asn_of(fig.router("y1").address) == fig.asn("Y")
        assert snap.failed_pairs()

    def test_nominal_after_state_has_no_failures(self, setup, nominal):
        _fig, sim, sensors = setup
        snap = take_snapshot(sim, sensors, nominal, nominal)
        assert not snap.any_failure()
        assert snap.rerouted_pairs() == ()


class TestControlPlaneCollection:
    def test_igp_observation_addresses(self, setup, nominal):
        fig, sim, sensors = setup
        lid = fig.link_between("y1", "y4").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        view = collect_control_plane(sim, fig.asn("Y"), nominal, after)
        assert view.asx_asn == fig.asn("Y")
        assert len(view.igp_link_down) == 1
        observed = view.igp_link_down[0]
        assert {observed.address_a, observed.address_b} == {
            fig.router("y1").address,
            fig.router("y4").address,
        }

    def test_withdrawal_observation_addresses(self, setup, nominal):
        fig, sim, sensors = setup
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        view = collect_control_plane(sim, fig.asn("X"), nominal, after)
        assert len(view.withdrawals) == 1
        w = view.withdrawals[0]
        assert w.at_address == fig.router("x2").address
        assert w.from_address == fig.router("y1").address
        assert w.from_asn == fig.asn("Y")
        assert w.covers(sensors[1].address)


class TestLgLookup:
    def test_lookup_uses_matching_epoch(self, setup, nominal):
        fig, sim, sensors = setup
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        lg = LookingGlassService.everywhere(fig.net)
        lookup = make_lg_lookup(sim, lg, nominal, after)
        dst = sensors[1].address  # sensor in B
        assert lookup(fig.asn("A"), dst, "pre") == (
            fig.asn("A"),
            fig.asn("X"),
            fig.asn("Y"),
            fig.asn("B"),
        )
        assert lookup(fig.asn("A"), dst, "post") is None  # route is gone

    def test_asx_bypasses_lg_availability(self, setup, nominal):
        fig, sim, sensors = setup
        lg = LookingGlassService(fig.net, [])  # nobody runs an LG
        lookup = make_lg_lookup(sim, lg, nominal, nominal, asx=fig.asn("X"))
        dst = sensors[1].address
        assert lookup(fig.asn("X"), dst, "pre") is not None
        assert lookup(fig.asn("A"), dst, "pre") is None

    def test_unknown_epoch_rejected(self, setup, nominal):
        fig, sim, sensors = setup
        lg = LookingGlassService.everywhere(fig.net)
        lookup = make_lg_lookup(sim, lg, nominal, nominal)
        with pytest.raises(MeasurementError):
            lookup(fig.asn("A"), sensors[1].address, "yesterday")

    def test_unknown_destination_returns_none(self, setup, nominal):
        fig, sim, _sensors = setup
        lg = LookingGlassService.everywhere(fig.net)
        lookup = make_lg_lookup(sim, lg, nominal, nominal)
        assert lookup(fig.asn("A"), "192.168.1.1", "pre") is None


class TestCorruptionSeams:
    """The collector-level corruption seams and the all-masked edge case."""

    def test_stale_replay_reuses_the_pre_round_path(self, setup, nominal):
        from repro.faults import DegradationReport, FaultConfig, FaultPlan

        fig, sim, sensors = setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        plan = FaultPlan(11, FaultConfig(stale_replay_rate=1.0))
        report = DegradationReport()
        snap = take_snapshot(
            sim, sensors, nominal, after, faults=plan, report=report
        )
        assert report.stale_replays == len(list(snap.after.pairs()))
        # The replayed records keep their T- epoch tag — the lie the
        # trace-epoch invariant exists to catch.
        assert all(p.epoch == EPOCH_PRE for p in snap.after.paths())
        assert not snap.any_failure()  # the lie hides the failure

    def test_validator_quarantines_every_stale_replay(self, setup, nominal):
        from repro.faults import DegradationReport, FaultConfig, FaultPlan
        from repro.validate import Validator

        fig, sim, sensors = setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        plan = FaultPlan(11, FaultConfig(stale_replay_rate=1.0))
        report = DegradationReport()
        validator = Validator("quarantine", degradation=report)
        snap = take_snapshot(
            sim, sensors, nominal, after,
            faults=plan, report=report, validator=validator,
        )
        assert report.stale_rounds_dropped == report.stale_replays > 0
        # Every after-round record was a replay, so nothing survives.
        assert list(snap.before.pairs()) == []
        assert list(snap.after.pairs()) == []
        assert not snap.any_failure()

    def test_feed_corruption_counts_and_screening(self, setup, nominal):
        from repro.faults import DegradationReport, FaultConfig, FaultPlan
        from repro.validate import Validator

        fig, sim, sensors = setup
        lid = fig.link_between("x1", "x2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        plan = FaultPlan(13, FaultConfig(feed_duplicate_rate=1.0))
        report = DegradationReport()
        validator = Validator("quarantine", degradation=report)
        view = collect_control_plane(
            sim, fig.asn("X"), nominal, after,
            faults=plan, report=report, validator=validator,
        )
        assert report.feed_messages_duplicated > 0
        assert report.feed_messages_quarantined == report.feed_messages_duplicated
        # After screening the stream is duplicate-free again.
        assert len(set(view.igp_link_down)) == len(view.igp_link_down)

    def test_total_probe_loss_yields_a_valid_empty_snapshot(
        self, setup, nominal
    ):
        from repro.faults import DegradationReport, FaultConfig, FaultPlan

        fig, sim, sensors = setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        plan = FaultPlan(5, FaultConfig(trace_drop_rate=1.0))
        report = DegradationReport()
        snap = take_snapshot(
            sim, sensors, nominal, after, faults=plan, report=report
        )
        assert list(snap.before.pairs()) == []
        assert not snap.any_failure()
        assert snap.failed_pairs() == ()
