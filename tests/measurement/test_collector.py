"""Unit tests for the AS-X-side collector (snapshots, control, LG glue)."""

import pytest

from repro.core.pathset import EPOCH_POST, EPOCH_PRE
from repro.errors import MeasurementError
from repro.measurement.collector import (
    collect_control_plane,
    make_lg_lookup,
    take_snapshot,
)
from repro.measurement.sensors import deploy_sensors
from repro.netsim.events import LinkFailureEvent
from repro.netsim.lookingglass import LookingGlassService


@pytest.fixture
def setup(fig2, fig2_sim):
    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    return fig2, fig2_sim, sensors


class TestTakeSnapshot:
    def test_snapshot_epochs_and_asn_mapping(self, setup, nominal):
        fig, sim, sensors = setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        assert all(p.epoch == EPOCH_PRE for p in snap.before.paths())
        assert all(p.epoch == EPOCH_POST for p in snap.after.paths())
        assert snap.asn_of(fig.router("y1").address) == fig.asn("Y")
        assert snap.failed_pairs()

    def test_nominal_after_state_has_no_failures(self, setup, nominal):
        _fig, sim, sensors = setup
        snap = take_snapshot(sim, sensors, nominal, nominal)
        assert not snap.any_failure()
        assert snap.rerouted_pairs() == ()


class TestControlPlaneCollection:
    def test_igp_observation_addresses(self, setup, nominal):
        fig, sim, sensors = setup
        lid = fig.link_between("y1", "y4").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        view = collect_control_plane(sim, fig.asn("Y"), nominal, after)
        assert view.asx_asn == fig.asn("Y")
        assert len(view.igp_link_down) == 1
        observed = view.igp_link_down[0]
        assert {observed.address_a, observed.address_b} == {
            fig.router("y1").address,
            fig.router("y4").address,
        }

    def test_withdrawal_observation_addresses(self, setup, nominal):
        fig, sim, sensors = setup
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        view = collect_control_plane(sim, fig.asn("X"), nominal, after)
        assert len(view.withdrawals) == 1
        w = view.withdrawals[0]
        assert w.at_address == fig.router("x2").address
        assert w.from_address == fig.router("y1").address
        assert w.from_asn == fig.asn("Y")
        assert w.covers(sensors[1].address)


class TestLgLookup:
    def test_lookup_uses_matching_epoch(self, setup, nominal):
        fig, sim, sensors = setup
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        lg = LookingGlassService.everywhere(fig.net)
        lookup = make_lg_lookup(sim, lg, nominal, after)
        dst = sensors[1].address  # sensor in B
        assert lookup(fig.asn("A"), dst, "pre") == (
            fig.asn("A"),
            fig.asn("X"),
            fig.asn("Y"),
            fig.asn("B"),
        )
        assert lookup(fig.asn("A"), dst, "post") is None  # route is gone

    def test_asx_bypasses_lg_availability(self, setup, nominal):
        fig, sim, sensors = setup
        lg = LookingGlassService(fig.net, [])  # nobody runs an LG
        lookup = make_lg_lookup(sim, lg, nominal, nominal, asx=fig.asn("X"))
        dst = sensors[1].address
        assert lookup(fig.asn("X"), dst, "pre") is not None
        assert lookup(fig.asn("A"), dst, "pre") is None

    def test_unknown_epoch_rejected(self, setup, nominal):
        fig, sim, sensors = setup
        lg = LookingGlassService.everywhere(fig.net)
        lookup = make_lg_lookup(sim, lg, nominal, nominal)
        with pytest.raises(MeasurementError):
            lookup(fig.asn("A"), sensors[1].address, "yesterday")

    def test_unknown_destination_returns_none(self, setup, nominal):
        fig, sim, _sensors = setup
        lg = LookingGlassService.everywhere(fig.net)
        lookup = make_lg_lookup(sim, lg, nominal, nominal)
        assert lookup(fig.asn("A"), "192.168.1.1", "pre") is None
