"""Seeded schedule expansion: determinism, structure, per-tick lookups."""

import pytest

from repro.errors import MonitorError
from repro.monitor import MonitorConfig, build_schedule, scenario

LINKS = tuple(f"10.0.{i}.1<->10.0.{i}.2" for i in range(12))
SENSORS = tuple(f"192.168.0.{i}" for i in range(6))
ASNS = (101, 102, 103, 104)


def busy_config(ticks=600):
    return MonitorConfig(
        name="custom",
        ticks=ticks,
        flap_rate=0.01,
        flap_dwell=5.0,
        flap_links=3,
        srlg_rate=0.005,
        srlg_groups=2,
        srlg_size=2,
        srlg_dwell=6.0,
        maintenance_every=200,
        maintenance_duration=20,
        maintenance_links=2,
        churn_rate=0.003,
        churn_dwell=8.0,
        block_rate=0.004,
        block_dwell=10.0,
        block_ases=2,
    )


class TestDeterminism:
    def test_same_inputs_same_schedule(self):
        a = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        b = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        assert a.outages == b.outages
        assert a.flap_links == b.flap_links
        assert a.srlg_groups == b.srlg_groups
        assert a.blockable_asns == b.blockable_asns

    def test_candidate_iteration_order_does_not_matter(self):
        a = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        b = build_schedule(
            busy_config(), 42, tuple(reversed(LINKS)),
            tuple(reversed(SENSORS)), tuple(reversed(ASNS)),
        )
        assert a.outages == b.outages

    def test_different_seed_different_schedule(self):
        a = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        b = build_schedule(busy_config(), 43, LINKS, SENSORS, ASNS)
        assert a.outages != b.outages

    def test_shorter_run_is_a_prefix_of_the_longer(self):
        short = build_schedule(busy_config(300), 42, LINKS, SENSORS, ASNS)
        full = build_schedule(busy_config(600), 42, LINKS, SENSORS, ASNS)
        full_prefix = [o for o in full.outages if o.start < 300]
        # Outages that straddle tick 300 are truncated in the short run;
        # compare on (mode, start, targets), which truncation preserves.
        key = lambda o: (o.mode, o.start, o.links, o.asn, o.sensor)
        assert sorted(map(key, short.outages)) == sorted(map(key, full_prefix))


class TestStructure:
    def test_outages_stay_inside_the_run(self):
        schedule = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        assert schedule.outages  # the busy config must actually fire
        for outage in schedule.outages:
            assert 0 <= outage.start <= outage.end < 600

    def test_srlg_groups_are_disjoint_and_sized(self):
        schedule = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        assert len(schedule.srlg_groups) == 2
        seen = set()
        for group in schedule.srlg_groups:
            assert len(group) == 2
            assert not (set(group) & seen)
            seen.update(group)
        assert not (seen & set(schedule.flap_links))

    def test_srlg_outages_fail_as_a_unit(self):
        schedule = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        srlg = [o for o in schedule.outages if o.mode == "srlg-failure"]
        for outage in srlg:
            assert outage.links in schedule.srlg_groups

    def test_maintenance_windows_roll_on_a_cadence(self):
        schedule = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        windows = sorted(
            (o for o in schedule.outages if o.mode == "maintenance"),
            key=lambda o: o.start,
        )
        assert len(windows) == 3  # 600 ticks / every 200
        starts = [w.start for w in windows]
        assert starts[1] - starts[0] == 200
        assert starts[2] - starts[1] == 200
        for window in windows:
            assert len(window.links) == 2
            assert window.duration <= 20

    def test_per_tick_lookups_agree_with_the_outage_list(self):
        schedule = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        for tick in range(0, 600, 7):
            active = schedule.active_outages(tick)
            down = set()
            for outage in active:
                assert outage.active_at(tick)
                down.update(outage.links)
            assert schedule.down_links_at(tick) == frozenset(down)

    def test_announced_links_are_a_subset_of_down_links(self):
        schedule = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        for tick in range(600):
            assert schedule.announced_links_at(tick) <= schedule.down_links_at(
                tick
            )

    def test_counters_account_every_outage(self):
        schedule = build_schedule(busy_config(), 42, LINKS, SENSORS, ASNS)
        counts = schedule.counters()
        by_mode = sum(
            value
            for key, value in counts.items()
            if key.startswith("outages_") and key != "outages_total"
        )
        assert counts["outages_total"] == len(schedule.outages) == by_mode
        assert counts["downtime_ticks"] == sum(
            o.duration for o in schedule.outages
        )


class TestPoolErrors:
    def test_too_few_links_for_flapping(self):
        config = MonitorConfig(flap_rate=0.01, flap_links=5)
        with pytest.raises(MonitorError, match="flappable"):
            build_schedule(config, 1, LINKS[:3], SENSORS, ASNS)

    def test_too_few_links_for_srlgs(self):
        config = MonitorConfig(srlg_rate=0.01, srlg_groups=3, srlg_size=3)
        with pytest.raises(MonitorError, match="SRLG"):
            build_schedule(config, 1, LINKS[:5], SENSORS, ASNS)

    def test_blocking_needs_candidate_ases(self):
        config = MonitorConfig(block_rate=0.01, block_ases=1)
        with pytest.raises(MonitorError, match="blockable"):
            build_schedule(config, 1, LINKS, SENSORS, ())

    def test_quiet_config_builds_an_empty_schedule(self):
        schedule = build_schedule(
            scenario("steady", 200), 1, LINKS, SENSORS, ASNS
        )
        assert schedule.outages == ()
        assert schedule.counters()["outages_total"] == 0
