"""Blocked-vs-failed classification and ground-truth scoring, in isolation.

Synthetic paths and hand-built schedules — the full pipeline (real LGs,
real RIBs) is exercised in ``test_runner.py``; here each scoring rule is
pinned down on minimal inputs.
"""

import pytest

from repro.core.linkspace import UhNode
from repro.core.pathset import EPOCH_PRE, ProbePath
from repro.monitor import (
    BLOCKED,
    FAILED,
    BadInterval,
    ClassifierScore,
    MonitorConfig,
    MonitorSchedule,
    Outage,
    assign_truth,
    classify_intervals,
    link_token,
    pair_link_map,
    path_tokens,
    score_classifier,
    score_detection,
    suffix_link_map,
)

A, MID, B = "1.1.1.1", "9.9.9.1", "2.2.2.2"
PAIR = (A, B)
L_UP = link_token(A, MID)   # src-side link
L_DOWN = link_token(MID, B)  # dst-side link

ASN_OF = {A: 10, MID: 20, B: 30}.get


def make_path(hops=(A, MID, B)):
    return ProbePath(src=hops[0], dst=hops[-1], hops=tuple(hops), reached=True)


def make_schedule(*outages, ticks=100):
    return MonitorSchedule(
        config=MonitorConfig(ticks=ticks),
        seed=1,
        link_candidates=(L_UP, L_DOWN),
        flap_links=(),
        srlg_groups=(),
        blockable_asns=(30,),
        sensors=(A, B),
        outages=tuple(outages),
    )


class FakeLg:
    """has_lg over a fixed AS set, plus a scripted lookup."""

    def __init__(self, with_lg, answers=None):
        self.with_lg = set(with_lg)
        self.answers = answers or {}
        self.queried = []

    def has_lg(self, asn):
        return asn in self.with_lg

    def lookup(self, asn, dst, tick):
        self.queried.append((asn, dst, tick))
        return self.answers.get(asn)


class TestTokens:
    def test_link_token_is_undirected(self):
        assert link_token(A, MID) == link_token(MID, A) == f"{A}<->{MID}"

    def test_path_tokens_follow_hop_order(self):
        assert path_tokens(make_path()) == (L_UP, L_DOWN)

    def test_unidentified_hops_produce_no_tokens(self):
        star = UhNode(src=A, dst=B, epoch=EPOCH_PRE, index=1)
        path = make_path(hops=(A, star, B))
        assert path_tokens(path) == ()

    def test_pair_link_map(self):
        assert pair_link_map({PAIR: make_path()}) == {
            PAIR: frozenset({L_UP, L_DOWN})
        }

    def test_suffix_map_shrinks_along_the_path(self):
        suffixes = suffix_link_map({PAIR: make_path()}, ASN_OF)
        assert suffixes[(10, B)] == frozenset({L_UP, L_DOWN})
        assert suffixes[(20, B)] == frozenset({L_DOWN})
        assert suffixes[(30, B)] == frozenset()


class TestTruth:
    def test_down_path_link_means_failed(self):
        schedule = make_schedule(Outage("link-flap", 10, 20, links=(L_DOWN,)))
        interval = BadInterval(pair=PAIR, opened_at=15)
        assign_truth([interval], schedule, pair_link_map({PAIR: make_path()}), ASN_OF)
        assert interval.truth_label == FAILED
        assert interval.truth_mode == "link-flap"
        assert not interval.announced

    def test_blocked_destination_as_means_blocked(self):
        schedule = make_schedule(Outage("as-block", 40, 60, asn=30))
        interval = BadInterval(pair=PAIR, opened_at=50)
        assign_truth([interval], schedule, pair_link_map({PAIR: make_path()}), ASN_OF)
        assert interval.truth_label == BLOCKED
        assert interval.truth_mode == "as-block"

    def test_link_outage_outranks_blocking(self):
        schedule = make_schedule(
            Outage("link-flap", 10, 20, links=(L_DOWN,)),
            Outage("as-block", 10, 20, asn=30),
        )
        interval = BadInterval(pair=PAIR, opened_at=15)
        assign_truth([interval], schedule, pair_link_map({PAIR: make_path()}), ASN_OF)
        assert interval.truth_label == FAILED

    def test_announced_maintenance_is_flagged(self):
        schedule = make_schedule(
            Outage("maintenance", 70, 80, links=(L_UP,), announced=True)
        )
        interval = BadInterval(pair=PAIR, opened_at=75)
        assign_truth([interval], schedule, pair_link_map({PAIR: make_path()}), ASN_OF)
        assert interval.truth_label == FAILED
        assert interval.truth_mode == "maintenance"
        assert interval.announced

    def test_unexplained_interval_is_noise(self):
        schedule = make_schedule()
        interval = BadInterval(pair=PAIR, opened_at=5)
        assign_truth([interval], schedule, pair_link_map({PAIR: make_path()}), ASN_OF)
        assert interval.truth_label == "none"
        assert interval.truth_mode == "probe-noise"

    def test_censored_intervals_stay_unlabelled(self):
        schedule = make_schedule(Outage("link-flap", 10, 20, links=(L_DOWN,)))
        interval = BadInterval(pair=PAIR, opened_at=15, closed_at=16, censored=True)
        assign_truth([interval], schedule, pair_link_map({PAIR: make_path()}), ASN_OF)
        assert interval.truth_label == ""


class TestClassifier:
    def test_lg_answer_means_blocked(self):
        lg = FakeLg(with_lg={20}, answers={20: (20, 30)})
        interval = BadInterval(pair=PAIR, opened_at=15)
        count = classify_intervals(
            [interval], {PAIR: make_path()}, ASN_OF, lg, lg.lookup
        )
        assert count == 1
        assert interval.verdict == BLOCKED

    def test_no_lg_answer_means_failed(self):
        lg = FakeLg(with_lg={20}, answers={})
        interval = BadInterval(pair=PAIR, opened_at=15)
        classify_intervals([interval], {PAIR: make_path()}, ASN_OF, lg, lg.lookup)
        assert interval.verdict == FAILED

    def test_only_the_first_lg_as_is_queried(self):
        lg = FakeLg(with_lg={10, 20, 30}, answers={10: (10, 20, 30)})
        interval = BadInterval(pair=PAIR, opened_at=15)
        classify_intervals([interval], {PAIR: make_path()}, ASN_OF, lg, lg.lookup)
        assert lg.queried == [(10, B, 15)]
        assert interval.verdict == BLOCKED

    def test_no_lg_anywhere_defaults_to_failed(self):
        lg = FakeLg(with_lg=set())
        interval = BadInterval(pair=PAIR, opened_at=15)
        classify_intervals([interval], {PAIR: make_path()}, ASN_OF, lg, lg.lookup)
        assert interval.verdict == FAILED
        assert lg.queried == []

    def test_censored_and_pathless_intervals_are_skipped(self):
        lg = FakeLg(with_lg={20}, answers={20: (20,)})
        censored = BadInterval(pair=PAIR, opened_at=1, censored=True)
        pathless = BadInterval(pair=(A, "8.8.8.8"), opened_at=1)
        count = classify_intervals(
            [censored, pathless], {PAIR: make_path()}, ASN_OF, lg, lg.lookup
        )
        assert count == 0
        assert censored.verdict == ""
        assert pathless.verdict == ""


class TestScores:
    def test_confusion_counts(self):
        def interval(truth, verdict):
            return BadInterval(
                pair=PAIR, opened_at=0, truth_label=truth, verdict=verdict
            )

        score = score_classifier(
            [
                interval(BLOCKED, BLOCKED),  # tp
                interval(BLOCKED, FAILED),   # fn
                interval(FAILED, BLOCKED),   # fp
                interval(FAILED, FAILED),    # tn
                interval(FAILED, FAILED),    # tn
                interval("none", FAILED),    # noise: excluded
                BadInterval(pair=PAIR, opened_at=0, censored=True),
                BadInterval(pair=PAIR, opened_at=0, truth_label=FAILED),
            ]
        )
        assert (score.tp, score.fp, score.fn, score.tn) == (1, 1, 1, 2)
        assert score.scored == 5
        assert score.precision_blocked == pytest.approx(0.5)
        assert score.recall_blocked == pytest.approx(0.5)
        assert score.precision_failed == pytest.approx(2 / 3)
        assert score.recall_failed == pytest.approx(2 / 3)

    def test_empty_denominators_score_perfect(self):
        score = ClassifierScore(tp=0, fp=0, fn=0, tn=3)
        assert score.precision_blocked == 1.0
        assert score.recall_blocked == 1.0
        empty = ClassifierScore(tp=0, fp=0, fn=0, tn=0)
        assert empty.precision_failed == 1.0
        assert empty.recall_failed == 1.0


class TestDetection:
    def test_latency_and_false_alarm_accounting(self):
        schedule = make_schedule(
            Outage("link-flap", 10, 20, links=(L_DOWN,)),
            Outage("as-block", 40, 60, asn=30),
            Outage("sensor-churn", 30, 50, sensor=A),   # never scored
            Outage("link-flap", 90, 90, links=(L_DOWN,)),  # too short to confirm
        )
        pair_links = pair_link_map({PAIR: make_path()})
        intervals = [
            BadInterval(pair=PAIR, opened_at=12, closed_at=21, truth_label=FAILED),
            BadInterval(pair=PAIR, opened_at=41, closed_at=55, truth_label=BLOCKED),
            BadInterval(pair=PAIR, opened_at=30, closed_at=32, truth_label="none"),
            BadInterval(pair=PAIR, opened_at=2, censored=True),
        ]
        stats = score_detection(schedule, intervals, pair_links, ASN_OF, open_after=2)
        assert stats.outages_total == 2
        assert stats.outages_detected == 2
        assert stats.latencies == (2, 1)
        assert stats.detected_fraction == 1.0
        assert stats.latency_mean == pytest.approx(1.5)
        assert stats.latency_p99 == 2
        assert stats.false_alarms == 1
        assert stats.intervals_scored == 3
        assert stats.false_alarm_rate == pytest.approx(1 / 3)

    def test_unaffected_outages_are_not_counted(self):
        other_link = link_token("3.3.3.3", "4.4.4.4")
        schedule = make_schedule(Outage("link-flap", 10, 20, links=(other_link,)))
        stats = score_detection(
            schedule, [], pair_link_map({PAIR: make_path()}), ASN_OF, open_after=2
        )
        assert stats.outages_total == 0
        assert stats.detected_fraction == 1.0

    def test_missed_outage_lowers_the_fraction(self):
        schedule = make_schedule(Outage("link-flap", 10, 20, links=(L_DOWN,)))
        stats = score_detection(
            schedule, [], pair_link_map({PAIR: make_path()}), ASN_OF, open_after=2
        )
        assert stats.outages_total == 1
        assert stats.outages_detected == 0
        assert stats.detected_fraction == 0.0
        assert stats.latency_mean == 0.0
        assert stats.latency_p99 == 0
