"""End-to-end monitoring runs: determinism, resume, scoring acceptance.

The headline guarantees of the flight recorder live here:

* a scenario run is a pure function of ``(seed, config)`` — serial,
  ``shards=4 workers=2``, chaos-injected and journal-resumed runs are
  bit-identical, down to the rendered report lines;
* the blocked-vs-failed classifier scores >= 0.9 precision AND recall
  against the seeded ground truth on every trouble scenario.
"""

import pytest

from repro.errors import MonitorError
from repro.experiments.journal import RunJournal
from repro.monitor import render_monitor_report, run_monitor, scenario
from repro.stream.replay import make_replay_setup


def deterministic_lines(result):
    """The seeded half of the report (the ``-- monitor`` block is wall clock)."""
    return [
        line
        for line in render_monitor_report(result).splitlines()
        if line.startswith("  report ")
    ]


def outcome(result):
    """Every seeded product of a run, for bit-identity comparison."""
    return (
        result.reports,
        result.recorder.intervals,
        [i.verdict for i in result.recorder.intervals],
        result.detection,
        result.classifier,
        result.quality,
        result.schedule.outages,
        result.events_total,
        result.observations_skipped,
        deterministic_lines(result),
    )


class TestBitIdentity:
    def test_sharded_worker_run_matches_serial(self, monitor_setup):
        config = scenario("mixed-ops", 600)
        serial = run_monitor(monitor_setup, config, seed=3)
        sharded = run_monitor(
            monitor_setup, config, seed=3, shards=4, workers=2
        )
        assert outcome(sharded) == outcome(serial)
        assert serial.recorder.intervals  # the comparison must be non-vacuous
        assert sharded.shard_stats is not None

    def test_journalled_resume_matches_serial(self, monitor_setup, tmp_path):
        config = scenario("flaky-core", 600)
        fingerprint = {"format": "repro-monitor-journal", "scenario": "flaky-core"}
        journal = RunJournal(tmp_path / "monitor.journal", fingerprint)
        first = run_monitor(monitor_setup, config, seed=11, journal=journal)
        assert first.reports

        cached = RunJournal(
            tmp_path / "monitor.journal", fingerprint
        ).load_completed()
        assert sorted(cached) == [r.report_index for r in first.reports]
        resumed = run_monitor(
            monitor_setup, config, seed=11,
            shards=4, workers=2, cached_reports=cached,
        )
        assert outcome(resumed) == outcome(first)
        assert resumed.engine_counters["reports_reused"] == len(first.reports)

    def test_chaos_injection_is_deterministic(self, monitor_setup):
        config = scenario("flaky-core", 400)
        runs = [
            run_monitor(
                monitor_setup, config, seed=5, shards=2, chaos_rate=0.05
            )
            for _ in range(2)
        ]
        assert outcome(runs[0]) == outcome(runs[1])
        assert runs[0].supervision is not None


class TestScoringAcceptance:
    @pytest.mark.parametrize(
        "name", ["flaky-core", "srlg-storm", "blocked-as", "mixed-ops"]
    )
    def test_classifier_beats_point_nine_on_every_trouble_scenario(
        self, monitor_setup, name
    ):
        result = run_monitor(monitor_setup, scenario(name, 1200), seed=5)
        assert result.recorder.intervals, f"{name} produced nothing to score"
        score = result.classifier
        assert score.scored > 0
        assert score.precision_blocked >= 0.9
        assert score.recall_blocked >= 0.9
        assert score.precision_failed >= 0.9
        assert score.recall_failed >= 0.9

    def test_blocked_scenario_actually_exercises_the_blocked_class(
        self, monitor_setup
    ):
        result = run_monitor(monitor_setup, scenario("blocked-as", 1200), seed=5)
        assert result.classifier.tp > 0  # true blocked verdicts exist
        assert result.lg_queries > 0

    def test_detection_finds_the_scheduled_outages(self, monitor_setup):
        result = run_monitor(monitor_setup, scenario("flaky-core", 1200), seed=5)
        assert result.detection.outages_total > 0
        assert result.detection.detected_fraction >= 0.9
        # Confirmation takes open_after consecutive failures, so latency
        # is at least open_after - 1 and should stay near it.
        assert result.detection.latency_mean >= result.config.open_after - 1

    def test_steady_scenario_is_perfectly_quiet(self, monitor_setup):
        result = run_monitor(monitor_setup, scenario("steady", 400), seed=5)
        assert result.schedule.outages == ()
        assert result.recorder.intervals == []
        assert result.detection.false_alarms == 0
        assert all(q.availability == 1.0 for q in result.quality)


class TestRunMechanics:
    def test_diurnal_cycle_thins_the_probe_load(self, monitor_setup):
        result = run_monitor(
            monitor_setup, scenario("diurnal-noise", 300), seed=5
        )
        assert result.observations_skipped > 0
        full = run_monitor(monitor_setup, scenario("steady", 300), seed=5)
        assert result.events_total < full.events_total

    def test_run_accounting_is_sane(self, monitor_setup):
        result = run_monitor(monitor_setup, scenario("steady", 200), seed=5)
        assert result.pairs_monitored > 0
        assert result.events_per_second > 0
        assert result.engine_counters["events_offered"] == result.events_total

    def test_monitoring_requires_a_looking_glass(self):
        blind = make_replay_setup(seed=7, n_stub=10, algorithms=("tomo",))
        with pytest.raises(MonitorError, match="Looking Glass"):
            run_monitor(blind, scenario("steady", 50))
