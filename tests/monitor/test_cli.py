"""CLI tests for ``python -m repro monitor``: listing, runs, resume, exit
codes — and the SIGINT contract, which needs a real subprocess because
the in-process harness cannot deliver a genuine interrupt."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.__main__ import main as repro_main

FAST_ARGS = [
    "monitor",
    "--scenario",
    "flaky-core",
    "--ticks",
    "300",
    "--seed",
    "4",
    "--stubs",
    "20",
]


class TestMonitorCli:
    def test_list_scenarios(self, capsys):
        assert repro_main(["monitor", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "steady" in out
        assert "mixed-ops" in out
        assert "blocked-as" in out

    def test_run_renders_the_flight_recorder_report(self, capsys):
        assert repro_main(FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "=== monitor flaky-core (300 ticks, seed 4) ===" in out
        assert "  report scenario flaky-core" in out
        assert "  report timeline [" in out
        assert "  report intervals" in out
        assert "flaps=" in out
        assert "  report detection" in out
        assert "  report classifier" in out
        assert "-- monitor" in out

    def test_sharded_run_matches_serial_reports(self, capsys):
        assert repro_main(FAST_ARGS) == 0
        serial = capsys.readouterr().out
        assert (
            repro_main(FAST_ARGS + ["--shards", "4", "--workers", "2"]) == 0
        )
        sharded = capsys.readouterr().out

        def seeded(text):
            return [
                line
                for line in text.splitlines()
                if line.startswith("  report ")
            ]

        assert seeded(serial) == seeded(sharded)

    def test_resume_reuses_journaled_reports(self, tmp_path, capsys):
        journal = tmp_path / "monitor.journal"
        args = FAST_ARGS + ["--journal", str(journal)]
        assert repro_main(args) == 0
        first = capsys.readouterr().out
        assert repro_main(args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "reused=0" in first
        assert "reused=0" not in resumed

        def seeded(text):
            return [
                line
                for line in text.splitlines()
                if line.startswith("  report ")
            ]

        assert seeded(first) == seeded(resumed)

    def test_unknown_scenario_exits_2_with_one_line_stderr(self, capsys):
        code = repro_main(["monitor", "--scenario", "no-such-thing"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "unknown scenario" in err

    def test_bad_retention_exits_2(self, capsys):
        code = repro_main(FAST_ARGS + ["--retention", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "retention" in err


@pytest.mark.slow
class TestSigint:
    def test_sigint_checkpoints_and_exits_130(self, tmp_path):
        journal = tmp_path / "monitor.journal"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "monitor",
                "--scenario",
                "mixed-ops",
                "--ticks",
                "200000",
                "--journal",
                str(journal),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        try:
            # Give it time to get past setup and into the run, then interrupt.
            time.sleep(15)
            process.send_signal(signal.SIGINT)
            _, err = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 130
        assert "interrupted" in err
        assert "--resume" in err
