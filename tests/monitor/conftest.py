"""Shared fixtures for the monitor test suite.

One deployment per test session: `make_monitor_setup` builds a topology,
routes it and probes a baseline mesh — all pure functions of the seed, so
sharing the object across tests changes nothing but the wall clock.
"""

import pytest

from repro.monitor import make_monitor_setup


@pytest.fixture(scope="session")
def monitor_setup():
    return make_monitor_setup(seed=7)
