"""Scenario catalog and config validation."""

import math

import pytest

from repro.errors import MonitorError
from repro.monitor import SCENARIOS, MonitorConfig, scenario, scenario_names


class TestCatalog:
    def test_catalog_names_match_their_configs(self):
        for name, config in SCENARIOS.items():
            assert config.name == name

    def test_scenario_names_is_the_full_catalog(self):
        assert set(scenario_names()) == set(SCENARIOS)
        assert "steady" in scenario_names()
        assert "mixed-ops" in scenario_names()

    def test_unknown_scenario_is_a_typed_error(self):
        with pytest.raises(MonitorError, match="unknown scenario"):
            scenario("does-not-exist")

    def test_rescaling_only_changes_ticks(self):
        short = scenario("flaky-core", 500)
        full = scenario("flaky-core")
        assert short.ticks == 500
        assert short.flap_rate == full.flap_rate
        assert short.name == full.name

    def test_zero_ticks_keeps_catalog_length(self):
        assert scenario("steady", 0).ticks == SCENARIOS["steady"].ticks


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ticks": 0},
            {"flap_rate": 1.5},
            {"noise_rate": -0.1},
            {"flap_dwell": 0.5},
            {"srlg_size": 0},
            {"dwell_cap": 0},
            {"baseline_every": -1},
            {"open_after": 0},
            {"close_after": 0},
            {"maintenance_every": 100},  # without a duration
            {"diurnal_period": -5},
            {"diurnal_floor": 2.0},
        ],
    )
    def test_bad_knobs_raise_monitor_error(self, kwargs):
        with pytest.raises(MonitorError):
            MonitorConfig(**kwargs)

    def test_default_config_is_a_quiet_network(self):
        config = MonitorConfig()
        assert config.flap_rate == 0.0
        assert config.block_rate == 0.0


class TestIntensity:
    def test_constant_without_a_period(self):
        config = MonitorConfig()
        assert config.intensity(0) == 1.0
        assert config.intensity(12345) == 1.0

    def test_cosine_day_peaks_at_midday_and_bottoms_at_midnight(self):
        config = MonitorConfig(diurnal_period=100, diurnal_floor=0.25)
        assert config.intensity(0) == pytest.approx(0.25)
        assert config.intensity(50) == pytest.approx(1.0)
        assert config.intensity(100) == pytest.approx(0.25)
        for tick in range(200):
            assert 0.25 <= config.intensity(tick) <= 1.0 + 1e-12

    def test_intensity_is_periodic(self):
        config = MonitorConfig(diurnal_period=288, diurnal_floor=0.3)
        for tick in (0, 17, 100):
            assert math.isclose(
                config.intensity(tick), config.intensity(tick + 288)
            )
