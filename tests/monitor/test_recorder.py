"""FlightRecorder: intervals, censoring, flaps, retention, timelines."""

import pytest

from repro.errors import MonitorError
from repro.monitor import FlightRecorder

PAIR = ("10.0.0.1", "10.0.0.2")
OTHER = ("10.0.0.1", "10.0.0.3")

ASN_OF = {"10.0.0.1": 1, "10.0.0.2": 2, "10.0.0.3": 3}.get


def drive(recorder, pair, outcomes, start=0):
    """Feed one observation per tick, advancing after each."""
    for offset, reached in enumerate(outcomes):
        tick = start + offset
        recorder.observe(tick, pair, reached)
        recorder.advance(tick)
    return start + len(outcomes)


class TestIntervals:
    def test_opens_after_the_confirmation_streak(self):
        recorder = FlightRecorder(open_after=2, close_after=2)
        drive(recorder, PAIR, [True, False, False, False])
        assert len(recorder.intervals) == 1
        interval = recorder.intervals[0]
        assert interval.opened_at == 2  # second consecutive failure
        assert interval.is_open

    def test_one_failure_never_opens(self):
        recorder = FlightRecorder(open_after=2, close_after=2)
        drive(recorder, PAIR, [True, False, True, False, True])
        assert recorder.intervals == []

    def test_closes_after_the_recovery_streak(self):
        recorder = FlightRecorder(open_after=2, close_after=2)
        drive(recorder, PAIR, [False, False, True, True, True])
        interval = recorder.intervals[0]
        assert interval.closed_at == 3
        assert not interval.is_open
        assert not interval.censored
        assert recorder.open_intervals == ()

    def test_single_success_does_not_close(self):
        recorder = FlightRecorder(open_after=2, close_after=2)
        drive(recorder, PAIR, [False, False, True, False])
        assert len(recorder.intervals) == 1
        assert recorder.intervals[0].is_open

    def test_pairs_are_independent(self):
        recorder = FlightRecorder(open_after=2, close_after=2)
        for tick in range(4):
            recorder.observe(tick, PAIR, False)
            recorder.observe(tick, OTHER, True)
            recorder.advance(tick)
        assert [i.pair for i in recorder.intervals] == [PAIR]


class TestFlaps:
    def test_quick_reopen_counts_as_a_flap(self):
        recorder = FlightRecorder(open_after=2, close_after=2, flap_window=4)
        # down, recover, down again within the flap window
        drive(recorder, PAIR, [False, False, True, True, False, False])
        assert len(recorder.intervals) == 2
        assert recorder.flaps == 1
        assert recorder.counters()["flaps"] == 1

    def test_slow_reopen_is_not_a_flap(self):
        recorder = FlightRecorder(open_after=2, close_after=2, flap_window=2)
        outcomes = [False, False, True, True] + [True] * 6 + [False, False]
        drive(recorder, PAIR, outcomes)
        assert len(recorder.intervals) == 2
        assert recorder.flaps == 0

    def test_censored_close_resets_the_flap_clock(self):
        recorder = FlightRecorder(open_after=2, close_after=2, flap_window=10)
        now = drive(recorder, PAIR, [False, False])
        recorder.forget(now, PAIR[1])
        drive(recorder, PAIR, [False, False], start=now + 1)
        # the reopen followed a censored close, so it is not a flap
        assert recorder.flaps == 0


class TestCensoring:
    def test_forget_censors_the_open_interval(self):
        recorder = FlightRecorder(open_after=2, close_after=2)
        now = drive(recorder, PAIR, [False, False, False])
        recorder.forget(now, PAIR[1])
        interval = recorder.intervals[0]
        assert interval.censored
        assert interval.closed_at == now
        assert recorder.open_intervals == ()
        assert recorder.counters()["intervals_censored"] == 1

    def test_forget_only_touches_the_member_pairs(self):
        recorder = FlightRecorder(open_after=2, close_after=2)
        for tick in range(3):
            recorder.observe(tick, PAIR, False)
            recorder.observe(tick, OTHER, False)
            recorder.advance(tick)
        recorder.forget(3, PAIR[1])  # only PAIR contains this address
        censored = {i.pair: i.censored for i in recorder.intervals}
        assert censored[PAIR] is True
        assert censored[OTHER] is False
        assert [i.pair for i in recorder.open_intervals] == [OTHER]

    def test_censored_intervals_leave_the_timeline_healthy(self):
        recorder = FlightRecorder(open_after=2, close_after=2)
        now = drive(recorder, PAIR, [False] * 10)
        recorder.forget(now, PAIR[1])
        assert recorder.timeline(ticks=10, buckets=5) == [1.0] * 5


class TestRetention:
    def test_history_is_a_ring_buffer(self):
        recorder = FlightRecorder(retention=8)
        drive(recorder, PAIR, [True] * 50)
        history = recorder.history(PAIR)
        assert len(history) == 8
        assert history[0][0] == 42  # oldest retained tick
        assert history[-1][0] == 49

    def test_baseline_log_is_bounded(self):
        recorder = FlightRecorder(retention=4)
        for tick in range(20):
            recorder.note_baseline(tick, pairs=6)
        assert len(recorder.baselines) == 4
        assert recorder.counters()["baselines_kept"] == 4

    def test_bad_retention_is_a_typed_error(self):
        with pytest.raises(MonitorError, match="retention"):
            FlightRecorder(retention=0)
        with pytest.raises(MonitorError, match="flap_window"):
            FlightRecorder(flap_window=-1)


class TestTimeline:
    def test_all_healthy_is_all_ones(self):
        recorder = FlightRecorder()
        drive(recorder, PAIR, [True] * 60)
        assert recorder.timeline(ticks=60, buckets=6) == [1.0] * 6

    def test_downtime_dents_the_covering_buckets(self):
        recorder = FlightRecorder(open_after=1, close_after=1)
        outcomes = [True] * 20 + [False] * 10 + [True] * 30
        drive(recorder, PAIR, outcomes)
        health = recorder.timeline(ticks=60, buckets=6)
        assert health[0] == 1.0
        assert health[2] < 1.0  # ticks 20-29 live in this bucket
        assert health[5] == 1.0

    def test_bucket_count_never_exceeds_ticks(self):
        recorder = FlightRecorder()
        drive(recorder, PAIR, [True] * 5)
        assert len(recorder.timeline(ticks=5, buckets=60)) == 5

    def test_bad_arguments_raise(self):
        recorder = FlightRecorder()
        with pytest.raises(MonitorError):
            recorder.timeline(ticks=0)
        with pytest.raises(MonitorError):
            recorder.timeline(ticks=10, buckets=0)


class TestQuality:
    def test_rows_aggregate_by_as_pair(self):
        recorder = FlightRecorder(open_after=1, close_after=1)
        drive(recorder, PAIR, [True] * 8 + [False] * 2)
        drive(recorder, OTHER, [True] * 10)
        rows = recorder.quality(ASN_OF)
        assert [(r.src_asn, r.dst_asn) for r in rows] == [(1, 2), (1, 3)]
        worst = rows[0]
        assert worst.observations == 10
        assert worst.failures == 2
        assert worst.availability == pytest.approx(0.8)
        assert worst.intervals == 1
        clean = rows[1]
        assert clean.availability == 1.0
        assert clean.intervals == 0

    def test_flaps_are_apportioned_to_their_pair(self):
        recorder = FlightRecorder(open_after=1, close_after=1, flap_window=5)
        drive(recorder, PAIR, [False, True, False, True])
        drive(recorder, OTHER, [True] * 4)
        rows = {(r.src_asn, r.dst_asn): r for r in recorder.quality(ASN_OF)}
        assert rows[(1, 2)].flaps == 1
        assert rows[(1, 3)].flaps == 0

    def test_worst_interval_tracks_the_longest_stretch(self):
        recorder = FlightRecorder(open_after=1, close_after=1, flap_window=0)
        outcomes = [False] * 2 + [True] * 8 + [False] * 5 + [True] * 5
        drive(recorder, PAIR, outcomes)
        row = recorder.quality(ASN_OF)[0]
        assert row.intervals == 2
        assert row.worst_interval == 6  # 5 bad ticks + the closing tick
