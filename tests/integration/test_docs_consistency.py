"""Documentation consistency guards.

Docs rot silently; these tests keep the load-bearing claims of README,
DESIGN and docs/api.md anchored to the code.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]


def _exports(module):
    return set(getattr(module, "__all__", ())) | {
        name for name in dir(module) if not name.startswith("_")
    }


class TestApiDocMatchesCode:
    @pytest.mark.parametrize(
        "module_name",
        ["repro", "repro.core", "repro.netsim", "repro.measurement",
         "repro.experiments", "repro.faults", "repro.monitor",
         "repro.serialize", "repro.stream", "repro.validate"],
    )
    def test_documented_names_exist(self, module_name):
        """Every `backticked` identifier under a module's section of
        docs/api.md must be importable from that module (or one of its
        public submodules for dotted names)."""
        import importlib

        text = (ROOT / "docs" / "api.md").read_text()
        # Find the section for this module.
        sections = re.split(r"\n## ", text)
        section = next(
            (s for s in sections if s.startswith(f"`{module_name}`")), None
        )
        assert section is not None, f"no api.md section for {module_name}"
        module = importlib.import_module(module_name)
        names = re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", section)

        def resolvable(name):
            if hasattr(module, name):
                return True
            # Method of a documented class exported from the module.
            for attr in dir(module):
                value = getattr(module, attr)
                if isinstance(value, type) and hasattr(value, name):
                    return True
            # One-level public submodule (e.g. repro.netsim.gen.<name>,
            # repro.experiments.scaling.<name>).
            package_path = getattr(module, "__path__", None)
            if package_path:
                import pkgutil

                for info in pkgutil.iter_modules(package_path):
                    if info.name.startswith("_"):
                        continue
                    try:
                        sub = importlib.import_module(
                            f"{module_name}.{info.name}"
                        )
                    except ImportError:
                        continue
                    if info.name == name or hasattr(sub, name):
                        return True
            return False

        missing = [
            name
            for name in names
            if name not in ("python", "run", module_name)
            and not resolvable(name)
        ]
        assert not missing, f"documented but absent from {module_name}: {missing}"


class TestDesignInventoryMatchesTree:
    def test_every_inventory_module_exists(self):
        """Module paths named in DESIGN.md's §3 inventory must exist."""
        text = (ROOT / "DESIGN.md").read_text()
        block = text.split("## 3. Package inventory", 1)[1].split("## 4.", 1)[0]
        for match in re.finditer(r"^\s{4}([a-z_/]+\.py)\s", block, re.M):
            rel = match.group(1)
            # Paths are relative to src/repro/<subpackage>; search the tree.
            hits = list((ROOT / "src" / "repro").rglob(rel.split("/")[-1]))
            assert hits, f"DESIGN.md names missing module {rel}"

    def test_experiments_md_mentions_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in range(5, 13):
            assert f"Figure {figure}" in text


class TestReadmeCommandsAreReal:
    def test_cli_invocations_parse(self):
        """Each `python -m repro...` line in README must at least parse."""
        from repro.__main__ import main as repro_main
        from repro.experiments.__main__ import main as figures_main

        text = (ROOT / "README.md").read_text()
        for line in re.findall(r"python -m repro[^\n`]*", text):
            argv = line.split()[3:]
            argv = [a for a in argv if not a.startswith("#")]
            if not argv:
                continue
            # Parse-only check: swap heavy actions for --help-style parsing
            # by validating known subcommands/flags.
            if line.startswith("python -m repro.experiments"):
                known = {"--figure", "--paper-scale", "--placements",
                         "--failures", "--sensors", "--seed", "--topo-seed",
                         "--workers", "--json-out"}
                flags = {a for a in argv if a.startswith("--")}
                assert flags <= known, f"README documents unknown flag in: {line}"
            else:
                assert argv[0] in {"topology", "diagnose", "replay",
                                   "scaling", "degradation", "stream",
                                   "monitor", "crossval"}, line
