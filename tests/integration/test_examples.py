"""Smoke tests for the example scripts.

The fast examples run end to end in-process; the slower ones are at least
import-compiled so a refactor cannot silently break them.
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=()):
    saved = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


class TestExamples:
    def test_quickstart_runs(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "ground truth:" in out
        assert "nd-bgpigp" in out

    def test_misconfiguration_example_runs(self, capsys):
        run_example("misconfiguration_diagnosis.py")
        out = capsys.readouterr().out
        assert "ND-edge hypothesis" in out
        assert "per-neighbour split" in out

    @pytest.mark.parametrize(
        "name",
        [
            "blocked_traceroute_localization.py",
            "placement_study.py",
            "isp_noc_workflow.py",
        ],
    )
    def test_slow_examples_compile(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)

    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "misconfiguration_diagnosis.py",
            "blocked_traceroute_localization.py",
            "placement_study.py",
            "isp_noc_workflow.py",
        } <= names
