"""Tests for the ECMP/Paris-traceroute extension (IGP enumeration,
multipath probing, load-balance-aware diagnosis)."""

import pytest

from repro.core.linkspace import physical_link
from repro.core.multipath import nd_edge_multipath
from repro.core.pathset import EPOCH_POST, EPOCH_PRE
from repro.errors import DiagnosisError
from repro.measurement.paris import paris_mesh, paris_probe_pair
from repro.measurement.sensors import deploy_sensors
from repro.netsim.builders import TopologyBuilder
from repro.netsim.events import LinkFailureEvent
from repro.netsim.igp import IgpView
from repro.netsim.multipath import enumerate_data_paths
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState, Tier


@pytest.fixture
def ecmp_world():
    """Two stub ASes joined by a transit AS with an ECMP diamond.

    T's internals: in -- {m1 | m2} -- out with equal weights, so traffic
    load-balances across two equal-cost internal paths.
    """
    b = TopologyBuilder()
    b.autonomous_system("S", Tier.STUB, routers=1)
    b.autonomous_system("T", Tier.TIER2, routers=4)  # t1=in t2=m1 t3=m2 t4=out
    b.autonomous_system("D", Tier.STUB, routers=1)
    b.customer_of("S", "T")
    b.customer_of("D", "T")
    b.link("t1", "t2")
    b.link("t1", "t3")
    b.link("t2", "t4")
    b.link("t3", "t4")
    b.link("s1", "t1")
    b.link("t4", "d1")
    sensors = deploy_sensors(b.net, [b.router("s1").rid, b.router("d1").rid])
    sim = Simulator(b.net, [b.asn("S"), b.asn("D")])
    return b, sim, sensors


class TestEcmpEnumeration:
    def test_all_shortest_paths_in_diamond(self, ecmp_world):
        b, _sim, _sensors = ecmp_world
        view = IgpView(b.net, b.asn("T"), NetworkState.nominal())
        t1, t4 = b.router("t1").rid, b.router("t4").rid
        paths = view.all_shortest_paths(t1, t4)
        assert len(paths) == 2
        assert paths[0] == view.path(t1, t4)  # first = deterministic path

    def test_trivial_and_unreachable_cases(self, ecmp_world):
        b, _sim, _sensors = ecmp_world
        view = IgpView(b.net, b.asn("T"), NetworkState.nominal())
        t1 = b.router("t1").rid
        assert view.all_shortest_paths(t1, t1) == [[t1]]
        dead = NetworkState.nominal().with_failed_routers([t1])
        assert IgpView(b.net, b.asn("T"), dead).all_shortest_paths(
            t1, b.router("t4").rid
        ) == []

    def test_cap_limits_enumeration(self, ecmp_world):
        b, _sim, _sensors = ecmp_world
        view = IgpView(b.net, b.asn("T"), NetworkState.nominal())
        paths = view.all_shortest_paths(
            b.router("t1").rid, b.router("t4").rid, cap=1
        )
        assert len(paths) == 1

    def test_end_to_end_enumeration(self, ecmp_world):
        b, sim, _sensors = ecmp_world
        paths = enumerate_data_paths(
            b.net,
            sim.routing(NetworkState.nominal()),
            NetworkState.nominal(),
            b.router("s1").rid,
            b.router("d1").rid,
            igp_cache=sim.igp_cache,
        )
        assert len(paths) == 2
        names = [[b.net.router(r).name for r in p] for p in paths]
        assert ["s1", "t1", "t2", "t4", "d1"] in names
        assert ["s1", "t1", "t3", "t4", "d1"] in names

    def test_unreachable_returns_empty(self, ecmp_world):
        b, sim, _sensors = ecmp_world
        lid = b.net.link_between(b.router("t4").rid, b.router("d1").rid).lid
        state = NetworkState.nominal().with_failed_links([lid])
        assert (
            enumerate_data_paths(
                b.net,
                sim.routing(state),
                state,
                b.router("s1").rid,
                b.router("d1").rid,
            )
            == []
        )


class TestParisProbing:
    def test_probe_pair_returns_all_paths(self, ecmp_world):
        b, sim, sensors = ecmp_world
        probes = paris_probe_pair(
            sim, sensors[0], sensors[1], NetworkState.nominal()
        )
        assert len(probes) == 2
        assert all(p.reached and p.epoch == EPOCH_PRE for p in probes)
        assert len({p.hops for p in probes}) == 2

    def test_mesh_covers_pairs_and_marks_unreachable(self, ecmp_world):
        b, sim, sensors = ecmp_world
        lid = b.net.link_between(b.router("s1").rid, b.router("t1").rid).lid
        state = NetworkState.nominal().with_failed_links([lid])
        mesh = paris_mesh(sim, sensors, state, epoch=EPOCH_POST)
        assert len(mesh) == 2
        assert all(paths == () for paths in mesh.values())


class TestMultipathDiagnosis:
    def _rounds(self, b, sim, sensors, after_state):
        before = paris_mesh(sim, sensors, NetworkState.nominal())
        after = paris_mesh(sim, sensors, after_state, epoch=EPOCH_POST)
        return before, after

    def test_load_balance_flip_is_not_evidence(self, ecmp_world):
        """Killing one ECMP branch while the pair stays reachable must not
        invent failure sets — and the vanished branch shows up as honest
        reroute evidence."""
        b, sim, sensors = ecmp_world
        lid = b.net.link_between(b.router("t1").rid, b.router("t2").rid).lid
        after_state = sim.apply(LinkFailureEvent((lid,)))
        before, after = self._rounds(b, sim, sensors, after_state)
        assert all(after[pair] for pair in after)  # still reachable
        result = nd_edge_multipath(before, after, sim.mapper.asn_of)
        assert result.details["failure_sets"] == 0
        assert result.details["reroute_sets"] > 0
        truth = physical_link(
            b.router("t1").address, b.router("t2").address
        )
        assert truth in result.physical_hypothesis()

    def test_total_failure_produces_per_path_sets(self, ecmp_world):
        b, sim, sensors = ecmp_world
        lid = b.net.link_between(b.router("t4").rid, b.router("d1").rid).lid
        after_state = sim.apply(LinkFailureEvent((lid,)))
        before, after = self._rounds(b, sim, sensors, after_state)
        result = nd_edge_multipath(before, after, sim.mapper.asn_of)
        # s->d had two ECMP paths: each contributes a failure set; the
        # reverse direction contributes its own.
        assert result.details["failure_sets"] >= 3
        truth = physical_link(
            b.router("t4").address, b.router("d1").address
        )
        assert truth in result.physical_hypothesis()
        assert result.fully_explained

    def test_per_path_sets_beat_union_sets(self, ecmp_world):
        """The conjunction of per-path constraints pins the shared suffix:
        links on only one ECMP branch cannot explain both sets alone."""
        b, sim, sensors = ecmp_world
        lid = b.net.link_between(b.router("t4").rid, b.router("d1").rid).lid
        after_state = sim.apply(LinkFailureEvent((lid,)))
        before, after = self._rounds(b, sim, sensors, after_state)
        result = nd_edge_multipath(before, after, sim.mapper.asn_of)
        # Branch-only links (t1-t2 / t1-t3) explain only half the forward
        # sets; the shared suffix dominates the score and the branches
        # stay out of the hypothesis.
        for branch in (("t1", "t2"), ("t1", "t3")):
            token = physical_link(
                b.router(branch[0]).address, b.router(branch[1]).address
            )
            assert token not in result.physical_hypothesis()

    def test_input_validation(self, ecmp_world):
        b, sim, sensors = ecmp_world
        before = paris_mesh(sim, sensors, NetworkState.nominal())
        with pytest.raises(DiagnosisError):
            nd_edge_multipath(before, {}, sim.mapper.asn_of)
        broken = dict(before)
        broken[next(iter(broken))] = ()
        with pytest.raises(DiagnosisError):
            nd_edge_multipath(broken, broken, sim.mapper.asn_of)
