"""The tutorial's code blocks must stay executable (doc rot guard)."""

import pathlib
import re

TUTORIAL = pathlib.Path(__file__).resolve().parents[2] / "docs" / "tutorial.md"


def test_tutorial_blocks_execute_in_order():
    blocks = re.findall(r"```python\n(.*?)```", TUTORIAL.read_text(), re.S)
    assert len(blocks) >= 6
    namespace = {}
    for index, block in enumerate(blocks):
        exec(compile(block, f"<tutorial-block-{index}>", "exec"), namespace)
    # The walk really produced a diagnosis and ground truth.
    assert namespace["result"].fully_explained
    assert namespace["sens"] == 1.0
