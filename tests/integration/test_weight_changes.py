"""Tests for IGP weight-change (traffic engineering) events and the
robustness of reroute evidence against them."""

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.core.linkspace import physical_link
from repro.measurement.collector import take_snapshot
from repro.measurement.sensors import deploy_sensors
from repro.netsim.events import (
    CompositeEvent,
    LinkFailureEvent,
    WeightChangeEvent,
)
from repro.netsim.igp import IgpView
from repro.netsim.topology import NetworkState
from repro.serialize import event_from_dict, event_to_dict, state_from_dict, state_to_dict


class TestWeightOverrides:
    def test_override_changes_igp_path(self, fig2, nominal):
        """Raising y1-y4's weight shifts Y's internal path to the detour."""
        direct = fig2.link_between("y1", "y4")
        state = nominal.with_weight(direct.lid, 100)
        view = IgpView(fig2.net, fig2.asn("Y"), state)
        y1, y4 = fig2.router("y1").rid, fig2.router("y4").rid
        path = view.path(y1, y4)
        assert path == [y1, fig2.router("y2").rid, fig2.router("y3").rid, y4]
        assert view.distance(y1, y4) == 7

    def test_later_override_wins(self, fig2, nominal):
        link = fig2.link_between("y1", "y4")
        state = nominal.with_weight(link.lid, 50).with_weight(link.lid, 2)
        assert state.weight_of(link) == 2

    def test_invalid_weight_rejected(self, nominal):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            nominal.with_weight(0, 0)

    def test_state_with_overrides_not_nominal(self, nominal):
        assert not nominal.with_weight(3, 9).is_nominal()

    def test_event_and_state_roundtrip(self, fig2, nominal):
        event = WeightChangeEvent(link_id=2, new_weight=9)
        assert event_from_dict(event_to_dict(event)) == event
        state = event.apply_to(nominal)
        assert state_from_dict(state_to_dict(state)) == state
        assert event.physical_ground_truth(fig2.net) == frozenset()
        assert "weight change" in event.describe(fig2.net)


class TestTeRobustness:
    @pytest.fixture
    def world(self, fig2, fig2_sim):
        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
        )
        return fig2, fig2_sim, sensors

    def test_pure_te_event_causes_no_unreachability(self, world, nominal):
        fig, sim, sensors = world
        direct = fig2_link = fig.link_between("y1", "y4")
        after = sim.apply(WeightChangeEvent(direct.lid, 100))
        snap = take_snapshot(sim, sensors, nominal, after)
        assert not snap.any_failure()
        # The paths through Y did change: the troubleshooter would see
        # reroutes if it were (wrongly) invoked.
        assert snap.rerouted_pairs()

    def test_te_plus_failure_keeps_sensitivity(self, world, nominal):
        """A TE change alongside a real failure plants innocent reroute
        evidence; the true link must still be blamed."""
        fig, sim, sensors = world
        te = WeightChangeEvent(fig.link_between("y1", "y4").lid, 100)
        failure = LinkFailureEvent((fig.link_between("b1", "b2").lid,))
        after = sim.apply(CompositeEvent((te, failure)))
        snap = take_snapshot(sim, sensors, nominal, after)
        assert snap.any_failure()
        result = NetDiagnoser("nd-edge").diagnose(snap)
        truth = physical_link(
            fig.router("b1").address, fig.router("b2").address
        )
        assert truth in result.physical_hypothesis()
        assert result.fully_explained

    def test_te_reroute_evidence_adds_bounded_false_positives(
        self, world, nominal
    ):
        """The TE-moved links show up in reroute sets (they *were*
        abandoned), but exoneration by current working paths keeps the
        hypothesis from swallowing the whole detour."""
        fig, sim, sensors = world
        te = WeightChangeEvent(fig.link_between("y1", "y4").lid, 100)
        failure = LinkFailureEvent((fig.link_between("b1", "b2").lid,))
        after = sim.apply(CompositeEvent((te, failure)))
        snap = take_snapshot(sim, sensors, nominal, after)
        result = NetDiagnoser("nd-edge").diagnose(snap)
        clean_after = sim.apply(failure)
        clean = take_snapshot(sim, sensors, nominal, clean_after)
        baseline = NetDiagnoser("nd-edge").diagnose(clean)
        # TE may add a small number of extra suspects, never remove truth.
        assert len(result.physical_hypothesis()) <= (
            len(baseline.physical_hypothesis()) + 3
        )
