"""End-to-end invariants on the full research-Internet topology.

These run the complete pipeline (topology → routing → probing → failure →
diagnosis → scoring) over a spread of seeded scenarios and assert the
system-level guarantees the paper claims.
"""

import random

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.experiments.runner import (
    ground_truth_links,
    make_session,
    run_scenario,
)
from repro.measurement.collector import take_snapshot
from repro.measurement.sensors import random_stub_placement
from repro.netsim.gen.internet import research_internet


@pytest.fixture(scope="module")
def session():
    topo = research_internet(seed=77)
    rng = random.Random("e2e")
    return make_session(topo, random_stub_placement(topo, 10, rng), rng)


@pytest.fixture(scope="module")
def scenarios(session):
    return {
        kind: [session.sampler.sample(kind) for _ in range(3)]
        for kind in ("link-1", "link-2", "misconfig")
    }


class TestSystemGuarantees:
    def test_nd_edge_never_misses_single_failures(self, session, scenarios):
        for scenario in scenarios["link-1"]:
            record = run_scenario(session, scenario, {"nd": NetDiagnoser("nd-edge")})
            assert record.scores["nd"].link.sensitivity == 1.0

    def test_hypotheses_never_contain_working_constraint_links(
        self, session, scenarios
    ):
        for kind in scenarios:
            for scenario in scenarios[kind]:
                snap = take_snapshot(
                    session.sim,
                    session.sensors,
                    session.base_state,
                    scenario.after_state,
                )
                result = NetDiagnoser("nd-edge").diagnose(snap)
                assert not result.hypothesis & result.excluded

    def test_every_failed_path_is_explained_or_reported(
        self, session, scenarios
    ):
        for kind in scenarios:
            for scenario in scenarios[kind]:
                snap = take_snapshot(
                    session.sim,
                    session.sensors,
                    session.base_state,
                    scenario.after_state,
                )
                result = NetDiagnoser("nd-edge").diagnose(snap)
                explained = len(snap.failed_pairs()) - len(
                    result.unexplained_failures
                )
                assert explained + len(result.unexplained_failures) == len(
                    snap.failed_pairs()
                )
                assert result.fully_explained  # on this substrate: always

    def test_diagnosability_within_papers_observed_range(self, session):
        """§4: random 10-sensor placements yield D between ~0.25 and ~0.6
        (we allow a modest margin for the synthetic substrate)."""
        scenario = session.sampler.sample("link-1")
        record = run_scenario(session, scenario, {"nd": NetDiagnoser("nd-edge")})
        assert 0.15 <= record.diagnosability <= 0.75

    def test_hypothesis_sizes_are_small(self, session, scenarios):
        """§5.2: single-link hypothesis sets peak around a dozen links,
        tiny compared to the probed universe."""
        for scenario in scenarios["link-1"]:
            snap = take_snapshot(
                session.sim,
                session.sensors,
                session.base_state,
                scenario.after_state,
            )
            result = NetDiagnoser("nd-edge").diagnose(snap)
            assert len(result.physical_hypothesis()) <= 15
            assert len(result.physical_universe()) >= 50

    def test_truth_always_probed_for_admitted_scenarios(self, session, scenarios):
        for kind in scenarios:
            for scenario in scenarios[kind]:
                truth = ground_truth_links(session.net, scenario.event)
                assert truth  # events always have physical ground truth

    def test_tomo_and_nd_edge_agree_on_trivial_unreachability(self, session):
        """When a single-homed stub's access link dies, both algorithms
        must include that access link."""
        net = session.net
        access = None
        for sensor in session.sensors:
            links = net.links_of_router(sensor.router_id)
            if len(links) == 1:
                access = links[0]
                break
        if access is None:
            pytest.skip("all sensor stubs are multihomed in this seed")
        from repro.netsim.events import LinkFailureEvent

        after = session.sim.apply(LinkFailureEvent((access.lid,)))
        snap = take_snapshot(
            session.sim, session.sensors, session.base_state, after
        )
        assert snap.any_failure()
        truth = ground_truth_links(net, LinkFailureEvent((access.lid,)))
        for variant in ("tomo", "nd-edge"):
            result = NetDiagnoser(variant).diagnose(snap)
            assert truth & result.physical_hypothesis()
