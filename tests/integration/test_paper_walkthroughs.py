"""Integration tests replaying the paper's worked examples end to end.

These tests are the closest thing to executable documentation: each one
follows a story the paper tells about Figures 1-4 and checks our pipeline
reproduces it verbatim.
"""

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.core.linkspace import LogicalLink, physical_link
from repro.core.logical import logicalize
from repro.core.scfs import scfs
from repro.measurement.collector import (
    collect_control_plane,
    take_snapshot,
)
from repro.measurement.sensors import deploy_sensors
from repro.netsim.events import LinkFailureEvent, MisconfigurationEvent
from repro.netsim.topology import ExportFilter


@pytest.fixture
def world(fig2, fig2_sim):
    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    return fig2, fig2_sim, sensors


def addr(fig, name):
    return fig.router(name).address


class TestSection21Figure1:
    def test_scfs_blames_link_nearest_source(self):
        """§2.1: with the single-source tree s1->{s2,s3} and r9-r11 failed,
        SCFS marks the link closest to the source consistent with the
        observations (r6-r7 in the paper's numbering: the first link below
        the branch point towards the dead leaf)."""
        parent = {
            "r6": "s1",
            "r7": "r6",
            "r9": "r7",   # branch towards s2
            "r11": "r9",
            "s2": "r11",
            "r8": "r7",   # branch towards s3
            "s3": "r8",
        }
        blamed = scfs(parent, "s1", {"s2": False, "s3": True})
        # The maximal all-bad subtree towards s2 roots at r9.
        assert blamed == frozenset({("r7", "r9")})


class TestSection22MultiAsExample:
    def test_b1_b2_failure_narrowed_to_suffix(self, world, nominal):
        """§2.2: "Say that the link b1-b2 fails, causing some pairs of
        sensors to become unreachable.  The goal of AS-X is to determine
        that the link b1-b2 failed (or that the failed link lies in
        AS-B)."""
        fig, sim, sensors = world
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        control = collect_control_plane(sim, fig.asn("X"), nominal, after)
        result = NetDiagnoser("nd-bgpigp").diagnose(snap, control=control)
        truth = physical_link(addr(fig, "b1"), addr(fig, "b2"))
        hypothesis = result.physical_hypothesis()
        assert truth in hypothesis
        # Every blamed link lies in AS-B (the paper's fallback goal).
        mapper = fig.net.ip_to_as_mapper()
        for link in hypothesis:
            endpoint_ases = {
                mapper.asn_of(e) for e in link.endpoints() if isinstance(e, str)
            }
            assert fig.asn("B") in endpoint_ases


class TestSection31LogicalLinks:
    def test_figure3_logical_expansion(self, world, nominal):
        """§3.1/Figure 3: on path p12, x2-y1 becomes x2-y1(B); on p13 it
        becomes x2-y1(C); a2-x1 becomes a2-x1(Y) on both."""
        fig, sim, sensors = world
        snap = take_snapshot(sim, sensors, nominal, nominal)
        p12 = snap.before.get((sensors[0].address, sensors[1].address))
        p13 = snap.before.get((sensors[0].address, sensors[2].address))
        tokens_12 = logicalize(p12, snap.asn_of)
        tokens_13 = logicalize(p13, snap.asn_of)
        assert (
            LogicalLink(addr(fig, "x2"), addr(fig, "y1"), tag=fig.asn("B"))
            in tokens_12
        )
        assert (
            LogicalLink(addr(fig, "x2"), addr(fig, "y1"), tag=fig.asn("C"))
            in tokens_13
        )
        for tokens in (tokens_12, tokens_13):
            assert (
                LogicalLink(addr(fig, "a2"), addr(fig, "x1"), tag=fig.asn("Y"))
                in tokens
            )

    def test_misconfiguration_story(self, world, nominal):
        """§3.1: y1's outbound filter towards x2 drops the route to C; the
        path s1-s2 works while s1-s3 fails; Tomo exonerates x2-y1, while
        the logical graph pins x2-y1(C)."""
        fig, sim, sensors = world
        link = fig.link_between("x2", "y1")
        prefix_c = fig.net.autonomous_system(fig.asn("C")).prefix
        after = sim.apply(
            MisconfigurationEvent(
                ExportFilter(
                    link_id=link.lid,
                    at_router=fig.router("y1").rid,
                    prefixes=frozenset({prefix_c}),
                )
            )
        )
        snap = take_snapshot(sim, sensors, nominal, after)
        s1, s2, s3 = (s.address for s in sensors)
        assert (s1, s2) in set(snap.working_pairs())
        assert (s1, s3) in set(snap.failed_pairs())
        tomo = NetDiagnoser("tomo").diagnose(snap)
        assert physical_link(addr(fig, "x2"), addr(fig, "y1")) not in (
            tomo.physical_hypothesis()
        )
        nd = NetDiagnoser("nd-edge").diagnose(snap)
        assert nd.hypothesis == frozenset(
            {LogicalLink(addr(fig, "x2"), addr(fig, "y1"), tag=fig.asn("C"))}
        )


class TestSection33Withdrawals:
    def test_withdrawal_removes_upstream_links_from_h(self, world, nominal):
        """§3.3's example: after the failure, x1 receives a withdrawal for
        the prefix of s1's AS... transposed to our fixture: y4-b1 fails,
        X hears Y withdraw B's prefix and stops blaming anything upstream
        of the X-Y session."""
        fig, sim, sensors = world
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        control = collect_control_plane(sim, fig.asn("X"), nominal, after)
        without = NetDiagnoser("nd-edge").diagnose(snap)
        with_cp = NetDiagnoser("nd-bgpigp").diagnose(snap, control=control)
        upstream = {
            physical_link(addr(fig, "a2"), addr(fig, "x1")),
            physical_link(addr(fig, "x1"), addr(fig, "x2")),
        }
        assert not upstream & with_cp.physical_hypothesis()
        # Specificity improves (or at worst stays equal).
        assert len(with_cp.physical_hypothesis()) <= len(
            without.physical_hypothesis()
        )
        # Sensitivity is untouched.
        truth = physical_link(addr(fig, "y4"), addr(fig, "b1"))
        assert truth in with_cp.physical_hypothesis()
