"""Perf-helper regressions: the ru_maxrss platform units bug and the
benchmark-artifact read-update-write discipline.

``getrusage().ru_maxrss`` is KiB on Linux but **bytes** on macOS; the
old benchmark helper divided by 1024 unconditionally, inflating Darwin
readings 1024x.  These tests pin both conversions with a mocked
``getrusage`` so the guard is verified on any host."""

import json

import pytest

from repro import perf
from repro.perf import (
    bench_artifact_paths,
    maxrss_to_mb,
    merge_bench_artifact,
    peak_rss_mb,
    write_bench_artifact,
)


class _FakeUsage:
    def __init__(self, ru_maxrss):
        self.ru_maxrss = ru_maxrss


class TestMaxrssConversion:
    def test_linux_reports_kib(self):
        assert maxrss_to_mb(512 * 1024, platform="linux") == 512.0

    def test_darwin_reports_bytes(self):
        assert maxrss_to_mb(512 * 1024 * 1024, platform="darwin") == 512.0

    def test_same_reading_differs_1024x_across_platforms(self):
        """The exact bug: one raw reading, two meanings.  On Linux the
        raw KiB value is 1024x the MiB count; interpreting it as bytes
        (the old unconditional /1024 applied on Darwin data, or vice
        versa) is off by exactly that factor."""
        raw = 2_097_152  # 2 GiB in KiB, but only 2 MiB in bytes
        assert maxrss_to_mb(raw, platform="linux") == 2048.0
        assert maxrss_to_mb(raw, platform="darwin") == 2.0

    def test_defaults_to_the_running_platform(self):
        import sys

        assert maxrss_to_mb(1024) == maxrss_to_mb(1024, platform=sys.platform)

    def test_peak_rss_mb_linux_with_mocked_getrusage(self, monkeypatch):
        monkeypatch.setattr(
            perf.resource,
            "getrusage",
            lambda _who: _FakeUsage(300 * 1024),  # 300 MiB in KiB
        )
        assert peak_rss_mb(platform="linux") == 300.0

    def test_peak_rss_mb_darwin_with_mocked_getrusage(self, monkeypatch):
        monkeypatch.setattr(
            perf.resource,
            "getrusage",
            lambda _who: _FakeUsage(300 * 1024 * 1024),  # 300 MiB in bytes
        )
        assert peak_rss_mb(platform="darwin") == 300.0

    def test_peak_rss_without_resource_module_is_zero(self, monkeypatch):
        monkeypatch.setattr(perf, "resource", None)
        assert peak_rss_mb() == 0.0


class TestMergeBenchArtifact:
    def test_creates_fresh_document(self, tmp_path):
        path = tmp_path / "BENCH_x.json"

        def merge(data):
            data["rows"] = {"a": 1}

        result = merge_bench_artifact(path, "schema-v1", merge)
        assert result == {"schema": "schema-v1", "rows": {"a": 1}}
        assert json.loads(path.read_text()) == result

    def test_merges_into_existing_same_schema(self, tmp_path):
        """Read-update-write: a second run adds its rows next to the
        first run's instead of clobbering them."""
        path = tmp_path / "BENCH_x.json"
        merge_bench_artifact(
            path, "schema-v1", lambda data: data.setdefault("rows", {}).update(a=1)
        )
        result = merge_bench_artifact(
            path, "schema-v1", lambda data: data.setdefault("rows", {}).update(b=2)
        )
        assert result["rows"] == {"a": 1, "b": 2}

    def test_different_schema_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        merge_bench_artifact(path, "schema-v1", lambda data: data.update(old=True))
        result = merge_bench_artifact(
            path, "schema-v2", lambda data: data.update(new=True)
        )
        assert result == {"schema": "schema-v2", "new": True}
        assert "old" not in result

    def test_corrupt_json_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{ torn write")
        result = merge_bench_artifact(
            path, "schema-v1", lambda data: data.update(ok=True)
        )
        assert result == {"schema": "schema-v1", "ok": True}

    def test_non_dict_document_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("[1, 2, 3]")
        result = merge_bench_artifact(path, "schema-v1", lambda data: None)
        assert result == {"schema": "schema-v1"}


class TestWriteBenchArtifact:
    def test_writes_repo_root_and_results_copies(self, tmp_path):
        result = write_bench_artifact(
            "demo", "schema-v1", lambda data: data.update(x=1), tmp_path
        )
        root_path, results_path = bench_artifact_paths("demo", tmp_path)
        assert root_path == tmp_path / "BENCH_demo.json"
        assert results_path == tmp_path / "results" / "BENCH_demo.json"
        assert root_path.exists() and results_path.exists()
        assert json.loads(root_path.read_text()) == result
        assert json.loads(results_path.read_text()) == result

    def test_copies_merge_independently(self, tmp_path):
        """Each copy keeps what it already had: a tier present only in
        the results/ copy survives a later run that rewrites both."""
        _root, results_path = bench_artifact_paths("demo", tmp_path)
        merge_bench_artifact(
            results_path,
            "schema-v1",
            lambda data: data.setdefault("tiers", {}).update(old={"n": 1}),
        )
        write_bench_artifact(
            "demo",
            "schema-v1",
            lambda data: data.setdefault("tiers", {}).update(new={"n": 2}),
            tmp_path,
        )
        results_doc = json.loads(results_path.read_text())
        assert set(results_doc["tiers"]) == {"old", "new"}
        root_doc = json.loads((tmp_path / "BENCH_demo.json").read_text())
        assert set(root_doc["tiers"]) == {"new"}
