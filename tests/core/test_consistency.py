"""Tests for the post-diagnosis consistency checker."""

import pytest

from repro.core.consistency import suspect_working_pairs
from repro.core.diagnoser import NetDiagnoser
from repro.measurement.collector import take_snapshot
from repro.measurement.sensors import deploy_sensors
from repro.measurement.skew import take_skewed_snapshot
from repro.netsim.events import LinkFailureEvent, MisconfigurationEvent
from repro.netsim.topology import ExportFilter


@pytest.fixture
def world(fig2, fig2_sim):
    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    return fig2, fig2_sim, sensors


class TestSuspectWorkingPairs:
    def test_clean_snapshot_has_no_hard_contradictions(self, world, nominal):
        fig, sim, sensors = world
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        result = NetDiagnoser("nd-edge").diagnose(snap)
        suspects = suspect_working_pairs(snap, result)
        assert all(s.severity == 0 for s in suspects)

    def test_stale_report_is_flagged(self, world, nominal):
        """The §6 skew scenario: the stale sensor's lying report is the
        one whose path crosses the blamed links."""
        fig, sim, sensors = world
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        stale_sensor = sensors[0]
        snap = take_skewed_snapshot(
            sim, sensors, nominal, after, {stale_sensor.sensor_id}
        )
        result = NetDiagnoser("nd-edge").diagnose(snap)
        suspects = suspect_working_pairs(snap, result)
        flagged = {
            s.pair for s in suspects if s.severity > 0 or s.directional_overlaps
        }
        # The stale forward report s1->s2 crosses the blamed reverse
        # evidence over the failed link.
        assert (stale_sensor.address, sensors[1].address) in flagged

    def test_misconfig_overlaps_are_soft_not_hard(self, world, nominal):
        """Partial failures legitimately leave working traffic on the
        blamed (logical) link: soft overlap, zero hard contradictions."""
        fig, sim, sensors = world
        link = fig.link_between("x2", "y1")
        prefix_c = fig.net.autonomous_system(fig.asn("C")).prefix
        after = sim.apply(
            MisconfigurationEvent(
                ExportFilter(
                    link_id=link.lid,
                    at_router=fig.router("y1").rid,
                    prefixes=frozenset({prefix_c}),
                )
            )
        )
        snap = take_snapshot(sim, sensors, nominal, after)
        result = NetDiagnoser("nd-edge").diagnose(snap)
        suspects = suspect_working_pairs(snap, result)
        assert suspects  # p12 still flows over the misconfigured link
        assert all(s.severity == 0 for s in suspects)
        assert any(s.directional_overlaps for s in suspects)

    def test_ordering_puts_hard_contradictions_first(self, world, nominal):
        fig, sim, sensors = world
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_skewed_snapshot(
            sim, sensors, nominal, after, {sensors[0].sensor_id}
        )
        result = NetDiagnoser("nd-edge").diagnose(snap)
        suspects = suspect_working_pairs(snap, result)
        severities = [s.severity for s in suspects]
        assert severities == sorted(severities, reverse=True)
