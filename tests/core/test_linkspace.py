"""Unit tests for link tokens and projections."""

import pytest

from repro.core.linkspace import (
    ORIGIN_TAG,
    UNKNOWN_TAG,
    IpLink,
    LogicalLink,
    PhysicalLink,
    UhNode,
    ip_link,
    is_unidentified,
    physical_link,
    physical_projection,
    sort_key,
    undirected_projection,
)


class TestIpLink:
    def test_direction_is_preserved(self):
        forward = ip_link("10.0.0.1", "10.0.0.2")
        reverse = ip_link("10.0.0.2", "10.0.0.1")
        assert forward != reverse
        assert forward.physical() == reverse.physical()

    def test_identified_flag(self):
        uh = UhNode("s", "d", "pre", 3)
        assert ip_link("10.0.0.1", "10.0.0.2").identified
        assert not ip_link("10.0.0.1", uh).identified
        assert is_unidentified(ip_link(uh, "10.0.0.2"))
        assert not is_unidentified(ip_link("10.0.0.1", "10.0.0.2"))

    def test_tokens_are_hashable_and_value_equal(self):
        assert ip_link("10.0.0.1", "10.0.0.2") == ip_link("10.0.0.1", "10.0.0.2")
        assert len({ip_link("10.0.0.1", "10.0.0.2")} | {
            ip_link("10.0.0.1", "10.0.0.2")
        }) == 1


class TestLogicalLink:
    def test_physical_collapse(self):
        logical = LogicalLink("10.0.0.2", "10.0.0.1", tag=7)
        assert logical.physical() == physical_link("10.0.0.1", "10.0.0.2")

    def test_distinct_tags_are_distinct_tokens(self):
        a = LogicalLink("10.0.0.1", "10.0.0.2", tag=7)
        b = LogicalLink("10.0.0.1", "10.0.0.2", tag=8)
        assert a != b
        assert a.physical() == b.physical()

    def test_reserved_tags_are_outside_asn_space(self):
        assert ORIGIN_TAG == 0
        assert UNKNOWN_TAG < 0

    def test_str_rendering(self):
        assert "origin" in str(LogicalLink("1.1.1.1", "2.2.2.2", ORIGIN_TAG))
        assert "?" in str(LogicalLink("1.1.1.1", "2.2.2.2", UNKNOWN_TAG))


class TestPhysicalLink:
    def test_canonical_ordering_is_numeric(self):
        # String ordering would put 10.0.0.9 after 10.0.0.10.
        link = physical_link("10.0.0.10", "10.0.0.9")
        assert link == physical_link("10.0.0.9", "10.0.0.10")
        assert link.lo == "10.0.0.9"

    def test_identified_addresses_sort_before_uh_nodes(self):
        uh = UhNode("s", "d", "pre", 1)
        link = physical_link(uh, "10.0.0.1")
        assert link.lo == "10.0.0.1"
        assert isinstance(link.hi, UhNode)


class TestProjections:
    def test_physical_projection_keeps_direction(self):
        tokens = [
            LogicalLink("10.0.0.1", "10.0.0.2", tag=7),
            LogicalLink("10.0.0.1", "10.0.0.2", tag=8),
            ip_link("10.0.0.2", "10.0.0.1"),
        ]
        projected = physical_projection(tokens)
        assert projected == frozenset(
            {IpLink("10.0.0.1", "10.0.0.2"), IpLink("10.0.0.2", "10.0.0.1")}
        )

    def test_undirected_projection_merges_directions_and_tags(self):
        tokens = [
            LogicalLink("10.0.0.1", "10.0.0.2", tag=7),
            ip_link("10.0.0.2", "10.0.0.1"),
        ]
        assert undirected_projection(tokens) == frozenset(
            {physical_link("10.0.0.1", "10.0.0.2")}
        )

    def test_uh_links_pass_through(self):
        uh = UhNode("s", "d", "pre", 2)
        token = ip_link("10.0.0.1", uh)
        assert token in physical_projection([token])
        assert undirected_projection([token]) == frozenset(
            {PhysicalLink("10.0.0.1", uh)}
        )


class TestSortKey:
    def test_total_order_over_mixed_tokens(self):
        uh = UhNode("s", "d", "pre", 0)
        tokens = [
            LogicalLink("10.0.0.1", "10.0.0.2", tag=9),
            ip_link("10.0.0.1", "10.0.0.2"),
            ip_link(uh, "10.0.0.3"),
            LogicalLink("10.0.0.1", "10.0.0.2", tag=2),
        ]
        ordered = sorted(tokens, key=sort_key)
        assert ordered == sorted(tokens, key=sort_key)  # stable/deterministic
        # Physical tokens (rank 0) come before logical tokens (rank 1).
        assert isinstance(ordered[0], IpLink)
        assert isinstance(ordered[-1], LogicalLink)
        # Equal endpoints: tags break the tie.
        logical = [t for t in ordered if isinstance(t, LogicalLink)]
        assert [t.tag for t in logical] == [2, 9]
