"""Edge cases and error-path coverage across small modules."""

import pytest

from repro.errors import (
    AddressingError,
    ConvergenceError,
    DiagnosisError,
    MeasurementError,
    ReproError,
    RoutingError,
    ScenarioError,
    TopologyError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            TopologyError,
            AddressingError,
            RoutingError,
            ConvergenceError,
            MeasurementError,
            DiagnosisError,
            ScenarioError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_convergence_is_a_routing_error(self):
        assert issubclass(ConvergenceError, RoutingError)


class TestEdgeInputsHelpers:
    def test_cluster_of_handles_missing_map(self):
        from repro.core.graph import InferredGraph
        from repro.core.linkspace import ip_link
        from repro.core.nd_edge import EdgeInputs

        inputs = EdgeInputs(
            failure_sets={},
            working_excluded=frozenset(),
            reroute_map={},
            graph=InferredGraph(),
            logical_clusters=None,
        )
        assert inputs.cluster_of(ip_link("1.1.1.1", "2.2.2.2")) == frozenset()
        assert inputs.excluded() == frozenset()


class TestMultipathEdges:
    def test_enumerate_rejects_bad_cap(self, fig2, fig2_sim, nominal):
        from repro.errors import RoutingError as RErr
        from repro.netsim.multipath import enumerate_data_paths

        with pytest.raises(RErr):
            enumerate_data_paths(
                fig2.net,
                fig2_sim.routing(nominal),
                nominal,
                fig2.sensor_routers["s1"],
                fig2.sensor_routers["s2"],
                max_paths=0,
            )

    def test_single_path_world_yields_the_data_path(self, fig2, fig2_sim, nominal):
        from repro.netsim.forwarding import data_path
        from repro.netsim.multipath import enumerate_data_paths

        src = fig2.sensor_routers["s1"]
        dst = fig2.sensor_routers["s2"]
        routing = fig2_sim.routing(nominal)
        paths = enumerate_data_paths(fig2.net, routing, nominal, src, dst)
        assert len(paths) == 1
        assert paths[0] == data_path(fig2.net, routing, nominal, src, dst).router_path

    def test_dead_endpoint_yields_empty(self, fig2, fig2_sim):
        from repro.netsim.multipath import enumerate_data_paths
        from repro.netsim.topology import NetworkState

        src = fig2.sensor_routers["s1"]
        dst = fig2.sensor_routers["s2"]
        state = NetworkState.nominal().with_failed_routers([src])
        assert (
            enumerate_data_paths(
                fig2.net, fig2_sim.routing(state), state, src, dst
            )
            == []
        )


class TestDiagnoserConfig:
    def test_weights_forwarded_to_algorithms(self, fig2, fig2_sim, nominal):
        from repro.core.diagnoser import NetDiagnoser
        from repro.measurement.collector import take_snapshot
        from repro.measurement.sensors import deploy_sensors
        from repro.netsim.events import LinkFailureEvent

        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
        )
        lid = fig2.link_between("b1", "b2").lid
        after = fig2_sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(fig2_sim, sensors, nominal, after)
        default = NetDiagnoser("nd-edge").diagnose(snap)
        reweighted = NetDiagnoser("nd-edge", reroute_weight=0).diagnose(snap)
        # Both are valid diagnoses of the same snapshot.
        assert default.algorithm == reweighted.algorithm == "nd-edge"
        assert default.fully_explained and reweighted.fully_explained

    def test_variants_tuple_is_stable_api(self):
        from repro.core.diagnoser import VARIANTS

        assert VARIANTS == ("scfs", "tomo", "nd-edge", "nd-bgpigp", "nd-lg")


class TestVersionExport:
    def test_package_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
        assert "NetDiagnoser" in (repro.__doc__ or "")
