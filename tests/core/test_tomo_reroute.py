"""Unit tests for Tomo and the reroute-set extraction, built on hand-made
snapshots so the exact greedy inputs are visible."""

import pytest

from repro.core.linkspace import LogicalLink, ip_link, physical_link
from repro.core.pathset import (
    EPOCH_POST,
    EPOCH_PRE,
    MeasurementSnapshot,
    PathStore,
    ProbePath,
)
from repro.core.reroute import reroute_sets
from repro.core.tomo import tomo

# A tiny 2-AS world: sensors S1 (AS 1) and S2 (AS 2), two parallel transit
# routes: r1a-r2a (primary) and r1b-r2b (backup).
S1, S2 = "10.0.16.200", "10.0.32.200"
R1A, R1B = "10.0.16.1", "10.0.16.2"
R2A, R2B = "10.0.32.1", "10.0.32.2"

ASN = {
    S1: 1, R1A: 1, R1B: 1,
    S2: 2, R2A: 2, R2B: 2,
}.get


def p(src, dst, mids, reached=True, epoch=EPOCH_PRE):
    hops = (src,) + tuple(mids) + ((dst,) if reached else ())
    return ProbePath(src=src, dst=dst, hops=hops, reached=reached, epoch=epoch)


def snapshot(before_paths, after_paths):
    before, after = PathStore(), PathStore()
    for path in before_paths:
        before.add(path)
    for path in after_paths:
        after.add(path)
    return MeasurementSnapshot(before=before, after=after, asn_of=ASN)


class TestTomo:
    def test_blames_links_unique_to_failed_path(self):
        snap = snapshot(
            [
                p(S1, S2, [R1A, R2A]),
                p(S2, S1, [R2B, R1B]),
            ],
            [
                p(S1, S2, [R1A], reached=False, epoch=EPOCH_POST),
                p(S2, S1, [R2B, R1B], epoch=EPOCH_POST),
            ],
        )
        result = tomo(snap)
        # Every link of the failed forward path ties at score 1.
        assert result.hypothesis == frozenset(
            {
                ip_link(S1, R1A),
                ip_link(R1A, R2A),
                ip_link(R2A, S2),
            }
        )
        assert result.fully_explained
        assert result.algorithm == "tomo"

    def test_working_path_exonerates_shared_links(self):
        snap = snapshot(
            [
                p(S1, S2, [R1A, R2A]),
                p(S1, S2.replace("200", "201"), [R1A, R2B]),
            ],
            [
                p(S1, S2, [R1A, R2A], reached=False, epoch=EPOCH_POST),
                p(S1, S2.replace("200", "201"), [R1A, R2B], epoch=EPOCH_POST),
            ],
        )
        result = tomo(snap)
        assert ip_link(S1, R1A) not in result.hypothesis
        assert ip_link(R1A, R2A) in result.hypothesis

    def test_stale_working_view_causes_false_negative(self):
        """The §2.5(2) blind spot: a rerouted-but-working pair exonerates
        the failed link it used to cross."""
        other = S2.replace("200", "201")
        snap = snapshot(
            [
                p(S1, S2, [R1A, R2A]),      # fails
                p(S1, other, [R1A, R2A]),   # reroutes via R2B and works
            ],
            [
                p(S1, S2, [R1A], reached=False, epoch=EPOCH_POST),
                p(S1, other, [R1A, R2B], epoch=EPOCH_POST),
            ],
        )
        result = tomo(snap)
        # Tomo used the T- path of the working pair, which crossed R1A-R2A:
        # the genuinely failed link gets wrongly exonerated.
        assert ip_link(R1A, R2A) not in result.hypothesis

    def test_graph_universe_is_prefailure_only(self):
        snap = snapshot(
            [p(S1, S2, [R1A, R2A])],
            [p(S1, S2, [R1A, R2B], reached=False, epoch=EPOCH_POST)],
        )
        result = tomo(snap)
        assert ip_link(R1A, R2B) not in result.graph


class TestRerouteSets:
    def test_reroute_set_is_old_minus_new(self):
        snap = snapshot(
            [
                p(S1, S2, [R1A, R2A]),
                p(S1, S2.replace("200", "201"), [R1A, R2A], reached=True),
            ],
            [
                p(S1, S2, [R1A], reached=False, epoch=EPOCH_POST),
                p(
                    S1,
                    S2.replace("200", "201"),
                    [R1A, R2B],
                    epoch=EPOCH_POST,
                ),
            ],
        )
        sets = reroute_sets(snap, logical=False)
        pair = (S1, S2.replace("200", "201"))
        assert pair in sets
        assert ip_link(R1A, R2A) in sets[pair]
        assert ip_link(S1, R1A) not in sets[pair]  # still on the new path

    def test_unchanged_pairs_contribute_nothing(self):
        snap = snapshot(
            [p(S1, S2, [R1A, R2A]), p(S2, S1, [R2A, R1A])],
            [
                p(S1, S2, [R1A], reached=False, epoch=EPOCH_POST),
                p(S2, S1, [R2A, R1A], epoch=EPOCH_POST),
            ],
        )
        assert reroute_sets(snap) == {}

    def test_logical_reroute_ignores_pure_tag_changes(self):
        """A link kept by the new path must not enter the reroute set even
        if its out-neighbour tag changed."""
        other = S2.replace("200", "201")
        snap = snapshot(
            [
                p(S1, S2, [R1A, R2A]),
                p(S1, other, [R1A, R2A, R2B]),
            ],
            [
                p(S1, S2, [R1A], reached=False, epoch=EPOCH_POST),
                # Same physical entry link R1A->R2A, different internal tail.
                p(S1, other, [R1A, R2A], epoch=EPOCH_POST),
            ],
        )
        sets = reroute_sets(snap, logical=True)
        pair = (S1, other)
        assert pair in sets
        assert not any(
            isinstance(t, LogicalLink) and t.physical() == physical_link(R1A, R2A)
            for t in sets[pair]
        )
