"""Tests for the interned bitset layer and the solver caches."""

import pytest

from repro.core.bitsets import (
    CountingLru,
    clear_encoding_cache,
    encoding_cache_counters,
    intern_family,
    intern_universe,
    numpy_available,
    vectorize_enabled,
)
from repro.core.hitting_set import (
    clear_exact_cache,
    exact_cache_counters,
    exact_hitting_set,
)
from repro.core.linkspace import ip_link, sort_key
from repro.core.pathset import ProbePath


def L(n):  # short link-token factory
    return ip_link(f"10.0.0.{n}", f"10.0.0.{n + 100}")


class TestTokenUniverse:
    def test_columns_follow_sort_key_order(self):
        universe = intern_universe([frozenset({L(3), L(1)}), frozenset({L(2)})])
        assert list(universe.tokens) == sorted(universe.tokens, key=sort_key)
        for column, token in enumerate(universe.tokens):
            assert universe.column_of[token] == column
            assert token in universe

    def test_columns_of_set_is_memoised(self):
        universe = intern_universe([frozenset({L(1), L(2)})])
        cluster = frozenset({L(1), L(2), L(99)})  # L(99) outside universe
        first = universe.columns_of_set(cluster)
        assert first == universe.columns(cluster)
        assert universe.columns_of_set(cluster) is first


class TestInternFamily:
    def setup_method(self):
        clear_encoding_cache()

    def test_repeated_family_returns_same_object(self):
        sets = (frozenset({L(1), L(2)}), frozenset({L(2), L(3)}))
        first = intern_family(sets)
        second = intern_family(tuple(sets))
        assert second is first
        counters = encoding_cache_counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 1

    @pytest.mark.skipif(not numpy_available(), reason="numpy unavailable")
    def test_matrix_is_shared_and_read_only(self):
        family = intern_family((frozenset({L(1)}), frozenset({L(1), L(2)})))
        matrix = family.matrix()
        assert matrix is family.matrix()
        assert not matrix.flags.writeable
        assert matrix.shape == (2, 2)
        assert matrix.sum() == 3

    @pytest.mark.skipif(not numpy_available(), reason="numpy unavailable")
    def test_effective_matrix_memoised_per_cluster_callable(self):
        family = intern_family((frozenset({L(1)}), frozenset({L(2)})))
        assert family.effective_matrix(None) is family.matrix()
        cluster = frozenset({L(1), L(2)})
        cluster_of = {L(1): cluster, L(2): cluster}.get
        expanded = family.effective_matrix(cluster_of)
        # Expansion: each column also hits its sibling's set.
        assert expanded.all()
        assert family.effective_matrix(cluster_of) is expanded
        # A different callable misses the single-slot memo but computes
        # the same expansion.
        other = family.effective_matrix({L(1): cluster, L(2): cluster}.get)
        assert other is not expanded
        assert (other == expanded).all()


class TestCountingLru:
    def test_hit_miss_and_eviction(self):
        lru = CountingLru(2)
        assert lru.get("a") is None
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refreshes "a"
        lru.put("c", 3)  # evicts "b", the least recently used
        assert lru.get("b") is None
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        assert lru.hits == 3
        assert lru.misses == 2

    def test_clear_resets_counters(self):
        lru = CountingLru(2)
        lru.put("a", 1)
        lru.get("a")
        lru.clear()
        assert lru.get("a") is None
        assert (lru.hits, lru.misses) == (0, 1)


class TestExactMemoization:
    def setup_method(self):
        clear_exact_cache()

    def test_second_call_hits_the_cache(self):
        sets = [[L(1), L(2)], [L(2), L(3)]]
        first = exact_hitting_set(sets)
        assert exact_cache_counters() == {"hits": 0, "misses": 1}
        assert exact_hitting_set(sets) == first
        assert exact_cache_counters() == {"hits": 1, "misses": 1}

    def test_key_ignores_set_order_and_duplicates(self):
        """The B&B result depends only on the *family*: permuted or
        duplicated inputs reuse the memoized search."""
        first = exact_hitting_set([[L(1), L(2)], [L(3)]])
        assert exact_hitting_set([[L(3)], [L(1), L(2)], [L(3)]]) == first
        assert exact_cache_counters() == {"hits": 1, "misses": 1}

    def test_truncated_none_is_cached(self):
        """A budget-truncated search memoizes its None under that budget
        (the _NO_SOLUTION sentinel, not a cache miss)."""
        sets = [[L(a), L(b)] for a in range(1, 5) for b in range(a + 1, 5)]
        assert exact_hitting_set(sets, max_expansions=1) is None
        assert exact_hitting_set(sets, max_expansions=1) is None
        assert exact_cache_counters() == {"hits": 1, "misses": 1}

    def test_pruned_infeasible_short_circuits_before_the_cache(self):
        """Every-candidate-excluded is decided during pruning; no search
        runs, so nothing is cached."""
        assert exact_hitting_set([[L(1)]], excluded=[L(1)]) is None
        assert exact_cache_counters() == {"hits": 0, "misses": 0}

    def test_budget_is_part_of_the_key(self):
        """A truncated search must not poison the unbounded one."""
        sets = [
            [L(a), L(b)] for a in range(1, 5) for b in range(a + 1, 5)
        ]
        truncated = exact_hitting_set(sets, max_expansions=1)
        full = exact_hitting_set(sets)
        assert truncated is None
        assert full is not None
        assert exact_cache_counters()["misses"] == 2


class TestVectorizeGate:
    def test_env_escape_hatch(self, monkeypatch):
        if not numpy_available():
            assert not vectorize_enabled()
            return
        monkeypatch.delenv("REPRO_NO_VECTORIZE", raising=False)
        assert vectorize_enabled()
        monkeypatch.setenv("REPRO_NO_VECTORIZE", "0")
        assert vectorize_enabled()
        monkeypatch.setenv("REPRO_NO_VECTORIZE", "1")
        assert not vectorize_enabled()


class TestPathMemoization:
    def test_probe_path_links_cached(self):
        path = ProbePath(
            src="10.0.0.1",
            dst="10.0.0.3",
            hops=("10.0.0.1", "10.0.0.2", "10.0.0.3"),
            reached=True,
        )
        assert path.links() is path.links()
