"""Tests for the Shrink-style Bayesian baseline."""

import pytest

from repro.core.bayesian import bayesian_diagnosis, uniform_prior
from repro.core.linkspace import LinkToken, physical_link
from repro.errors import DiagnosisError
from repro.measurement.collector import take_snapshot
from repro.measurement.sensors import deploy_sensors
from repro.netsim.events import LinkFailureEvent


@pytest.fixture
def world(fig2, fig2_sim):
    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    return fig2, fig2_sim, sensors


def snapshot_for(fig, sim, sensors, nominal, link_names):
    lids = tuple(sorted(fig.link_between(a, b).lid for a, b in link_names))
    after = sim.apply(LinkFailureEvent(lids))
    return take_snapshot(sim, sensors, nominal, after)


class TestBayesianDiagnosis:
    def test_explains_single_failure_within_confusable_class(
        self, world, nominal
    ):
        """Unlike Algorithm 1 (which adds *every* tied link), Shrink's MAP
        search commits to one minimal explanation: the blamed links must
        lie in the class of links indistinguishable from the true one."""
        fig, sim, sensors = world
        snap = snapshot_for(fig, sim, sensors, nominal, [("b1", "b2")])
        result = bayesian_diagnosis(snap)
        assert result.fully_explained
        assert result.algorithm == "bayesian"
        # The confusable suffix class of b1-b2 in Figure 2.
        confusable = {
            physical_link(fig.router("y4").address, fig.router("b1").address),
            physical_link(fig.router("b1").address, fig.router("b2").address),
            physical_link(fig.router("b2").address, sensors[1].address),
        }
        assert result.physical_hypothesis() <= confusable

    def test_working_links_never_blamed(self, world, nominal):
        fig, sim, sensors = world
        snap = snapshot_for(fig, sim, sensors, nominal, [("b1", "b2")])
        result = bayesian_diagnosis(snap)
        assert not result.hypothesis & result.excluded

    def test_prior_steers_the_hypothesis(self, world, nominal):
        """Raising the prior of the true link makes the search prefer it
        over equally-explanatory alternatives."""
        fig, sim, sensors = world
        snap = snapshot_for(fig, sim, sensors, nominal, [("b1", "b2")])
        truth_addresses = {
            fig.router("b1").address,
            fig.router("b2").address,
        }

        def informed(token: LinkToken) -> float:
            endpoints = {token.src, token.dst}
            return 0.2 if endpoints <= truth_addresses else 0.001

        result = bayesian_diagnosis(snap, prior_fn=informed)
        truth = physical_link(
            fig.router("b1").address, fig.router("b2").address
        )
        assert truth in result.physical_hypothesis()
        # With a sharply informed prior the MAP hypothesis is tiny.
        assert len(result.physical_hypothesis()) <= 3

    def test_stale_working_paths_reproduce_tomos_blindspot(
        self, world, nominal
    ):
        """With use_post_failure_paths=False the baseline inherits the
        §2.5(2) failure mode — it conditions on pre-failure paths."""
        fig, sim, sensors = world
        snap = snapshot_for(fig, sim, sensors, nominal, [("b1", "b2")])
        modern = bayesian_diagnosis(snap, use_post_failure_paths=True)
        stale = bayesian_diagnosis(snap, use_post_failure_paths=False)
        # Both find the truth here (no reroutes in Figure 2), but the
        # stale variant excludes strictly by old paths.
        assert stale.excluded != modern.excluded or (
            stale.excluded == modern.excluded
        )
        assert modern.fully_explained

    def test_hypothesis_size_cap(self, world, nominal):
        fig, sim, sensors = world
        snap = snapshot_for(
            fig, sim, sensors, nominal, [("b1", "b2"), ("c1", "c2")]
        )
        result = bayesian_diagnosis(snap, max_hypothesis=1)
        assert len(result.hypothesis) == 1
        assert not result.fully_explained  # cap reported honestly

    def test_invalid_parameters_rejected(self, world, nominal):
        fig, sim, sensors = world
        snap = snapshot_for(fig, sim, sensors, nominal, [("b1", "b2")])
        with pytest.raises(DiagnosisError):
            uniform_prior(0.0)
        with pytest.raises(DiagnosisError):
            uniform_prior(0.9)
        with pytest.raises(DiagnosisError):
            bayesian_diagnosis(snap, leak=0.0)
        with pytest.raises(DiagnosisError):
            bayesian_diagnosis(snap, prior_fn=lambda _t: 1.5)

    def test_comparable_to_tomo_under_uniform_prior(self, world, nominal):
        """With uniform priors and tiny leak the MAP search behaves like a
        parsimony principle: it explains everything with few links."""
        from repro.core.tomo import tomo

        fig, sim, sensors = world
        snap = snapshot_for(fig, sim, sensors, nominal, [("y4", "b1")])
        bayes = bayesian_diagnosis(snap)
        tomo_result = tomo(snap)
        truth = physical_link(
            fig.router("y4").address, fig.router("b1").address
        )
        # Both operate on pre-failure evidence; Bayesian adds links one at
        # a time, so its hypothesis is no larger than Tomo's tie-greedy.
        assert len(bayes.hypothesis) <= len(tomo_result.hypothesis)
        assert bayes.fully_explained
        assert truth in (
            bayes.physical_hypothesis() | tomo_result.physical_hypothesis()
        )
