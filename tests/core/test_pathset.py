"""Unit tests for probe paths, stores and measurement snapshots."""

import pytest

from repro.core.linkspace import UhNode, ip_link
from repro.core.pathset import (
    EPOCH_POST,
    EPOCH_PRE,
    MeasurementSnapshot,
    PathStore,
    ProbePath,
)
from repro.errors import DiagnosisError


def path(src, dst, mids, reached=True, epoch=EPOCH_PRE):
    hops = (src,) + tuple(mids) + ((dst,) if reached else ())
    return ProbePath(src=src, dst=dst, hops=hops, reached=reached, epoch=epoch)


class TestProbePath:
    def test_links_follow_hop_order(self):
        p = path("1.1.1.1", "2.2.2.2", ["9.9.9.9"])
        assert p.links() == (
            ip_link("1.1.1.1", "9.9.9.9"),
            ip_link("9.9.9.9", "2.2.2.2"),
        )

    def test_validation(self):
        with pytest.raises(DiagnosisError):
            ProbePath("a", "b", (), True)
        with pytest.raises(DiagnosisError):
            ProbePath("1.1.1.1", "2.2.2.2", ("9.9.9.9",), True)
        with pytest.raises(DiagnosisError):
            ProbePath("1.1.1.1", "2.2.2.2", ("1.1.1.1", "9.9.9.9"), True)

    def test_failed_path_may_stop_anywhere(self):
        p = path("1.1.1.1", "2.2.2.2", ["9.9.9.9"], reached=False)
        assert p.links() == (ip_link("1.1.1.1", "9.9.9.9"),)

    def test_unidentified_hop_detection(self):
        uh = UhNode("1.1.1.1", "2.2.2.2", EPOCH_PRE, 1)
        p = ProbePath("1.1.1.1", "2.2.2.2", ("1.1.1.1", uh, "2.2.2.2"), True)
        assert p.has_unidentified_hops()
        assert not path("1.1.1.1", "2.2.2.2", ["9.9.9.9"]).has_unidentified_hops()


class TestPathStore:
    def test_add_get_and_iteration_order(self):
        store = PathStore()
        store.add(path("2.2.2.2", "1.1.1.1", ["9.9.9.9"]))
        store.add(path("1.1.1.1", "2.2.2.2", ["9.9.9.9"]))
        assert store.pairs() == (("1.1.1.1", "2.2.2.2"), ("2.2.2.2", "1.1.1.1"))
        assert len(store) == 2
        assert ("1.1.1.1", "2.2.2.2") in store

    def test_duplicate_pair_rejected(self):
        store = PathStore()
        store.add(path("1.1.1.1", "2.2.2.2", ["9.9.9.9"]))
        with pytest.raises(DiagnosisError):
            store.add(path("1.1.1.1", "2.2.2.2", ["8.8.8.8"]))

    def test_missing_pair_raises(self):
        with pytest.raises(DiagnosisError):
            PathStore().get(("a", "b"))

    def test_working_and_failed_partitions(self):
        store = PathStore()
        store.add(path("1.1.1.1", "2.2.2.2", ["9.9.9.9"]))
        store.add(path("2.2.2.2", "1.1.1.1", ["9.9.9.9"], reached=False))
        assert store.working_pairs() == (("1.1.1.1", "2.2.2.2"),)
        assert store.failed_pairs() == (("2.2.2.2", "1.1.1.1"),)


class TestMeasurementSnapshot:
    def _snapshot(self, after_mid="9.9.9.9", after_reached=True):
        before = PathStore()
        before.add(path("1.1.1.1", "2.2.2.2", ["9.9.9.9"]))
        after = PathStore()
        after.add(
            path(
                "1.1.1.1",
                "2.2.2.2",
                [after_mid],
                reached=after_reached,
                epoch=EPOCH_POST,
            )
        )
        return MeasurementSnapshot(before=before, after=after)

    def test_pair_mismatch_rejected(self):
        before = PathStore()
        before.add(path("1.1.1.1", "2.2.2.2", ["9.9.9.9"]))
        with pytest.raises(DiagnosisError):
            MeasurementSnapshot(before=before, after=PathStore())

    def test_failed_before_path_rejected(self):
        before = PathStore()
        before.add(path("1.1.1.1", "2.2.2.2", ["9.9.9.9"], reached=False))
        after = PathStore()
        after.add(path("1.1.1.1", "2.2.2.2", ["9.9.9.9"], epoch=EPOCH_POST))
        with pytest.raises(DiagnosisError):
            MeasurementSnapshot(before=before, after=after)

    def test_reroute_detection(self):
        snap = self._snapshot(after_mid="8.8.8.8")
        assert snap.rerouted_pairs() == (("1.1.1.1", "2.2.2.2"),)
        unchanged = self._snapshot()
        assert unchanged.rerouted_pairs() == ()

    def test_failed_pair_detection(self):
        snap = self._snapshot(after_reached=False)
        assert snap.failed_pairs() == (("1.1.1.1", "2.2.2.2"),)
        assert snap.any_failure()
        assert not self._snapshot().any_failure()

    def test_uh_hops_compared_by_position(self):
        """A star at the same position pre/post is not a reroute."""
        before = PathStore()
        uh_pre = UhNode("1.1.1.1", "2.2.2.2", EPOCH_PRE, 1)
        before.add(
            ProbePath("1.1.1.1", "2.2.2.2", ("1.1.1.1", uh_pre, "2.2.2.2"), True)
        )
        after = PathStore()
        uh_post = UhNode("1.1.1.1", "2.2.2.2", EPOCH_POST, 1)
        after.add(
            ProbePath(
                "1.1.1.1",
                "2.2.2.2",
                ("1.1.1.1", uh_post, "2.2.2.2"),
                True,
                epoch=EPOCH_POST,
            )
        )
        snap = MeasurementSnapshot(before=before, after=after)
        assert snap.rerouted_pairs() == ()
