"""Unit tests for metrics, diagnosability and the reachability matrix."""

import pytest

from repro.core.diagnosability import diagnosability, indistinguishable_classes
from repro.core.graph import InferredGraph
from repro.core.linkspace import (
    LogicalLink,
    UhNode,
    ip_link,
    physical_link,
)
from repro.core.metrics import (
    MetricPair,
    as_projection,
    physical_metrics,
    sensitivity,
    specificity,
)
from repro.core.pathset import EPOCH_PRE, PathStore, ProbePath
from repro.core.reachability import ReachabilityMatrix
from repro.errors import DiagnosisError


class TestSensitivitySpecificity:
    def test_paper_example_numbers(self):
        """§4: |E|=150, |F|=1, |H|=10 -> specificity 140/149."""
        universe = frozenset(range(150))
        truth = frozenset({0})
        hypothesis = frozenset(range(10))
        assert specificity(universe, truth, hypothesis) == pytest.approx(140 / 149)
        assert sensitivity(truth, hypothesis) == 1.0

    def test_sensitivity_counts_true_positives(self):
        assert sensitivity(frozenset({1, 2}), frozenset({2, 9})) == 0.5
        assert sensitivity(frozenset({1}), frozenset()) == 0.0

    def test_empty_truth_rejected(self):
        with pytest.raises(DiagnosisError):
            sensitivity(frozenset(), frozenset({1}))

    def test_specificity_with_no_negatives(self):
        assert specificity(frozenset({1}), frozenset({1}), frozenset()) == 1.0

    def test_metric_pair_accessors(self):
        pair = MetricPair(0.25, 0.75)
        assert pair.sensitivity == 0.25
        assert pair.specificity == 0.75
        assert tuple(pair) == (0.25, 0.75)

    def test_physical_metrics_projects_hypothesis(self):
        truth = frozenset({physical_link("1.1.1.1", "2.2.2.2")})
        universe = truth | {physical_link("3.3.3.3", "4.4.4.4")}
        hypothesis_tokens = [LogicalLink("2.2.2.2", "1.1.1.1", tag=7)]
        pair = physical_metrics(universe, truth, hypothesis_tokens)
        assert pair.sensitivity == 1.0
        assert pair.specificity == 1.0


class TestAsProjection:
    ASN = {"10.0.16.1": 1, "10.0.32.1": 2}.get

    def test_identified_endpoints_map_through(self):
        tokens = [ip_link("10.0.16.1", "10.0.32.1")]
        assert as_projection(tokens, self.ASN) == frozenset({1, 2})

    def test_logical_links_project_their_endpoints(self):
        tokens = [LogicalLink("10.0.16.1", "10.0.32.1", tag=9)]
        assert as_projection(tokens, self.ASN) == frozenset({1, 2})

    def test_uh_endpoints_use_tags(self):
        uh = UhNode("s", "d", EPOCH_PRE, 3)
        tokens = [ip_link("10.0.16.1", uh)]
        assert as_projection(tokens, self.ASN, {uh: frozenset({5, 6})}) == (
            frozenset({1, 5, 6})
        )

    def test_unknown_pieces_contribute_nothing(self):
        uh = UhNode("s", "d", EPOCH_PRE, 3)
        tokens = [ip_link("9.9.9.9", uh)]
        assert as_projection(tokens, self.ASN) == frozenset()


def _store(paths):
    store = PathStore()
    for hops, reached in paths:
        store.add(
            ProbePath(
                src=hops[0],
                dst=hops[-1] if reached else "10.0.99.99",
                hops=tuple(hops),
                reached=reached,
            )
        )
    return store


class TestDiagnosability:
    def test_perfectly_diagnosable_graph(self):
        graph = InferredGraph()
        graph.add_path(("a", "b"), [ip_link("1.1.1.1", "2.2.2.2")])
        graph.add_path(("a", "c"), [ip_link("1.1.1.1", "3.3.3.3")])
        assert diagnosability(graph) == 1.0

    def test_shared_segment_halves_diagnosability(self):
        shared = [ip_link("1.1.1.1", "2.2.2.2"), ip_link("2.2.2.2", "3.3.3.3")]
        graph = InferredGraph()
        graph.add_path(("a", "b"), shared)
        assert diagnosability(graph) == 0.5  # 1 distinct hitting set, 2 links

    def test_empty_graph_is_zero(self):
        assert diagnosability(InferredGraph()) == 0.0

    def test_indistinguishable_classes_sorted_by_size(self):
        graph = InferredGraph()
        graph.add_path(
            ("a", "b"),
            [
                ip_link("1.1.1.1", "2.2.2.2"),
                ip_link("2.2.2.2", "3.3.3.3"),
                ip_link("3.3.3.3", "4.4.4.4"),
            ],
        )
        graph.add_path(("a", "c"), [ip_link("1.1.1.1", "2.2.2.2")])
        classes = indistinguishable_classes(graph)
        assert len(classes[0]) == 2  # the two links only (a,b) crosses
        assert len(classes[1]) == 1


class TestReachabilityMatrix:
    def test_from_store(self):
        store = _store(
            [
                (["10.0.16.200", "10.0.16.1", "10.0.32.200"], True),
                (["10.0.32.200", "10.0.16.1"], False),
            ]
        )
        matrix = ReachabilityMatrix.from_store(store)
        assert matrix.is_up("10.0.16.200", "10.0.32.200")
        assert matrix.failed_pairs() == (("10.0.32.200", "10.0.99.99"),)
        assert len(matrix) == 2

    def test_unknown_pair_rejected(self):
        matrix = ReachabilityMatrix({})
        with pytest.raises(DiagnosisError):
            matrix.is_up("a", "b")

    def test_dense_rendering(self):
        matrix = ReachabilityMatrix({("a", "b"): True, ("b", "a"): False})
        dense = matrix.dense()
        assert dense[0][1] == 1  # a->b up
        assert dense[1][0] == 0  # b->a down
        assert dense[0][0] == 1  # diagonal convention

    def test_sensor_enumeration(self):
        matrix = ReachabilityMatrix({("b", "a"): True, ("a", "c"): False})
        assert matrix.sensors() == ("a", "b", "c")
