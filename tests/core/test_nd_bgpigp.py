"""Tests for ND-bgpigp: IGP preseeding and withdrawal pruning (§3.3)."""

import pytest

from repro.core.control_plane import (
    ControlPlaneView,
    IgpLinkDownObservation,
    WithdrawalObservation,
)
from repro.core.diagnoser import NetDiagnoser
from repro.core.linkspace import LogicalLink, ip_link, physical_link
from repro.measurement.collector import collect_control_plane, take_snapshot
from repro.measurement.sensors import deploy_sensors
from repro.netsim.events import LinkFailureEvent, MisconfigurationEvent
from repro.netsim.topology import ExportFilter


@pytest.fixture
def fig2_setup(fig2, fig2_sim):
    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    return fig2, fig2_sim, sensors


def addr(fig, name):
    return fig.router(name).address


class TestIgpPreseed:
    def test_asx_internal_failure_is_pinned_exactly(self, fig2_setup, nominal):
        """With AS-X = Y and internal Y links down (partitioning Y), the
        IGP messages put the probed failed link straight into H."""
        fig, sim, sensors = fig2_setup
        lids = (
            fig.link_between("y1", "y4").lid,
            fig.link_between("y2", "y3").lid,
        )
        after = sim.apply(LinkFailureEvent(tuple(sorted(lids))))
        snap = take_snapshot(sim, sensors, nominal, after)
        assert snap.any_failure(), "partitioning Y must break transit"
        control = collect_control_plane(sim, fig.asn("Y"), nominal, after)
        assert len(control.igp_link_down) == 2
        result = NetDiagnoser("nd-bgpigp").diagnose(snap, control=control)
        truth = physical_link(addr(fig, "y1"), addr(fig, "y4"))
        assert truth in result.physical_hypothesis()
        assert result.details["igp_preseeded"] >= 1
        # The unprobed y2-y3 link stays out of H even though it is down.
        assert physical_link(addr(fig, "y2"), addr(fig, "y3")) not in (
            result.physical_hypothesis()
        )

    def test_preseed_requires_probed_link(self, fig2_setup, nominal):
        """An IGP-down link no probe crossed must not enter H."""
        fig, sim, sensors = fig2_setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        control = ControlPlaneView(
            asx_asn=fig.asn("Y"),
            igp_link_down=(
                IgpLinkDownObservation(addr(fig, "y2"), addr(fig, "y3")),
            ),
        )
        result = NetDiagnoser("nd-bgpigp").diagnose(snap, control=control)
        assert physical_link(addr(fig, "y2"), addr(fig, "y3")) not in (
            result.physical_hypothesis()
        )


class TestWithdrawalPruning:
    def test_upstream_links_pruned_from_failed_sets(self, fig2_setup, nominal):
        """y4-b1 dies; AS-X = X hears Y withdraw B's prefix, so the s1->s2
        failure evidence shrinks to the segment beyond the X-Y session."""
        fig, sim, sensors = fig2_setup
        lid = fig.link_between("y4", "b1").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        control = collect_control_plane(sim, fig.asn("X"), nominal, after)
        assert control.withdrawals  # X heard the withdrawal from Y
        with_cp = NetDiagnoser("nd-bgpigp").diagnose(snap, control=control)
        without_cp = NetDiagnoser("nd-edge").diagnose(snap)
        # Upstream-of-session links must not be blamed once pruned.
        upstream = physical_link(addr(fig, "a2"), addr(fig, "x1"))
        assert upstream not in with_cp.physical_hypothesis()
        assert with_cp.details["withdrawal_exonerated"] > 0
        # Sensitivity is preserved: the true link stays blamed.
        truth = physical_link(addr(fig, "y4"), addr(fig, "b1"))
        assert truth in with_cp.physical_hypothesis()
        assert truth in without_cp.physical_hypothesis()
        # And the control plane never *adds* false positives.
        assert len(with_cp.physical_hypothesis()) <= len(
            without_cp.physical_hypothesis()
        )

    def test_misconfigured_session_token_survives_pruning(
        self, fig2_setup, nominal
    ):
        """A misconfiguration at AS-X's own session looks like a withdrawal;
        the session's logical token must not be pruned away (module
        docstring of nd_bgpigp)."""
        fig, sim, sensors = fig2_setup
        link = fig.link_between("x2", "y1")
        prefix_c = fig.net.autonomous_system(fig.asn("C")).prefix
        after = sim.apply(
            MisconfigurationEvent(
                ExportFilter(
                    link_id=link.lid,
                    at_router=fig.router("y1").rid,
                    prefixes=frozenset({prefix_c}),
                )
            )
        )
        snap = take_snapshot(sim, sensors, nominal, after)
        control = collect_control_plane(sim, fig.asn("X"), nominal, after)
        assert control.withdrawals, "the filter must look like a withdrawal"
        result = NetDiagnoser("nd-bgpigp").diagnose(snap, control=control)
        assert (
            LogicalLink(addr(fig, "x2"), addr(fig, "y1"), tag=fig.asn("C"))
            in result.hypothesis
        )

    def test_withdrawal_for_unrelated_prefix_is_inert(self, fig2_setup, nominal):
        fig, sim, sensors = fig2_setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        bogus = ControlPlaneView(
            asx_asn=fig.asn("X"),
            withdrawals=(
                WithdrawalObservation(
                    prefix=fig.net.autonomous_system(fig.asn("C")).prefix,
                    at_address=addr(fig, "x2"),
                    from_address=addr(fig, "y1"),
                    from_asn=fig.asn("Y"),
                ),
            ),
        )
        with_bogus = NetDiagnoser("nd-bgpigp").diagnose(snap, control=bogus)
        plain = NetDiagnoser("nd-edge").diagnose(snap)
        assert with_bogus.physical_hypothesis() == plain.physical_hypothesis()


class TestControlPlaneTypes:
    def test_withdrawal_covers(self):
        w = WithdrawalObservation(
            prefix="10.0.64.0/20",
            at_address="10.0.32.2",
            from_address="10.0.48.1",
            from_asn=3,
        )
        assert w.covers("10.0.79.254")
        assert not w.covers("10.0.16.1")

    def test_view_emptiness(self):
        assert ControlPlaneView(asx_asn=1).is_empty()
        assert not ControlPlaneView(
            asx_asn=1,
            igp_link_down=(IgpLinkDownObservation("1.1.1.1", "2.2.2.2"),),
        ).is_empty()
