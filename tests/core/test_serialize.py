"""Round-trip tests for the JSON serialization layer."""

import json

import pytest

from repro.core.linkspace import IpLink, LogicalLink, PhysicalLink, UhNode
from repro.errors import ReproError
from repro.netsim.events import (
    CompositeEvent,
    LinkFailureEvent,
    MisconfigurationEvent,
    RouterFailureEvent,
)
from repro.netsim.gen.internet import research_internet
from repro.netsim.topology import ExportFilter, NetworkState
from repro.serialize import (
    event_from_dict,
    event_to_dict,
    figure_result_to_dict,
    load_topology,
    save_topology,
    state_from_dict,
    state_to_dict,
    token_from_dict,
    token_to_dict,
    topology_from_dict,
    topology_to_dict,
)


class TestTopologyRoundTrip:
    def test_figure2_roundtrip(self, fig2):
        rebuilt = topology_from_dict(topology_to_dict(fig2.net))
        assert rebuilt.num_ases == fig2.net.num_ases
        assert rebuilt.num_routers == fig2.net.num_routers
        assert rebuilt.num_links == fig2.net.num_links
        for router in fig2.net.routers():
            twin = rebuilt.router(router.rid)
            assert (twin.name, twin.address, twin.asn) == (
                router.name,
                router.address,
                router.asn,
            )
        for link in fig2.net.links():
            twin = rebuilt.link(link.lid)
            assert twin.endpoints() == link.endpoints()
            assert twin.weight == link.weight
        for a in fig2.net.ases():
            for b in fig2.net.ases():
                if a.asn < b.asn:
                    assert rebuilt.relationship(a.asn, b.asn) == (
                        fig2.net.relationship(a.asn, b.asn)
                    )

    def test_research_internet_roundtrip_is_json_stable(self):
        topo = research_internet(n_tier2=4, n_stub=10, seed=3)
        once = topology_to_dict(topo.net)
        twice = topology_to_dict(topology_from_dict(once))
        assert json.dumps(once, sort_keys=True) == json.dumps(
            twice, sort_keys=True
        )

    def test_file_helpers(self, fig2, tmp_path):
        path = tmp_path / "topo.json"
        save_topology(fig2.net, path)
        rebuilt = load_topology(path)
        assert rebuilt.num_links == fig2.net.num_links

    def test_unknown_format_rejected(self):
        with pytest.raises(ReproError):
            topology_from_dict({"format": "something-else"})

    def test_routing_equivalence_after_roundtrip(self, fig2):
        """The rebuilt topology produces identical converged routing."""
        from repro.netsim.bgp import BgpEngine

        rebuilt = topology_from_dict(topology_to_dict(fig2.net))
        asns = [fig2.asn("A"), fig2.asn("B"), fig2.asn("C")]
        original = BgpEngine.for_sensor_ases(fig2.net, asns).converge(
            NetworkState.nominal()
        )
        twin = BgpEngine.for_sensor_ases(rebuilt, asns).converge(
            NetworkState.nominal()
        )
        for prefix in original.prefixes:
            for autsys in fig2.net.ases():
                assert original.as_path(autsys.asn, prefix) == twin.as_path(
                    autsys.asn, prefix
                )


class TestStateAndEventRoundTrip:
    def test_state_roundtrip(self):
        state = (
            NetworkState.nominal()
            .with_failed_links([3, 1])
            .with_failed_routers([7])
            .with_filter(
                ExportFilter(
                    link_id=3, at_router=7, prefixes=frozenset({"10.0.16.0/20"})
                )
            )
        )
        assert state_from_dict(state_to_dict(state)) == state

    def test_nominal_state_roundtrip(self):
        assert state_from_dict(state_to_dict(NetworkState.nominal())).is_nominal()

    @pytest.mark.parametrize(
        "event",
        [
            LinkFailureEvent((4, 9)),
            RouterFailureEvent(11),
            MisconfigurationEvent(
                ExportFilter(
                    link_id=2, at_router=5, prefixes=frozenset({"10.0.32.0/20"})
                )
            ),
            CompositeEvent(
                (LinkFailureEvent((1,)), RouterFailureEvent(2))
            ),
        ],
        ids=["link", "router", "misconfig", "composite"],
    )
    def test_event_roundtrip(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    def test_unknown_event_rejected(self):
        with pytest.raises(ReproError):
            event_from_dict({"type": "alien"})


class TestTokenRoundTrip:
    @pytest.mark.parametrize(
        "token",
        [
            IpLink("10.0.0.1", "10.0.0.2"),
            IpLink("10.0.0.1", UhNode("s", "d", "pre", 4)),
            LogicalLink("10.0.0.1", "10.0.0.2", tag=17),
            PhysicalLink("10.0.0.1", "10.0.0.2"),
        ],
        ids=["ip", "uh", "logical", "physical"],
    )
    def test_token_roundtrip(self, token):
        assert token_from_dict(token_to_dict(token)) == token

    def test_unknown_token_rejected(self):
        with pytest.raises(ReproError):
            token_from_dict({"type": "quantum"})


class TestFigureExport:
    def test_figure_result_exports_clean_json(self):
        from repro.experiments.figures.base import FigureResult, Series

        result = FigureResult(
            figure_id="figX",
            title="test",
            series=[Series("s", [(1.0, 0.5)], "x", "y")],
            summaries={"s": {"mean": 0.5, "n": 1.0}},
            notes=["a note"],
        )
        data = figure_result_to_dict(result)
        assert json.loads(json.dumps(data)) == data
        assert data["series"][0]["points"] == [[1.0, 0.5]]
