"""Unit tests for the greedy and exact Minimum Hitting Set solvers."""

import pytest

from repro.core.hitting_set import exact_hitting_set, greedy_hitting_set
from repro.core.linkspace import ip_link
from repro.errors import DiagnosisError


def L(n):  # short link-token factory
    return ip_link(f"10.0.0.{n}", f"10.0.0.{n + 100}")


class TestGreedy:
    def test_single_set_blames_all_members(self):
        """With one failure set everything ties at score 1: Algorithm 1
        adds every maximum-score link."""
        result = greedy_hitting_set([[L(1), L(2)]])
        assert result.hypothesis == frozenset({L(1), L(2)})
        assert result.fully_explained

    def test_common_link_wins(self):
        result = greedy_hitting_set([[L(1), L(2)], [L(1), L(3)]])
        assert result.hypothesis == frozenset({L(1)})
        assert result.iterations == 1

    def test_excluded_links_never_chosen(self):
        result = greedy_hitting_set(
            [[L(1), L(2)], [L(1), L(3)]], excluded=[L(1)]
        )
        assert L(1) not in result.hypothesis
        assert result.hypothesis == frozenset({L(2), L(3)})

    def test_unexplainable_set_is_reported(self):
        result = greedy_hitting_set([[L(1)]], excluded=[L(1)])
        assert not result.fully_explained
        assert result.unexplained_failures == (frozenset({L(1)}),)
        assert result.hypothesis == frozenset()

    def test_empty_failure_set_rejected(self):
        with pytest.raises(DiagnosisError):
            greedy_hitting_set([[]])

    def test_no_failures_is_trivially_explained(self):
        result = greedy_hitting_set([])
        assert result.hypothesis == frozenset()
        assert result.fully_explained

    def test_preseed_explains_without_scoring(self):
        result = greedy_hitting_set([[L(1), L(2)]], preseed=[L(1)])
        assert result.hypothesis == frozenset({L(1)})
        assert result.preseeded == frozenset({L(1)})
        assert result.iterations == 0

    def test_preseed_outside_sets_is_kept_but_explains_nothing(self):
        result = greedy_hitting_set([[L(1)]], preseed=[L(9)])
        assert result.hypothesis == frozenset({L(9), L(1)})

    def test_reroute_sets_boost_scores(self):
        # L(2) hits one failure set; L(1) hits one failure set + a reroute.
        result = greedy_hitting_set(
            [[L(1), L(2)]],
            reroute_sets=[[L(1), L(3)]],
        )
        assert L(1) in result.hypothesis
        assert L(2) not in result.hypothesis

    def test_reroute_weight_zero_reduces_to_tomo_scoring(self):
        result = greedy_hitting_set(
            [[L(1), L(2)]],
            reroute_sets=[[L(1)]],
            reroute_weight=0,
        )
        # Without reroute weight L(1) and L(2) tie: both added.
        assert result.hypothesis >= frozenset({L(1), L(2)})

    def test_reroute_only_evidence_can_elect_a_link(self):
        result = greedy_hitting_set([], reroute_sets=[[L(4)]])
        assert result.hypothesis == frozenset({L(4)})
        assert result.fully_explained

    def test_failure_weight_beats_reroute_weight_when_configured(self):
        # L(1): one failure set.  L(2): two reroute sets.
        sets_f = [[L(1), L(9)]]
        sets_r = [[L(2)], [L(2)]]
        balanced = greedy_hitting_set(sets_f, sets_r)
        assert L(2) in balanced.hypothesis  # score 2 beats score 1
        weighted = greedy_hitting_set(
            sets_f, sets_r, failure_weight=5, reroute_weight=1
        )
        assert L(1) in weighted.hypothesis and L(9) in weighted.hypothesis

    def test_cluster_scores_and_explains(self):
        cluster = {L(1): frozenset({L(2)}), L(2): frozenset({L(1)})}
        result = greedy_hitting_set(
            [[L(1), L(9)], [L(2), L(8)]],
            cluster_of=lambda t: cluster.get(t, frozenset()),
        )
        # L(1) (or L(2)) hits both sets through its cluster: score 2,
        # beating the singles, and explains both.
        assert result.hypothesis & {L(1), L(2)}
        assert not result.hypothesis & {L(8), L(9)}
        assert result.fully_explained

    def test_deterministic_tie_break(self):
        a = greedy_hitting_set([[L(3), L(1), L(2)]])
        b = greedy_hitting_set([[L(2), L(3), L(1)]])
        assert a.hypothesis == b.hypothesis

    def test_redundant_tied_winner_is_skipped(self):
        """A tied winner whose sets were all explained by *distinguishable*
        earlier winners of the same iteration is not added.

        L(1), L(2) and L(9) all tie at score 2.  In sort order L(1) and
        L(2) are added first and between them explain every set; L(9)'s
        hit-set {0, 1} matches neither L(1)'s {0, 2} nor L(2)'s {1, 2},
        so it carries no evidence of its own and must be dropped rather
        than inflate |H|.
        """
        sets = [[L(1), L(9)], [L(2), L(9)], [L(1), L(2)]]
        result = greedy_hitting_set(sets)
        assert result.hypothesis == frozenset({L(1), L(2)})
        assert result.iterations == 1
        assert result.fully_explained

    def test_equivalence_class_ties_are_all_added(self):
        """Tied winners with *identical* hit-sets are indistinguishable on
        the evidence; dropping any of them could drop the true failed
        link, so the whole class is blamed (sensitivity guarantee)."""
        sets = [[L(1), L(2)], [L(1), L(2)], [L(3)]]
        result = greedy_hitting_set(sets)
        assert {L(1), L(2)} <= result.hypothesis


class TestExact:
    def test_optimal_on_small_instance(self):
        sets = [[L(1), L(2)], [L(2), L(3)], [L(3), L(4)]]
        solution = exact_hitting_set(sets)
        assert solution is not None and len(solution) == 2
        assert all(set(s) & solution for s in sets)

    def test_exact_never_larger_than_greedy(self):
        sets = [
            [L(1), L(2), L(3)],
            [L(2), L(4)],
            [L(3), L(4)],
            [L(5), L(1)],
        ]
        greedy = greedy_hitting_set(sets)
        exact = exact_hitting_set(sets)
        assert exact is not None
        assert len(exact) <= len(greedy.hypothesis)

    def test_infeasible_returns_none(self):
        assert exact_hitting_set([[L(1)]], excluded=[L(1)]) is None

    def test_empty_input(self):
        assert exact_hitting_set([]) == frozenset()

    def test_respects_exclusions(self):
        solution = exact_hitting_set([[L(1), L(2)]], excluded=[L(1)])
        assert solution == frozenset({L(2)})

    def test_budget_exhaustion_returns_none(self):
        sets = [[L(i), L(i + 1), L(i + 2)] for i in range(0, 30, 2)]
        assert exact_hitting_set(sets, max_expansions=3) is None

    def test_truncated_search_discards_interim_best(self):
        """If the budget cuts any branch, even an already-found hitting
        set must not be returned: the unexplored branches could hold a
        smaller one, and an interim answer would be passed off as the
        optimum.  Here 4 expansions suffice to find the non-minimal
        {L(1), L(2), L(3)} but not to reach the optimum {L(9)}."""
        sets = [[L(1), L(9)], [L(2), L(9)], [L(3), L(9)]]
        assert exact_hitting_set(sets, max_expansions=4) is None
        # With budget to spare the optimum is found.
        assert exact_hitting_set(sets) == frozenset({L(9)})
