"""Additional edge-case coverage for UH mapping and the greedy internals."""

import pytest

from repro.core.hitting_set import greedy_hitting_set
from repro.core.linkspace import UhNode, ip_link
from repro.core.pathset import EPOCH_PRE, ProbePath
from repro.core.uh import uh_tags

SI, A1, B1, C1, SJ = (
    "10.0.16.200",
    "10.0.16.1",
    "10.0.32.1",
    "10.0.48.1",
    "10.0.64.200",
)
ASN = {SI: 1, A1: 1, B1: 2, C1: 3, SJ: 4}.get


def uh(i):
    return UhNode(SI, SJ, EPOCH_PRE, i)


class TestUhTagEdgeCases:
    def test_lg_of_intermediate_as_is_used_when_source_lacks_one(self):
        """The first *identified* AS before the run with an LG answers."""
        hops = (SI, A1, B1, uh(3), C1, SJ)
        path = ProbePath(src=SI, dst=SJ, hops=hops, reached=True)
        answered = []

        def lg(asn):
            answered.append(asn)
            if asn == 2:  # only AS B runs an LG
                return (2, 9, 3, 4)
            return None

        tags = uh_tags(path, ASN, lg)
        assert answered == [1, 2]
        # Bracket between B (2) and C (3) on B's AS path: {9}.
        assert tags[uh(3)] == frozenset({9})

    def test_adjacent_known_ases_with_phantom_star(self):
        """If the LG path shows the bracketing ASes adjacent, the dark run
        cannot be attributed: empty tag."""
        hops = (SI, A1, uh(2), B1, SJ)
        path = ProbePath(src=SI, dst=SJ, hops=hops, reached=True)
        tags = uh_tags(path, ASN, lambda asn: (1, 2, 4))
        assert tags[uh(2)] == frozenset()

    def test_star_at_first_position_after_source(self):
        hops = (SI, uh(1), B1, SJ)
        path = ProbePath(src=SI, dst=SJ, hops=hops, reached=True)
        tags = uh_tags(path, ASN, lambda asn: (1, 7, 2, 4))
        assert tags[uh(1)] == frozenset({7})

    def test_fully_dark_truncated_path(self):
        hops = (SI, uh(1), uh(2))
        path = ProbePath(src=SI, dst=SJ, hops=hops, reached=False)
        tags = uh_tags(path, ASN, lambda asn: (1, 2, 3, 4))
        # Everything after the source AS is a candidate.
        assert tags[uh(1)] == frozenset({2, 3, 4})
        assert tags[uh(2)] == frozenset({2, 3, 4})

    def test_no_uh_hops_yields_empty_mapping(self):
        hops = (SI, A1, B1, SJ)
        path = ProbePath(src=SI, dst=SJ, hops=hops, reached=True)
        assert uh_tags(path, ASN, lambda asn: (1, 2, 4)) == {}


class TestGreedyInternals:
    def test_preseed_with_cluster_explains_cluster_sets(self):
        a = ip_link("10.0.0.1", "10.0.0.2")
        b = ip_link("10.0.0.3", "10.0.0.4")
        clusters = {a: frozenset({b}), b: frozenset({a})}
        result = greedy_hitting_set(
            [[b]],
            preseed=[a],
            cluster_of=lambda t: clusters.get(t, frozenset()),
        )
        # The preseeded link explains b's set through its cluster.
        assert result.hypothesis == frozenset({a})
        assert result.fully_explained

    def test_winner_ties_all_added_even_if_redundant(self):
        """Algorithm 1 adds every maximum-score link of the iteration,
        including ones whose sets were explained by an earlier winner of
        the same iteration *when their hit-sets are identical* — the
        links are indistinguishable on the evidence, so all are blamed."""
        a = ip_link("10.0.0.1", "10.0.0.2")
        b = ip_link("10.0.0.3", "10.0.0.4")
        result = greedy_hitting_set([[a, b]])
        assert result.hypothesis == frozenset({a, b})
        assert result.iterations == 1

    def test_scores_respect_weights_across_set_kinds(self):
        fail_only = ip_link("10.0.0.1", "10.0.0.2")
        reroute_only = ip_link("10.0.0.3", "10.0.0.4")
        result = greedy_hitting_set(
            [[fail_only, ip_link("10.0.0.9", "10.0.0.10")]],
            reroute_sets=[[reroute_only], [reroute_only]],
            failure_weight=10,
            reroute_weight=1,
        )
        # The failure set is worth more than two reroute sets.
        assert result.iterations >= 1
        assert fail_only in result.hypothesis
        assert reroute_only in result.hypothesis  # still needed eventually
