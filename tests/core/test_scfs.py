"""Unit tests for the SCFS baseline (Duffield), including the paper's
Figure 1 example."""

import pytest

from repro.core.scfs import scfs
from repro.errors import DiagnosisError


@pytest.fixture
def figure1_tree():
    """The tree of Figure 1: paths from s1 towards s2 and s3.

    s1 - r6 - r7 - r9 - r11 - s2
                \\- r8 - r10 - s3   (shape, not exact router numbers)
    """
    parent = {
        "r6": "s1",
        "r7": "r6",
        "r9": "r7",
        "r11": "r9",
        "s2": "r11",
        "r8": "r7",
        "r10": "r8",
        "s3": "r10",
    }
    return parent


class TestScfs:
    def test_figure1_example(self, figure1_tree):
        """Failure of r9-r11 breaks s2 only; SCFS blames the highest link
        whose subtree is all-bad: r7-r9 (nearest the source below the
        branch point)."""
        blamed = scfs(figure1_tree, "s1", {"s2": False, "s3": True})
        assert blamed == frozenset({("r7", "r9")})

    def test_all_leaves_bad_blames_root_links(self, figure1_tree):
        blamed = scfs(figure1_tree, "s1", {"s2": False, "s3": False})
        assert blamed == frozenset({("s1", "r6")})

    def test_no_bad_leaves_blames_nothing(self, figure1_tree):
        assert scfs(figure1_tree, "s1", {"s2": True, "s3": True}) == frozenset()

    def test_two_independent_subtree_failures(self):
        parent = {"a": "root", "b": "root", "la": "a", "lb": "b"}
        blamed = scfs(parent, "root", {"la": False, "lb": False})
        # Both subtrees all-bad but the root still has... no good leaf:
        # everything bad -> blame the root's own links.
        assert blamed == frozenset({("root", "a"), ("root", "b")})

    def test_partial_subtree_failure_descends(self):
        parent = {"a": "root", "la1": "a", "la2": "a", "b": "root", "lb": "b"}
        blamed = scfs(parent, "root", {"la1": False, "la2": True, "lb": True})
        assert blamed == frozenset({("a", "la1")})

    def test_missing_leaf_status_raises(self, figure1_tree):
        with pytest.raises(DiagnosisError):
            scfs(figure1_tree, "s1", {"s2": False})

    def test_root_with_parent_rejected(self):
        with pytest.raises(DiagnosisError):
            scfs({"s1": "x"}, "s1", {"x": True})

    def test_single_leaf_tree(self):
        assert scfs({"leaf": "root"}, "root", {"leaf": False}) == frozenset(
            {("root", "leaf")}
        )
        assert scfs({"leaf": "root"}, "root", {"leaf": True}) == frozenset()


class TestScfsDiagnose:
    """The snapshot adapter and the facade's ``scfs`` variant."""

    @pytest.fixture
    def b1b2_snapshot(self, fig2, fig2_sim, nominal):
        from repro.measurement.collector import take_snapshot
        from repro.measurement.sensors import deploy_sensors
        from repro.netsim.events import LinkFailureEvent

        sensors = deploy_sensors(
            fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
        )
        lid = fig2.link_between("b1", "b2").lid
        after = fig2_sim.apply(LinkFailureEvent((lid,)))
        return take_snapshot(fig2_sim, sensors, nominal, after)

    def test_facade_dispatches_scfs(self, b1b2_snapshot):
        from repro.core.diagnoser import VARIANTS, NetDiagnoser

        assert "scfs" in VARIANTS
        result = NetDiagnoser("scfs").diagnose(b1b2_snapshot)
        assert result.algorithm == "scfs"
        assert result.hypothesis  # the cut produced a non-empty blame set

    def test_matches_direct_adapter_call(self, b1b2_snapshot):
        from repro.core.diagnoser import NetDiagnoser
        from repro.core.scfs import scfs_diagnose

        via_facade = NetDiagnoser("scfs").diagnose(b1b2_snapshot)
        direct = scfs_diagnose(b1b2_snapshot)
        assert via_facade.hypothesis == direct.hypothesis
        # The facade may annotate extra keys (e.g. the vectorized-substrate
        # marker); the adapter's own details must pass through unchanged.
        for key, value in direct.details.items():
            assert via_facade.details[key] == value

    def test_details_surface_tree_inconsistencies(self, b1b2_snapshot):
        from repro.core.scfs import scfs_diagnose

        details = scfs_diagnose(b1b2_snapshot).details
        assert details["sources"] >= 1
        assert details["truncated_paths"] >= 0
        assert details["shadowed_leaves"] >= 0

    def test_scfs_variant_is_poolable(self):
        from repro.core.diagnoser import NetDiagnoser

        engine = NetDiagnoser("scfs")
        assert engine.poolable
        assert not NetDiagnoser("nd-lg").poolable
