"""Tests for ND-edge on the paper's Figure 2 network (via the simulator)."""

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.core.linkspace import LogicalLink, physical_link
from repro.core.nd_edge import build_edge_inputs, physical_clusters
from repro.measurement.collector import take_snapshot
from repro.measurement.sensors import deploy_sensors
from repro.netsim.builders import TopologyBuilder
from repro.netsim.events import LinkFailureEvent, MisconfigurationEvent
from repro.netsim.simulator import Simulator
from repro.netsim.topology import ExportFilter, NetworkState, Tier


@pytest.fixture
def fig2_setup(fig2, fig2_sim):
    sensors = deploy_sensors(
        fig2.net, [fig2.sensor_routers[s] for s in ("s1", "s2", "s3")]
    )
    return fig2, fig2_sim, sensors


def addr(fig, name):
    return fig.router(name).address


class TestNdEdgeOnFigure2:
    def test_link_failure_truth_in_hypothesis(self, fig2_setup, nominal):
        fig, sim, sensors = fig2_setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        result = NetDiagnoser("nd-edge").diagnose(snap)
        assert physical_link(addr(fig, "b1"), addr(fig, "b2")) in (
            result.physical_hypothesis()
        )
        assert result.fully_explained

    def test_misconfiguration_yields_single_logical_link(
        self, fig2_setup, nominal
    ):
        fig, sim, sensors = fig2_setup
        link = fig.link_between("x2", "y1")
        prefix_c = fig.net.autonomous_system(fig.asn("C")).prefix
        after = sim.apply(
            MisconfigurationEvent(
                ExportFilter(
                    link_id=link.lid,
                    at_router=fig.router("y1").rid,
                    prefixes=frozenset({prefix_c}),
                )
            )
        )
        snap = take_snapshot(sim, sensors, nominal, after)
        result = NetDiagnoser("nd-edge").diagnose(snap)
        assert result.hypothesis == frozenset(
            {LogicalLink(addr(fig, "x2"), addr(fig, "y1"), tag=fig.asn("C"))}
        )
        # Tomo on the same snapshot finds nothing (the link carries p12).
        tomo_result = NetDiagnoser("tomo").diagnose(snap)
        assert physical_link(addr(fig, "x2"), addr(fig, "y1")) not in (
            tomo_result.physical_hypothesis()
        )

    def test_working_paths_use_post_failure_routes(self, fig2_setup, nominal):
        fig, sim, sensors = fig2_setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        inputs = build_edge_inputs(snap)
        # s1<->s3 still work: their current links are exonerated.
        assert any(
            isinstance(t, LogicalLink) or t.identified
            for t in inputs.working_excluded
        )
        assert inputs.failure_sets  # the broken pairs contribute sets

    def test_partial_trace_extension_tightens_hypothesis(
        self, fig2_setup, nominal
    ):
        fig, sim, sensors = fig2_setup
        lid = fig.link_between("b1", "b2").lid
        after = sim.apply(LinkFailureEvent((lid,)))
        snap = take_snapshot(sim, sensors, nominal, after)
        plain = NetDiagnoser("nd-edge").diagnose(snap)
        partial = NetDiagnoser("nd-edge", use_partial_traces=True).diagnose(snap)
        assert partial.details["partial_exonerated"] > 0
        # The truncated forward trace reaches b1, proving the y4->b1
        # direction works: no forward token over it may be blamed.  (The
        # reverse direction legitimately stays suspect — an export filter
        # could break it without touching the forward probes.)
        from repro.core.linkspace import physical_projection, ip_link

        forward = ip_link(addr(fig, "y4"), addr(fig, "b1"))
        assert forward not in physical_projection(partial.hypothesis)
        assert forward in physical_projection(plain.hypothesis)
        assert len(partial.hypothesis) <= len(plain.hypothesis)
        assert physical_link(addr(fig, "b1"), addr(fig, "b2")) in (
            partial.physical_hypothesis()
        )


class TestRerouteUsage:
    @pytest.fixture
    def multihomed_world(self):
        """P1 and P2 peer; stubs S (multihomed) and T, D single-homed.

        Failure of the S-P1 access link reroutes S's traffic via P2 while
        the single-homed D behind the same link... D is behind P1 only, so
        we instead fail P1's link to D's gateway *and* watch S reroute.
        """
        b = TopologyBuilder()
        b.autonomous_system("P1", Tier.CORE, routers=2)
        b.autonomous_system("P2", Tier.CORE, routers=1)
        b.autonomous_system("S", Tier.STUB, routers=1)
        b.autonomous_system("D", Tier.STUB, routers=1)
        b.peers("P1", "P2")
        b.customer_of("S", "P1")
        b.customer_of("S", "P2")
        b.customer_of("D", "P1")
        b.link("p11", "p12")
        b.link("p11", "p21")
        access_s = b.link("s1", "p11")
        b.link("s1", "p21")
        b.link("d1", "p12")
        net = b.net
        sensors = deploy_sensors(net, [b.router("s1").rid, b.router("d1").rid])
        sim = Simulator(net, [b.asn("S"), b.asn("D")])
        return b, sim, sensors, access_s

    def test_reroute_set_implicates_failed_access_link(self, multihomed_world):
        b, sim, sensors, access_s = multihomed_world
        nominal = NetworkState.nominal()
        # Fail S's primary access AND the P1 internal link to D: S<->D
        # breaks (non-recoverable for D-side), S's other flows reroute.
        p_internal = b.net.link_between(
            b.router("p11").rid, b.router("p12").rid
        )
        after = sim.apply(
            LinkFailureEvent(tuple(sorted((access_s.lid, p_internal.lid))))
        )
        snap = take_snapshot(sim, sensors, nominal, after)
        if not snap.any_failure():
            pytest.skip("topology variant did not break any pair")
        result = NetDiagnoser("nd-edge").diagnose(snap)
        assert result.details["reroute_sets"] >= 0
        truth = {
            physical_link(
                b.router("s1").address, b.router("p11").address
            ),
            physical_link(
                b.router("p11").address, b.router("p12").address
            ),
        }
        assert truth & result.physical_hypothesis()


class TestPhysicalClusters:
    def test_same_physical_logical_tokens_cluster(self):
        a = LogicalLink("1.1.1.1", "2.2.2.2", tag=7)
        b = LogicalLink("1.1.1.1", "2.2.2.2", tag=8)
        c = LogicalLink("2.2.2.2", "1.1.1.1", tag=7)  # other direction
        clusters = physical_clusters([[a], [b, c]])
        assert clusters[a] == frozenset({b})
        assert clusters[b] == frozenset({a})
        assert c not in clusters  # no sibling in its direction

    def test_singletons_have_no_cluster(self):
        a = LogicalLink("1.1.1.1", "2.2.2.2", tag=7)
        assert physical_clusters([[a]]) == {}
