"""Unit tests for UH-to-AS mapping (§3.4 step 1) and link clustering
(step 2), against the paper's Figure 4 example."""

import pytest

from repro.core.clustering import build_clusters
from repro.core.linkspace import UhNode, ip_link
from repro.core.pathset import EPOCH_PRE, ProbePath
from repro.core.uh import uh_tags

# Figure 4's address plan: s_i and x in AS A (1), u1..u3 hidden in AS B (2),
# y and s_j in AS C (3).
SI, X, Y, SJ = "10.0.16.200", "10.0.16.1", "10.0.48.1", "10.0.48.200"
ASN = {SI: 1, X: 1, Y: 3, SJ: 3}.get


def uh(i, src=SI, dst=SJ, epoch=EPOCH_PRE):
    return UhNode(src, dst, epoch, i)


@pytest.fixture
def figure4_path():
    """s_i - x - u1 - u2 - u3 - y - s_j with the middle AS dark."""
    hops = (SI, X, uh(2), uh(3), uh(4), Y, SJ)
    return ProbePath(src=SI, dst=SJ, hops=hops, reached=True)


class TestUhTags:
    def test_single_as_gap_is_unambiguous(self, figure4_path):
        tags = uh_tags(figure4_path, ASN, lambda asn: (1, 2, 3))
        assert tags == {
            uh(2): frozenset({2}),
            uh(3): frozenset({2}),
            uh(4): frozenset({2}),
        }

    def test_two_as_gap_gets_combined_tag(self, figure4_path):
        """AS path A-B-D-C: UHs could be in B or D — tag {B, D}."""
        tags = uh_tags(figure4_path, ASN, lambda asn: (1, 2, 4, 3))
        assert tags[uh(3)] == frozenset({2, 4})

    def test_source_lg_preferred_then_first_on_path(self, figure4_path):
        queried = []

        def lg(asn):
            queried.append(asn)
            return None if asn == 1 else (1, 2, 3)

        tags = uh_tags(figure4_path, ASN, lg)
        # Source AS (1) asked first; it had no LG so nothing else before
        # the gap exists (x is also AS 1) -> no answer -> unknown tags.
        assert queried == [1]
        assert tags[uh(2)] == frozenset()

    def test_no_lg_yields_unknown_tags(self, figure4_path):
        tags = uh_tags(figure4_path, ASN, lambda asn: None)
        assert all(tag == frozenset() for tag in tags.values())

    def test_lg_disagreeing_with_traceroute_yields_unknown(self, figure4_path):
        # The LG path never mentions AS 1 (the bracketing AS).
        tags = uh_tags(figure4_path, ASN, lambda asn: (5, 6, 7))
        assert tags[uh(2)] == frozenset()

    def test_truncated_path_tags_tail_after_prev(self):
        """A failed trace ending in stars: candidates are everything after
        the last identified AS on the LG path."""
        hops = (SI, X, uh(2), uh(3))
        path = ProbePath(src=SI, dst=SJ, hops=hops, reached=False)
        tags = uh_tags(path, ASN, lambda asn: (1, 2, 3))
        assert tags[uh(2)] == frozenset({2, 3})

    def test_multiple_runs_tagged_independently(self):
        w = "10.0.32.1"  # AS 2... make an identified middle hop
        asn = {SI: 1, X: 1, w: 2, Y: 3, SJ: 3}.get
        hops = (SI, X, uh(2), w, uh(4), Y, SJ)
        path = ProbePath(src=SI, dst=SJ, hops=hops, reached=True)
        tags = uh_tags(path, asn, lambda a: (1, 5, 2, 6, 3))
        assert tags[uh(2)] == frozenset({5})
        assert tags[uh(4)] == frozenset({6})


class TestClustering:
    def _links(self):
        """Two unidentified links from different traces with equal tags,
        plus one from the same trace as the first."""
        l1 = ip_link(X, uh(2))
        l2 = ip_link(X, uh(2, src="10.0.17.200"))
        same_trace = ip_link(uh(2), uh(3))
        tags = {
            uh(2): frozenset({2}),
            uh(3): frozenset({2}),
            uh(2, src="10.0.17.200"): frozenset({2}),
        }
        return l1, l2, same_trace, tags

    def test_rule_i_endpoint_tags_must_match(self):
        l1, l2, _same, tags = self._links()
        clusters = build_clusters([l1, l2], [frozenset({l1}), frozenset({l2})], tags)
        assert clusters[l1] == frozenset({l2})
        assert clusters[l2] == frozenset({l1})

    def test_rule_i_rejects_different_tags(self):
        l1, l2, _same, tags = self._links()
        tags = dict(tags)
        tags[uh(2, src="10.0.17.200")] = frozenset({9})
        clusters = build_clusters([l1, l2], [frozenset({l1}), frozenset({l2})], tags)
        assert clusters.get(l1, frozenset()) == frozenset()

    def test_rule_i_rejects_unknown_tags(self):
        l1, l2, _same, _tags = self._links()
        clusters = build_clusters([l1, l2], [], {})
        assert clusters.get(l1, frozenset()) == frozenset()

    def test_rule_ii_same_trace_never_clusters(self):
        l1, _l2, same_trace, tags = self._links()
        # Give both endpoints matching tag classes so only rule (ii) blocks.
        clusters = build_clusters([l1, same_trace], [], tags)
        assert same_trace not in clusters.get(l1, frozenset())

    def test_rule_iii_failure_counts_must_match(self):
        l1, l2, _same, tags = self._links()
        clusters = build_clusters([l1, l2], [frozenset({l1})], tags)
        # l1 is in one failure set, l2 in zero: not clustered.
        assert clusters.get(l1, frozenset()) == frozenset()
        assert clusters.get(l2, frozenset()) == frozenset()

    def test_direction_respected(self):
        """u1 must match u3 and u2 match u4 — not crosswise."""
        a = ip_link(X, uh(2))
        b = ip_link(uh(2, src="10.0.17.200"), X)  # reversed orientation
        tags = {
            uh(2): frozenset({2}),
            uh(2, src="10.0.17.200"): frozenset({2}),
        }
        clusters = build_clusters([a, b], [frozenset({a}), frozenset({b})], tags)
        assert clusters.get(a, frozenset()) == frozenset()

    def test_identified_links_never_clustered(self):
        l1 = ip_link(X, Y)
        clusters = build_clusters([l1], [frozenset({l1})], {})
        assert l1 not in clusters
