"""Tests for ND-LG end to end on a chain with a dark middle AS (§3.4)."""

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.core.metrics import as_projection
from repro.measurement.collector import (
    collect_control_plane,
    make_lg_lookup,
    take_snapshot,
)
from repro.measurement.sensors import deploy_sensors
from repro.netsim.builders import chain_network
from repro.netsim.events import LinkFailureEvent
from repro.netsim.lookingglass import LookingGlassService
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState


@pytest.fixture
def dark_middle():
    """5-AS chain, 2 routers per AS; the middle AS (N3) blocks traceroute."""
    builder, names = chain_network(n_ases=5, routers_per_as=2)
    net = builder.net
    sensors = deploy_sensors(
        net, [builder.router("n11").rid, builder.router("n52").rid]
    )
    sim = Simulator(net, [builder.asn("N1"), builder.asn("N5")])
    blocked = frozenset({builder.asn("N3")})
    return builder, sim, sensors, blocked


class TestNdLgOnDarkChain:
    def _diagnose(self, builder, sim, sensors, blocked, lg_ases, failed_link):
        nominal = NetworkState.nominal()
        after = sim.apply(LinkFailureEvent((failed_link,)))
        snap = take_snapshot(sim, sensors, nominal, after, blocked_ases=blocked)
        assert snap.any_failure()
        lg = LookingGlassService(builder.net, lg_ases)
        lookup = make_lg_lookup(sim, lg, nominal, after, asx=builder.asn("N1"))
        control = collect_control_plane(sim, builder.asn("N1"), nominal, after)
        result = NetDiagnoser("nd-lg").diagnose(
            snap, control=control, lg_lookup=lookup
        )
        return snap, result

    def test_failure_in_dark_as_localised_to_the_as(self, dark_middle):
        builder, sim, sensors, blocked = dark_middle
        hidden = builder.net.link_between(
            builder.router("n31").rid, builder.router("n32").rid
        )
        snap, result = self._diagnose(
            builder, sim, sensors, blocked,
            [a.asn for a in builder.net.ases()],
            hidden.lid,
        )
        hypothesis_ases = as_projection(
            result.hypothesis, snap.asn_of, result.details["uh_tags"]
        )
        assert builder.asn("N3") in hypothesis_ases
        assert result.fully_explained

    def test_uh_tags_are_recorded(self, dark_middle):
        builder, sim, sensors, blocked = dark_middle
        hidden = builder.net.link_between(
            builder.router("n31").rid, builder.router("n32").rid
        )
        _snap, result = self._diagnose(
            builder, sim, sensors, blocked,
            [a.asn for a in builder.net.ases()],
            hidden.lid,
        )
        tags = result.details["uh_tags"]
        assert tags
        n3 = builder.asn("N3")
        # Complete (pre-failure) traces bracket the run exactly: tag {N3}.
        pre = {uh: tag for uh, tag in tags.items() if uh.epoch == "pre"}
        assert pre and all(tag == frozenset({n3}) for tag in pre.values())
        # Truncated post-failure traces end inside the dark region: their
        # candidate set widens to everything after the last bracketing AS,
        # but still contains the true AS.
        post = {uh: tag for uh, tag in tags.items() if uh.epoch == "post"}
        assert all(n3 in tag for tag in post.values() if tag)

    def test_without_lgs_tags_are_unknown(self, dark_middle):
        builder, sim, sensors, blocked = dark_middle
        hidden = builder.net.link_between(
            builder.router("n31").rid, builder.router("n32").rid
        )
        snap, result = self._diagnose(
            builder, sim, sensors, blocked, [], hidden.lid
        )
        # AS-X itself (N1) always knows its own AS path, but its own BGP
        # view is enough here: the chain has a single route, so the tags
        # can still resolve through AS-X's table.
        tags = result.details["uh_tags"]
        assert tags  # UHs exist either way

    def test_pre_and_post_uh_links_cluster_across_epochs(self, dark_middle):
        builder, sim, sensors, blocked = dark_middle
        hidden = builder.net.link_between(
            builder.router("n31").rid, builder.router("n32").rid
        )
        _snap, result = self._diagnose(
            builder, sim, sensors, blocked,
            [a.asn for a in builder.net.ases()],
            hidden.lid,
        )
        clusters = result.details["clusters"]
        assert clusters, "dark links from the two directions should cluster"

    def test_identified_failure_still_found_under_blocking(self, dark_middle):
        """A failure in a *visible* AS is still pinned at link level.

        A third sensor is needed: with only two sensors the forward and
        reverse dark links (which cluster — they may be the same hidden
        link) match the evidence just as well as the true link, and the
        dark cluster would explain everything by itself.  That dark
        cluster may *also* appear in the hypothesis — the paper's ND-LG
        reports ~2 AS-level false positives on average for exactly this
        reason — but the true link must be blamed too.
        """
        builder, _sim, _sensors, blocked = dark_middle
        sensors = deploy_sensors(
            builder.net,
            [
                builder.router("n11").rid,
                builder.router("n52").rid,
                builder.router("n41").rid,
            ],
        )
        sim = Simulator(
            builder.net,
            [builder.asn("N1"), builder.asn("N5"), builder.asn("N4")],
        )
        visible = builder.net.link_between(
            builder.router("n51").rid, builder.router("n52").rid
        )
        snap, result = self._diagnose(
            builder, sim, sensors, blocked,
            [a.asn for a in builder.net.ases()],
            visible.lid,
        )
        from repro.core.linkspace import physical_link

        truth = physical_link(
            builder.router("n51").address, builder.router("n52").address
        )
        assert truth in result.physical_hypothesis()


class TestDiagnoserFacade:
    def test_unknown_variant_rejected(self):
        from repro.errors import DiagnosisError

        with pytest.raises(DiagnosisError):
            NetDiagnoser("nd-quantum")

    def test_missing_inputs_rejected(self, dark_middle):
        builder, sim, sensors, blocked = dark_middle
        nominal = NetworkState.nominal()
        hidden = builder.net.link_between(
            builder.router("n31").rid, builder.router("n32").rid
        )
        after = sim.apply(LinkFailureEvent((hidden.lid,)))
        snap = take_snapshot(sim, sensors, nominal, after, blocked_ases=blocked)
        from repro.errors import DiagnosisError

        with pytest.raises(DiagnosisError):
            NetDiagnoser("nd-bgpigp").diagnose(snap)  # no control plane
        with pytest.raises(DiagnosisError):
            NetDiagnoser("nd-lg").diagnose(snap)  # no LG lookup

    def test_nothing_to_diagnose_rejected(self, dark_middle):
        builder, sim, sensors, blocked = dark_middle
        nominal = NetworkState.nominal()
        snap = take_snapshot(sim, sensors, nominal, nominal, blocked_ases=blocked)
        from repro.errors import DiagnosisError

        with pytest.raises(DiagnosisError):
            NetDiagnoser("tomo").diagnose(snap)
