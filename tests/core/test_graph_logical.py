"""Unit tests for the inferred graph and the logical-link expansion."""

import pytest

from repro.core.graph import InferredGraph
from repro.core.linkspace import (
    ORIGIN_TAG,
    UNKNOWN_TAG,
    LogicalLink,
    UhNode,
    ip_link,
)
from repro.core.logical import logicalize
from repro.core.pathset import EPOCH_PRE, ProbePath

ASN_OF = {
    "10.0.16.1": 1,
    "10.0.16.2": 1,
    "10.0.32.1": 2,
    "10.0.32.2": 2,
    "10.0.48.1": 3,
    "10.0.48.99": 3,  # sensor host in AS 3
    "10.0.16.99": 1,  # sensor host in AS 1
}.get


def make_path(hops, reached=True):
    return ProbePath(src=hops[0], dst=hops[-1] if reached else "10.0.48.99",
                     hops=tuple(hops), reached=reached, epoch=EPOCH_PRE)


class TestLogicalize:
    def test_intradomain_pairs_stay_physical(self):
        p = make_path(["10.0.16.99", "10.0.16.1", "10.0.16.2"])
        # sensor->router and router->router inside AS 1
        assert logicalize(p, ASN_OF) == (
            ip_link("10.0.16.99", "10.0.16.1"),
            ip_link("10.0.16.1", "10.0.16.2"),
        )

    def test_interdomain_pair_gets_next_as_tag(self):
        p = make_path(
            ["10.0.16.99", "10.0.16.1", "10.0.32.1", "10.0.48.1", "10.0.48.99"]
        )
        tokens = logicalize(p, ASN_OF)
        assert tokens[1] == LogicalLink("10.0.16.1", "10.0.32.1", tag=3)
        assert tokens[2] == LogicalLink("10.0.32.1", "10.0.48.1", tag=ORIGIN_TAG)

    def test_terminal_tag_is_unknown_for_truncated_traces(self):
        p = make_path(["10.0.16.99", "10.0.16.1", "10.0.32.1"], reached=False)
        tokens = logicalize(p, ASN_OF)
        assert tokens[1] == LogicalLink("10.0.16.1", "10.0.32.1", tag=UNKNOWN_TAG)

    def test_uh_interrupts_tagging(self):
        uh = UhNode("10.0.16.99", "10.0.48.99", EPOCH_PRE, 3)
        p = ProbePath(
            src="10.0.16.99",
            dst="10.0.48.99",
            hops=("10.0.16.99", "10.0.16.1", "10.0.32.1", uh, "10.0.48.99"),
            reached=True,
        )
        tokens = logicalize(p, ASN_OF)
        # The scan for the AS after AS2 hits the star: tag unknown.
        assert tokens[1] == LogicalLink("10.0.16.1", "10.0.32.1", tag=UNKNOWN_TAG)
        # Links touching the star stay physical.
        assert tokens[2] == ip_link("10.0.32.1", uh)
        assert tokens[3] == ip_link(uh, "10.0.48.99")

    def test_unmappable_address_stays_physical(self):
        p = make_path(["10.0.16.99", "10.0.16.1", "192.168.0.1", "10.0.48.99"])
        tokens = logicalize(p, lambda a: ASN_OF(a))
        assert tokens[1] == ip_link("10.0.16.1", "192.168.0.1")

    def test_same_as_run_skipped_when_scanning(self):
        """The out-neighbour scan skips hops inside the far AS itself."""
        p = make_path(
            ["10.0.16.99", "10.0.16.1", "10.0.32.1", "10.0.32.2", "10.0.48.1",
             "10.0.48.99"]
        )
        tokens = logicalize(p, ASN_OF)
        assert tokens[1] == LogicalLink("10.0.16.1", "10.0.32.1", tag=3)
        assert tokens[2] == ip_link("10.0.32.1", "10.0.32.2")


class TestInferredGraph:
    def test_from_paths_records_traversals(self):
        p1 = make_path(["10.0.16.99", "10.0.16.1", "10.0.16.2"])
        p2 = ProbePath(
            src="10.0.16.2",
            dst="10.0.16.99",
            hops=("10.0.16.2", "10.0.16.1", "10.0.16.99"),
            reached=True,
        )
        graph = InferredGraph.from_paths([p1, p2])
        assert len(graph) == 4  # two directed links per direction
        token = ip_link("10.0.16.1", "10.0.16.2")
        assert graph.traversed_by(token) == frozenset({p1.pair})
        assert graph.traversed_by(ip_link("10.0.16.2", "10.0.16.1")) == frozenset(
            {p2.pair}
        )

    def test_contains_and_tokens_sorted(self):
        p = make_path(["10.0.16.99", "10.0.16.1", "10.0.16.2"])
        graph = InferredGraph.from_paths([p])
        assert ip_link("10.0.16.99", "10.0.16.1") in graph
        assert ip_link("10.0.16.1", "10.0.16.99") not in graph
        assert list(graph.tokens()) == sorted(
            graph.tokens(), key=lambda t: __import__(
                "repro.core.linkspace", fromlist=["sort_key"]
            ).sort_key(t)
        )

    def test_merge_unions_traversals(self):
        p1 = make_path(["10.0.16.99", "10.0.16.1", "10.0.16.2"])
        p2 = ProbePath(
            src="10.0.16.99",
            dst="10.0.16.2",
            hops=("10.0.16.99", "10.0.16.1", "10.0.16.2"),
            reached=True,
        )
        g1 = InferredGraph.from_paths([p1])
        g2 = InferredGraph.from_paths([p2])
        merged = g1.merge(g2)
        token = ip_link("10.0.16.1", "10.0.16.2")
        assert merged.traversed_by(token) == frozenset({p1.pair, p2.pair})

    def test_logical_graph_contains_tagged_tokens(self):
        p = make_path(
            ["10.0.16.99", "10.0.16.1", "10.0.32.1", "10.0.48.1", "10.0.48.99"]
        )
        graph = InferredGraph.from_logical_paths([p], ASN_OF)
        assert LogicalLink("10.0.16.1", "10.0.32.1", tag=3) in graph

    def test_hitting_sets_align_with_tokens(self):
        p = make_path(["10.0.16.99", "10.0.16.1", "10.0.16.2"])
        graph = InferredGraph.from_paths([p])
        assert len(graph.hitting_sets()) == len(graph)
        assert all(hs == frozenset({p.pair}) for hs in graph.hitting_sets())
