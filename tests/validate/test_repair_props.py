"""Property tests for the canonical repairs.

The contracts the engine leans on: ``repair`` is **idempotent**
(``repair(repair(x)) == repair(x)``), **deterministic** (a pure function
of the record), and its output **re-validates clean** — a repaired
record never needs screening again.
"""

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pathset import EPOCH_POST, ProbePath
from repro.validate import check_feed, check_probe_path, repair_feed, repair_probe_path
from repro.validate.invariants import TRACE_EPOCH

SRC, DST = "10.0.0.1", "10.0.9.9"
#: Resolvable mid-path routers plus two off-topology (lying) addresses.
HOP_POOL = [
    "10.0.1.1",
    "10.0.2.2",
    "10.0.3.3",
    "10.0.4.4",
    "203.0.113.7",
    "203.0.113.8",
]


def asn_of(address):
    return 64500 if address.startswith("10.") else None


@st.composite
def probe_paths(draw):
    """Arbitrary (mostly corrupt) probe paths honouring ProbePath's own
    constructor invariants: hops start at the source, and ``reached``
    implies the trace ends at the destination."""
    mids = draw(st.lists(st.sampled_from(HOP_POOL), max_size=6))
    ends_at_dst = draw(st.booleans())
    hops = [SRC, *mids] + ([DST] if ends_at_dst else [])
    reached = hops[-1] == DST and draw(st.booleans())
    return ProbePath(
        src=SRC,
        dst=DST,
        hops=tuple(hops),
        reached=reached,
        epoch=EPOCH_POST,
    )


@dataclass(frozen=True)
class Msg:
    payload: str
    seq: int = -1


@st.composite
def feed_streams(draw):
    """Streams with genuine duplicates, inversions and unsequenced tails."""
    base = draw(
        st.lists(
            st.tuples(st.sampled_from("abcdef"), st.integers(-1, 8)),
            max_size=8,
        )
    )
    return [Msg(payload, seq) for payload, seq in base]


class TestProbePathRepair:
    @given(path=probe_paths())
    @settings(max_examples=200, deadline=None)
    def test_repair_is_idempotent(self, path):
        repaired, fixups = repair_probe_path(path, asn_of)
        again, more_fixups = repair_probe_path(repaired, asn_of)
        assert again == repaired
        assert more_fixups == ()

    @given(path=probe_paths())
    @settings(max_examples=200, deadline=None)
    def test_repair_is_deterministic(self, path):
        assert repair_probe_path(path, asn_of) == repair_probe_path(path, asn_of)

    @given(path=probe_paths())
    @settings(max_examples=200, deadline=None)
    def test_repaired_path_revalidates_clean(self, path):
        repaired, _fixups = repair_probe_path(path, asn_of)
        leftovers = [
            v
            for v in check_probe_path(repaired, asn_of, repaired.epoch)
            if v.invariant != TRACE_EPOCH  # epoch is not repair's job
        ]
        assert leftovers == []

    @given(path=probe_paths())
    @settings(max_examples=200, deadline=None)
    def test_repair_never_invents_hops(self, path):
        repaired, _fixups = repair_probe_path(path, asn_of)
        assert set(repaired.hops) <= set(path.hops)

    @given(path=probe_paths())
    @settings(max_examples=100, deadline=None)
    def test_clean_paths_pass_through_unchanged(self, path):
        repaired, fixups = repair_probe_path(path, asn_of)
        if not check_probe_path(path, asn_of, path.epoch):
            assert repaired is path
            assert fixups == ()


class TestFeedRepair:
    @given(stream=feed_streams())
    @settings(max_examples=200, deadline=None)
    def test_repair_is_idempotent(self, stream):
        repaired, _fixups = repair_feed(stream)
        again, more_fixups = repair_feed(repaired)
        assert again == repaired
        assert more_fixups == ()

    @given(stream=feed_streams())
    @settings(max_examples=200, deadline=None)
    def test_repaired_stream_revalidates_clean(self, stream):
        repaired, _fixups = repair_feed(stream)
        assert check_feed(repaired, "feed") == ()

    @given(stream=feed_streams())
    @settings(max_examples=200, deadline=None)
    def test_repair_only_removes_duplicates(self, stream):
        repaired, _fixups = repair_feed(stream)
        assert set(repaired) == set(stream)
        assert len(repaired) == len(set(stream))
