"""Per-invariant unit tests: each checker fires on exactly its violation
class, and the policy engine applies the documented strict / repair /
quarantine behaviour to each."""

from dataclasses import dataclass

import pytest

from repro.core.linkspace import UhNode
from repro.core.pathset import EPOCH_POST, EPOCH_PRE, PathStore, ProbePath
from repro.errors import ValidationError
from repro.validate import (
    FEED_DUP,
    FEED_ORDER,
    LG_PATH,
    QUARANTINE,
    REPAIR,
    ROUND_BASELINE,
    ROUND_PAIRS,
    STRICT,
    TRACE_DUP,
    TRACE_EPOCH,
    TRACE_LOOP,
    TRACE_REACH_BIT,
    TRACE_UNRESOLVED,
    Validator,
    check_feed,
    check_lg_path,
    check_probe_path,
    check_rounds,
)

SRC, DST = "10.0.0.1", "10.0.9.9"
MID1, MID2, MID3 = "10.0.1.1", "10.0.2.2", "10.0.3.3"
FORGED = "203.0.113.7"


def asn_of(address):
    """Toy IP-to-AS map: the 10/8 lab space resolves, anything else lies."""
    return 64500 if address.startswith("10.") else None


def path(hops, reached=None, epoch=EPOCH_POST):
    if reached is None:
        reached = hops[-1] == DST
    return ProbePath(src=SRC, dst=DST, hops=tuple(hops), reached=reached, epoch=epoch)


def invariants_of(violations):
    return {v.invariant for v in violations}


class TestProbePathInvariants:
    def test_clean_path_has_no_violations(self):
        assert check_probe_path(path([SRC, MID1, DST]), asn_of, EPOCH_POST) == ()

    def test_forged_hop_is_unresolved(self):
        found = check_probe_path(path([SRC, FORGED, DST]), asn_of, EPOCH_POST)
        assert invariants_of(found) == {TRACE_UNRESOLVED}

    def test_consecutive_duplicate(self):
        found = check_probe_path(path([SRC, MID1, MID1, DST]), asn_of, EPOCH_POST)
        assert invariants_of(found) == {TRACE_DUP}

    def test_nonadjacent_revisit_is_a_loop(self):
        found = check_probe_path(
            path([SRC, MID1, MID2, MID1, DST]), asn_of, EPOCH_POST
        )
        assert invariants_of(found) == {TRACE_LOOP}

    def test_flipped_reach_bit(self):
        found = check_probe_path(
            path([SRC, MID1, DST], reached=False), asn_of, EPOCH_POST
        )
        assert invariants_of(found) == {TRACE_REACH_BIT}

    def test_stale_epoch_tag(self):
        found = check_probe_path(
            path([SRC, MID1, DST], epoch=EPOCH_PRE), asn_of, EPOCH_POST
        )
        assert invariants_of(found) == {TRACE_EPOCH}

    def test_stars_are_absence_not_lies(self):
        star = UhNode(src=SRC, dst=DST, epoch=EPOCH_POST, index=1)
        assert check_probe_path(path([SRC, star, DST]), asn_of, EPOCH_POST) == ()

    def test_violation_names_record_and_detail(self):
        found = check_probe_path(path([SRC, FORGED, DST]), asn_of, EPOCH_POST)
        assert f"probe {SRC}->{DST}" in found[0].record
        assert FORGED in found[0].detail


class TestRoundInvariants:
    def test_matching_reached_rounds_are_clean(self):
        before, after = PathStore(), PathStore()
        before.add(path([SRC, MID1, DST], epoch=EPOCH_PRE))
        after.add(path([SRC, MID2, DST]))
        assert check_rounds(before, after) == ()

    def test_pair_sets_must_match(self):
        before, after = PathStore(), PathStore()
        before.add(path([SRC, MID1, DST], epoch=EPOCH_PRE))
        assert invariants_of(check_rounds(before, after)) == {ROUND_PAIRS}

    def test_baseline_must_have_reached(self):
        before, after = PathStore(), PathStore()
        before.add(path([SRC, MID1], reached=False, epoch=EPOCH_PRE))
        after.add(path([SRC, MID2, DST]))
        assert invariants_of(check_rounds(before, after)) == {ROUND_BASELINE}


@dataclass(frozen=True)
class Msg:
    payload: str
    seq: int = -1


class TestFeedInvariants:
    def test_clean_stream(self):
        assert check_feed([Msg("a", 0), Msg("b", 1)], "igp") == ()

    def test_duplicate_message(self):
        found = check_feed([Msg("a", 0), Msg("a", 0)], "igp")
        assert invariants_of(found) == {FEED_DUP}

    def test_misordered_sequence(self):
        found = check_feed([Msg("a", 1), Msg("b", 0)], "igp")
        assert invariants_of(found) == {FEED_ORDER}

    def test_unsequenced_messages_are_not_order_checked(self):
        assert check_feed([Msg("a"), Msg("b"), Msg("c")], "igp") == ()


class TestLgPathInvariants:
    def test_honest_path(self):
        assert check_lg_path(65001, (65001, 65002, 65003), DST, EPOCH_POST) == ()

    def test_path_must_start_at_queried_as(self):
        found = check_lg_path(65001, (65002, 65003), DST, EPOCH_POST)
        assert invariants_of(found) == {LG_PATH}

    def test_path_must_not_revisit(self):
        found = check_lg_path(65001, (65001, 65001), DST, EPOCH_POST)
        assert invariants_of(found) == {LG_PATH}

    def test_empty_path(self):
        found = check_lg_path(65001, (), DST, EPOCH_POST)
        assert invariants_of(found) == {LG_PATH}


class TestValidatorPolicies:
    def store_with(self, *paths):
        store = PathStore()
        for p in paths:
            store.add(p)
        return store

    def test_unknown_policy_rejected(self):
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError):
            Validator("lenient")

    def test_strict_raises_naming_record_and_invariant(self):
        validator = Validator(STRICT)
        store = self.store_with(path([SRC, FORGED, DST]))
        with pytest.raises(ValidationError) as err:
            validator.screen_store(store, asn_of, EPOCH_POST)
        assert err.value.invariant == TRACE_UNRESOLVED
        assert SRC in err.value.record

    def test_quarantine_drops_and_counts(self):
        validator = Validator(QUARANTINE)
        store = self.store_with(
            path([SRC, MID1, DST]),
            ProbePath(
                src=MID2, dst=DST, hops=(MID2, FORGED, DST), reached=True,
                epoch=EPOCH_POST,
            ),
        )
        screened = validator.screen_store(store, asn_of, EPOCH_POST)
        assert len(list(screened.paths())) == 1
        assert validator.report.traces_quarantined == 1
        assert validator.report.stale_rounds_dropped == 0

    def test_repair_fixes_in_place_and_counts(self):
        validator = Validator(REPAIR)
        store = self.store_with(path([SRC, FORGED, MID1, DST]))
        screened = validator.screen_store(store, asn_of, EPOCH_POST)
        (survivor,) = screened.paths()
        assert survivor.hops == (SRC, MID1, DST)
        assert validator.report.traces_repaired == 1
        assert validator.report.traces_quarantined == 0

    @pytest.mark.parametrize("policy", [REPAIR, QUARANTINE])
    def test_stale_epoch_has_no_sound_repair(self, policy):
        validator = Validator(policy)
        store = self.store_with(path([SRC, MID1, DST], epoch=EPOCH_PRE))
        screened = validator.screen_store(store, asn_of, EPOCH_POST)
        assert list(screened.paths()) == []
        assert validator.report.stale_rounds_dropped == 1
        assert validator.report.traces_quarantined == 0  # disjoint counters

    def test_clean_store_is_returned_unchanged(self):
        validator = Validator(QUARANTINE)
        store = self.store_with(path([SRC, MID1, DST]))
        assert validator.screen_store(store, asn_of, EPOCH_POST) is store

    def test_feed_repair_restores_order_and_dedups(self):
        validator = Validator(REPAIR)
        screened = validator.screen_feed(
            [Msg("b", 1), Msg("a", 0), Msg("a", 0)], "igp"
        )
        assert screened == (Msg("a", 0), Msg("b", 1))
        assert validator.report.feed_messages_repaired > 0

    def test_feed_quarantine_drops_offenders(self):
        validator = Validator(QUARANTINE)
        screened = validator.screen_feed(
            [Msg("b", 1), Msg("a", 0), Msg("b", 1)], "igp"
        )
        assert screened == (Msg("b", 1),)
        assert validator.report.feed_messages_quarantined == 2

    @pytest.mark.parametrize("policy", [REPAIR, QUARANTINE])
    def test_bad_lg_answer_degrades_to_none(self, policy):
        validator = Validator(policy)
        assert (
            validator.screen_lg_path(65001, (65002, 65003), DST, EPOCH_POST)
            is None
        )
        assert validator.report.lg_paths_quarantined == 1

    def test_good_lg_answer_passes_through(self):
        validator = Validator(QUARANTINE)
        answer = (65001, 65002)
        assert validator.screen_lg_path(65001, answer, DST, EPOCH_POST) is answer

    def test_screen_rounds_discards_pairs_from_both(self):
        validator = Validator(QUARANTINE)
        before, after = PathStore(), PathStore()
        before.add(path([SRC, MID1, DST], epoch=EPOCH_PRE))
        before.add(
            ProbePath(
                src=MID1, dst=DST, hops=(MID1,), reached=False, epoch=EPOCH_PRE
            )
        )
        after.add(path([SRC, MID2, DST]))
        after.add(ProbePath(src=MID1, dst=DST, hops=(MID1, DST), reached=True))
        new_before, new_after = validator.screen_rounds(before, after)
        assert set(new_before.pairs()) == {(SRC, DST)}
        assert set(new_after.pairs()) == {(SRC, DST)}
