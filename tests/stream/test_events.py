"""Event model and event-log tests: the clock never runs backwards, every
event type survives a JSON round trip, and a torn log loads up to its
last complete line."""

import json

import pytest

from repro.core.control_plane import (
    IgpLinkDownObservation,
    WithdrawalObservation,
)
from repro.core.linkspace import UhNode
from repro.core.pathset import EPOCH_POST, EPOCH_PRE, ProbePath
from repro.errors import StreamError
from repro.stream import (
    EVENT_LOG_FORMAT,
    EventLogWriter,
    IgpLinkDownEvent,
    LogicalClock,
    ProbeEvent,
    ReachabilityEvent,
    SensorDropoutEvent,
    SensorHeartbeatEvent,
    WithdrawalEvent,
    load_event_log,
    save_event_log,
    stream_event_from_dict,
    stream_event_to_dict,
)

SRC, MID, DST = "10.0.0.1", "10.0.1.1", "10.0.9.9"


def sample_events():
    """One of every event type, including a probe with a star hop."""
    star = UhNode(src=SRC, dst=DST, epoch=EPOCH_POST, index=1)
    return [
        SensorHeartbeatEvent(tick=0, seq=0, address=SRC),
        ProbeEvent(
            tick=1,
            seq=1,
            path=ProbePath(
                src=SRC,
                dst=DST,
                hops=(SRC, MID, DST),
                reached=True,
                epoch=EPOCH_PRE,
            ),
        ),
        ProbeEvent(
            tick=2,
            seq=2,
            path=ProbePath(
                src=SRC,
                dst=DST,
                hops=(SRC, star),
                reached=False,
                epoch=EPOCH_POST,
            ),
        ),
        ReachabilityEvent(tick=2, seq=3, src=SRC, dst=DST, reached=False),
        IgpLinkDownEvent(
            tick=2,
            seq=4,
            observation=IgpLinkDownObservation(
                address_a=MID, address_b=DST, seq=0
            ),
        ),
        WithdrawalEvent(
            tick=2,
            seq=5,
            observation=WithdrawalObservation(
                prefix="10.0.9.0/24",
                at_address=MID,
                from_address=DST,
                from_asn=64501,
                seq=1,
            ),
        ),
        SensorDropoutEvent(tick=3, seq=6, address=DST),
    ]


class TestLogicalClock:
    def test_starts_at_zero_and_ticks(self):
        clock = LogicalClock()
        assert clock.now == 0
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_advance_to_is_idempotent(self):
        clock = LogicalClock(start=3)
        assert clock.advance_to(3) == 3
        assert clock.advance_to(7) == 7

    def test_backwards_time_raises(self):
        clock = LogicalClock(start=5)
        with pytest.raises(StreamError):
            clock.advance_to(4)

    def test_negative_start_raises(self):
        with pytest.raises(StreamError):
            LogicalClock(start=-1)


class TestEventSerialization:
    def test_every_event_type_round_trips_through_json(self):
        for event in sample_events():
            wire = json.loads(json.dumps(stream_event_to_dict(event)))
            assert stream_event_from_dict(wire) == event

    def test_unknown_event_type_raises(self):
        with pytest.raises(StreamError):
            stream_event_from_dict({"type": "carrier-pigeon", "tick": 0, "seq": 0})


class TestEventLog:
    def test_save_load_round_trip(self, tmp_path):
        events = sample_events()
        path = tmp_path / "stream.jsonl"
        save_event_log(events, path)
        assert load_event_log(path) == events

    def test_load_sorts_by_seq(self, tmp_path):
        events = sample_events()
        path = tmp_path / "stream.jsonl"
        save_event_log(list(reversed(events)), path)
        assert load_event_log(path) == events

    def test_truncated_trailing_line_is_dropped(self, tmp_path):
        events = sample_events()
        path = tmp_path / "stream.jsonl"
        save_event_log(events, path)
        with open(path, "a") as handle:
            handle.write('{"type": "probe", "tick": 9')  # torn mid-append
        assert load_event_log(path) == events

    def test_writer_log_is_replayable_mid_run(self, tmp_path):
        events = sample_events()
        path = tmp_path / "stream.jsonl"
        writer = EventLogWriter(path)
        for event in events[:4]:
            writer.append(event)
        # Not closed: append flushes, so the prefix is already loadable.
        assert load_event_log(path) == events[:4]
        writer.close()

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "not-a-log.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(StreamError):
            load_event_log(path)

    def test_wrong_format_tag_raises(self, tmp_path):
        path = tmp_path / "wrong.jsonl"
        path.write_text(json.dumps({"format": "repro-event-log-v99"}) + "\n")
        with pytest.raises(StreamError):
            load_event_log(path)

    def test_header_names_current_format(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        save_event_log([], path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"format": EVENT_LOG_FORMAT}
