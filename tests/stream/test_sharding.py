"""Sharded-engine guarantees: stable routing, deterministic admission,
lossless cross-shard merging, and the headline contract — ``shards=K,
workers=W`` replay bit-identical to serial single-shard replay on the
golden scenarios, including under journalled resume."""

import pytest

from repro.core.pathset import EPOCH_POST, EPOCH_PRE
from repro.errors import StreamError
from repro.stream import (
    AdmissionController,
    CrossShardMerger,
    EpisodeLifecycle,
    ReachabilityEvent,
    ReplayConfig,
    SensorDropoutEvent,
    SensorHeartbeatEvent,
    ShardRouter,
    ShardedStreamEngine,
    SlidingWindow,
    TenantConfig,
    make_replay_setup,
    merged_control_view,
    merged_snapshot,
    run_stream_replay,
    source_tenant_of,
    stable_hash,
)

from .test_window import A, B, C, asn_of, probe

SETUP_ARGS = dict(seed=3, n_sensors=6)
CONFIG = ReplayConfig(
    kind="link-1",
    episodes=2,
    incident_rounds=2,
    recovery_rounds=2,
    fault_rate=0.1,
    seed=3,
)


def reach(src, dst, reached=True, tick=0, seq=0):
    return ReachabilityEvent(tick=tick, seq=seq, src=src, dst=dst, reached=reached)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("as64500") == stable_hash("as64500")

    def test_64_bit_range(self):
        for key in ("", "a", "pfx10.0.0", "as1"):
            assert 0 <= stable_hash(key) < 2**64

    def test_distinct_keys_differ(self):
        keys = [f"pfx10.0.{i}" for i in range(100)]
        assert len({stable_hash(key) for key in keys}) == len(keys)


class TestShardRouter:
    def test_rejects_bad_shard_counts(self):
        with pytest.raises(StreamError):
            ShardRouter(0)
        with pytest.raises(StreamError):
            ShardRouter(4, replicas=0)

    def test_same_destination_same_shard(self):
        """Probe and reachability events for one destination co-locate:
        the pair's window slots and alarm state live on one shard."""
        router = ShardRouter(4, asn_of=asn_of)
        shard = router.route(probe(A, B, EPOCH_POST))
        assert router.route(probe(C, B, EPOCH_PRE)) == shard
        assert router.route(reach(A, B)) == shard

    def test_prefix_fallback_when_asn_unknown(self):
        router = ShardRouter(4, asn_of=lambda _address: None)
        assert router.key_of(probe(A, B, EPOCH_POST)) == "pfx10.0.0"
        router_asn = ShardRouter(4, asn_of=asn_of)
        assert router_asn.key_of(probe(A, B, EPOCH_POST)) == "as64500"

    def test_control_and_liveness_events_broadcast(self):
        router = ShardRouter(4, asn_of=asn_of)
        assert router.route(SensorHeartbeatEvent(tick=0, seq=0, address=A)) is None
        assert router.route(SensorDropoutEvent(tick=0, seq=1, address=A)) is None

    def test_single_shard_owns_everything(self):
        router = ShardRouter(1, asn_of=asn_of)
        for i in range(50):
            assert router.shard_for_key(f"pfx198.51.{i}") == 0

    def test_all_shards_reachable(self):
        router = ShardRouter(4, asn_of=None)
        owners = {router.shard_for_key(f"pfx198.51.{i}") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_resharding_moves_a_minority_of_keys(self):
        """The consistent-hash property: growing 8 -> 9 shards remaps
        roughly 1/9 of the key space, never a wholesale reshuffle."""
        keys = [f"as{64000 + i}" for i in range(500)]
        before = ShardRouter(8)
        after = ShardRouter(9)
        moved = sum(
            1
            for key in keys
            if before.shard_for_key(key) != after.shard_for_key(key)
        )
        assert 0 < moved < len(keys) // 2


class TestTenantConfig:
    def test_rejects_non_positive_rate_and_burst(self):
        with pytest.raises(StreamError):
            TenantConfig("t", rate=0)
        with pytest.raises(StreamError):
            TenantConfig("t", rate=1, burst=0)

    def test_bucket_size_defaults_to_rate(self):
        assert TenantConfig("t", rate=5).bucket_size == 5
        assert TenantConfig("t", rate=5, burst=9).bucket_size == 9
        assert TenantConfig("t").bucket_size is None


class TestAdmissionController:
    def test_disabled_controller_admits_everything(self):
        control = AdmissionController()
        assert not control.enabled
        assert all(control.admit(None) for _ in range(10))
        assert control.counters()["admission_admitted"] == 10

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(StreamError):
            AdmissionController((TenantConfig("t"), TenantConfig("t")))

    def test_unknown_tenant_is_rejected_and_counted(self):
        control = AdmissionController((TenantConfig("alice", rate=2),))
        assert not control.admit("mallory")
        assert not control.admit(None)
        assert control.counters()["admission_rejected_unknown"] == 2
        assert control.counters()["admission_shed"] == 0

    def test_unlimited_tenant_never_sheds(self):
        control = AdmissionController((TenantConfig("alice"),))
        assert all(control.admit("alice") for _ in range(100))
        assert control.shed == 0

    def test_bucket_sheds_deterministically_and_refills_on_tick(self):
        control = AdmissionController((TenantConfig("alice", rate=2),))
        control.on_tick(1)
        outcomes = [control.admit("alice") for _ in range(4)]
        assert outcomes == [True, True, False, False]
        assert control.shed_by_tenant["alice"] == 2
        control.on_tick(2)  # refill by rate
        assert control.admit("alice")
        assert control.admit("alice")
        assert not control.admit("alice")

    def test_refill_caps_at_burst_and_ignores_repeated_ticks(self):
        control = AdmissionController((TenantConfig("alice", rate=1, burst=2),))
        control.on_tick(1)
        control.on_tick(1)  # idempotent: no double refill
        control.on_tick(10)  # long gap still caps at burst
        assert [control.admit("alice") for _ in range(3)] == [True, True, False]


class TestSourceTenantOf:
    def test_requires_at_least_one_tenant(self):
        with pytest.raises(StreamError):
            source_tenant_of(())

    def test_stable_assignment_and_broadcast_exemption(self):
        tenants = (TenantConfig("t0"), TenantConfig("t1"), TenantConfig("t2"))
        tenant_of = tenant_of_again = source_tenant_of(tenants)
        assigned = tenant_of(reach(A, B))
        assert assigned in {"t0", "t1", "t2"}
        assert tenant_of_again(probe(A, C, EPOCH_POST)) == assigned
        assert tenant_of(SensorHeartbeatEvent(tick=0, seq=0, address=A)) is None


def _fill(window, pairs, post_reached=True):
    seq = 0
    for src, dst in pairs:
        window.observe(probe(src, dst, EPOCH_PRE, tick=0, seq=seq))
        window.observe(
            probe(src, dst, EPOCH_POST, reached=post_reached, tick=0, seq=seq + 1)
        )
        seq += 2


class TestMergedViews:
    PAIRS = [(A, B), (A, C), (B, C), (C, A)]

    def test_merged_snapshot_equals_single_window(self):
        single = SlidingWindow(width=4)
        _fill(single, self.PAIRS)
        shard0, shard1 = SlidingWindow(width=4), SlidingWindow(width=4)
        _fill(shard0, self.PAIRS[:2])
        _fill(shard1, self.PAIRS[2:])

        expected = single.snapshot(asn_of)
        merged = merged_snapshot([shard0, shard1], asn_of)
        assert merged is not None
        assert merged.before.pairs() == expected.before.pairs()
        assert merged.after.pairs() == expected.after.pairs()
        for pair in expected.after.pairs():
            assert merged.after.get(pair) == expected.after.get(pair)
            assert merged.before.get(pair) == expected.before.get(pair)

    def test_merged_snapshot_of_empty_windows_is_none(self):
        assert merged_snapshot([SlidingWindow(width=4)], asn_of) is None

    def test_merged_control_view_dedups_broadcast_copies(self):
        """Every shard window holds the same broadcast feed entries; the
        merged view must equal one window's, not N concatenated copies."""
        from repro.core.control_plane import WithdrawalObservation
        from repro.stream import WithdrawalEvent

        event = WithdrawalEvent(
            tick=1,
            seq=7,
            observation=WithdrawalObservation(
                prefix="10.9.0.0/16",
                at_address=A,
                from_address=B,
                from_asn=64501,
                seq=0,
            ),
        )
        single = SlidingWindow(width=4)
        single.observe(event)
        shards = [SlidingWindow(width=4) for _ in range(3)]
        for window in shards:
            window.observe(event)

        expected = single.control_view(64500)
        merged = merged_control_view(shards, 64500)
        assert merged.withdrawals == expected.withdrawals
        assert merged.igp_link_down == expected.igp_link_down


class TestCrossShardMerger:
    def test_union_matches_single_lifecycle(self):
        """Alarms split across shards drive the lifecycle exactly as the
        single-tracker union would."""
        merger = CrossShardMerger()
        single = EpisodeLifecycle()
        rounds = [
            [((A, B),), ((B, C),)],  # two shards alarm -> open
            [((A, B),), ()],  # one clears -> update
            [(), ()],  # all clear -> close
        ]
        for tick, shard_alarms in enumerate(rounds, start=1):
            merged = [pair for alarms in shard_alarms for pair in alarms]
            expected = single.advance(tick, merged)
            assert merger.advance(tick, shard_alarms) == expected
        assert merger.episodes == single.episodes
        assert merger.open_episode is None

    def test_cross_shard_episode_counted_once(self):
        merger = CrossShardMerger()
        merger.advance(1, [((A, B),), ((B, C),)])
        merger.advance(2, [((A, B),), ((B, C),)])
        merger.advance(3, [(), ()])
        assert merger.cross_shard_episodes == 1
        assert merger.counters()["episodes_total"] == 1
        assert merger.counters()["episodes_open"] == 0

    def test_single_shard_episode_not_counted_as_cross(self):
        merger = CrossShardMerger()
        merger.advance(1, [((A, B),), ()])
        merger.advance(2, [(), ()])
        assert merger.cross_shard_episodes == 0


class TestShardedEngineUnits:
    def _engine(self, **kwargs):
        kwargs.setdefault("asn_of", asn_of)
        kwargs.setdefault("diagnosers", {})
        kwargs.setdefault("shards", 2)
        return ShardedStreamEngine(**kwargs)

    def test_broadcast_screened_once_and_fanned_out(self):
        engine = self._engine()
        assert engine.offer(SensorHeartbeatEvent(tick=0, seq=0, address=A))
        counters = engine.counters()
        assert counters["events_broadcast"] == 1
        assert counters["events_admitted"] == 1
        # Screened once (control ingestor), folded into every shard.
        assert engine.ingest_counters()["events_screened"] == 1
        assert all(shard.events_offered == 1 for shard in engine.shards)

    def test_admission_sheds_before_the_shard_sees_the_event(self):
        tenants = (TenantConfig("only", rate=1),)
        engine = self._engine(
            tenants=tenants, tenant_of=lambda _event: "only"
        )
        engine.advance(1)
        assert engine.offer(reach(A, B, reached=False, tick=1, seq=0))
        assert not engine.offer(reach(A, C, reached=False, tick=1, seq=1))
        counters = engine.counters()
        assert counters["admission_shed"] == 1
        assert sum(shard.events_offered for shard in engine.shards) == 1

    def test_shard_stats_account_for_every_pair_event(self):
        engine = self._engine(shards=3)
        for seq, (src, dst) in enumerate([(A, B), (A, C), (B, C), (C, B)]):
            engine.offer(reach(src, dst, reached=False, seq=seq))
        stats = engine.shard_stats()
        assert len(stats) == 3
        assert sum(s["events_offered"] for s in stats) == 4
        assert engine.detector_counters()["pairs_tracked"] == 4


@pytest.fixture(scope="module")
def serial_result():
    return run_stream_replay(make_replay_setup(**SETUP_ARGS), CONFIG)


class TestShardedDeterminism:
    """The tentpole contract on the golden replay scenario."""

    def test_sharded_replay_is_bit_identical_to_serial(self, serial_result):
        sharded = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, shards=4
        )
        assert serial_result.reports  # the scenario diagnosed something
        assert sharded.reports == serial_result.reports
        assert sharded.episodes == serial_result.episodes
        assert sharded.shard_stats is not None
        assert len(sharded.shard_stats) == 4

    def test_sharded_parallel_replay_is_bit_identical(self, serial_result):
        sharded = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, shards=4, workers=2
        )
        assert sharded.reports == serial_result.reports

    def test_sharded_counters_reconcile_with_serial(self, serial_result):
        sharded = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, shards=4
        )
        serial = serial_result.engine_counters
        counters = sharded.engine_counters
        assert counters["events_offered"] == serial["events_offered"]
        assert counters["events_admitted"] == serial["events_admitted"]
        assert counters["shards"] == 4
        # Same screening verdicts overall, just distributed.
        assert sharded.ingest_counters == serial_result.ingest_counters
        assert (
            sharded.detector_counters["episodes_total"]
            == serial_result.detector_counters["episodes_total"]
        )

    def test_serial_journal_resumes_a_sharded_run(self, tmp_path, serial_result):
        """The journal fingerprint deliberately excludes the shard count:
        an interrupted serial run resumes sharded (and vice versa) with
        every completed report reused bit-identically."""
        from repro.experiments.journal import RunJournal

        fingerprint = {"format": "repro-stream-journal", "config": CONFIG}
        journal = RunJournal(tmp_path / "stream.journal", fingerprint)
        first = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, journal=journal
        )
        assert first.reports == serial_result.reports
        cached = journal.load_completed()

        resumed = run_stream_replay(
            make_replay_setup(**SETUP_ARGS),
            CONFIG,
            shards=4,
            workers=2,
            cached_reports=cached,
        )
        assert resumed.reports == first.reports
        assert resumed.engine_counters["reports_reused"] == len(first.reports)

    def test_sharded_journal_resumes_a_serial_run(self, tmp_path, serial_result):
        from repro.experiments.journal import RunJournal

        fingerprint = {"format": "repro-stream-journal", "config": CONFIG}
        journal = RunJournal(tmp_path / "stream.journal", fingerprint)
        first = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, shards=4, journal=journal
        )
        cached = journal.load_completed()
        resumed = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, cached_reports=cached
        )
        assert resumed.reports == first.reports == serial_result.reports
        assert resumed.engine_counters["reports_reused"] == len(first.reports)
