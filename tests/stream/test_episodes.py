"""Episode-detection tests: debounce keeps blips from opening episodes,
hysteresis keeps half-recovered pairs from flapping them, and the
open/update/close lifecycle tracks the alarmed set."""

import pytest

from repro.errors import StreamError
from repro.stream import CLOSE, OPEN, UPDATE, EpisodeDetector

AB = ("10.0.0.1", "10.0.0.2")
AC = ("10.0.0.1", "10.0.0.3")


class TestDebounce:
    def test_thresholds_must_be_positive(self):
        with pytest.raises(StreamError):
            EpisodeDetector(open_after=0)
        with pytest.raises(StreamError):
            EpisodeDetector(close_after=0)

    def test_single_failure_does_not_open(self):
        detector = EpisodeDetector(open_after=2, close_after=2)
        detector.observe(AB, reached=False)
        assert detector.advance(tick=1) == []
        assert detector.open_episode is None

    def test_blip_resets_the_failure_count(self):
        detector = EpisodeDetector(open_after=2, close_after=2)
        detector.observe(AB, reached=False)
        detector.observe(AB, reached=True)  # transient loss: counter resets
        detector.observe(AB, reached=False)
        assert detector.advance(tick=1) == []

    def test_consecutive_failures_open(self):
        detector = EpisodeDetector(open_after=2, close_after=2)
        detector.observe(AB, reached=False)
        detector.observe(AB, reached=False)
        (transition,) = detector.advance(tick=1)
        assert transition.kind == OPEN
        assert transition.pairs == (AB,)
        assert detector.open_episode.is_open


class TestHysteresis:
    def test_single_success_does_not_close(self):
        detector = EpisodeDetector(open_after=1, close_after=2)
        detector.observe(AB, reached=False)
        detector.advance(tick=1)
        detector.observe(AB, reached=True)
        assert detector.advance(tick=2) == []  # still alarmed: no flap
        detector.observe(AB, reached=True)
        (transition,) = detector.advance(tick=3)
        assert transition.kind == CLOSE
        assert transition.pairs == ()
        assert detector.open_episode is None

    def test_failure_resets_the_recovery_count(self):
        detector = EpisodeDetector(open_after=1, close_after=2)
        detector.observe(AB, reached=False)
        detector.advance(tick=1)
        detector.observe(AB, reached=True)
        detector.observe(AB, reached=False)  # relapse
        detector.observe(AB, reached=True)
        assert detector.advance(tick=2) == []


class TestLifecycle:
    def test_update_when_alarmed_set_grows(self):
        detector = EpisodeDetector(open_after=1, close_after=1)
        detector.observe(AB, reached=False)
        detector.advance(tick=1)
        detector.observe(AC, reached=False)
        (transition,) = detector.advance(tick=2)
        assert transition.kind == UPDATE
        assert transition.pairs == (AB, AC)

    def test_episode_remembers_every_pair_that_alarmed(self):
        detector = EpisodeDetector(open_after=1, close_after=1)
        detector.observe(AB, reached=False)
        detector.advance(tick=1)
        detector.observe(AC, reached=False)
        detector.observe(AB, reached=True)  # AB clears, AC stays
        detector.advance(tick=2)
        detector.observe(AC, reached=True)
        detector.advance(tick=3)
        episode = detector.episodes[0]
        assert not episode.is_open
        assert episode.pairs_ever == {AB, AC}
        assert episode.opened_at == 1 and episode.closed_at == 3

    def test_steady_alarmed_set_emits_nothing(self):
        detector = EpisodeDetector(open_after=1, close_after=1)
        detector.observe(AB, reached=False)
        detector.advance(tick=1)
        detector.observe(AB, reached=False)
        assert detector.advance(tick=2) == []

    def test_episode_ids_increment(self):
        detector = EpisodeDetector(open_after=1, close_after=1)
        for tick in (1, 3):
            detector.observe(AB, reached=False)
            detector.advance(tick=tick)
            detector.observe(AB, reached=True)
            detector.advance(tick=tick + 1)
        assert [e.episode_id for e in detector.episodes] == [0, 1]

    def test_forget_clears_a_dark_sensors_pairs(self):
        detector = EpisodeDetector(open_after=1, close_after=1)
        detector.observe(AB, reached=False)
        detector.advance(tick=1)
        detector.forget(AB[1])  # the sensor went dark, not the network
        (transition,) = detector.advance(tick=2)
        assert transition.kind == CLOSE

    def test_counters(self):
        detector = EpisodeDetector(open_after=1, close_after=1)
        detector.observe(AB, reached=False)
        detector.advance(tick=1)
        counters = detector.counters()
        assert counters["episodes_total"] == 1
        assert counters["episodes_open"] == 1
        assert counters["pairs_alarmed"] == 1
        assert counters["transitions"] == 1
