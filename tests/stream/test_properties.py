"""Property-based tests for admission control and shard routing.

Two contracts the self-healing layer leans on:

* :class:`~repro.stream.AdmissionController` token buckets conserve
  events — every ``admit`` call lands in exactly one counter, and a
  bucket never goes negative or above its depth, across *arbitrary*
  tick/admit interleavings;
* :class:`~repro.stream.ShardRouter` consistent hashing is minimally
  disruptive — removing a shard moves only the removed shard's keys,
  re-adding it restores the exact original mapping (what makes
  checkpointed restart of a single shard possible at all).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream import AdmissionController, ShardRouter, TenantConfig

TENANT_NAMES = ("alpha", "beta", "gamma")


@st.composite
def admission_worlds(draw):
    """A tenant roster plus an arbitrary tick/admit op sequence."""
    n_tenants = draw(st.integers(min_value=1, max_value=3))
    tenants = []
    for name in TENANT_NAMES[:n_tenants]:
        rate = draw(st.one_of(st.none(), st.integers(1, 5)))
        burst = None
        if rate is not None:
            burst = draw(st.one_of(st.none(), st.integers(1, 8)))
        tenants.append(TenantConfig(name=name, rate=rate, burst=burst))
    senders = list(TENANT_NAMES[:n_tenants]) + ["ghost", None]
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("tick"), st.integers(1, 3)),
                st.tuples(st.just("admit"), st.sampled_from(senders)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return tenants, ops


@given(world=admission_worlds())
@settings(max_examples=120)
def test_admission_conserves_and_bounds_tokens(world):
    tenants, ops = world
    controller = AdmissionController(tenants)
    depths = {
        t.name: t.bucket_size for t in tenants if t.bucket_size is not None
    }
    offered = 0
    tick = 0
    for op, arg in ops:
        if op == "tick":
            tick += arg
            controller.on_tick(tick)
        else:
            offered += 1
            controller.admit(arg)
        # Buckets stay within [0, depth] after every single operation.
        for name, depth in depths.items():
            assert 0 <= controller._tokens[name] <= depth
        # Conservation: every offer landed in exactly one counter.
        assert (
            controller.admitted
            + controller.shed
            + controller.rejected_unknown
            == offered
        )
    # Shed-by-tenant breakdown sums to the total shed.
    assert sum(controller.shed_by_tenant.values()) == controller.shed


@given(world=admission_worlds())
@settings(max_examples=60)
def test_admission_replay_is_deterministic(world):
    tenants, ops = world

    def run():
        controller = AdmissionController(tenants)
        tick = 0
        outcomes = []
        for op, arg in ops:
            if op == "tick":
                tick += arg
                controller.on_tick(tick)
            else:
                outcomes.append(controller.admit(arg))
        return outcomes, controller.counters()

    assert run() == run()


def _keys(draw_asns):
    return [f"as{asn}" for asn in draw_asns]


@given(
    n_shards=st.integers(min_value=2, max_value=8),
    asns=st.lists(st.integers(1, 10_000), min_size=1, max_size=200),
)
@settings(max_examples=80)
def test_removing_a_shard_moves_only_its_keys(n_shards, asns):
    """Dropping the last shard strands only that shard's keys.

    A key owned by a surviving shard still maps to the same virtual
    node after the removed shard's nodes leave the ring, so its owner
    is *identical* — exact, not approximate, minimality.
    """
    big = ShardRouter(n_shards)
    small = ShardRouter(n_shards - 1)
    removed = n_shards - 1
    for key in _keys(asns):
        owner = big.shard_for_key(key)
        if owner != removed:
            assert small.shard_for_key(key) == owner


@given(
    n_shards=st.integers(min_value=1, max_value=8),
    asns=st.lists(st.integers(1, 10_000), min_size=1, max_size=200),
)
@settings(max_examples=60)
def test_re_adding_a_shard_restores_the_exact_mapping(n_shards, asns):
    before = ShardRouter(n_shards)
    after = ShardRouter(n_shards)  # shard removed, then re-added
    for key in _keys(asns):
        assert before.shard_for_key(key) == after.shard_for_key(key)


@given(
    n_shards=st.integers(min_value=1, max_value=8),
    asns=st.lists(st.integers(1, 10_000), min_size=1, max_size=200),
)
@settings(max_examples=80)
def test_growth_moves_keys_only_to_the_new_shard(n_shards, asns):
    small = ShardRouter(n_shards)
    big = ShardRouter(n_shards + 1)
    for key in _keys(asns):
        if big.shard_for_key(key) != small.shard_for_key(key):
            assert big.shard_for_key(key) == n_shards
