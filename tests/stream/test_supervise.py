"""Supervision-layer guarantees: the breaker state machine on logical
ticks, dead-letter provenance round trips, darkness buffering with
bounded memory, stale-alarm holds, and the headline recovery contract —
a scripted shard crash or stall heals to final verdicts byte-identical
to the undisturbed run."""

import json

import pytest

from repro.errors import StreamError, SupervisionError
from repro.faults import FaultConfig
from repro.stream import (
    CircuitBreaker,
    DeadLetterQueue,
    ReachabilityEvent,
    ReplayConfig,
    ShardSupervisor,
    ShardedStreamEngine,
    StreamShard,
    SupervisedStreamEngine,
    SupervisionConfig,
    UPDATE,
    CLOSE,
    EpisodeTransition,
    load_dead_letters,
    make_replay_setup,
    run_replay,
)
from repro.stream.replay import build_event_log

from .test_window import A, B, C, asn_of

SETUP_ARGS = dict(seed=11, n_sensors=6)
CONFIG = ReplayConfig(
    kind="link-1",
    episodes=2,
    incident_rounds=2,
    recovery_rounds=2,
    seed=11,
)


def reach(src, dst, reached=True, tick=0, seq=0):
    return ReachabilityEvent(tick=tick, seq=seq, src=src, dst=dst, reached=reached)


class ScriptedPlan:
    """Duck-typed stand-in for FaultPlan's chaos surface: failures fire
    exactly where the test scripts them, nowhere else."""

    def __init__(self, crashes=(), stalls=None, slow=(), poison=False):
        self.crashes = set(crashes)  # {(shard, tick)}
        self.stalls = dict(stalls or {})  # {(shard, tick): dark_ticks}
        self.slow = set(slow)  # {(shard, tick)}
        self.poison = poison
        self.config = FaultConfig(worker_poison_rate=1.0 if poison else 0.0)

    def shard_crashes(self, shard, tick):
        return (shard, tick) in self.crashes

    def shard_stall_ticks(self, shard, tick):
        return self.stalls.get((shard, tick), 0)

    def shard_slow(self, shard, tick):
        return (shard, tick) in self.slow

    def worker_poisoned(self, _variant, _episode_id):
        return self.poison


class TestSupervisionConfig:
    def test_rejects_non_positive_tunables(self):
        with pytest.raises(StreamError):
            SupervisionConfig(checkpoint_every=0)
        with pytest.raises(StreamError):
            SupervisionConfig(breaker_threshold=0)
        with pytest.raises(StreamError):
            SupervisionConfig(buffer_limit=-1)

    def test_zero_buffer_limit_is_legal(self):
        assert SupervisionConfig(buffer_limit=0).buffer_limit == 0


class TestCircuitBreaker:
    def test_closed_until_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=4)
        for tick in range(2):
            assert breaker.allow(tick)
            breaker.record_failure(tick)
        assert breaker.state == "closed"
        breaker.record_failure(2)
        assert breaker.state == "open"
        assert breaker.times_opened == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=4)
        breaker.record_failure(0)
        breaker.record_success()
        breaker.record_failure(1)
        assert breaker.state == "closed"

    def test_open_short_circuits_until_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=3)
        breaker.record_failure(5)
        assert not breaker.allow(6)
        assert not breaker.allow(7)
        assert breaker.short_circuits == 2
        # Cooldown elapsed: one half-open probe is admitted...
        assert breaker.allow(8)
        assert breaker.state == "half-open"
        assert breaker.probes == 1
        # ...and only one, while it is in flight.
        assert not breaker.allow(8)

    def test_probe_success_recloses(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure(0)
        assert breaker.allow(2)
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.times_reclosed == 1
        assert breaker.allow(3)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure(0)
        assert breaker.allow(2)  # probe
        breaker.record_failure(2)
        assert breaker.state == "open"
        assert breaker.times_opened == 2
        assert not breaker.allow(3)
        assert breaker.allow(4)  # new cooldown from tick 2

    def test_rejects_bad_tunables(self):
        with pytest.raises(StreamError):
            CircuitBreaker(threshold=0)
        with pytest.raises(StreamError):
            CircuitBreaker(cooldown=0)


class TestDeadLetterQueue:
    def test_in_memory_entries_carry_provenance(self):
        dlq = DeadLetterQueue()
        dlq.put_event(reach(A, B, tick=3, seq=9), reason="overflow", shard=1)
        transition = EpisodeTransition(
            kind=UPDATE, episode_id=4, tick=5, pairs=((A, B),)
        )
        dlq.put_episode(transition, reason="episode-strikes", shard=0)
        assert len(dlq) == 2
        event_entry, episode_entry = dlq.entries
        assert event_entry["kind"] == "event"
        assert event_entry["shard"] == 1
        assert event_entry["tick"] == 3
        assert event_entry["event"]["src"] == A
        assert episode_entry["kind"] == "episode"
        assert episode_entry["episode_id"] == 4
        assert episode_entry["pairs"] == [[A, B]]

    def test_journal_round_trip(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        dlq = DeadLetterQueue(path)
        dlq.put_event(reach(A, B, tick=1), reason="overflow", shard=0)
        dlq.put_episode(
            EpisodeTransition(kind=UPDATE, episode_id=2, tick=4, pairs=()),
            reason="episode-strikes",
        )
        dlq.close()
        assert load_dead_letters(path) == dlq.entries

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        dlq = DeadLetterQueue(path)
        dlq.put_event(reach(A, B), reason="overflow", shard=0)
        dlq.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "ev')  # crash mid-write
        assert load_dead_letters(path) == dlq.entries

    def test_foreign_file_is_a_typed_error(self, tmp_path):
        path = tmp_path / "not-dlq"
        path.write_text("not json at all\n")
        with pytest.raises(SupervisionError):
            load_dead_letters(path)
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(SupervisionError):
            load_dead_letters(path)


class TestShardSupervisorUnits:
    def _supervisor(self, plan=None, **config):
        shards = [
            StreamShard(i, asn_of, open_after=2, close_after=2)
            for i in range(2)
        ]
        dlq = DeadLetterQueue()
        supervisor = ShardSupervisor(
            shards,
            config=SupervisionConfig(**config),
            plan=plan,
            dead_letters=dlq,
        )
        return supervisor, shards, dlq

    def test_buffer_overflow_dead_letters_with_provenance(self):
        supervisor, _shards, dlq = self._supervisor(buffer_limit=1)
        supervisor._status[0] = "crashed"
        supervisor._darkened_at[0] = 0
        supervisor.buffer_event(0, "pair", reach(A, B, tick=1, seq=0))
        supervisor.buffer_event(0, "pair", reach(A, C, tick=1, seq=1))
        assert supervisor.events_buffered == 1
        assert supervisor.events_dead_lettered == 1
        assert len(dlq) == 1
        assert dlq.entries[0]["reason"] == "dark-shard-buffer-overflow"
        assert dlq.entries[0]["shard"] == 0

    def test_dark_shard_serves_the_stale_alarm_hold(self):
        """An open episode must not flap closed just because its shard
        went dark — the merger keeps seeing the last-known alarms."""
        supervisor, shards, _dlq = self._supervisor()
        shard = shards[0]
        shard.offer(reach(A, B, reached=False, tick=1, seq=0))
        shard.offer(reach(A, B, reached=False, tick=2, seq=1))
        assert supervisor.alarm_view(0, 2) == ((A, B),)
        supervisor._status[0] = "crashed"
        supervisor._darkened_at[0] = 2
        assert supervisor.alarm_view(0, 3) == ((A, B),)
        assert supervisor.ticks_dark == 1

    def test_slow_shard_serves_last_ticks_view(self):
        supervisor, shards, _dlq = self._supervisor(
            plan=ScriptedPlan(slow={(0, 5)})
        )
        shard = shards[0]
        shard.offer(reach(A, B, reached=False, tick=3, seq=0))
        shard.offer(reach(A, B, reached=False, tick=4, seq=1))
        assert supervisor.alarm_view(0, 4) == ((A, B),)
        # The pair recovers, but the slow shard's tick-5 output is late:
        # the merger still sees the held tick-4 view.
        shard.offer(reach(A, B, reached=True, tick=5, seq=2))
        shard.offer(reach(A, B, reached=True, tick=5, seq=3))
        assert supervisor.alarm_view(0, 5) == ((A, B),)
        assert supervisor.slow_ticks == 1
        assert supervisor.alarm_view(0, 6) == ()

    def test_stall_recovery_replays_the_darkness_buffer(self):
        supervisor, shards, _dlq = self._supervisor(
            plan=ScriptedPlan(stalls={(0, 3): 2})
        )
        shard = shards[0]
        shard.offer(reach(A, B, reached=False, tick=2, seq=0))
        supervisor.end_tick(3)  # stall fires: dark for 2 ticks
        assert supervisor.status(0) == "stalled"
        supervisor.buffer_event(0, "pair", reach(A, B, reached=False, tick=4, seq=1))
        assert supervisor.begin_tick(4) == 0  # still dark
        admitted = supervisor.begin_tick(5)
        assert admitted == 1
        assert supervisor.status(0) == "running"
        # The buffered second failure opened the pair's alarm on replay.
        assert shard.alarms.alarmed_pairs() == ((A, B),)
        assert supervisor.recoveries == 1
        assert supervisor.ticks_to_recover == [2]
        assert supervisor.episodes_delayed == 1


class TestEpisodeStrikes:
    def test_struck_episodes_divert_to_the_dead_letter_queue(self):
        engine = SupervisedStreamEngine(
            asn_of=asn_of, diagnosers={}, shards=2
        )
        merge = engine._engine
        merge._dead_episodes.add(7)
        merge._schedule(
            EpisodeTransition(kind=UPDATE, episode_id=7, tick=3, pairs=((A, B),))
        )
        assert merge.transitions_dead_lettered == 1
        entry = engine.dead_letters.entries[0]
        assert entry["reason"] == "episode-strikes"
        assert entry["episode_id"] == 7
        # The close still goes through: the episode must end cleanly.
        merge._schedule(
            EpisodeTransition(kind=CLOSE, episode_id=7, tick=4, pairs=())
        )
        assert merge.transitions_dead_lettered == 1
        engine.close()


@pytest.fixture(scope="module")
def golden_log():
    setup = make_replay_setup(**SETUP_ARGS)
    return setup, build_event_log(setup, CONFIG)


def _engine_kwargs(setup):
    return dict(
        asn_of=setup.session.sim.mapper.asn_of,
        diagnosers=setup.diagnosers,
        asx=setup.asx,
    )


class TestScriptedRecovery:
    """The headline contract, on one golden log shared by every run."""

    def _undisturbed(self, golden_log):
        setup, log = golden_log
        return run_replay(
            log, ShardedStreamEngine(shards=2, **_engine_kwargs(setup))
        )

    def _supervised(self, golden_log, plan, **config):
        setup, log = golden_log
        engine = SupervisedStreamEngine(
            shards=2,
            plan=plan,
            supervision=SupervisionConfig(**config),
            **_engine_kwargs(setup),
        )
        return run_replay(log, engine), engine

    def test_crash_recovery_is_byte_identical(self, golden_log):
        baseline = self._undisturbed(golden_log)
        assert baseline  # the golden scenario diagnosed something
        reports, engine = self._supervised(
            golden_log,
            ScriptedPlan(crashes={(0, 2)}),
            checkpoint_every=1,
            restart_after=1,
        )
        stats = engine.supervision_stats()
        assert stats["counters"]["shard_crashes"] == 1
        assert stats["counters"]["recoveries"] == 1
        assert stats["ticks_to_recover"] == [1]
        assert stats["incidents"] == [
            {"kind": "shard-crash", "shard": 0, "tick": 2}
        ]
        assert reports == baseline

    def test_crash_without_any_checkpoint_recovers_from_the_tail(
        self, golden_log
    ):
        """A crash before the first checkpoint replays the full tail."""
        baseline = self._undisturbed(golden_log)
        reports, engine = self._supervised(
            golden_log,
            ScriptedPlan(crashes={(1, 1)}),
            checkpoint_every=1000,  # never checkpoints
            restart_after=1,
        )
        assert engine.supervision_stats()["counters"]["checkpoints_saved"] == 0
        assert reports == baseline

    def test_stall_recovery_is_byte_identical(self, golden_log):
        """A one-tick stall refolds its darkness buffer before the next
        merge, so no verdict may shift by even a tick."""
        baseline = self._undisturbed(golden_log)
        reports, engine = self._supervised(
            golden_log, ScriptedPlan(stalls={(1, 2): 1})
        )
        stats = engine.supervision_stats()
        assert stats["counters"]["shard_stalls"] == 1
        assert stats["counters"]["recoveries"] == 1
        assert reports == baseline

    def test_long_darkness_degrades_accountedly(self, golden_log):
        """Darkness past the refold window may move verdicts — but only
        with the loss showing up in the degradation counters."""
        baseline = self._undisturbed(golden_log)
        reports, engine = self._supervised(
            golden_log, ScriptedPlan(stalls={(1, 2): 2})
        )
        stats = engine.supervision_stats()
        assert stats["counters"]["recoveries"] == 1
        if reports != baseline:
            counters = stats["counters"]
            assert (
                counters["ticks_dark"] > 0
                or counters["episodes_delayed"] > 0
                or counters["pairs_uncovered"] > 0
            )

    def test_poison_opens_the_breaker_and_accounts_every_verdict(
        self, golden_log
    ):
        reports, engine = self._supervised(
            golden_log,
            ScriptedPlan(poison=True),
            breaker_threshold=2,
            breaker_cooldown=2,
            episode_strikes=2,
        )
        stats = engine.supervision_stats()
        assert stats["diagnoses_poisoned"] > 0
        opened = sum(
            b["times_opened"] for b in stats["breakers"].values()
        )
        assert opened > 0
        # Every diagnosis still produced a verdict: poisoned ones carry
        # the timeout error, short-circuited ones the breaker marker.
        for report in reports:
            for diagnosis in report.diagnoses:
                assert diagnosis.error in (
                    None, "JobTimeoutError", "CircuitOpen"
                )

    def test_supervision_without_chaos_is_transparent(self, golden_log):
        """No plan, no incidents: the supervised engine is report- and
        counter-identical to the plain sharded engine."""
        setup, log = golden_log
        baseline = self._undisturbed(golden_log)
        plain = ShardedStreamEngine(shards=2, **_engine_kwargs(setup))
        run_replay(log, plain)
        reports, engine = self._supervised(golden_log, None)
        assert reports == baseline
        stats = engine.supervision_stats()
        assert stats["incidents"] == []
        assert stats["counters"]["recoveries"] == 0
        assert engine.counters()["events_admitted"] == (
            plain.counters()["events_admitted"]
        )
