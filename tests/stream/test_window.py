"""Sliding-window tests: slot semantics, tick/LRU eviction, dark
sensors, and snapshot assembly that satisfies the batch invariants by
construction."""

import pytest

from repro.core.control_plane import (
    IgpLinkDownObservation,
    WithdrawalObservation,
)
from repro.core.pathset import EPOCH_POST, EPOCH_PRE, ProbePath
from repro.errors import StreamError
from repro.stream import (
    IgpLinkDownEvent,
    ProbeEvent,
    SensorDropoutEvent,
    SensorHeartbeatEvent,
    SlidingWindow,
    WithdrawalEvent,
)

A, B, C = "10.0.0.1", "10.0.0.2", "10.0.0.3"
MID = "10.0.1.1"


def asn_of(address):
    return 64500 if address.startswith("10.") else None


def probe(src, dst, epoch, reached=True, tick=0, seq=0):
    hops = (src, MID, dst) if reached else (src, MID)
    return ProbeEvent(
        tick=tick,
        seq=seq,
        path=ProbePath(src=src, dst=dst, hops=hops, reached=reached, epoch=epoch),
    )


def seed_pair(window, src=A, dst=B, tick=0, post_reached=False):
    window.observe(probe(src, dst, EPOCH_PRE, tick=tick))
    window.observe(probe(src, dst, EPOCH_POST, reached=post_reached, tick=tick))


class TestSlots:
    def test_zero_width_raises(self):
        with pytest.raises(StreamError):
            SlidingWindow(width=0)

    def test_failed_pre_probe_is_no_baseline(self):
        window = SlidingWindow(width=4)
        window.observe(probe(A, B, EPOCH_PRE, reached=False))
        assert window.counters()["baseline_pairs"] == 0
        assert window.counters()["probes_ignored"] == 1

    def test_snapshot_requires_both_slots(self):
        window = SlidingWindow(width=4)
        window.observe(probe(A, B, EPOCH_PRE))
        assert window.snapshot(asn_of) is None
        window.observe(probe(A, B, EPOCH_POST, reached=False))
        snapshot = window.snapshot(asn_of)
        assert snapshot is not None
        assert snapshot.after.pairs() == ((A, B),)
        assert snapshot.any_failure()

    def test_newest_probe_wins_a_slot(self):
        window = SlidingWindow(width=4)
        seed_pair(window, post_reached=False)
        window.observe(probe(A, B, EPOCH_POST, reached=True, tick=1))
        assert window.failed_pairs() == ()

    def test_lru_capacity_bounds_each_slot(self):
        window = SlidingWindow(width=8, capacity=1)
        seed_pair(window, A, B)
        seed_pair(window, A, C)  # evicts the (A, B) entries
        assert window.counters()["lru_evictions"] == 2
        snapshot = window.snapshot(asn_of)
        assert snapshot.after.pairs() == ((A, C),)


class TestEviction:
    def test_observations_age_out_by_tick(self):
        window = SlidingWindow(width=2)
        seed_pair(window, tick=0)
        # horizon = now - width = 0: both tick-0 slots are stale.
        assert window.evict(now=2) == 2
        assert window.snapshot(asn_of) is None
        assert window.counters()["stale_evictions"] == 2

    def test_fresh_observations_survive(self):
        window = SlidingWindow(width=4)
        seed_pair(window, tick=3)
        window.evict(now=5)
        assert window.snapshot(asn_of) is not None

    def test_control_plane_messages_age_out(self):
        window = SlidingWindow(width=2)
        window.observe(
            IgpLinkDownEvent(
                tick=0,
                seq=0,
                observation=IgpLinkDownObservation(
                    address_a=A, address_b=MID, seq=0
                ),
            )
        )
        window.evict(now=3)
        assert window.control_view(64500).igp_link_down == ()


class TestDarkSensors:
    def test_dark_endpoint_excludes_pair(self):
        window = SlidingWindow(width=4)
        seed_pair(window, A, B)
        window.observe(SensorDropoutEvent(tick=1, seq=9, address=B))
        assert window.snapshot(asn_of) is None
        assert window.dark_sensors() == (B,)

    def test_heartbeat_restores_pair(self):
        window = SlidingWindow(width=4)
        seed_pair(window, A, B)
        window.observe(SensorDropoutEvent(tick=1, seq=9, address=B))
        window.observe(SensorHeartbeatEvent(tick=2, seq=10, address=B))
        assert window.snapshot(asn_of) is not None
        assert window.dark_sensors() == ()


class TestControlView:
    def test_messages_listed_in_arrival_order(self):
        window = SlidingWindow(width=4)
        early = WithdrawalObservation(
            prefix="10.0.9.0/24",
            at_address=A,
            from_address=MID,
            from_asn=64501,
            seq=0,
        )
        late = WithdrawalObservation(
            prefix="10.0.8.0/24",
            at_address=A,
            from_address=MID,
            from_asn=64501,
            seq=1,
        )
        # Folded out of order: the view restores stream-arrival order
        # (the event seq), matching what the batch collector would list.
        window.observe(WithdrawalEvent(tick=0, seq=6, observation=late))
        window.observe(WithdrawalEvent(tick=0, seq=5, observation=early))
        view = window.control_view(64500)
        assert view.withdrawals == (early, late)
        assert view.asx_asn == 64500


class TestCacheAccountingThroughWindow:
    """The slot caches' hit/miss accounting stays honest through the
    window's own operations: eviction sweeps (items + pop) and dark-
    sensor screening are lookup-free, snapshot assembly is the only
    thing that spends lookups."""

    def test_eviction_sweep_is_lookup_free(self):
        window = SlidingWindow(width=2)
        seed_pair(window, A, B, tick=0)
        seed_pair(window, A, C, tick=0)
        dropped = window.evict(10)  # everything is stale
        assert dropped == 4
        for cache in (window._baseline, window._current):
            counters = cache.counters()
            assert counters["hits"] == 0 and counters["misses"] == 0
            assert counters["entries"] == 0
        # An empty window snapshots to None without spending lookups.
        assert window.snapshot(asn_of) is None
        assert window._baseline.counters()["misses"] == 0

    def test_snapshot_spends_exactly_one_lookup_per_slot(self):
        window = SlidingWindow(width=4)
        seed_pair(window, A, B, tick=0)
        seed_pair(window, B, C, tick=0)
        assert window.snapshot(asn_of) is not None
        for cache in (window._baseline, window._current):
            assert cache.counters() == {
                "hits": 2,
                "misses": 0,
                "evictions": 0,
                "entries": 2,
            }
        # hits + misses == lookups holds for the whole window lifetime.
        lookups = 4  # two pairs x (baseline + current)... per cache: 2
        total = sum(
            cache.hits + cache.misses
            for cache in (window._baseline, window._current)
        )
        assert total == lookups

    def test_dark_sensor_forgetting_screens_without_lookups(self):
        """Dropping and re-admitting a sensor flows through the dark set
        and __contains__ checks — usable-pair screening never perturbs
        the caches' recency or counters."""
        window = SlidingWindow(width=4)
        seed_pair(window, A, B, tick=0)
        seed_pair(window, B, C, tick=0)
        window.observe(SensorDropoutEvent(tick=1, seq=100, address=A))
        assert window.usable_pairs() == ((B, C),)
        for cache in (window._baseline, window._current):
            assert cache.hits == 0 and cache.misses == 0
        snapshot = window.snapshot(asn_of)
        assert snapshot.after.pairs() == ((B, C),)
        assert window._baseline.hits == 1  # only the usable pair
        window.observe(SensorHeartbeatEvent(tick=2, seq=101, address=A))
        assert window.usable_pairs() == ((A, B), (B, C))
        assert window._baseline.hits == 1  # screening stayed lookup-free
        assert window.counters()["dark_sensors"] == 0
