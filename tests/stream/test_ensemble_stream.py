"""Ensemble verdicts in the streaming engine: the golden-parity contract
(`shards=4, workers=2` bit-identical to serial, including journalled
resume) with ``ensemble`` among the per-episode diagnosers, plus the
engine's verdict counters."""

import pytest

from repro.experiments.journal import RunJournal
from repro.stream import ReplayConfig, make_replay_setup, run_stream_replay

SETUP_ARGS = dict(seed=3, n_sensors=6, algorithms=("nd-edge", "ensemble"))
CONFIG = ReplayConfig(
    kind="link-1",
    episodes=2,
    incident_rounds=2,
    recovery_rounds=2,
    fault_rate=0.1,
    seed=3,
)


@pytest.fixture(scope="module")
def serial_result():
    return run_stream_replay(make_replay_setup(**SETUP_ARGS), CONFIG)


class TestEnsembleStreaming:
    def test_replay_produces_verdicts(self, serial_result):
        diagnosed = [
            d
            for report in serial_result.reports
            for d in report.diagnoses
            if d.algorithm == "ensemble" and not d.error
        ]
        assert diagnosed  # the scenario exercised the ensemble
        for diagnosis in diagnosed:
            assert diagnosis.verdict in ("agree", "partial", "conflict")

    def test_non_ensemble_diagnoses_have_no_verdict(self, serial_result):
        for report in serial_result.reports:
            for diagnosis in report.diagnoses:
                if diagnosis.algorithm != "ensemble":
                    assert diagnosis.verdict is None

    def test_engine_counters_tally_the_verdicts(self, serial_result):
        counters = serial_result.engine_counters
        live = [
            d.verdict
            for report in serial_result.reports
            for d in report.diagnoses
            if d.verdict is not None
        ]
        assert counters["ensemble_agree"] == live.count("agree")
        assert counters["ensemble_partial"] == live.count("partial")
        assert counters["ensemble_conflict"] == live.count("conflict")
        assert sum(
            counters[k]
            for k in ("ensemble_agree", "ensemble_partial", "ensemble_conflict")
        ) == len(live)

    def test_sharded_parallel_replay_is_bit_identical(self, serial_result):
        sharded = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, shards=4, workers=2
        )
        assert sharded.reports == serial_result.reports
        assert sharded.episodes == serial_result.episodes
        for key in ("ensemble_agree", "ensemble_partial", "ensemble_conflict"):
            assert sharded.engine_counters[key] == serial_result.engine_counters[key]

    def test_journal_resume_preserves_verdicts(self, tmp_path, serial_result):
        """An interrupted serial run resumes sharded+parallel with every
        completed report (verdict fields included) reused bit-identically."""
        fingerprint = {"format": "repro-stream-journal", "config": CONFIG}
        journal = RunJournal(tmp_path / "stream.journal", fingerprint)
        first = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, journal=journal
        )
        assert first.reports == serial_result.reports
        cached = journal.load_completed()
        resumed = run_stream_replay(
            make_replay_setup(**SETUP_ARGS),
            CONFIG,
            shards=4,
            workers=2,
            cached_reports=cached,
        )
        assert resumed.reports == first.reports
        assert resumed.engine_counters["reports_reused"] == len(first.reports)
        reused_verdicts = [
            d.verdict
            for report in resumed.reports
            for d in report.diagnoses
            if d.algorithm == "ensemble" and not d.error
        ]
        assert reused_verdicts
        assert all(v in ("agree", "partial", "conflict") for v in reused_verdicts)


class TestEnsembleStreamCli:
    def test_stream_accepts_the_diagnosers_alias(self, capsys):
        from repro.__main__ import main as repro_main

        code = repro_main(
            [
                "stream",
                "--kind",
                "link-1",
                "--episodes",
                "1",
                "--sensors",
                "5",
                "--seed",
                "4",
                "--diagnosers",
                "nd-edge",
                "ensemble",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ensemble verdicts:" in out
        assert "[agree]" in out or "[partial]" in out or "[conflict]" in out
