"""Property-based tests for the shared streak machine under adversarial
flapping.

The contracts the flight recorder and the episode detector both lean on:

* :class:`PairAlarmTracker` is exactly the "alarm after ``open_after``
  consecutive failures, clear after ``close_after`` consecutive
  successes" machine — checked against an independent model oracle over
  arbitrary observation/forget interleavings;
* :meth:`forget` never leaks — a forgotten sensor's pairs vanish from
  the alarmed set and the tracked-pair accounting, and re-observing
  them starts the streak from zero;
* ``state()``/``restore_state()`` round-trips bit-identically mid-flap —
  the checkpointed-restart guarantee;
* :class:`EpisodeLifecycle` transition and flap counts stay bounded by
  the alarm churn that caused them, no matter how hostile the flapping.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streak import PairAlarmTracker
from repro.stream.episodes import CLOSE, OPEN, EpisodeLifecycle

ADDRESSES = ("10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4")
PAIRS = tuple(
    (a, b) for a in ADDRESSES for b in ADDRESSES if a != b
)


@st.composite
def streak_worlds(draw):
    """Thresholds plus an adversarial observe/forget op sequence."""
    open_after = draw(st.integers(1, 3))
    close_after = draw(st.integers(1, 3))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("obs"),
                    st.sampled_from(PAIRS),
                    st.booleans(),
                ),
                st.tuples(
                    st.just("forget"),
                    st.sampled_from(ADDRESSES),
                    st.just(True),
                ),
            ),
            min_size=1,
            max_size=80,
        )
    )
    return open_after, close_after, ops


class _ModelAlarm:
    """Independent oracle: the streak rule, restated from scratch."""

    def __init__(self, open_after, close_after):
        self.open_after = open_after
        self.close_after = close_after
        self.state = {}  # pair -> [fails, successes, alarmed]

    def observe(self, pair, reached):
        fails, successes, alarmed = self.state.get(pair, (0, 0, False))
        if reached:
            successes, fails = successes + 1, 0
            if alarmed and successes >= self.close_after:
                alarmed = False
        else:
            fails, successes = fails + 1, 0
            if fails >= self.open_after:
                alarmed = True
        self.state[pair] = (fails, successes, alarmed)

    def forget(self, member):
        for pair in [p for p in self.state if member in p]:
            del self.state[pair]

    def alarmed(self):
        return tuple(
            sorted(p for p, (_, _, alarmed) in self.state.items() if alarmed)
        )


@given(world=streak_worlds())
@settings(max_examples=120)
def test_tracker_matches_the_model_oracle(world):
    open_after, close_after, ops = world
    tracker = PairAlarmTracker(open_after, close_after)
    model = _ModelAlarm(open_after, close_after)
    for op, target, reached in ops:
        if op == "obs":
            tracker.observe(target, reached)
            model.observe(target, reached)
        else:
            tracker.forget(target)
            model.forget(target)
        assert tracker.alarmed_pairs() == model.alarmed()
        assert tracker.pairs_tracked() == len(model.state)


@given(world=streak_worlds())
@settings(max_examples=120)
def test_forget_never_leaks_mid_flap(world):
    open_after, close_after, ops = world
    tracker = PairAlarmTracker(open_after, close_after)
    for op, target, reached in ops:
        if op == "obs":
            tracker.observe(target, reached)
        else:
            tracker.forget(target)
            assert not any(
                target in pair for pair in tracker.alarmed_pairs()
            )
    # After a final forget of every address nothing is tracked at all.
    for address in ADDRESSES:
        tracker.forget(address)
    assert tracker.alarmed_pairs() == ()
    assert tracker.pairs_tracked() == 0
    # A forgotten pair starts its streak from zero: open_after - 1
    # failures must not alarm it again.
    pair = PAIRS[0]
    for _ in range(open_after - 1):
        tracker.observe(pair, False)
    assert pair not in tracker.alarmed_pairs()


@given(world=streak_worlds(), cut=st.integers(0, 80))
@settings(max_examples=120)
def test_checkpoint_restore_replays_bit_identically(world, cut):
    open_after, close_after, ops = world
    cut = min(cut, len(ops))

    straight = PairAlarmTracker(open_after, close_after)
    for op, target, reached in ops:
        if op == "obs":
            straight.observe(target, reached)
        else:
            straight.forget(target)

    first = PairAlarmTracker(open_after, close_after)
    for op, target, reached in ops[:cut]:
        if op == "obs":
            first.observe(target, reached)
        else:
            first.forget(target)
    resumed = PairAlarmTracker(open_after, close_after)
    resumed.restore_state(first.state())
    for op, target, reached in ops[cut:]:
        if op == "obs":
            resumed.observe(target, reached)
        else:
            resumed.forget(target)

    assert resumed.state() == straight.state()
    assert resumed.alarmed_pairs() == straight.alarmed_pairs()


@st.composite
def alarm_histories(draw):
    """A per-tick sequence of alarmed-pair sets, flap-heavy by design."""
    return draw(
        st.lists(
            st.frozensets(st.sampled_from(PAIRS), max_size=4),
            min_size=1,
            max_size=60,
        )
    )


@given(history=alarm_histories(), flap_window=st.integers(0, 6))
@settings(max_examples=120)
def test_lifecycle_transitions_are_bounded_by_alarm_churn(
    history, flap_window
):
    lifecycle = EpisodeLifecycle(flap_window=flap_window)
    transitions = []
    changes = 0
    previous = frozenset()
    for tick, alarmed in enumerate(history):
        if alarmed != previous:
            changes += 1
        previous = alarmed
        transitions.extend(lifecycle.advance(tick, alarmed))

    counts = lifecycle.counters()
    # At most one transition per tick, and only when the alarmed set moved.
    assert counts["transitions"] == len(transitions) <= len(history)
    assert counts["transitions"] <= changes
    opens = sum(1 for t in transitions if t.kind == OPEN)
    closes = sum(1 for t in transitions if t.kind == CLOSE)
    assert counts["episodes_total"] == opens
    assert opens - closes == counts["episodes_open"] in (0, 1)
    # A flap is a re-open near a close: never more than either count.
    assert counts["flaps"] <= max(0, opens - 1)
    assert counts["flaps"] <= closes


@given(history=alarm_histories())
@settings(max_examples=120)
def test_lifecycle_with_infinite_window_counts_every_reopen(history):
    """With a huge flap window every open after the first close is a flap
    — the upper bound the report's flap counter can never exceed."""
    lifecycle = EpisodeLifecycle(flap_window=10_000)
    reopens = 0
    closed_once = False
    for tick, alarmed in enumerate(history):
        for transition in lifecycle.advance(tick, alarmed):
            if transition.kind == OPEN and closed_once:
                reopens += 1
            if transition.kind == CLOSE:
                closed_once = True
    assert lifecycle.counters()["flaps"] == reopens
