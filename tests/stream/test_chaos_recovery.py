"""The acceptance contract for the self-healing layer: a seeded chaos
replay (shard crashes + stalls + slow shards + worker poison) completes
with zero unhandled exceptions, accounts every offered event exactly
once, and re-running the same seed is bit-identical — including the
full incident schedule and every recovery."""

import pytest

from repro.__main__ import main as repro_main
from repro.stream import ReplayConfig, make_replay_setup, run_stream_replay

SETUP_ARGS = dict(seed=7, n_sensors=6)
CHAOS_CONFIG = ReplayConfig(
    kind="link-1",
    episodes=2,
    incident_rounds=2,
    recovery_rounds=2,
    seed=7,
    chaos_rate=0.15,
)


def _chaos_run(**kwargs):
    # A fresh setup per run: the session sampler is stateful, so two
    # runs over ONE setup would stream different scenarios.
    return run_stream_replay(
        make_replay_setup(**SETUP_ARGS), CHAOS_CONFIG, **kwargs
    )


@pytest.fixture(scope="module")
def chaos_result():
    return _chaos_run()


class TestChaosCompletion:
    def test_chaos_replay_completes_and_reports(self, chaos_result):
        """Crashes, stalls and poison all fire on this seed — and the
        run still finishes every injected episode."""
        assert chaos_result.supervision is not None
        counters = chaos_result.supervision["counters"]
        assert counters["shard_crashes"] > 0
        assert counters["shard_stalls"] > 0
        assert counters["recoveries"] == (
            counters["shard_crashes"] + counters["shard_stalls"]
        )
        assert chaos_result.supervision["diagnoses_poisoned"] > 0
        assert chaos_result.reports  # verdicts were still produced

    def test_every_offered_event_is_accounted_exactly_once(
        self, chaos_result
    ):
        """offered == admitted + shed + rejected + quarantined +
        dead-lettered: chaos may delay or park events, never lose one
        silently."""
        engine = chaos_result.engine_counters
        ingest = chaos_result.ingest_counters
        assert engine["events_offered"] == (
            engine["events_admitted"]
            + engine["admission_shed"]
            + engine["admission_rejected_unknown"]
            + ingest["events_quarantined"]
            + engine["events_dead_lettered"]
        )

    def test_recoveries_leave_nothing_dark_at_flush(self, chaos_result):
        counters = chaos_result.supervision["counters"]
        recoveries = chaos_result.supervision["ticks_to_recover"]
        assert len(recoveries) == counters["recoveries"]
        assert all(ticks >= 0 for ticks in recoveries)
        # Buffered events were all folded back (or dead-lettered).
        assert counters["events_buffered"] >= 0
        assert chaos_result.engine_counters["dead_lettered"] == (
            counters["events_dead_lettered"]
            + chaos_result.supervision["transitions_dead_lettered"]
        )


class TestChaosDeterminism:
    def test_same_seed_is_bit_identical(self, chaos_result):
        again = _chaos_run()
        assert again.reports == chaos_result.reports
        assert again.episodes == chaos_result.episodes
        # The whole supervision record replays: incident schedule,
        # recovery times, breaker trips, dead letters.
        assert again.supervision == chaos_result.supervision
        assert again.engine_counters == chaos_result.engine_counters
        assert again.ingest_counters == chaos_result.ingest_counters

    def test_chaos_rate_zero_never_supervises_by_accident(self):
        config = ReplayConfig(
            kind="link-1",
            episodes=1,
            incident_rounds=1,
            recovery_rounds=1,
            seed=7,
        )
        result = run_stream_replay(make_replay_setup(**SETUP_ARGS), config)
        assert result.supervision is None


class TestChaosCli:
    FAST_ARGS = [
        "stream",
        "--kind",
        "link-1",
        "--episodes",
        "1",
        "--sensors",
        "5",
        "--seed",
        "4",
    ]

    def test_chaos_flag_renders_the_supervision_block(self, capsys):
        assert repro_main(self.FAST_ARGS + ["--chaos", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "chaos=0.15" in out
        assert "supervision:" in out
        assert "recoveries=" in out

    def test_dlq_journal_is_written_and_inspectable(self, tmp_path, capsys):
        dlq = tmp_path / "dead.jsonl"
        assert (
            repro_main(self.FAST_ARGS + ["--dlq", str(dlq)]) == 0
        )
        capsys.readouterr()
        assert dlq.exists()
        code = repro_main(
            self.FAST_ARGS + ["--dlq", str(dlq), "--dlq-inspect"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dead letters" in out

    def test_dlq_inspect_without_path_exits_2(self, capsys):
        assert repro_main(self.FAST_ARGS + ["--dlq-inspect"]) == 2
        assert "--dlq" in capsys.readouterr().out
