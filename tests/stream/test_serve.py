"""Asyncio ingress tests: bounded per-tenant queues, round-robin
fairness under a tick budget, accounted shedding, and the determinism
bridge — a server-driven run is bit-identical to direct replay."""

import asyncio

import pytest

from repro.errors import StreamError
from repro.stream import (
    ReachabilityEvent,
    ReplayConfig,
    StreamEngine,
    StreamServer,
    make_replay_setup,
    run_replay,
    run_stream_replay,
)
from repro.stream.replay import build_event_log


def reach(src, dst, tick=0, seq=0, reached=True):
    return ReachabilityEvent(tick=tick, seq=seq, src=src, dst=dst, reached=reached)


class _SpyEngine:
    """Minimal engine-protocol double recording what the server does."""

    def __init__(self):
        self.offered = []
        self.advanced = []
        self.reports = []

    @property
    def idle(self):
        return True

    def offer(self, event):
        self.offered.append(event)
        return True

    def advance(self, tick):
        self.advanced.append(tick)
        return []

    def drain(self, _now):
        return []

    def flush(self, _now):
        return []

    def close(self):
        pass


class TestValidation:
    def test_rejects_bad_queue_depth(self):
        with pytest.raises(StreamError):
            StreamServer(_SpyEngine(), queue_depth=0)

    def test_rejects_bad_tick_budget(self):
        with pytest.raises(StreamError):
            StreamServer(_SpyEngine(), max_events_per_tick=0)


class TestQueueing:
    def test_full_queue_sheds_and_counts_per_tenant(self):
        async def scenario():
            server = StreamServer(_SpyEngine(), queue_depth=2)
            outcomes = [
                await server.submit(reach("s", "d", seq=i)) for i in range(4)
            ]
            return server, outcomes

        server, outcomes = asyncio.run(scenario())
        assert outcomes == [True, True, False, False]
        assert server.events_shed == 2
        assert server.shed_by_tenant == {"default": 2}
        assert server.backlog == 2
        counters = server.counters()
        assert counters["events_submitted"] == 4
        assert counters["events_shed"] == 2

    def test_tenant_queues_are_isolated(self):
        """A flooding tenant fills only its own queue; others still land."""

        async def scenario():
            server = StreamServer(
                _SpyEngine(),
                queue_depth=1,
                tenant_of=lambda event: event.src,
            )
            assert await server.submit(reach("noisy", "d", seq=0))
            assert not await server.submit(reach("noisy", "d", seq=1))
            assert await server.submit(reach("quiet", "d", seq=2))
            return server

        server = asyncio.run(scenario())
        assert server.shed_by_tenant == {"noisy": 1}
        assert server.counters()["tenant_queues"] == 2


class TestFairPumping:
    def test_round_robin_under_tick_budget(self):
        """With a budget of 2 and two tenants, each tick pumps one event
        per tenant — a backlogged tenant cannot claim the whole budget."""

        async def scenario():
            engine = _SpyEngine()
            server = StreamServer(
                engine,
                tenant_of=lambda event: event.src,
                max_events_per_tick=2,
            )
            for seq in range(4):
                await server.submit(reach("a", "d", seq=seq))
            await server.submit(reach("b", "d", seq=4))
            await server.advance(1)
            return engine, server

        engine, server = asyncio.run(scenario())
        srcs = [event.src for event in engine.offered]
        assert sorted(srcs) == ["a", "b"]  # one each, not two from "a"
        assert server.backlog == 3

    def test_pumped_events_reach_engine_in_seq_order(self):
        async def scenario():
            engine = _SpyEngine()
            server = StreamServer(engine, tenant_of=lambda event: event.src)
            # Submit deliberately out of seq order across tenants.
            for src, seq in (("z", 5), ("a", 3), ("m", 1), ("a", 0)):
                await server.submit(reach(src, "d", seq=seq))
            await server.advance(1)
            return engine

        engine = asyncio.run(scenario())
        assert [event.seq for event in engine.offered] == [0, 1, 3, 5]


class TestServeDeterminism:
    def test_server_driven_run_matches_direct_replay(self):
        """The async boundary must not perturb replay output: a
        server-driven run over the golden log is bit-identical to
        :func:`run_stream_replay` on the same deployment."""
        args = dict(seed=3, n_sensors=6)
        config = ReplayConfig(
            kind="link-1",
            episodes=2,
            incident_rounds=2,
            recovery_rounds=2,
            fault_rate=0.1,
            seed=3,
        )
        direct = run_stream_replay(make_replay_setup(**args), config)

        setup = make_replay_setup(**args)
        log = build_event_log(setup, config)
        engine = StreamEngine(
            asn_of=setup.session.sim.mapper.asn_of,
            diagnosers=setup.diagnosers,
            asx=setup.asx,
        )
        server = StreamServer(engine)
        reports = asyncio.run(server.run(log.events, last_tick=log.last_tick))

        assert reports == direct.reports
        assert server.events_shed == 0
        assert server.events_pumped == len(log.events)
        assert server.backlog == 0


class TestGracefulShutdown:
    def test_aclose_drains_backlog_before_closing(self):
        """Stopping must pump everything submitted, not drop it."""

        async def scenario():
            engine = _SpyEngine()
            server = StreamServer(engine, max_events_per_tick=2)
            for seq in range(5):
                await server.submit(reach("s", "d", seq=seq))
            await server.aclose()
            return engine, server

        engine, server = asyncio.run(scenario())
        assert server.backlog == 0
        assert server.events_pumped == 5
        assert [event.seq for event in engine.offered] == list(range(5))

    def test_submit_after_close_raises_typed_error(self):
        async def scenario():
            server = StreamServer(_SpyEngine())
            await server.aclose()
            with pytest.raises(StreamError):
                await server.submit(reach("s", "d"))
            # Idempotent: a second close is a no-op.
            await server.aclose()

        asyncio.run(scenario())

    def test_async_context_manager_closes_on_exit(self):
        async def scenario():
            engine = _SpyEngine()
            async with StreamServer(engine) as server:
                await server.submit(reach("s", "d"))
            return server

        server = asyncio.run(scenario())
        assert server.backlog == 0
        assert server.events_pumped == 1

    def test_sync_close_wraps_aclose(self):
        engine = _SpyEngine()
        server = StreamServer(engine)
        asyncio.run(server.submit(reach("s", "d")))
        server.close()
        assert server.backlog == 0
        assert server.events_pumped == 1


class TestRunReplayProtocol:
    def test_run_replay_drives_any_engine_protocol_object(self):
        """run_replay only needs the engine protocol; the spy suffices."""
        engine = _SpyEngine()
        setup = make_replay_setup(seed=3, n_sensors=4)
        log = build_event_log(
            setup,
            ReplayConfig(
                kind="link-1",
                episodes=1,
                incident_rounds=1,
                recovery_rounds=1,
                seed=3,
            ),
        )
        engine.on_report = None
        engine.lg_lookup = None
        reports = run_replay(log, engine)
        assert reports == []
        assert len(engine.offered) == len(log.events)
        assert engine.advanced == list(range(log.last_tick + 2))
