"""Replay-level guarantees: bit-identical determinism (serial ==
parallel == rerun), batch parity on an eviction-free window, journal
resume interop, and the no-wall-clock-sleep rule.

Every run builds a fresh :func:`make_replay_setup` with identical
arguments — the scenario sampler is stateful, so reproducing a stream
means reproducing the deployment it was recorded against (the same
contract batch resume relies on).
"""

import time

import pytest

from repro.errors import ReproError
from repro.measurement.collector import (
    collect_control_plane,
    make_lg_lookup,
    take_snapshot,
)
from repro.stream import (
    OPEN,
    ReplayConfig,
    build_event_log,
    load_event_log,
    make_replay_setup,
    run_stream_replay,
    save_event_log,
)
from repro.stream.engine import _summarise

SETUP_ARGS = dict(seed=3, n_sensors=6)
CONFIG = ReplayConfig(
    kind="link-1",
    episodes=2,
    incident_rounds=2,
    recovery_rounds=2,
    fault_rate=0.1,
    seed=3,
)


class TestDeterminism:
    def test_rerun_and_parallel_are_bit_identical(self):
        serial = run_stream_replay(make_replay_setup(**SETUP_ARGS), CONFIG)
        rerun = run_stream_replay(make_replay_setup(**SETUP_ARGS), CONFIG)
        parallel = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, workers=2
        )
        assert serial.reports  # the replay actually diagnosed something
        assert serial.reports == rerun.reports
        assert serial.reports == parallel.reports
        assert serial.episodes == rerun.episodes

    def test_event_log_round_trips_through_disk(self, tmp_path):
        setup = make_replay_setup(**SETUP_ARGS)
        log = build_event_log(setup, CONFIG)
        path = tmp_path / "replay.jsonl"
        save_event_log(log.events, path)
        assert load_event_log(path) == log.events


class TestBatchParity:
    def test_streaming_open_diagnosis_equals_batch(self):
        """Golden parity: with no in-window eviction the open report's
        verdicts are exactly what the batch diagnosers say about a batch
        snapshot of the same round."""
        args = dict(seed=5, n_sensors=6)
        config = ReplayConfig(
            kind="link-1",
            episodes=1,
            incident_rounds=1,
            recovery_rounds=2,
            fault_rate=0.0,
            seed=5,
        )
        result = run_stream_replay(
            make_replay_setup(**args),
            config,
            open_after=1,
            close_after=1,
            window_width=6,  # wider than the whole replay: nothing evicts
        )
        open_report = next(r for r in result.reports if r.trigger == OPEN)
        assert open_report.diagnoses

        # Rebuild the identical deployment and replay the sampler to get
        # the same scenario, then measure it the batch way.
        batch = make_replay_setup(**args)
        session = batch.session
        scenario = session.sampler.sample(config.kind)
        snapshot = take_snapshot(
            session.sim, session.sensors, session.base_state, scenario.after_state
        )
        control = collect_control_plane(
            session.sim, batch.asx, session.base_state, scenario.after_state
        )
        for verdict in open_report.diagnoses:
            expected = _summarise(
                batch.diagnosers[verdict.algorithm].diagnose(
                    snapshot, control=control, lg_lookup=None
                )
            )
            assert verdict == expected


class TestJournalInterop:
    def test_resume_reuses_reports_bit_identically(self, tmp_path):
        from repro.experiments.journal import RunJournal

        fingerprint = {"format": "repro-stream-journal", "config": CONFIG}
        journal = RunJournal(tmp_path / "stream.journal", fingerprint)
        first = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, journal=journal
        )
        assert first.reports
        cached = journal.load_completed()
        assert sorted(cached) == [r.report_index for r in first.reports]

        resumed = run_stream_replay(
            make_replay_setup(**SETUP_ARGS), CONFIG, cached_reports=cached
        )
        assert resumed.reports == first.reports
        assert resumed.engine_counters["reports_reused"] == len(first.reports)

    def test_foreign_journal_refuses_to_resume(self, tmp_path):
        from repro.experiments.journal import RunJournal

        from repro.stream import EpisodeReport

        path = tmp_path / "stream.journal"
        report = EpisodeReport(
            report_index=0,
            episode_id=0,
            trigger=OPEN,
            tick=1,
            diagnosed_at=1,
            pairs=(),
            diagnoses=(),
        )
        RunJournal(path, {"seed": 1}).append(report)
        with pytest.raises(ReproError):
            RunJournal(path, {"seed": 2}).load_completed()


class TestNoWallClockSleep:
    def test_replay_with_lg_retries_never_sleeps(self, monkeypatch):
        """The LG retry backoff is injectable and defaults to *no* sleep:
        a faulty replay with nd-lg in the mix must finish without ever
        touching ``time.sleep``."""

        def forbidden(_seconds):
            raise AssertionError("wall-clock sleep inside the test suite")

        monkeypatch.setattr(time, "sleep", forbidden)
        setup = make_replay_setup(
            seed=7, n_sensors=5, algorithms=("nd-edge", "nd-lg")
        )
        config = ReplayConfig(
            kind="link-1",
            episodes=1,
            incident_rounds=1,
            recovery_rounds=1,
            fault_rate=0.3,
            seed=7,
        )
        result = run_stream_replay(setup, config)
        assert result.events_total > 0

    def test_lg_lookup_retry_path_never_sleeps(self, monkeypatch):
        from repro.faults import FaultConfig, FaultPlan

        def forbidden(_seconds):
            raise AssertionError("wall-clock sleep inside the test suite")

        monkeypatch.setattr(time, "sleep", forbidden)
        setup = make_replay_setup(seed=11, n_sensors=4, algorithms=("nd-lg",))
        session = setup.session
        scenario = session.sampler.sample("link-1")
        plan = FaultPlan("11/lg-retries", FaultConfig.uniform(0.5))
        lookup = make_lg_lookup(
            session.sim,
            setup.lg_service,
            session.base_state,
            scenario.after_state,
            asx=setup.asx,
            faults=plan,
        )
        destination = session.sensors[0].address
        for autsys in list(session.net.ases())[:10]:
            lookup(autsys.asn, destination, "post")
