"""CLI tests for ``python -m repro stream``: happy path, resume, and the
exit-code contract for typed stream errors."""

from repro.__main__ import main as repro_main

FAST_ARGS = [
    "stream",
    "--kind",
    "link-1",
    "--episodes",
    "1",
    "--sensors",
    "5",
    "--seed",
    "4",
]


class TestStreamCli:
    def test_replay_renders_reports_and_stats(self, capsys):
        assert repro_main(FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "stream replay @ fault rate 0" in out
        assert "injected episode 0:" in out
        assert "-- stream replay" in out
        assert "latency (ticks):" in out

    def test_corrupt_replay_quarantines_without_crashing(self, capsys):
        code = repro_main(
            FAST_ARGS
            + ["--rates", "0.1", "--corrupt", "--policy", "quarantine"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quarantined=" in out

    def test_saved_log_is_replayable(self, tmp_path):
        from repro.stream import load_event_log

        log = tmp_path / "events.jsonl"
        assert repro_main(FAST_ARGS + ["--save-log", str(log)]) == 0
        assert len(load_event_log(log)) > 0

    def test_resume_reuses_journaled_reports(self, tmp_path, capsys):
        journal = tmp_path / "stream.journal"
        args = FAST_ARGS + ["--journal", str(journal)]
        assert repro_main(args) == 0
        first = capsys.readouterr().out
        assert repro_main(args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "reused=0" in first
        assert "reused=0" not in resumed

    def test_stream_error_exits_2_with_one_line_stderr(self, capsys):
        code = repro_main(FAST_ARGS + ["--window", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "window width" in err
