"""Engine-level unit tests: the bounded work queue's coalescing,
deferral and overflow behaviour, plus end-to-end report emission over a
hand-built event sequence (no topology required)."""

import pytest

from repro.core.pathset import EPOCH_POST, EPOCH_PRE, ProbePath
from repro.errors import EpisodeOverflowError, StreamError
from repro.stream import (
    CLOSE,
    OPEN,
    UPDATE,
    EpisodeTransition,
    ProbeEvent,
    SensorHeartbeatEvent,
    StreamEngine,
)

A, B = "10.0.0.1", "10.0.0.2"
MID = "10.0.1.1"
AB = (A, B)


def asn_of(address):
    return 64500 if address.startswith("10.") else None


def engine(**kwargs):
    kwargs.setdefault("open_after", 1)
    kwargs.setdefault("close_after", 1)
    return StreamEngine(asn_of=asn_of, diagnosers={}, **kwargs)


def probe(epoch, reached, tick, seq):
    hops = (A, MID, B) if reached else (A, MID)
    return ProbeEvent(
        tick=tick,
        seq=seq,
        path=ProbePath(src=A, dst=B, hops=hops, reached=reached, epoch=epoch),
    )


def transition(kind, episode_id, tick=0, pairs=(AB,)):
    return EpisodeTransition(
        kind=kind, episode_id=episode_id, tick=tick, pairs=pairs
    )


class TestConfiguration:
    def test_max_pending_must_be_positive(self):
        with pytest.raises(StreamError):
            engine(max_pending=0)

    def test_overflow_limit_must_be_nonnegative(self):
        with pytest.raises(StreamError):
            engine(overflow_limit=-1)

    def test_unknown_policy_propagates(self):
        with pytest.raises(StreamError):
            engine(policy="lenient")


class TestBackpressure:
    def test_update_coalesces_into_queued_open(self):
        eng = engine(max_pending=1)
        eng._schedule(transition(OPEN, 0, tick=1))
        eng._schedule(transition(UPDATE, 0, tick=2, pairs=(AB, (A, MID))))
        assert eng.episodes_coalesced == 1
        assert eng.transitions_deferred == 0
        # The queued entry keeps the open kind but diagnoses newest state.
        queued = eng._pending[0].transition
        assert queued.kind == OPEN
        assert queued.tick == 1
        assert queued.pairs == (AB, (A, MID))

    def test_update_never_coalesces_into_a_close(self):
        eng = engine(max_pending=4)
        eng._schedule(transition(CLOSE, 0, tick=1, pairs=()))
        eng._schedule(transition(UPDATE, 0, tick=2))
        assert eng.episodes_coalesced == 0
        assert len(eng._pending) == 2

    def test_full_queue_defers(self):
        eng = engine(max_pending=1, overflow_limit=4)
        eng._schedule(transition(OPEN, 0))
        eng._schedule(transition(OPEN, 1))
        assert eng.transitions_deferred == 1
        assert len(eng._deferred) == 1

    def test_overflow_raises_a_typed_error(self):
        eng = engine(max_pending=1, overflow_limit=0)
        eng._schedule(transition(OPEN, 0))
        with pytest.raises(EpisodeOverflowError):
            eng._schedule(transition(OPEN, 1))

    def test_drain_promotes_deferred_work(self):
        eng = engine(max_pending=1, overflow_limit=4)
        eng._schedule(transition(CLOSE, 0, tick=1, pairs=()))
        eng._schedule(transition(CLOSE, 1, tick=1, pairs=()))
        reports = eng.drain(now=2)
        assert [r.episode_id for r in reports] == [0]
        assert not eng.idle  # the deferred close now occupies the queue
        reports = eng.drain(now=3)
        assert [r.episode_id for r in reports] == [1]
        assert eng.idle
        # Deferred work waited one extra drain: higher latency, recorded.
        assert [r.latency_ticks for r in eng.reports] == [1, 2]


class TestReportEmission:
    def run_failure(self, eng):
        eng.offer(SensorHeartbeatEvent(tick=0, seq=0, address=A))
        eng.offer(SensorHeartbeatEvent(tick=0, seq=1, address=B))
        eng.offer(probe(EPOCH_PRE, reached=True, tick=1, seq=2))
        eng.advance(1)
        eng.drain(1)
        eng.offer(probe(EPOCH_POST, reached=False, tick=2, seq=3))
        eng.advance(2)
        eng.drain(2)

    def test_open_report_is_emitted_same_tick(self):
        eng = engine(window_width=8)
        self.run_failure(eng)
        (report,) = eng.reports
        assert report.trigger == OPEN
        assert report.pairs == (AB,)
        assert report.tick == 2 and report.diagnosed_at == 2
        assert report.latency_ticks == 0

    def test_close_report_carries_no_diagnoses(self):
        eng = engine(window_width=8)
        self.run_failure(eng)
        eng.offer(probe(EPOCH_POST, reached=True, tick=3, seq=4))
        eng.advance(3)
        eng.drain(3)
        close = eng.reports[-1]
        assert close.trigger == CLOSE
        assert close.diagnoses == ()

    def test_quarantined_event_is_rejected(self):
        eng = engine()
        forged = ProbeEvent(
            tick=1,
            seq=0,
            path=ProbePath(
                src=A,
                dst=B,
                hops=(A, "203.0.113.7", B),
                reached=True,
                epoch=EPOCH_POST,
            ),
        )
        assert eng.offer(forged) is False
        assert eng.offer(probe(EPOCH_PRE, reached=True, tick=1, seq=1)) is True
        counters = eng.counters()
        assert counters["events_offered"] == 2
        assert counters["events_admitted"] == 1

    def test_on_report_hook_sees_every_fresh_report(self):
        seen = []
        eng = engine(window_width=8, on_report=seen.append)
        self.run_failure(eng)
        assert [r.report_index for r in seen] == [0]
