"""Per-event screening tests: the stream front door applies the same
three validation policies as the batch screen, one record at a time."""

import pytest

from repro.core.control_plane import (
    IgpLinkDownObservation,
    WithdrawalObservation,
)
from repro.core.pathset import EPOCH_POST, EPOCH_PRE, ProbePath
from repro.errors import StreamError, ValidationError
from repro.stream import (
    IgpLinkDownEvent,
    ProbeEvent,
    ReachabilityEvent,
    SensorHeartbeatEvent,
    StreamIngestor,
    WithdrawalEvent,
)
from repro.validate import QUARANTINE, REPAIR, STRICT

SRC, MID, DST = "10.0.0.1", "10.0.1.1", "10.0.9.9"
FORGED = "203.0.113.7"


def asn_of(address):
    return 64500 if address.startswith("10.") else None


def probe_event(hops, reached=None, epoch=EPOCH_POST, seq=0):
    if reached is None:
        reached = hops[-1] == DST
    return ProbeEvent(
        tick=1,
        seq=seq,
        path=ProbePath(
            src=SRC, dst=DST, hops=tuple(hops), reached=reached, epoch=epoch
        ),
    )


def ingestor(policy):
    return StreamIngestor(
        asn_of, policy, expected_epochs=(EPOCH_PRE, EPOCH_POST)
    )


def withdrawal_event(seq, feed_seq, prefix="10.0.9.0/24"):
    return WithdrawalEvent(
        tick=1,
        seq=seq,
        observation=WithdrawalObservation(
            prefix=prefix,
            at_address=MID,
            from_address=DST,
            from_asn=64501,
            seq=feed_seq,
        ),
    )


class TestPolicies:
    def test_unknown_policy_raises(self):
        with pytest.raises(StreamError):
            ingestor("lenient")

    def test_clean_probe_passes_either_epoch(self):
        screen = ingestor(QUARANTINE)
        for epoch in (EPOCH_PRE, EPOCH_POST):
            event = probe_event([SRC, MID, DST], epoch=epoch)
            assert screen.ingest(event) is event
        assert screen.counters() == {
            "events_screened": 2,
            "events_quarantined": 0,
            "events_repaired": 0,
        }

    def test_structureless_events_always_pass(self):
        screen = ingestor(STRICT)
        heartbeat = SensorHeartbeatEvent(tick=0, seq=0, address=SRC)
        reach = ReachabilityEvent(tick=0, seq=1, src=SRC, dst=DST, reached=False)
        assert screen.ingest(heartbeat) is heartbeat
        assert screen.ingest(reach) is reach

    def test_quarantine_drops_forged_probe(self):
        screen = ingestor(QUARANTINE)
        assert screen.ingest(probe_event([SRC, FORGED, DST])) is None
        assert screen.events_quarantined == 1
        assert screen.report.traces_quarantined == 1

    def test_repair_fixes_forged_probe(self):
        screen = ingestor(REPAIR)
        admitted = screen.ingest(probe_event([SRC, FORGED, DST]))
        assert admitted is not None
        assert FORGED not in admitted.path.hops
        assert screen.events_repaired == 1
        assert screen.report.traces_repaired == 1

    def test_strict_raises_on_forged_probe(self):
        screen = ingestor(STRICT)
        with pytest.raises(ValidationError):
            screen.ingest(probe_event([SRC, FORGED, DST]))

    def test_stale_epoch_is_always_quarantined(self):
        # A stale replay is not repairable: even under repair it drops.
        screen = ingestor(REPAIR)
        assert screen.ingest(probe_event([SRC, MID, DST], epoch="ancient")) is None
        assert screen.events_quarantined == 1
        assert screen.report.stale_rounds_dropped == 1


class TestFeedScreening:
    def test_clean_feed_passes_and_tracks_seq(self):
        screen = ingestor(QUARANTINE)
        first = withdrawal_event(seq=0, feed_seq=0)
        second = withdrawal_event(seq=1, feed_seq=1, prefix="10.0.8.0/24")
        assert screen.ingest(first) is first
        assert screen.ingest(second) is second
        assert screen.events_quarantined == 0

    def test_duplicate_message_is_quarantined(self):
        screen = ingestor(QUARANTINE)
        assert screen.ingest(withdrawal_event(seq=0, feed_seq=0)) is not None
        assert screen.ingest(withdrawal_event(seq=1, feed_seq=0)) is None
        assert screen.report.feed_messages_quarantined == 1

    def test_backwards_sequence_is_quarantined(self):
        screen = ingestor(QUARANTINE)
        assert screen.ingest(withdrawal_event(seq=0, feed_seq=5)) is not None
        assert (
            screen.ingest(withdrawal_event(seq=1, feed_seq=3, prefix="10.0.8.0/24"))
            is None
        )

    def test_repair_degrades_to_quarantine_for_feeds(self):
        # A stream cannot re-sort history; dropping the offender is the
        # canonical incremental fixup.
        screen = ingestor(REPAIR)
        assert screen.ingest(withdrawal_event(seq=0, feed_seq=0)) is not None
        assert screen.ingest(withdrawal_event(seq=1, feed_seq=0)) is None
        assert screen.events_repaired == 0
        assert screen.events_quarantined == 1

    def test_strict_raises_on_duplicate(self):
        screen = ingestor(STRICT)
        screen.ingest(withdrawal_event(seq=0, feed_seq=0))
        with pytest.raises(ValidationError):
            screen.ingest(withdrawal_event(seq=1, feed_seq=0))

    def test_feed_kinds_screen_independently(self):
        screen = ingestor(QUARANTINE)
        bgp = withdrawal_event(seq=0, feed_seq=4)
        igp = IgpLinkDownEvent(
            tick=1,
            seq=1,
            observation=IgpLinkDownObservation(
                address_a=MID, address_b=DST, seq=0
            ),
        )
        assert screen.ingest(bgp) is bgp
        # IGP seq 0 < BGP seq 4: no cross-feed ordering violation.
        assert screen.ingest(igp) is igp
        assert screen.events_quarantined == 0
