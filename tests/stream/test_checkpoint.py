"""Checkpoint-store guarantees: durable round trips, fingerprint
guarding, torn-tail tolerance, and shard state restore equivalence —
the substrate the supervisor's crash recovery stands on."""

import pytest

from repro.errors import CheckpointError
from repro.stream import CheckpointStore, ReachabilityEvent, StreamShard

from .test_window import A, B, C, asn_of

FINGERPRINT = {"seed": 3, "shards": 2, "chaos_rate": 0.1}


def reach(src, dst, reached=True, tick=0, seq=0):
    return ReachabilityEvent(tick=tick, seq=seq, src=src, dst=dst, reached=reached)


class TestInMemoryStore:
    def test_latest_tracks_the_newest_per_shard(self):
        store = CheckpointStore()
        store.save(0, 2, {"n": 1})
        store.save(1, 2, {"n": 2})
        newest = store.save(0, 4, {"n": 3})
        assert store.latest(0) is newest
        assert store.latest(0).tick == 4
        assert store.latest(1).state == {"n": 2}
        assert set(store.latest()) == {0, 1}

    def test_unknown_shard_has_no_checkpoint(self):
        store = CheckpointStore()
        assert store.latest(7) is None
        assert store.latest() == {}

    def test_counters(self):
        store = CheckpointStore()
        store.save(0, 2, {})
        store.save(0, 4, {})
        store.save(1, 4, {})
        assert store.counters() == {
            "checkpoints_saved": 3,
            "shards_checkpointed": 2,
        }


class TestDurableStore:
    def test_round_trip_restores_the_latest_per_shard(self, tmp_path):
        path = tmp_path / "shards.ckpt"
        store = CheckpointStore(path, FINGERPRINT)
        store.save(0, 2, {"tick": 2})
        store.save(0, 4, {"tick": 4})
        store.save(1, 4, {"pairs": [(A, B)]})

        reloaded = CheckpointStore(path, FINGERPRINT)
        assert reloaded.latest(0).tick == 4
        assert reloaded.latest(0).state == {"tick": 4}
        assert reloaded.latest(1).state == {"pairs": [(A, B)]}
        # Loaded checkpoints are history, not new saves.
        assert reloaded.counters()["checkpoints_saved"] == 0
        assert reloaded.counters()["shards_checkpointed"] == 2

    def test_fingerprint_mismatch_is_a_typed_error(self, tmp_path):
        """One run's checkpoints must never seed another run's recovery."""
        path = tmp_path / "shards.ckpt"
        CheckpointStore(path, FINGERPRINT).save(0, 2, {})
        with pytest.raises(CheckpointError):
            CheckpointStore(path, dict(FINGERPRINT, seed=999))

    def test_torn_trailing_record_is_dropped(self, tmp_path):
        """A crash mid-append loses at most the checkpoint being
        written; every earlier record still loads."""
        path = tmp_path / "shards.ckpt"
        store = CheckpointStore(path, FINGERPRINT)
        store.save(0, 2, {"tick": 2})
        store.save(0, 4, {"tick": 4})
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 7)

        reloaded = CheckpointStore(path, FINGERPRINT)
        assert reloaded.latest(0).tick == 2

    def test_unreadable_header_is_ignored_like_a_fresh_store(self, tmp_path):
        """Same leniency as the run journal: garbage with no readable
        header is not *this run's* checkpoints, so start fresh rather
        than refuse to run."""
        path = tmp_path / "not-a-checkpoint"
        path.write_bytes(b"definitely not pickle")
        store = CheckpointStore(path, FINGERPRINT)
        assert store.latest() == {}


class TestShardStateRoundTrip:
    def _loaded_shard(self):
        shard = StreamShard(0, asn_of, open_after=2, close_after=2)
        events = [
            (A, B, False),
            (A, B, False),  # (A, B) alarms
            (A, C, True),
            (B, C, False),
        ]
        for seq, (src, dst, ok) in enumerate(events):
            assert shard.offer(reach(src, dst, reached=ok, tick=1, seq=seq))
        return shard

    def test_restore_rebuilds_alarms_windows_and_accounting(self):
        shard = self._loaded_shard()
        snapshot = shard.state()

        other = StreamShard(0, asn_of, open_after=2, close_after=2)
        other.restore_state(snapshot)
        assert other.alarms.alarmed_pairs() == shard.alarms.alarmed_pairs()
        assert other.alarms.pairs_tracked() == shard.alarms.pairs_tracked()
        assert other.events_offered == shard.events_offered
        assert other.events_admitted == shard.events_admitted
        assert other.window.counters() == shard.window.counters()
        assert other.ingestor.counters() == shard.ingestor.counters()

    def test_restored_shard_continues_identically(self):
        """The checkpoint contract: restore + same tail ⇒ same state."""
        shard = self._loaded_shard()
        other = StreamShard(0, asn_of, open_after=2, close_after=2)
        other.restore_state(shard.state())
        tail = [reach(B, C, reached=False, tick=2, seq=9)]
        for event in tail:
            shard.offer(event)
            other.offer(event)
        # The second consecutive failure alarms (B, C) on both.
        assert (B, C) in shard.alarms.alarmed_pairs()
        assert other.alarms.alarmed_pairs() == shard.alarms.alarmed_pairs()

    def test_checkpointed_state_survives_disk(self, tmp_path):
        shard = self._loaded_shard()
        path = tmp_path / "shards.ckpt"
        CheckpointStore(path, FINGERPRINT).save(0, 1, shard.state())

        restored = CheckpointStore(path, FINGERPRINT).latest(0)
        other = StreamShard(0, asn_of, open_after=2, close_after=2)
        other.restore_state(restored.state)
        assert other.alarms.alarmed_pairs() == shard.alarms.alarmed_pairs()
