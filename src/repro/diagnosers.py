"""The diagnoser registry: every engine constructible from one name.

Figures, CLIs and the streaming replay all used to hand-build
``diagnosers={label: NetDiagnoser(...)}`` dicts; this module is the single
construction point.  A *name* is either a :data:`~repro.core.diagnoser`
facade variant (``scfs``/``tomo``/``nd-edge``/``nd-bgpigp``/``nd-lg``),
the empathy engine (``empathy``) or the hitting-set + empathy ensemble
(``ensemble``).  Every constructed object satisfies the
:class:`repro.core.protocol.Diagnoser` protocol.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Union

from repro.core.diagnoser import VARIANTS, NetDiagnoser
from repro.core.protocol import Diagnoser
from repro.empathy.diagnoser import EmpathyDiagnoser
from repro.empathy.ensemble import EnsembleDiagnoser
from repro.errors import EmpathyError

__all__ = ["DIAGNOSER_NAMES", "make_diagnoser", "make_diagnosers"]

#: Every name :func:`make_diagnoser` accepts, in presentation order.
DIAGNOSER_NAMES = VARIANTS + ("empathy", "ensemble")


def make_diagnoser(name: str, **options) -> Diagnoser:
    """Construct one diagnoser by registry name.

    ``options`` are forwarded to the engine's constructor (e.g.
    ``ignore_unidentified=True`` for the facade variants, ``members=...``
    for the ensemble).  Unknown names raise :class:`EmpathyError` so the
    CLIs turn a typo into an exit-2 message instead of a traceback.
    """
    if name in VARIANTS:
        return NetDiagnoser(name, **options)
    if name == "empathy":
        return EmpathyDiagnoser(**options)
    if name == "ensemble":
        return EnsembleDiagnoser(**options)
    raise EmpathyError(
        f"unknown diagnoser {name!r}; expected one of {DIAGNOSER_NAMES}"
    )


def make_diagnosers(
    spec: Union[Iterable[str], Mapping[str, Optional[Mapping[str, object]]]],
) -> Dict[str, Diagnoser]:
    """Build a label -> diagnoser dict from names or a name -> options map.

    Two spellings::

        make_diagnosers(("tomo", "nd-edge"))
        make_diagnosers({"nd-lg": None,
                         "nd-bgpigp": {"ignore_unidentified": True}})

    Labels double as registry names; iteration order is preserved (it is
    the label order reports and journals fingerprint).
    """
    if isinstance(spec, Mapping):
        return {
            label: make_diagnoser(label, **(options or {}))
            for label, options in spec.items()
        }
    return {name: make_diagnoser(name) for name in spec}
