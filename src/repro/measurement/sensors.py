"""Troubleshooting sensors and placement strategies (§2.2, §4).

A sensor is an end host co-located with a router (the paper's DSL-gateway
or third-party-software deployment): it has its own address inside the
hosting AS's prefix and probes every other sensor.

Placement strategies reproduce the §4 case study (Figure 5):

* ``same_as`` — all N sensors inside one (multi-router) AS;
* ``distant_as`` — N/2 sensors in each of two ASes;
* ``distant_split`` — distant-AS plus some sensors at the border routers
  on the sequence of links between the two ASes;
* ``random_stub`` — sensors at randomly chosen stub ASes (the worst case,
  used for every other experiment with N = 10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import MeasurementError
from repro.netsim.gen.internet import ResearchInternet
from repro.netsim.topology import Internetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.faults import DegradationReport, FaultPlan

__all__ = [
    "Sensor",
    "deploy_sensors",
    "surviving_sensors",
    "random_stub_placement",
    "same_as_placement",
    "distant_as_placement",
    "distant_split_placement",
]


@dataclass(frozen=True)
class Sensor:
    """One troubleshooting sensor: an end host behind a gateway router."""

    sensor_id: int
    name: str
    router_id: int
    address: str


def deploy_sensors(net: Internetwork, router_ids: Sequence[int]) -> List[Sensor]:
    """Attach one sensor to each router in ``router_ids`` (repeats allowed:
    several sensors can share a gateway, each with its own address)."""
    if not router_ids:
        raise MeasurementError("cannot deploy an empty sensor overlay")
    sensors = []
    for index, rid in enumerate(router_ids):
        router = net.router(rid)
        address = net.allocator.next_sensor_address(router.asn)
        sensors.append(
            Sensor(
                sensor_id=index,
                name=f"s{index + 1}",
                router_id=rid,
                address=address,
            )
        )
    return sensors


def surviving_sensors(
    sensors: Sequence[Sensor],
    faults: Optional["FaultPlan"] = None,
    report: Optional["DegradationReport"] = None,
) -> List[Sensor]:
    """The sensors still up under the fault plan's dropout schedule.

    Dropout is decided once per sensor address per plan, so both
    measurement epochs see the same surviving overlay — a sensor that is
    down misses the whole event, it does not flap between T- and T+.
    """
    if faults is None:
        return list(sensors)
    up = [s for s in sensors if not faults.sensor_down(s.address)]
    if report is not None:
        report.sensors_down += len(sensors) - len(up)
    return up


def random_stub_placement(
    topo: ResearchInternet, n: int, rng: random.Random
) -> List[int]:
    """Gateway routers of ``n`` distinct randomly chosen stub ASes."""
    if n > len(topo.stub_asns):
        raise MeasurementError(
            f"cannot place {n} sensors across {len(topo.stub_asns)} stub ASes"
        )
    return [topo.stub_router(asn) for asn in rng.sample(topo.stub_asns, n)]


def same_as_placement(
    net: Internetwork, asn: int, n: int, rng: random.Random
) -> List[int]:
    """``n`` sensors on routers of one AS (distinct routers while they
    last, then sharing)."""
    routers = list(net.autonomous_system(asn).router_ids)
    if not routers:
        raise MeasurementError(f"AS {asn} has no routers")
    if n <= len(routers):
        return rng.sample(routers, n)
    placement = list(routers)
    placement += [rng.choice(routers) for _ in range(n - len(routers))]
    return placement


def distant_as_placement(
    net: Internetwork, asn_a: int, asn_b: int, n: int, rng: random.Random
) -> List[int]:
    """N/2 sensors in each of two ASes."""
    half = n // 2
    return same_as_placement(net, asn_a, half, rng) + same_as_placement(
        net, asn_b, n - half, rng
    )


def distant_split_placement(
    net: Internetwork,
    asn_a: int,
    asn_b: int,
    n: int,
    rng: random.Random,
    intermediate_routers: Sequence[int] = (),
    split: int = 2,
) -> List[int]:
    """Distant-AS placement with ``split`` sensors moved onto routers along
    the sequence of links between the two ASes — "sensors placed at
    intermediate nodes between the networks" (§4).

    ``intermediate_routers`` are the candidates for the split sensors:
    normally the routers of the inter-AS path between the two networks
    (the Figure 5 harness computes them from the data plane).  When empty,
    the border routers of direct links between the two ASes are used.
    """
    split = min(split, n)
    candidates = list(intermediate_routers)
    if not candidates:
        for link in net.inter_links():
            asns = set(net.link_asns(link.lid))
            if asns == {asn_a, asn_b}:
                candidates.extend(link.endpoints())
    if not candidates:
        raise MeasurementError(
            f"no intermediate routers between AS {asn_a} and AS {asn_b}: "
            "pass intermediate_routers or pick directly-connected ASes"
        )
    placement = distant_as_placement(net, asn_a, asn_b, n - split, rng)
    # Spread the split sensors evenly along the sequence for maximum
    # coverage of the shared links.
    unique = sorted(set(candidates), key=candidates.index)
    if split >= len(unique):
        chosen = unique + [rng.choice(unique) for _ in range(split - len(unique))]
    else:
        step = len(unique) / split
        chosen = [unique[int(i * step + step / 2)] for i in range(split)]
    placement += chosen
    return placement
