"""Measurement-timing skew: the §6 clock-synchronisation hazard, simulated.

"We have assumed that the sensors perform measurements at approximately
the same time, which requires some form of clock synchronization" (§6).
When a sensor's measurement schedule lags the failure event, the round it
reports to AS-X was actually taken *before* the event: its paths look
intact, its reachability bits say "up".  Mixed-epoch rounds are poison for
diagnosis — a stale "working" path can exonerate the very link that
failed.

:func:`take_skewed_snapshot` reproduces the hazard faithfully: stale
sensors contribute their pre-failure measurements to the T+ round
(relabelled, exactly as a real collector would mistakenly ingest them).
The ablation bench quantifies the sensitivity degradation as a function of
the stale fraction, and :func:`remeasure` models the §6 mitigation — wait
one more round (NTP-synchronised, all sensors caught up) and diagnose
again.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, Sequence

from repro.core.pathset import EPOCH_POST, EPOCH_PRE, MeasurementSnapshot, PathStore
from repro.errors import MeasurementError
from repro.measurement.probing import probe_pair
from repro.measurement.sensors import Sensor
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState

__all__ = ["take_skewed_snapshot", "pick_stale_sensors", "remeasure"]


def pick_stale_sensors(
    sensors: Sequence[Sensor], fraction: float, rng: random.Random
) -> FrozenSet[int]:
    """Choose which sensors lag the event (by ``sensor_id``)."""
    if not 0.0 <= fraction <= 1.0:
        raise MeasurementError("stale fraction must be within [0, 1]")
    count = round(fraction * len(sensors))
    chosen = rng.sample([s.sensor_id for s in sensors], count)
    return frozenset(chosen)


def take_skewed_snapshot(
    sim: Simulator,
    sensors: Sequence[Sensor],
    before_state: NetworkState,
    after_state: NetworkState,
    stale_sensor_ids: Iterable[int],
    blocked_ases: FrozenSet[int] = frozenset(),
) -> MeasurementSnapshot:
    """A snapshot whose T+ round mixes fresh and stale measurements.

    Probes *sourced* at a stale sensor ran before the event: they are
    taken against ``before_state`` but labelled (and ingested) as T+ —
    precisely the §6 failure mode.  Probes from synchronised sensors see
    ``after_state`` as usual.
    """
    stale = frozenset(stale_sensor_ids)
    known = {s.sensor_id for s in sensors}
    if not stale <= known:
        raise MeasurementError(f"unknown stale sensor ids: {sorted(stale - known)}")

    before = PathStore()
    after = PathStore()
    for src in sensors:
        src_state = before_state if src.sensor_id in stale else after_state
        for dst in sensors:
            if src.sensor_id == dst.sensor_id:
                continue
            before.add(
                probe_pair(sim, src, dst, before_state, blocked_ases, EPOCH_PRE)
            )
            after.add(
                probe_pair(sim, src, dst, src_state, blocked_ases, EPOCH_POST)
            )
    return MeasurementSnapshot(
        before=before, after=after, asn_of=sim.mapper.asn_of
    )


def remeasure(
    sim: Simulator,
    sensors: Sequence[Sensor],
    before_state: NetworkState,
    after_state: NetworkState,
    blocked_ases: FrozenSet[int] = frozenset(),
) -> MeasurementSnapshot:
    """The §6 mitigation: one more (synchronised) round after the skew.

    By the next round every sensor's schedule has passed the event, so
    this is simply a clean snapshot — named to make the experiment read
    like the operational procedure it models.
    """
    from repro.measurement.collector import take_snapshot

    return take_snapshot(sim, sensors, before_state, after_state, blocked_ases)
