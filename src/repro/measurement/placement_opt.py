"""Diagnosability-driven sensor placement (beyond the paper).

§4 of the paper defines diagnosability D(G) and shows placement drives it,
but explicitly does "not specifically study sensor placement".  This module
closes that loop with a greedy optimiser: starting from a seed placement,
repeatedly add the candidate gateway whose sensor improves the inferred
graph's diagnosability the most.

Greedy is the natural heuristic here for the same reason as in the hitting
set: D(G) is a normalised count of distinct link hitting sets, and each new
sensor can only refine the path mix.  The optimiser is exact about the
metric (it re-probes the mesh per candidate), so it is meant for modest
candidate pools — the experiments use the stub gateways.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.diagnosability import diagnosability
from repro.core.graph import InferredGraph
from repro.errors import MeasurementError
from repro.measurement.probing import probe_mesh
from repro.measurement.sensors import deploy_sensors
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Internetwork, NetworkState

__all__ = ["PlacementStep", "greedy_placement"]


@dataclass(frozen=True)
class PlacementStep:
    """One greedy step: the router chosen and the D(G) it achieved."""

    router_id: int
    diagnosability: float


def _mesh_diagnosability(net: Internetwork, router_ids: Sequence[int]) -> float:
    sensors = deploy_sensors(net, list(router_ids))
    sensor_asns = {net.asn_of_router(rid) for rid in router_ids}
    sim = Simulator(net, sensor_asns)
    store = probe_mesh(sim, sensors, NetworkState.nominal())
    return diagnosability(InferredGraph.from_paths(store.paths()))


def greedy_placement(
    net: Internetwork,
    candidates: Sequence[int],
    n_sensors: int,
    seed_routers: Sequence[int] = (),
    rng: Optional[random.Random] = None,
    sample_size: Optional[int] = None,
) -> Tuple[List[int], List[PlacementStep]]:
    """Greedily pick ``n_sensors`` gateways maximising diagnosability.

    Parameters
    ----------
    candidates:
        Router ids sensors may attach to.
    n_sensors:
        Total placement size (including ``seed_routers``).
    seed_routers:
        Routers that already host sensors (kept, counted against the
        budget).
    sample_size:
        Evaluate only a random subset of the remaining candidates per step
        (with ``rng``); keeps the optimiser affordable on large pools.

    Returns
    -------
    (placement, steps): the chosen router ids and the per-step trace.
    """
    if n_sensors < 2:
        raise MeasurementError("a useful overlay needs at least two sensors")
    if len(seed_routers) > n_sensors:
        raise MeasurementError("seed placement already exceeds the budget")
    pool = [rid for rid in candidates if rid not in set(seed_routers)]
    if len(seed_routers) + len(pool) < n_sensors:
        raise MeasurementError(
            f"cannot place {n_sensors} sensors from {len(pool)} candidates"
        )
    rng = rng or random.Random(0)

    placement: List[int] = list(seed_routers)
    steps: List[PlacementStep] = []
    # Bootstrap: a placement needs two sensors before D(G) is defined.
    while len(placement) < 2:
        choice = rng.choice(pool)
        pool.remove(choice)
        placement.append(choice)
        if len(placement) == 2:
            score = _mesh_diagnosability(net, placement)
            steps.append(PlacementStep(choice, score))

    while len(placement) < n_sensors:
        tried = pool
        if sample_size is not None and sample_size < len(pool):
            tried = rng.sample(pool, sample_size)
        best_router, best_score = None, -1.0
        for candidate in tried:
            score = _mesh_diagnosability(net, placement + [candidate])
            if score > best_score:
                best_router, best_score = candidate, score
        assert best_router is not None
        pool.remove(best_router)
        placement.append(best_router)
        steps.append(PlacementStep(best_router, best_score))
    return placement, steps
