"""Robust unreachability detection (§6, "Discussion").

"Events such as link flaps could affect the measurements, causing transient
events to be treated as failures.  This can be overcome by using a more
robust detection algorithm.  For example, the troubleshooter could raise an
alarm only if the failure manifests itself in several successive
measurements."

:class:`FailureDetector` implements exactly that debouncing: it consumes
one reachability observation per measurement round per pair and raises a
pair's alarm only after ``confirmations`` consecutive failed rounds.  A
single good round clears the streak — transient flaps never alarm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.core.pathset import Pair
from repro.errors import MeasurementError

__all__ = ["FailureDetector"]


@dataclass
class FailureDetector:
    """Debounces per-pair reachability into confirmed failures.

    Parameters
    ----------
    confirmations:
        Number of consecutive failed rounds before a pair alarms.  1 means
        "alarm immediately" (the behaviour every experiment in the paper
        implicitly uses, since converged states never flap).
    """

    confirmations: int = 3
    _streaks: Dict[Pair, int] = field(default_factory=dict)
    _alarmed: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.confirmations < 1:
            raise MeasurementError("confirmations must be at least 1")

    def observe_round(self, statuses: Iterable[Tuple[Pair, bool]]) -> FrozenSet[Pair]:
        """Feed one measurement round; return pairs *newly* alarmed by it.

        ``statuses`` yields (pair, reached) for every probed pair of the
        round.
        """
        newly = set()
        for pair, reached in statuses:
            if reached:
                self._streaks[pair] = 0
                self._alarmed.discard(pair)
                continue
            streak = self._streaks.get(pair, 0) + 1
            self._streaks[pair] = streak
            if streak >= self.confirmations and pair not in self._alarmed:
                self._alarmed.add(pair)
                newly.add(pair)
        return frozenset(newly)

    @property
    def alarmed_pairs(self) -> FrozenSet[Pair]:
        """Pairs currently in the alarmed state."""
        return frozenset(self._alarmed)

    def should_invoke_troubleshooter(self) -> bool:
        """True when at least one pair has a confirmed unreachability."""
        return bool(self._alarmed)

    def reset(self) -> None:
        """Forget all state (e.g. after the operator fixed the network)."""
        self._streaks.clear()
        self._alarmed.clear()
