"""Robust unreachability detection (§6, "Discussion").

"Events such as link flaps could affect the measurements, causing transient
events to be treated as failures.  This can be overcome by using a more
robust detection algorithm.  For example, the troubleshooter could raise an
alarm only if the failure manifests itself in several successive
measurements."

:class:`FailureDetector` implements exactly that debouncing: it consumes
one reachability observation per measurement round per pair and raises a
pair's alarm only after ``confirmations`` consecutive failed rounds.  A
single good round clears the streak — transient flaps never alarm.

The streak machine itself is the shared
:class:`~repro.core.streak.PairAlarmTracker`, run at ``close_after=1``:
batch rounds are converged snapshots, so one success *is* proof of
recovery.  The streaming detector runs the same tracker with a larger
``close_after`` — live streams see half-recovered pairs and need the
clearing hysteresis.  That threshold is the entire, deliberate semantic
difference between the two detectors.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.core.pathset import Pair
from repro.core.streak import PairAlarmTracker
from repro.errors import MeasurementError, StreamError

__all__ = ["FailureDetector"]


class FailureDetector:
    """Debounces per-pair reachability into confirmed failures.

    Parameters
    ----------
    confirmations:
        Number of consecutive failed rounds before a pair alarms.  1 means
        "alarm immediately" (the behaviour every experiment in the paper
        implicitly uses, since converged states never flap).
    """

    def __init__(self, confirmations: int = 3) -> None:
        try:
            self._tracker = PairAlarmTracker(
                open_after=confirmations, close_after=1
            )
        except StreamError:
            raise MeasurementError("confirmations must be at least 1") from None
        self.confirmations = confirmations

    def observe_round(
        self, statuses: Iterable[Tuple[Pair, bool]]
    ) -> FrozenSet[Pair]:
        """Feed one measurement round; return pairs *newly* alarmed by it.

        ``statuses`` yields (pair, reached) for every probed pair of the
        round.
        """
        before = set(self._tracker.alarmed_pairs())
        for pair, reached in statuses:
            self._tracker.observe(pair, reached)
        return frozenset(set(self._tracker.alarmed_pairs()) - before)

    @property
    def alarmed_pairs(self) -> FrozenSet[Pair]:
        """Pairs currently in the alarmed state."""
        return frozenset(self._tracker.alarmed_pairs())

    def should_invoke_troubleshooter(self) -> bool:
        """True when at least one pair has a confirmed unreachability."""
        return bool(self._tracker.alarmed_pairs())

    def reset(self) -> None:
        """Forget all state (e.g. after the operator fixed the network)."""
        self._tracker = PairAlarmTracker(
            open_after=self.confirmations, close_after=1
        )
