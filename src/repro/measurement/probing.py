"""Full-mesh probing: turning simulator traceroutes into probe paths.

"Every sensor uses traceroute to examine the reachability from itself to
every other sensor, and sends the results to AS-X" (§2.2).  This module
runs that mesh against the simulator and assembles the
:class:`~repro.core.pathset.PathStore` the troubleshooter receives: hop
addresses with sensor endpoints attached, stars materialised as
:class:`~repro.core.linkspace.UhNode` tokens carrying (pair, epoch,
position) identity.

When a :class:`~repro.faults.FaultPlan` is supplied, each probe passes
through the measurement-plane faults it schedules — a dropped probe
yields no path at all, a truncated one a strict prefix with unknown
reachability, and anonymous hops become extra UH tokens — with every
degradation counted on the caller's
:class:`~repro.faults.DegradationReport`.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence

from repro.core.linkspace import Endpoint, UhNode
from repro.core.pathset import EPOCH_PRE, PathStore, ProbePath
from repro.faults import DegradationReport, FaultPlan
from repro.measurement.sensors import Sensor
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState
from repro.netsim.traceroute import corrupt_trace, degrade_trace

__all__ = ["probe_mesh", "probe_pair"]


def probe_pair(
    sim: Simulator,
    src: Sensor,
    dst: Sensor,
    state: NetworkState,
    blocked_ases: FrozenSet[int] = frozenset(),
    epoch: str = EPOCH_PRE,
    faults: Optional[FaultPlan] = None,
    report: Optional[DegradationReport] = None,
) -> Optional[ProbePath]:
    """One traceroute from sensor ``src`` to sensor ``dst``.

    Returns ``None`` when the fault plan drops this probe entirely.
    """
    if faults is not None and faults.drop_trace(src.address, dst.address, epoch):
        if report is not None:
            report.probes_dropped += 1
        return None
    trace = sim.trace(state, src.router_id, dst.router_id, blocked_ases)
    if faults is not None:
        keep = faults.truncate_trace(
            src.address, dst.address, epoch, len(trace.hops)
        )
        anonymize = frozenset(
            index
            for index in range(len(trace.hops) if keep is None else keep)
            if faults.anonymize_hop(src.address, dst.address, epoch, index)
        )
        degraded = degrade_trace(trace, truncate_at=keep, anonymize=anonymize)
        if report is not None:
            if keep is not None:
                report.probes_truncated += 1
            report.hops_anonymized += sum(
                1
                for clean, dirty in zip(trace.hops, degraded.hops)
                if clean.identified and not dirty.identified
            )
        trace = degraded
        n = len(trace.hops)
        corrupted, applied = corrupt_trace(
            trace,
            forge=faults.forge_hop(src.address, dst.address, epoch, n),
            duplicate_at=faults.duplicate_hop(src.address, dst.address, epoch, n),
            loop=faults.inject_loop(src.address, dst.address, epoch, n),
        )
        if report is not None:
            report.hops_forged += applied.count("hop-forge")
            report.hops_duplicated += applied.count("hop-dup")
            report.loops_injected += applied.count("loop-inject")
        trace = corrupted
    raw: List[Optional[Endpoint]] = [src.address]
    raw.extend(hop.address for hop in trace.hops)
    if trace.reached:
        raw.append(dst.address)
    hops: List[Endpoint] = []
    for index, endpoint in enumerate(raw):
        if endpoint is None:
            hops.append(
                UhNode(src=src.address, dst=dst.address, epoch=epoch, index=index)
            )
        else:
            hops.append(endpoint)
    reached = trace.reached
    if (
        faults is not None
        and reached
        and faults.flip_reach_bit(src.address, dst.address, epoch)
    ):
        # The lying sensor reports a working probe as failed.  The other
        # direction is unforgeable: a probe that never reached carries no
        # destination confirmation to flip, and the path invariant that a
        # reached probe ends at the destination makes the lie detectable.
        reached = False
        if report is not None:
            report.reach_bits_flipped += 1
    return ProbePath(
        src=src.address,
        dst=dst.address,
        hops=tuple(hops),
        reached=reached,
        epoch=epoch,
    )


def probe_mesh(
    sim: Simulator,
    sensors: Sequence[Sensor],
    state: NetworkState,
    blocked_ases: FrozenSet[int] = frozenset(),
    epoch: str = EPOCH_PRE,
    faults: Optional[FaultPlan] = None,
    report: Optional[DegradationReport] = None,
) -> PathStore:
    """The full measurement mesh: one probe per ordered sensor pair.

    Probes the fault plan dropped are simply absent from the store — the
    collector reconciles the before/after rounds over the surviving
    pairs.
    """
    store = PathStore()
    for src in sensors:
        for dst in sensors:
            if src.sensor_id == dst.sensor_id:
                continue
            path = probe_pair(
                sim, src, dst, state, blocked_ases, epoch, faults, report
            )
            if path is not None:
                store.add(path)
    return store
