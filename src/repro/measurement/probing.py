"""Full-mesh probing: turning simulator traceroutes into probe paths.

"Every sensor uses traceroute to examine the reachability from itself to
every other sensor, and sends the results to AS-X" (§2.2).  This module
runs that mesh against the simulator and assembles the
:class:`~repro.core.pathset.PathStore` the troubleshooter receives: hop
addresses with sensor endpoints attached, stars materialised as
:class:`~repro.core.linkspace.UhNode` tokens carrying (pair, epoch,
position) identity.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence

from repro.core.linkspace import Endpoint, UhNode
from repro.core.pathset import EPOCH_PRE, PathStore, ProbePath
from repro.measurement.sensors import Sensor
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState

__all__ = ["probe_mesh", "probe_pair"]


def probe_pair(
    sim: Simulator,
    src: Sensor,
    dst: Sensor,
    state: NetworkState,
    blocked_ases: FrozenSet[int] = frozenset(),
    epoch: str = EPOCH_PRE,
) -> ProbePath:
    """One traceroute from sensor ``src`` to sensor ``dst``."""
    trace = sim.trace(state, src.router_id, dst.router_id, blocked_ases)
    raw: List[Endpoint] = [src.address]
    raw.extend(hop.address for hop in trace.hops)  # type: ignore[arg-type]
    if trace.reached:
        raw.append(dst.address)
    hops: List[Endpoint] = []
    for index, endpoint in enumerate(raw):
        if endpoint is None:
            hops.append(
                UhNode(src=src.address, dst=dst.address, epoch=epoch, index=index)
            )
        else:
            hops.append(endpoint)
    return ProbePath(
        src=src.address,
        dst=dst.address,
        hops=tuple(hops),
        reached=trace.reached,
        epoch=epoch,
    )


def probe_mesh(
    sim: Simulator,
    sensors: Sequence[Sensor],
    state: NetworkState,
    blocked_ases: FrozenSet[int] = frozenset(),
    epoch: str = EPOCH_PRE,
) -> PathStore:
    """The full measurement mesh: one probe per ordered sensor pair."""
    store = PathStore()
    for src in sensors:
        for dst in sensors:
            if src.sensor_id == dst.sensor_id:
                continue
            store.add(probe_pair(sim, src, dst, state, blocked_ases, epoch))
    return store
