"""The troubleshooter-side collector: snapshots, control feeds, LG access.

This is the glue the paper places at AS-X's Network Operation Center: it
gathers the sensors' before/after meshes into a
:class:`~repro.core.pathset.MeasurementSnapshot`, converts AS-X's routing
messages into a :class:`~repro.core.control_plane.ControlPlaneView`, and
binds Looking Glass queries into the callback signature ND-LG expects.

The collector is also where graceful degradation is enforced.  Under an
active :class:`~repro.faults.FaultPlan` the raw inputs are partial:
probes vanish or truncate, sensors are down, feed messages are lost,
Looking Glasses flake out.  The collector reconciles what survives into
inputs that still satisfy the diagnosis layer's invariants — pairs
without a clean T- baseline are discarded (and counted), LG queries are
retried with exponential backoff under a max-attempts budget, and a
whole-feed outage surfaces as a typed
:class:`~repro.errors.ControlPlaneFeedError` instead of a crash deep in
an algorithm.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional, Sequence, Tuple

from repro.core.control_plane import (
    ControlPlaneView,
    IgpLinkDownObservation,
    WithdrawalObservation,
)
from repro.core.nd_lg import LgLookup
from repro.core.pathset import (
    EPOCH_POST,
    EPOCH_PRE,
    MeasurementSnapshot,
    PathStore,
)
from repro.errors import ControlPlaneFeedError, MeasurementError
from repro.faults import DegradationReport, FaultPlan
from repro.validate import Validator
from repro.measurement.probing import probe_mesh
from repro.measurement.sensors import Sensor, surviving_sensors
from repro.netsim.lookingglass import (
    FlakyLookingGlassService,
    LookingGlassRateLimited,
    LookingGlassService,
    LookingGlassUnavailable,
)
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState

__all__ = [
    "take_snapshot",
    "collect_control_plane",
    "make_lg_lookup",
    "DEFAULT_LG_MAX_ATTEMPTS",
    "DEFAULT_LG_BACKOFF_BASE",
]

#: Retry budget per Looking Glass query: first attempt + 3 retries.
DEFAULT_LG_MAX_ATTEMPTS = 4

#: Base of the exponential backoff schedule between LG retries, in
#: seconds: attempt ``k`` waits ``base * 2**k``.  The simulation does not
#: actually sleep unless a ``sleep`` callable is supplied.
DEFAULT_LG_BACKOFF_BASE = 0.1


def _reconcile_rounds(
    before: PathStore, after: PathStore, report: Optional[DegradationReport]
) -> Tuple[PathStore, PathStore]:
    """Keep only pairs with a clean T- baseline measured in both rounds.

    The troubleshooter is only invoked on previously-working pairs, and
    the snapshot invariant requires both rounds to cover the same pairs.
    Faults break both: a probe may be dropped in one epoch only, and a
    truncated T- probe has no usable baseline.  Such pairs are discarded
    from both rounds and counted — the diagnosis runs best-effort on
    what remains.
    """
    kept = [
        pair
        for pair in before.pairs()
        if pair in after and before.get(pair).reached
    ]
    discarded = len(set(before.pairs()) | set(after.pairs())) - len(kept)
    if report is not None:
        report.pairs_discarded += discarded
    if not discarded:
        return before, after
    new_before, new_after = PathStore(), PathStore()
    for pair in kept:
        new_before.add(before.get(pair))
        new_after.add(after.get(pair))
    return new_before, new_after


def _replay_stale_rounds(
    before: PathStore,
    after: PathStore,
    faults: FaultPlan,
    report: Optional[DegradationReport],
) -> PathStore:
    """Corruption: a clock-skewed sensor re-reports T- probes as T+.

    The replayed record keeps its ``epoch="pre"`` tag — exactly the
    fingerprint a stale sensor leaves in practice (§6), and the one the
    ``trace-epoch`` invariant of :mod:`repro.validate` catches.  Without
    a validator the lie flows through, silently hiding the failure on
    that pair — which is the point of the corruption experiment.
    """
    replayed = {
        pair: before.get(pair)
        for pair in after.pairs()
        if pair in before and faults.stale_replay(*pair)
    }
    if not replayed:
        return after
    if report is not None:
        report.stale_replays += len(replayed)
    rebuilt = PathStore()
    for pair in after.pairs():
        rebuilt.add(replayed.get(pair, after.get(pair)))
    return rebuilt


def take_snapshot(
    sim: Simulator,
    sensors: Sequence[Sensor],
    before_state: NetworkState,
    after_state: NetworkState,
    blocked_ases: FrozenSet[int] = frozenset(),
    faults: Optional[FaultPlan] = None,
    report: Optional[DegradationReport] = None,
    validator: Optional[Validator] = None,
) -> MeasurementSnapshot:
    """Probe the mesh at T- and T+ and assemble the snapshot.

    Under an active fault plan the surviving-sensor mesh is probed, the
    scheduled traceroute faults applied, and the two rounds reconciled
    so the snapshot invariants hold on whatever measurements survive.
    When a :class:`~repro.validate.Validator` is supplied it screens
    every probe path (and the cross-round invariants) under its policy
    before the snapshot is assembled — corrupt records raise, get
    repaired, or are quarantined there instead of reaching a diagnoser.
    """
    mapper = sim.mapper
    up = surviving_sensors(sensors, faults, report)
    before = probe_mesh(
        sim, up, before_state, blocked_ases, EPOCH_PRE, faults, report
    )
    after = probe_mesh(
        sim, up, after_state, blocked_ases, EPOCH_POST, faults, report
    )
    if faults is not None:
        after = _replay_stale_rounds(before, after, faults, report)
    if validator is not None:
        before = validator.screen_store(before, mapper.asn_of, EPOCH_PRE)
        after = validator.screen_store(after, mapper.asn_of, EPOCH_POST)
        before, after = validator.screen_rounds(before, after)
    elif faults is not None:
        before, after = _reconcile_rounds(before, after, report)
    return MeasurementSnapshot(before=before, after=after, asn_of=mapper.asn_of)


def _corrupt_feed(
    messages: list,
    kind: str,
    faults: Optional[FaultPlan],
    report: Optional[DegradationReport],
) -> list:
    """Corruption: a flaky feed session re-delivers and reorders.

    Duplicates re-append the identical record (same ``seq`` — a true
    re-delivery); misordering swaps a message with its predecessor, the
    sequence numbers travelling with their records so the inversion is
    visible to the ``feed-order`` invariant.
    """
    if faults is None or not messages:
        return messages
    corrupted = []
    for message in messages:
        corrupted.append(message)
        if faults.duplicate_feed_message(kind, message.seq):
            corrupted.append(message)
            if report is not None:
                report.feed_messages_duplicated += 1
    for index in range(1, len(corrupted)):
        if faults.misorder_feed_message(kind, index):
            corrupted[index - 1], corrupted[index] = (
                corrupted[index],
                corrupted[index - 1],
            )
            if report is not None:
                report.feed_messages_misordered += 1
    return corrupted


def collect_control_plane(
    sim: Simulator,
    asx: int,
    before_state: NetworkState,
    after_state: NetworkState,
    faults: Optional[FaultPlan] = None,
    report: Optional[DegradationReport] = None,
    validator: Optional[Validator] = None,
) -> ControlPlaneView:
    """AS-X's IGP link-down messages and BGP withdrawal log for one event.

    A lossy feed drops or delays individual messages (counted on the
    view and the report); a whole-feed outage raises
    :class:`~repro.errors.ControlPlaneFeedError` — callers degrade to
    diagnosing without control-plane inputs.  Messages carry arrival
    sequence numbers; when a :class:`~repro.validate.Validator` is
    supplied, each stream is screened for duplicates and ordering
    before the view is assembled.
    """
    if faults is not None and faults.feed_outage():
        if report is not None:
            report.feed_outages += 1
            report.note("control-plane feed outage")
        raise ControlPlaneFeedError(
            f"AS{asx}'s control-plane feed was down for this event"
        )
    net = sim.net
    igp_down = []
    igp_lost = igp_delayed = 0
    for link in sim.igp_link_down(asx, after_state):
        address_a = net.router(link.a).address
        address_b = net.router(link.b).address
        if faults is not None and faults.lose_igp(address_a, address_b):
            igp_lost += 1
            continue
        if faults is not None and faults.delay_igp(address_a, address_b):
            igp_delayed += 1
            continue
        igp_down.append(
            IgpLinkDownObservation(
                address_a=address_a,
                address_b=address_b,
                seq=len(igp_down) + igp_lost + igp_delayed,
            )
        )
    withdrawals = []
    wd_lost = wd_delayed = 0
    for w in sim.withdrawals(asx, before_state, after_state):
        at_address = net.router(w.at_router).address
        from_address = net.router(w.from_router).address
        if faults is not None and faults.lose_withdrawal(
            w.prefix, at_address, from_address
        ):
            wd_lost += 1
            continue
        if faults is not None and faults.delay_withdrawal(
            w.prefix, at_address, from_address
        ):
            wd_delayed += 1
            continue
        withdrawals.append(
            WithdrawalObservation(
                prefix=w.prefix,
                at_address=at_address,
                from_address=from_address,
                from_asn=w.from_asn,
                seq=len(withdrawals) + wd_lost + wd_delayed,
            )
        )
    if report is not None:
        report.igp_lost += igp_lost
        report.igp_delayed += igp_delayed
        report.withdrawals_lost += wd_lost
        report.withdrawals_delayed += wd_delayed
    igp_down = _corrupt_feed(igp_down, "igp", faults, report)
    withdrawals = _corrupt_feed(withdrawals, "bgp-withdrawal", faults, report)
    if validator is not None:
        igp_down = list(validator.screen_feed(igp_down, "igp"))
        withdrawals = list(
            validator.screen_feed(withdrawals, "bgp-withdrawal")
        )
    return ControlPlaneView(
        asx_asn=asx,
        igp_link_down=tuple(igp_down),
        withdrawals=tuple(withdrawals),
        withdrawals_lost=wd_lost,
        withdrawals_delayed=wd_delayed,
        igp_lost=igp_lost,
        igp_delayed=igp_delayed,
    )


def make_lg_lookup(
    sim: Simulator,
    lg_service: LookingGlassService,
    before_state: NetworkState,
    after_state: NetworkState,
    asx: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    report: Optional[DegradationReport] = None,
    validator: Optional[Validator] = None,
    max_attempts: int = DEFAULT_LG_MAX_ATTEMPTS,
    backoff_base: float = DEFAULT_LG_BACKOFF_BASE,
    sleep: Optional[Callable[[float], None]] = None,
) -> LgLookup:
    """Bind Looking Glass queries into ND-LG's callback signature.

    The callback receives (asn, destination sensor address, epoch) and
    returns the AS path that AS would report towards the destination's
    prefix under the matching routing state.  AS-X itself needs no public
    LG — it reads its own BGP table — so queries for ``asx`` bypass the
    availability check.

    Under an active fault plan the service is wrapped in a
    :class:`~repro.netsim.lookingglass.FlakyLookingGlassService` and
    each query is retried up to ``max_attempts`` times with exponential
    backoff plus seeded jitter (``backoff_base * 2**attempt`` scaled by
    a factor in ``[0.5, 1.5)`` drawn from the fault plan's per-decision
    RNG, so retrying sensors decorrelate without losing bit-determinism
    under the run seed; pass ``sleep=time.sleep`` to wait in real time —
    the default records the schedule without sleeping, since simulated
    Looking Glasses answer instantly).  A rate-limited AS or an
    exhausted retry budget degrades to ``None`` — to ND-LG,
    indistinguishable from an AS with no Looking Glass at all.

    The ``lg-stale`` corruption mode serves an answer from the *other*
    epoch's table with the local head AS missing — a web cache replaying
    the neighbour-learned path it stored before the event.  A supplied
    :class:`~repro.validate.Validator` screens every answer (strict:
    raise; repair/quarantine: degrade the bad answer to ``None``).
    AS-X's own table is read directly and is never stale.
    """
    if max_attempts < 1:
        raise MeasurementError(
            f"LG retry budget must allow at least one attempt, got {max_attempts}"
        )
    mapper = sim.mapper
    states = {EPOCH_PRE: before_state, EPOCH_POST: after_state}
    flaky = (
        FlakyLookingGlassService(lg_service, faults)
        if faults is not None
        else None
    )

    def query_with_retries(asn, prefix, routing, dst_address, epoch):
        for attempt in range(max_attempts):
            try:
                return flaky.query(
                    asn, prefix, routing, dst_address, epoch, attempt
                )
            except LookingGlassRateLimited:
                if report is not None:
                    report.lg_rate_limited += 1
                return None
            except LookingGlassUnavailable:
                if report is not None:
                    report.lg_failures += 1
                if attempt + 1 < max_attempts:
                    if report is not None:
                        report.lg_retries += 1
                    if sleep is not None:
                        delay = backoff_base * (2 ** attempt)
                        if faults is not None:
                            # Full-jitter-lite: scale by [0.5, 1.5) from
                            # the plan's keyed RNG, so a thundering herd
                            # of retries decorrelates yet the schedule
                            # is a pure function of the run seed.
                            delay *= 0.5 + faults.lg_backoff_jitter(
                                asn, dst_address, epoch, attempt
                            )
                        sleep(delay)
        if report is not None:
            report.lg_exhausted += 1
        return None

    def stale_answer(asn, prefix, epoch, answer):
        other = EPOCH_POST if epoch == EPOCH_PRE else EPOCH_PRE
        stale_routing = sim.routing(states[other])
        stale = None
        if prefix in stale_routing.prefixes:
            stale = stale_routing.as_path(asn, prefix)
        if stale is None:
            stale = answer
        if len(stale) > 1:
            return stale[1:]
        return (stale[0], stale[0])

    def lookup(asn: int, dst_address: str, epoch: str) -> Optional[Tuple[int, ...]]:
        if epoch not in states:
            raise MeasurementError(f"unknown measurement epoch {epoch!r}")
        prefix = mapper.prefix_containing(dst_address)
        if prefix is None:
            return None
        routing = sim.routing(states[epoch])
        if asx is not None and asn == asx:
            if prefix not in routing.prefixes:
                return None
            answer = routing.as_path(asn, prefix)
        elif prefix not in routing.prefixes:
            return None
        else:
            if flaky is None:
                answer = lg_service.query(asn, prefix, routing)
            else:
                answer = query_with_retries(
                    asn, prefix, routing, dst_address, epoch
                )
            if (
                answer is not None
                and faults is not None
                and faults.lg_stale_answer(asn, dst_address, epoch)
            ):
                answer = stale_answer(asn, prefix, epoch, answer)
                if report is not None:
                    report.lg_stale_answers += 1
        if validator is not None:
            answer = validator.screen_lg_path(asn, answer, dst_address, epoch)
        return answer

    return lookup
