"""The troubleshooter-side collector: snapshots, control feeds, LG access.

This is the glue the paper places at AS-X's Network Operation Center: it
gathers the sensors' before/after meshes into a
:class:`~repro.core.pathset.MeasurementSnapshot`, converts AS-X's routing
messages into a :class:`~repro.core.control_plane.ControlPlaneView`, and
binds Looking Glass queries into the callback signature ND-LG expects.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Tuple

from repro.core.control_plane import (
    ControlPlaneView,
    IgpLinkDownObservation,
    WithdrawalObservation,
)
from repro.core.nd_lg import LgLookup
from repro.core.pathset import EPOCH_POST, EPOCH_PRE, MeasurementSnapshot
from repro.errors import MeasurementError
from repro.measurement.probing import probe_mesh
from repro.measurement.sensors import Sensor
from repro.netsim.lookingglass import LookingGlassService
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState

__all__ = ["take_snapshot", "collect_control_plane", "make_lg_lookup"]


def take_snapshot(
    sim: Simulator,
    sensors: Sequence[Sensor],
    before_state: NetworkState,
    after_state: NetworkState,
    blocked_ases: FrozenSet[int] = frozenset(),
) -> MeasurementSnapshot:
    """Probe the mesh at T- and T+ and assemble the snapshot."""
    mapper = sim.mapper
    return MeasurementSnapshot(
        before=probe_mesh(sim, sensors, before_state, blocked_ases, EPOCH_PRE),
        after=probe_mesh(sim, sensors, after_state, blocked_ases, EPOCH_POST),
        asn_of=mapper.asn_of,
    )


def collect_control_plane(
    sim: Simulator,
    asx: int,
    before_state: NetworkState,
    after_state: NetworkState,
) -> ControlPlaneView:
    """AS-X's IGP link-down messages and BGP withdrawal log for one event."""
    net = sim.net
    igp_down = tuple(
        IgpLinkDownObservation(
            address_a=net.router(link.a).address,
            address_b=net.router(link.b).address,
        )
        for link in sim.igp_link_down(asx, after_state)
    )
    withdrawals = tuple(
        WithdrawalObservation(
            prefix=w.prefix,
            at_address=net.router(w.at_router).address,
            from_address=net.router(w.from_router).address,
            from_asn=w.from_asn,
        )
        for w in sim.withdrawals(asx, before_state, after_state)
    )
    return ControlPlaneView(
        asx_asn=asx, igp_link_down=igp_down, withdrawals=withdrawals
    )


def make_lg_lookup(
    sim: Simulator,
    lg_service: LookingGlassService,
    before_state: NetworkState,
    after_state: NetworkState,
    asx: Optional[int] = None,
) -> LgLookup:
    """Bind Looking Glass queries into ND-LG's callback signature.

    The callback receives (asn, destination sensor address, epoch) and
    returns the AS path that AS would report towards the destination's
    prefix under the matching routing state.  AS-X itself needs no public
    LG — it reads its own BGP table — so queries for ``asx`` bypass the
    availability check.
    """
    mapper = sim.mapper
    states = {EPOCH_PRE: before_state, EPOCH_POST: after_state}

    def lookup(asn: int, dst_address: str, epoch: str) -> Optional[Tuple[int, ...]]:
        if epoch not in states:
            raise MeasurementError(f"unknown measurement epoch {epoch!r}")
        prefix = mapper.prefix_containing(dst_address)
        if prefix is None:
            return None
        routing = sim.routing(states[epoch])
        if prefix not in routing.prefixes:
            return None
        if asx is not None and asn == asx:
            return routing.as_path(asn, prefix)
        return lg_service.query(asn, prefix, routing)

    return lookup
