"""Sensor overlay, probing mesh, and the AS-X-side collector."""

from repro.measurement.collector import (
    collect_control_plane,
    make_lg_lookup,
    take_snapshot,
)
from repro.measurement.detection import FailureDetector
from repro.measurement.placement_opt import PlacementStep, greedy_placement
from repro.measurement.paris import MultipathStore, paris_mesh, paris_probe_pair
from repro.measurement.probing import probe_mesh, probe_pair
from repro.measurement.skew import pick_stale_sensors, remeasure, take_skewed_snapshot
from repro.measurement.sensors import (
    Sensor,
    deploy_sensors,
    distant_as_placement,
    distant_split_placement,
    random_stub_placement,
    same_as_placement,
)

__all__ = [
    "FailureDetector",
    "PlacementStep",
    "Sensor",
    "collect_control_plane",
    "deploy_sensors",
    "greedy_placement",
    "distant_as_placement",
    "distant_split_placement",
    "make_lg_lookup",
    "MultipathStore",
    "paris_mesh",
    "paris_probe_pair",
    "pick_stale_sensors",
    "probe_mesh",
    "probe_pair",
    "remeasure",
    "random_stub_placement",
    "same_as_placement",
    "take_skewed_snapshot",
    "take_snapshot",
]
