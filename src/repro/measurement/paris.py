"""Paris-traceroute-style multipath probing (footnote 2 of the paper).

Classic traceroute sees one path per pair; under load balancing the path
it reports may flip without any failure, and a genuine reroute may hide
behind an apparent flip.  Paris traceroute enumerates *all* paths between
a pair, which is what this module simulates: each probe returns the full
set of equal-cost forwarding paths as
:class:`~repro.core.pathset.ProbePath` objects sharing the pair key.

Blocked-AS handling is deliberately unsupported here: UH identity is per
(pair, epoch, position), and two ECMP siblings of one pair could alias.
The paper's blocked-traceroute experiments use single-path probing, so
the combination never arises.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.pathset import EPOCH_PRE, Pair, ProbePath
from repro.errors import MeasurementError
from repro.measurement.sensors import Sensor
from repro.netsim.multipath import enumerate_data_paths
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState

__all__ = ["MultipathStore", "paris_probe_pair", "paris_mesh"]

#: One multipath measurement round: pair -> every discovered path.
MultipathStore = Dict[Pair, Tuple[ProbePath, ...]]


def paris_probe_pair(
    sim: Simulator,
    src: Sensor,
    dst: Sensor,
    state: NetworkState,
    epoch: str = EPOCH_PRE,
    max_paths: int = 32,
) -> Tuple[ProbePath, ...]:
    """All equal-cost paths between two sensors (empty = unreachable)."""
    router_paths = enumerate_data_paths(
        sim.net,
        sim.routing(state),
        state,
        src.router_id,
        dst.router_id,
        igp_cache=sim.igp_cache,
        max_paths=max_paths,
    )
    probes: List[ProbePath] = []
    for router_path in router_paths:
        hops = (
            (src.address,)
            + tuple(sim.net.router(rid).address for rid in router_path)
            + (dst.address,)
        )
        probes.append(
            ProbePath(
                src=src.address,
                dst=dst.address,
                hops=hops,
                reached=True,
                epoch=epoch,
            )
        )
    return tuple(probes)


def paris_mesh(
    sim: Simulator,
    sensors: Sequence[Sensor],
    state: NetworkState,
    epoch: str = EPOCH_PRE,
    max_paths: int = 32,
) -> MultipathStore:
    """The full multipath mesh: every ordered pair's path set.

    Pairs that are unreachable map to an empty tuple (the reachability
    matrix of a multipath round: R_ij = 0 iff *every* path is broken).
    """
    if not sensors:
        raise MeasurementError("cannot probe an empty sensor overlay")
    mesh: MultipathStore = {}
    for src in sensors:
        for dst in sensors:
            if src.sensor_id == dst.sensor_id:
                continue
            mesh[(src.address, dst.address)] = paris_probe_pair(
                sim, src, dst, state, epoch=epoch, max_paths=max_paths
            )
    return mesh
