"""Per-AS link-state IGP (IS-IS/OSPF analogue).

Each AS runs an independent shortest-path-first computation over its alive
intradomain links.  The simulator consumes two observables from this module:

* :class:`IgpView` — the converged intradomain forwarding paths of one AS
  under one :class:`~repro.netsim.topology.NetworkState` (used by the data
  plane to walk packets from an ingress router to the chosen egress), and
* :func:`igp_link_down_events` — the "link down" messages the paper's AS-X
  reads off its own IGP (§3.3): the set of intradomain links of AS-X that
  are dead in the current state.

Determinism: ties between equal-cost paths are broken lexicographically on
the router-id sequence, so the same state always produces the same paths —
a property every seeded experiment in this repository relies on.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.netsim.topology import Internetwork, Link, NetworkState

__all__ = ["IgpView", "igp_link_down_events"]


class IgpView:
    """Converged intradomain routing of one AS under one network state.

    Paths are computed lazily per source router and cached.  A path is a
    list of router ids starting at the source and ending at the destination;
    ``None`` means the destination is unreachable inside the AS (an
    intradomain partition).
    """

    def __init__(self, net: Internetwork, asn: int, state: NetworkState) -> None:
        self.net = net
        self.asn = asn
        self.state = state
        autsys = net.autonomous_system(asn)
        self._alive_routers = [
            rid for rid in autsys.router_ids if rid not in state.failed_routers
        ]
        self._adjacency = self._build_adjacency()
        self._paths_from: Dict[int, Dict[int, Tuple[int, ...]]] = {}

    def _build_adjacency(self) -> Dict[int, List[Tuple[int, int, int]]]:
        """Map router id -> sorted list of (neighbour rid, weight, link id)."""
        alive = set(self._alive_routers)
        adjacency: Dict[int, List[Tuple[int, int, int]]] = {
            rid: [] for rid in self._alive_routers
        }
        for link in self.net.intra_links(self.asn):
            if not self.net.link_up(link.lid, self.state):
                continue
            if link.a in alive and link.b in alive:
                weight = self.state.weight_of(link)
                adjacency[link.a].append((link.b, weight, link.lid))
                adjacency[link.b].append((link.a, weight, link.lid))
        for rid in adjacency:
            adjacency[rid].sort()
        return adjacency

    def path(self, src: int, dst: int) -> Optional[List[int]]:
        """Shortest alive path from ``src`` to ``dst`` as router ids.

        Returns ``None`` when no path exists (partition, or an endpoint is
        failed).  Raises :class:`RoutingError` for routers outside this AS.
        """
        for rid in (src, dst):
            if self.net.asn_of_router(rid) != self.asn:
                raise RoutingError(
                    f"router {rid} is not in AS {self.asn}; IGP views are per-AS"
                )
        if src in self.state.failed_routers or dst in self.state.failed_routers:
            return None
        if src == dst:
            return [src]
        table = self._paths_from.get(src)
        if table is None:
            table = self._dijkstra(src)
            self._paths_from[src] = table
        path = table.get(dst)
        return list(path) if path is not None else None

    def distance(self, src: int, dst: int) -> Optional[int]:
        """IGP cost of the shortest path, or ``None`` when unreachable."""
        path = self.path(src, dst)
        if path is None:
            return None
        cost = 0
        for hop_a, hop_b in zip(path, path[1:]):
            link = self.net.link_between(hop_a, hop_b)
            assert link is not None
            cost += self.state.weight_of(link)
        return cost

    def reachable(self, src: int, dst: int) -> bool:
        """True when the AS can internally carry traffic from src to dst."""
        return self.path(src, dst) is not None

    def all_shortest_paths(
        self, src: int, dst: int, cap: int = 32
    ) -> List[List[int]]:
        """Every equal-cost shortest path from ``src`` to ``dst`` (ECMP).

        Used by the Paris-traceroute extension: real networks load-balance
        across equal-cost paths, and multipath-aware probing must discover
        all of them.  Enumeration walks the shortest-path DAG backwards
        from the destination; ``cap`` bounds the number of paths returned
        (ECMP fan-out is combinatorial in pathological topologies).
        Returns ``[]`` when ``dst`` is unreachable; paths are sorted
        lexicographically, so the first one is exactly :meth:`path`'s
        answer.
        """
        for rid in (src, dst):
            if self.net.asn_of_router(rid) != self.asn:
                raise RoutingError(
                    f"router {rid} is not in AS {self.asn}; IGP views are per-AS"
                )
        if src in self.state.failed_routers or dst in self.state.failed_routers:
            return []
        if src == dst:
            return [[src]]
        distances = self._distances(src)
        if dst not in distances:
            return []
        paths: List[List[int]] = []

        def backtrack(node: int, suffix: List[int]) -> None:
            if len(paths) >= cap:
                return
            if node == src:
                paths.append([src] + suffix)
                return
            for nbr, weight, _lid in self._adjacency.get(node, ()):
                if distances.get(nbr, None) is not None and (
                    distances[nbr] + weight == distances[node]
                ):
                    backtrack(nbr, [node] + suffix)

        backtrack(dst, [])
        return sorted(paths)

    def _distances(self, src: int) -> Dict[int, int]:
        """Shortest distances from ``src`` to every reachable router."""
        dist: Dict[int, int] = {}
        heap: List[Tuple[int, int]] = [(0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            for nbr, weight, _lid in self._adjacency.get(node, ()):
                if nbr not in dist:
                    heapq.heappush(heap, (d + weight, nbr))
        return dist

    def _dijkstra(self, src: int) -> Dict[int, Tuple[int, ...]]:
        """Single-source Dijkstra with lexicographic path tie-breaking."""
        best: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        heap: List[Tuple[int, Tuple[int, ...]]] = [(0, (src,))]
        while heap:
            dist, path = heapq.heappop(heap)
            node = path[-1]
            if node in best:
                continue
            best[node] = (dist, path)
            for nbr, weight, _lid in self._adjacency.get(node, ()):
                if nbr not in best:
                    heapq.heappush(heap, (dist + weight, path + (nbr,)))
        return {node: path for node, (_dist, path) in best.items()}


def igp_link_down_events(
    net: Internetwork, asn: int, state: NetworkState
) -> List[Link]:
    """The IGP "link down" messages AS ``asn`` observes under ``state``.

    Includes intradomain links that failed directly and those silenced by a
    failed endpoint router (a dead router stops refreshing the LSAs of all
    its links, which the rest of the IGP observes as the links going down).
    """
    events: List[Link] = []
    for link in net.intra_links(asn):
        if not net.link_up(link.lid, state):
            events.append(link)
    return events
