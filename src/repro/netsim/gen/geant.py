"""Router-level topology of the GEANT European research backbone, ca. 2007.

Twenty-three national PoPs and thirty-seven circuits following the
published GEANT2 map the paper cites (www.geant.net).  As with Abilene, IGP
weights approximate circuit length; the evaluation only depends on the path
diversity this mesh provides.
"""

from __future__ import annotations

from typing import Dict, List

from repro.netsim.topology import Internetwork

__all__ = ["GEANT_POPS", "GEANT_CIRCUITS", "build_geant"]

GEANT_POPS: List[str] = [
    "london",
    "paris",
    "amsterdam",
    "brussels",
    "frankfurt",
    "geneva",
    "milan",
    "madrid",
    "lisbon",
    "dublin",
    "copenhagen",
    "stockholm",
    "oslo",
    "helsinki",
    "prague",
    "vienna",
    "budapest",
    "warsaw",
    "zagreb",
    "athens",
    "bucharest",
    "sofia",
    "rome",
]

#: (pop_a, pop_b, igp_weight)
GEANT_CIRCUITS = [
    ("london", "paris", 3),
    ("london", "amsterdam", 3),
    ("london", "dublin", 4),
    ("london", "madrid", 9),
    ("paris", "brussels", 2),
    ("paris", "geneva", 4),
    ("paris", "madrid", 8),
    ("amsterdam", "brussels", 2),
    ("amsterdam", "frankfurt", 3),
    ("amsterdam", "copenhagen", 5),
    ("frankfurt", "geneva", 4),
    ("frankfurt", "prague", 4),
    ("frankfurt", "copenhagen", 5),
    ("frankfurt", "warsaw", 7),
    ("geneva", "milan", 3),
    ("milan", "rome", 4),
    ("milan", "vienna", 6),
    ("madrid", "lisbon", 4),
    ("lisbon", "london", 11),
    ("copenhagen", "stockholm", 4),
    ("stockholm", "oslo", 3),
    ("stockholm", "helsinki", 3),
    ("oslo", "copenhagen", 4),
    ("helsinki", "warsaw", 7),
    ("prague", "vienna", 2),
    ("prague", "warsaw", 5),
    ("vienna", "budapest", 2),
    ("vienna", "zagreb", 3),
    ("budapest", "bucharest", 6),
    ("budapest", "zagreb", 3),
    ("zagreb", "sofia", 6),
    ("athens", "sofia", 4),
    ("athens", "milan", 9),
    ("bucharest", "sofia", 3),
    ("rome", "athens", 8),
    ("geneva", "madrid", 9),
    ("vienna", "warsaw", 5),
]


def build_geant(net: Internetwork, asn: int) -> Dict[str, int]:
    """Add the GEANT routers and circuits inside an existing AS.

    Returns PoP name -> router id; the known interconnects are London and
    Amsterdam towards Abilene (New York / Washington) and Amsterdam towards
    WIDE (Tokyo).
    """
    routers: Dict[str, int] = {}
    for pop in GEANT_POPS:
        routers[pop] = net.add_router(asn, f"geant-{pop}").rid
    for pop_a, pop_b, weight in GEANT_CIRCUITS:
        net.add_link(routers[pop_a], routers[pop_b], weight=weight)
    return routers
