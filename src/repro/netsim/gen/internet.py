"""The scaled-down "research Internet" topology of the paper's evaluation.

Section 4: "We use Abilene, GEANT, and WIDE as the core ASes which are
connected in full mesh. [...] we scale down this topology [...] and select
the first 165 ASes.  This gives us a topology with three core ASes, 22
tier-2 ASes (of which 50% are multihomed), and 140 stub ASes (of which 25%
are multihomed)."  Interconnection points for the cores are fixed (the
published peering locations); everything else picks random attachment
routers, "reproducing the inter-AS connectivity (including multihoming)
found in the measurements".

Everything is driven by one seed, so a topology can be reconstructed
exactly for any experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import TopologyError
from repro.netsim.gen.abilene import build_abilene
from repro.netsim.gen.geant import build_geant
from repro.netsim.gen.hubspoke import build_hub_and_spoke, build_ladder, build_ring
from repro.netsim.gen.wide import build_wide
from repro.netsim.topology import Internetwork, Relationship, Tier

__all__ = ["ResearchInternet", "research_internet"]

#: ASN blocks per tier — keeps debug output readable.
CORE_ASN_BASE = 1
TIER2_ASN_BASE = 10
STUB_ASN_BASE = 100


@dataclass
class ResearchInternet:
    """A generated research-Internet topology plus its inventory."""

    net: Internetwork
    seed: int
    core_asns: List[int]
    tier2_asns: List[int]
    stub_asns: List[int]
    #: core AS name -> PoP name -> router id (the real core maps).
    core_routers: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: tier-2 asn -> {"hubs": [...], "spokes": [...]}.
    tier2_routers: Dict[int, Dict[str, List[int]]] = field(default_factory=dict)
    #: asn -> list of provider asns (empty for cores).
    providers: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def all_asns(self) -> List[int]:
        return self.core_asns + self.tier2_asns + self.stub_asns

    def stub_router(self, asn: int) -> int:
        """The single router of a stub AS."""
        autsys = self.net.autonomous_system(asn)
        if autsys.tier is not Tier.STUB:
            raise TopologyError(f"AS {asn} is not a stub")
        return autsys.router_ids[0]


#: Internal-topology builders selectable for tier-2 ASes.
TIER2_STYLES = {
    "hubspoke": build_hub_and_spoke,
    "ring": build_ring,
    "ladder": build_ladder,
}


def research_internet(
    n_tier2: int = 22,
    n_stub: int = 140,
    seed: int = 0,
    tier2_multihomed_fraction: float = 0.5,
    stub_multihomed_fraction: float = 0.25,
    stub_on_core_probability: float = 0.1,
    tier2_style: str = "hubspoke",
) -> ResearchInternet:
    """Generate the paper's evaluation topology (165 ASes by default).

    Multihoming fractions select *exactly* ``round(fraction * n)`` ASes of
    each tier (the paper states the fractions as exact topology facts, not
    probabilities).  ``tier2_style`` swaps the tier-2 internal design
    (``hubspoke`` — the paper's — or ``ring``/``ladder``) for the
    path-diversity ablation.
    """
    if tier2_style not in TIER2_STYLES:
        raise TopologyError(
            f"unknown tier-2 style {tier2_style!r}; choose from "
            f"{sorted(TIER2_STYLES)}"
        )
    build_tier2 = TIER2_STYLES[tier2_style]
    rng = random.Random(seed)
    net = Internetwork()

    # --- the three peering cores with their real router-level maps -------
    abilene_asn, geant_asn, wide_asn = (
        CORE_ASN_BASE,
        CORE_ASN_BASE + 1,
        CORE_ASN_BASE + 2,
    )
    net.add_as(abilene_asn, "Abilene", Tier.CORE)
    net.add_as(geant_asn, "GEANT", Tier.CORE)
    net.add_as(wide_asn, "WIDE", Tier.CORE)
    abilene = build_abilene(net, abilene_asn)
    geant = build_geant(net, geant_asn)
    wide = build_wide(net, wide_asn)

    net.set_relationship(abilene_asn, geant_asn, Relationship.PEER)
    net.set_relationship(abilene_asn, wide_asn, Relationship.PEER)
    net.set_relationship(geant_asn, wide_asn, Relationship.PEER)
    # Known interconnection points (published peering locations).
    net.add_link(abilene["newyork"], geant["london"])
    net.add_link(abilene["washington"], geant["amsterdam"])
    net.add_link(abilene["losangeles"], wide["notemachi"])
    net.add_link(geant["amsterdam"], wide["dojima"])

    core_asns = [abilene_asn, geant_asn, wide_asn]
    topo = ResearchInternet(
        net=net,
        seed=seed,
        core_asns=core_asns,
        tier2_asns=[],
        stub_asns=[],
        core_routers={"Abilene": abilene, "GEANT": geant, "WIDE": wide},
    )
    for asn in core_asns:
        topo.providers[asn] = []

    def core_attachment(core_asn: int) -> int:
        """A random attachment router inside a core AS."""
        return rng.choice(net.autonomous_system(core_asn).router_ids)

    # --- tier-2 ASes: 12-node hub-and-spoke, customers of the cores ------
    multihomed_tier2 = set(
        rng.sample(range(n_tier2), round(tier2_multihomed_fraction * n_tier2))
    )
    for index in range(n_tier2):
        asn = TIER2_ASN_BASE + index
        net.add_as(asn, f"tier2-{index + 1}", Tier.TIER2)
        layout = build_tier2(net, asn)
        topo.tier2_routers[asn] = layout
        topo.tier2_asns.append(asn)
        providers = rng.sample(core_asns, 2 if index in multihomed_tier2 else 1)
        topo.providers[asn] = sorted(providers)
        for provider in providers:
            net.set_relationship(asn, provider, Relationship.CUSTOMER_PROVIDER)
            local = rng.choice(layout["hubs"] + layout["spokes"])
            net.add_link(local, core_attachment(provider))

    # --- stub ASes: single router, customers of tier-2s (mostly) ---------
    multihomed_stubs = set(
        rng.sample(range(n_stub), round(stub_multihomed_fraction * n_stub))
    )
    for index in range(n_stub):
        asn = STUB_ASN_BASE + index
        net.add_as(asn, f"stub-{index + 1}", Tier.STUB)
        router = net.add_router(asn, f"as{asn}-gw").rid
        topo.stub_asns.append(asn)
        providers: List[int] = []
        first = (
            rng.choice(core_asns)
            if rng.random() < stub_on_core_probability
            else rng.choice(topo.tier2_asns)
        )
        providers.append(first)
        if index in multihomed_stubs:
            pool = [a for a in topo.tier2_asns + core_asns if a != first]
            providers.append(rng.choice(pool))
        topo.providers[asn] = sorted(providers)
        for provider in providers:
            net.set_relationship(asn, provider, Relationship.CUSTOMER_PROVIDER)
            if provider in core_asns:
                remote = core_attachment(provider)
            else:
                layout = topo.tier2_routers[provider]
                remote = rng.choice(layout["hubs"] + layout["spokes"])
            net.add_link(router, remote)

    return topo
