"""Router-level topology of the WIDE project backbone (Japan), ca. 2007.

Eight PoPs following the published WIDE map the paper cites
(www.wide.ad.jp): a Tokyo double-core with spurs to the other NOCs plus the
trans-Pacific attachment point in Los Angeles (modelled as the ``notemachi``
/ ``dojima`` international gateways).
"""

from __future__ import annotations

from typing import Dict, List

from repro.netsim.topology import Internetwork

__all__ = ["WIDE_POPS", "WIDE_CIRCUITS", "build_wide"]

WIDE_POPS: List[str] = [
    "notemachi",  # Tokyo NOC 1 (international gateway)
    "nezu",       # Tokyo NOC 2
    "yagami",     # Yokohama
    "dojima",     # Osaka
    "komatsu",    # Kanazawa area
    "kurashiki",  # Okayama area
    "fukuoka",
    "sendai",
]

#: (pop_a, pop_b, igp_weight)
WIDE_CIRCUITS = [
    ("notemachi", "nezu", 1),
    ("notemachi", "yagami", 2),
    ("nezu", "yagami", 2),
    ("nezu", "sendai", 5),
    ("notemachi", "dojima", 6),
    ("yagami", "dojima", 6),
    ("dojima", "komatsu", 4),
    ("dojima", "kurashiki", 3),
    ("kurashiki", "fukuoka", 5),
    ("komatsu", "nezu", 7),
]


def build_wide(net: Internetwork, asn: int) -> Dict[str, int]:
    """Add the WIDE routers and circuits inside an existing AS.

    Returns PoP name -> router id; ``notemachi`` and ``dojima`` are the
    international gateways used to peer with Abilene (Los Angeles) and
    GEANT (Amsterdam).
    """
    routers: Dict[str, int] = {}
    for pop in WIDE_POPS:
        routers[pop] = net.add_router(asn, f"wide-{pop}").rid
    for pop_a, pop_b, weight in WIDE_CIRCUITS:
        net.add_link(routers[pop_a], routers[pop_b], weight=weight)
    return routers
