"""Topology generators for the paper's evaluation setting.

The paper builds the "research part" of the Internet: Abilene, GEANT and
WIDE as peering core ASes with their real router-level maps, 22 tier-2 ASes
with 12-node hub-and-spoke internals, and 140 single-router stub ASes, with
the multihoming fractions observed in BGP traces (§4).  The modules here
encode the core maps and generate the rest from a seed.
"""

from repro.netsim.gen.abilene import build_abilene
from repro.netsim.gen.geant import build_geant
from repro.netsim.gen.hubspoke import build_hub_and_spoke, build_ladder, build_ring
from repro.netsim.gen.internet import TIER2_STYLES, ResearchInternet, research_internet
from repro.netsim.gen.powerlaw import PowerLawInternet, powerlaw_internet
from repro.netsim.gen.wide import build_wide

__all__ = [
    "build_abilene",
    "build_geant",
    "build_wide",
    "build_hub_and_spoke",
    "build_ladder",
    "build_ring",
    "PowerLawInternet",
    "ResearchInternet",
    "TIER2_STYLES",
    "powerlaw_internet",
    "research_internet",
]
