"""Router-level topology of the Abilene (Internet2) backbone, ca. 2007.

Eleven PoPs connected by fourteen OC-192 circuits, following the published
Abilene map the paper cites (abilene.internet2.edu).  IGP weights are
approximately proportional to geographic distance, which reproduces the
route preferences of the real IS-IS configuration closely enough for path
diversity purposes (the only property the evaluation depends on).
"""

from __future__ import annotations

from typing import Dict, List

from repro.netsim.topology import Internetwork

__all__ = ["ABILENE_POPS", "ABILENE_CIRCUITS", "build_abilene"]

ABILENE_POPS: List[str] = [
    "seattle",
    "sunnyvale",
    "losangeles",
    "denver",
    "kansascity",
    "houston",
    "chicago",
    "indianapolis",
    "atlanta",
    "washington",
    "newyork",
]

#: (pop_a, pop_b, igp_weight)
ABILENE_CIRCUITS = [
    ("seattle", "sunnyvale", 9),
    ("seattle", "denver", 13),
    ("sunnyvale", "losangeles", 4),
    ("sunnyvale", "denver", 12),
    ("losangeles", "houston", 17),
    ("denver", "kansascity", 7),
    ("kansascity", "houston", 8),
    ("kansascity", "indianapolis", 6),
    ("houston", "atlanta", 10),
    ("atlanta", "indianapolis", 6),
    ("atlanta", "washington", 7),
    ("indianapolis", "chicago", 3),
    ("chicago", "newyork", 9),
    ("newyork", "washington", 3),
]


def build_abilene(net: Internetwork, asn: int) -> Dict[str, int]:
    """Add the Abilene routers and circuits inside an existing AS.

    Returns a mapping PoP name -> router id so callers can wire the known
    interconnection points (New York and Washington towards GEANT, Los
    Angeles towards WIDE).
    """
    routers: Dict[str, int] = {}
    for pop in ABILENE_POPS:
        routers[pop] = net.add_router(asn, f"abilene-{pop}").rid
    for pop_a, pop_b, weight in ABILENE_CIRCUITS:
        net.add_link(routers[pop_a], routers[pop_b], weight=weight)
    return routers
