"""12-node hub-and-spoke intradomain topology for tier-2 ASes.

The paper: "we use a 12-node hub-and-spoke topology for the tier-2 ASes,
which is similar to some intradomain topologies we have observed" (§4).
We realise it as two interconnected hub routers with ten spokes, each
spoke single-homed to one hub (alternating) — a literal hub-and-spoke,
in which spoke links are intradomain cut links.  That is the property the
evaluation depends on: some intradomain failures are non-recoverable and
produce the unreachabilities the troubleshooter is invoked on (a fully
redundant internal design would make every internal failure reroutable
and leave §5.4's single-link-failure workload empty).
"""

from __future__ import annotations

from typing import Dict, List

from repro.netsim.topology import Internetwork

__all__ = ["build_hub_and_spoke", "build_ring", "build_ladder"]

#: Total routers per tier-2 AS (2 hubs + 10 spokes).
HUB_AND_SPOKE_SIZE = 12


def build_hub_and_spoke(
    net: Internetwork, asn: int, spokes: int = HUB_AND_SPOKE_SIZE - 2
) -> Dict[str, List[int]]:
    """Add a hub-and-spoke internal topology to AS ``asn``.

    Returns ``{"hubs": [...], "spokes": [...]}`` router id lists so callers
    can pick attachment points (the research-Internet generator randomises
    over all of them, as the paper does for unknown interconnects).
    """
    hub_a = net.add_router(asn, f"as{asn}-hub1").rid
    hub_b = net.add_router(asn, f"as{asn}-hub2").rid
    net.add_link(hub_a, hub_b, weight=1)
    spoke_ids: List[int] = []
    for index in range(spokes):
        spoke = net.add_router(asn, f"as{asn}-spoke{index + 1}").rid
        net.add_link(spoke, hub_a if index % 2 == 0 else hub_b, weight=2)
        spoke_ids.append(spoke)
    return {"hubs": [hub_a, hub_b], "spokes": spoke_ids}


def build_ring(
    net: Internetwork, asn: int, size: int = HUB_AND_SPOKE_SIZE
) -> Dict[str, List[int]]:
    """Alternative tier-2 internal style: a ring (metro fibre loop).

    Every internal single-link failure is reroutable the long way round —
    the opposite diversity extreme from the literal hub-and-spoke.  §4
    argues "path diversity only determines the number of failure instances
    that lead to unreachabilities.  It does not influence the performance
    of our algorithms"; the intra-style ablation bench measures exactly
    that claim by swapping this builder in.
    """
    routers = [net.add_router(asn, f"as{asn}-ring{i + 1}").rid for i in range(size)]
    for index, rid in enumerate(routers):
        net.add_link(rid, routers[(index + 1) % size], weight=1)
    # Interop with hub-and-spoke callers: the first two are "hubs".
    return {"hubs": routers[:2], "spokes": routers[2:]}


def build_ladder(
    net: Internetwork, asn: int, size: int = HUB_AND_SPOKE_SIZE
) -> Dict[str, List[int]]:
    """Alternative tier-2 internal style: a dual-plane ladder.

    Two parallel router chains with rungs — the classic redundant-core
    design; diversity sits between the ring and the star.
    """
    half = max(2, size // 2)
    top = [net.add_router(asn, f"as{asn}-top{i + 1}").rid for i in range(half)]
    bottom = [
        net.add_router(asn, f"as{asn}-bot{i + 1}").rid for i in range(half)
    ]
    for chain in (top, bottom):
        for a, b in zip(chain, chain[1:]):
            net.add_link(a, b, weight=1)
    for a, b in zip(top, bottom):
        net.add_link(a, b, weight=2)
    return {"hubs": [top[0], bottom[0]], "spokes": top[1:] + bottom[1:]}
