"""Seeded power-law internet generator (internet-scale topology tier).

The paper's evaluation internetwork (:mod:`repro.netsim.gen.internet`)
tops out at 165 ASes; the identifiability literature analyzing the same
set-cover structures (Bartolini et al., arXiv:1903.10636; Ma et al.,
arXiv:1509.06333) works at internet scale.  This generator grows
5k-50k-AS topologies whose AS-level degree distribution is heavy-tailed
the way the measured AS graph is, using preferential attachment: each
provider's chance of attracting the next customer is proportional to the
customer links it already has (the classic rich-get-richer mechanism
behind the observed power laws).

Relationship assignment is Gao-Rexford-valid **by construction**: ASes
are created in ascending ASN order and providers are only ever drawn
from already-created ASes, so every customer→provider edge goes from a
higher ASN to a strictly lower one and the provider digraph cannot have
a cycle.  :func:`repro.netsim.validate.validate_gao_rexford` is still run
on every generated topology as a safety net.

The address plan uses /24 AS blocks (:class:`PrefixAllocator` supports
65535 of them) instead of the default /20, since these ASes have one to
three routers each.  Everything is driven by one ``random.Random(seed)``
instance — the same seed yields a byte-identical topology in any
process (see ``tests/netsim/test_powerlaw.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import TopologyError
from repro.netsim.addressing import PrefixAllocator
from repro.netsim.topology import Internetwork, Relationship, Tier

__all__ = ["PowerLawInternet", "powerlaw_internet"]

#: AS-block prefix length of the internet-scale address plan.
POWERLAW_AS_PREFIX_LEN = 24
#: Sensor host addresses reserved per /24 block.
POWERLAW_SENSOR_POOL = 64


@dataclass
class PowerLawInternet:
    """A generated power-law topology plus its inventory.

    Duck-types :class:`~repro.netsim.gen.internet.ResearchInternet` where
    the experiment layer cares (``core_asns``/``tier2_asns``/``stub_asns``
    /``providers``/``all_asns``/``stub_router``) so sensor placement and
    the scaling sweep work on either tier unchanged.
    """

    net: Internetwork
    seed: int
    core_asns: List[int]
    transit_asns: List[int]
    stub_asns: List[int]
    #: asn -> list of provider asns (empty for cores).
    providers: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def tier2_asns(self) -> List[int]:
        """Alias: the transit tier plays the research topology's tier-2 role."""
        return self.transit_asns

    @property
    def all_asns(self) -> List[int]:
        return self.core_asns + self.transit_asns + self.stub_asns

    def stub_router(self, asn: int) -> int:
        """The single router of a stub AS."""
        autsys = self.net.autonomous_system(asn)
        if autsys.tier is not Tier.STUB:
            raise TopologyError(f"AS {asn} is not a stub")
        return autsys.router_ids[0]

    def customer_degree(self, asn: int) -> int:
        """Number of ASes that list ``asn`` as a provider."""
        return sum(asn in p for p in self.providers.values())


def powerlaw_internet(
    n_ases: int,
    seed: int = 0,
    transit_fraction: float = 0.15,
    stub_multihomed_fraction: float = 0.25,
    transit_multihomed_fraction: float = 0.5,
    n_core: int = 3,
) -> PowerLawInternet:
    """Generate a power-law internet with ``n_ases`` autonomous systems.

    Parameters
    ----------
    n_ases:
        Total AS count.  Sized for 5k-50k; anything from ``n_core + 2``
        up to the /24 plan's 65535-AS ceiling is accepted (tests use
        small counts).
    transit_fraction:
        Fraction of non-core ASes that are transit (tier-2); the rest
        are single-router stubs.
    stub_multihomed_fraction / transit_multihomed_fraction:
        Exact fraction of each tier given a second provider (rounded,
        like the research topology's multihoming fractions).
    n_core:
        Full-mesh peering clique at the top of the hierarchy.
    """
    if n_ases < n_core + 2:
        raise TopologyError(
            f"n_ases {n_ases} too small: need at least {n_core} cores, "
            "one transit and one stub"
        )
    if not 0.0 < transit_fraction < 1.0:
        raise TopologyError(
            f"transit_fraction {transit_fraction} must lie in (0, 1)"
        )
    allocator = PrefixAllocator(
        as_prefix_len=POWERLAW_AS_PREFIX_LEN,
        sensor_pool=POWERLAW_SENSOR_POOL,
    )
    if n_ases > allocator.max_asn:
        raise TopologyError(
            f"n_ases {n_ases} exceeds the /{POWERLAW_AS_PREFIX_LEN} address "
            f"plan's ceiling of {allocator.max_asn} ASes"
        )
    rng = random.Random(seed)
    net = Internetwork(allocator=allocator)

    n_transit = max(1, round(transit_fraction * (n_ases - n_core)))
    n_stub = n_ases - n_core - n_transit

    topo = PowerLawInternet(
        net=net, seed=seed, core_asns=[], transit_asns=[], stub_asns=[]
    )

    # --- the core clique: full-mesh peers, three routers each ------------
    for index in range(n_core):
        asn = index + 1
        net.add_as(asn, f"core-{index + 1}", Tier.CORE)
        rids = [net.add_router(asn, f"as{asn}-r{k}").rid for k in range(3)]
        for a, b in zip(rids, rids[1:]):
            net.add_link(a, b)
        net.add_link(rids[0], rids[-1])
        topo.core_asns.append(asn)
        topo.providers[asn] = []
    for a in topo.core_asns:
        for b in topo.core_asns:
            if a < b:
                net.set_relationship(a, b, Relationship.PEER)
                net.add_link(
                    rng.choice(net.autonomous_system(a).router_ids),
                    rng.choice(net.autonomous_system(b).router_ids),
                )

    # Preferential-attachment pool: one entry per customer link an AS has
    # attracted (plus one baseline entry per provider-capable AS so new
    # transits are reachable at all).  Drawing uniformly from the pool is
    # drawing proportionally to degree — the rich-get-richer mechanism
    # that produces the power-law tail.
    attachment_pool: List[int] = list(topo.core_asns)

    def pick_providers(count: int, eligible_only_transit: bool) -> List[int]:
        """Draw ``count`` distinct providers, degree-proportionally."""
        chosen: List[int] = []
        attempts = 0
        while len(chosen) < count and attempts < 64:
            attempts += 1
            candidate = attachment_pool[rng.randrange(len(attachment_pool))]
            if candidate in chosen:
                continue
            if eligible_only_transit and candidate in topo.core_asns:
                # Stubs buy transit from the transit tier when one exists;
                # the draw is retried, keeping degree proportionality
                # within the eligible tier.
                if topo.transit_asns:
                    continue
            chosen.append(candidate)
        if not chosen:  # pragma: no cover - attempts bound is generous
            chosen.append(attachment_pool[0])
        return chosen

    def attach(customer_rid: int, provider_asn: int) -> None:
        provider_rid = rng.choice(
            net.autonomous_system(provider_asn).router_ids
        )
        net.add_link(customer_rid, provider_rid)
        attachment_pool.append(provider_asn)

    # --- transit tier: two routers, customers of cores/earlier transits --
    multihomed_transit = set(
        rng.sample(
            range(n_transit), round(transit_multihomed_fraction * n_transit)
        )
    )
    for index in range(n_transit):
        asn = n_core + index + 1
        net.add_as(asn, f"transit-{index + 1}", Tier.TIER2)
        rids = [net.add_router(asn, f"as{asn}-r{k}").rid for k in range(2)]
        net.add_link(rids[0], rids[1])
        topo.transit_asns.append(asn)
        providers = pick_providers(
            2 if index in multihomed_transit else 1, eligible_only_transit=False
        )
        topo.providers[asn] = sorted(providers)
        for provider in providers:
            net.set_relationship(asn, provider, Relationship.CUSTOMER_PROVIDER)
            attach(rng.choice(rids), provider)
        attachment_pool.append(asn)  # baseline presence in the pool

    # --- stub tier: single router, customers of the transit tier ---------
    multihomed_stubs = set(
        rng.sample(range(n_stub), round(stub_multihomed_fraction * n_stub))
    )
    for index in range(n_stub):
        asn = n_core + n_transit + index + 1
        net.add_as(asn, f"stub-{index + 1}", Tier.STUB)
        rid = net.add_router(asn, f"as{asn}-gw").rid
        topo.stub_asns.append(asn)
        providers = pick_providers(
            2 if index in multihomed_stubs else 1, eligible_only_transit=True
        )
        topo.providers[asn] = sorted(providers)
        for provider in providers:
            net.set_relationship(asn, provider, Relationship.CUSTOMER_PROVIDER)
            attach(rid, provider)

    return topo
