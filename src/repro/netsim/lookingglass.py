"""Looking Glass servers (§3.4).

A Looking Glass (LG) located in an AS "allows queries for IP addresses or
prefixes, and returns the AS path as seen by that AS to the queried address
or prefix".  The simulation answers such queries straight from the AS's
converged RIB.  Availability is per AS: Figure 12 of the paper varies the
fraction of ASes that provide an LG, so the service takes the available set
as a constructor argument.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.errors import MeasurementError
from repro.netsim.bgp.rib import RoutingState
from repro.netsim.topology import Internetwork

__all__ = ["LookingGlassService"]


class LookingGlassService:
    """Front-end for every Looking Glass in the internetwork.

    Parameters
    ----------
    net:
        The internetwork (used only for AS validation).
    available_ases:
        ASes that operate a public LG.  Queries to other ASes return
        ``None`` — the troubleshooter must fall back to another LG on the
        path, mirroring the paper's "if the Looking Glass of the source AS
        is not available, then AS-X queries the first available Looking
        Glass on the path".
    """

    def __init__(self, net: Internetwork, available_ases: Iterable[int]) -> None:
        self.net = net
        self._available: FrozenSet[int] = frozenset(available_ases)
        for asn in self._available:
            net.autonomous_system(asn)  # validate

    @classmethod
    def everywhere(cls, net: Internetwork) -> "LookingGlassService":
        """An LG in every AS (the Figure 11 assumption)."""
        return cls(net, (autsys.asn for autsys in net.ases()))

    @property
    def available_ases(self) -> FrozenSet[int]:
        """The set of ASes operating an LG."""
        return self._available

    def has_lg(self, asn: int) -> bool:
        """True when AS ``asn`` operates a Looking Glass."""
        return asn in self._available

    def query(
        self, asn: int, prefix: str, routing: RoutingState
    ) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` towards ``prefix`` as its LG reports it.

        Returns ``None`` when the AS has no LG *or* holds no route for the
        prefix; the caller cannot distinguish the two, just like a real
        operator staring at an empty LG response.
        """
        if prefix not in routing.prefixes:
            raise MeasurementError(
                f"LG query for prefix {prefix} outside the converged set"
            )
        if asn not in self._available:
            return None
        return routing.as_path(asn, prefix)
