"""Looking Glass servers (§3.4).

A Looking Glass (LG) located in an AS "allows queries for IP addresses or
prefixes, and returns the AS path as seen by that AS to the queried address
or prefix".  The simulation answers such queries straight from the AS's
converged RIB.  Availability is per AS: Figure 12 of the paper varies the
fraction of ASes that provide an LG, so the service takes the available set
as a constructor argument.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.errors import FaultInjectionError, MeasurementError
from repro.faults import FaultPlan
from repro.netsim.bgp.rib import RoutingState
from repro.netsim.topology import Internetwork

__all__ = [
    "LookingGlassService",
    "FlakyLookingGlassService",
    "LookingGlassUnavailable",
    "LookingGlassRateLimited",
]


class LookingGlassUnavailable(FaultInjectionError):
    """One Looking Glass query attempt failed transiently (server
    overloaded, request timed out).  Retrying may succeed — the collector
    does so with exponential backoff."""

    def __init__(self, asn: int, attempt: int) -> None:
        super().__init__(
            f"Looking Glass of AS{asn} did not answer (attempt {attempt})"
        )
        self.asn = asn
        self.attempt = attempt


class LookingGlassRateLimited(FaultInjectionError):
    """An AS's Looking Glass exhausted its per-event query budget and
    rejects every further query.  Retrying cannot succeed within this
    event — the collector gives up immediately."""

    def __init__(self, asn: int, budget: int) -> None:
        super().__init__(
            f"Looking Glass of AS{asn} rate-limited after {budget} queries"
        )
        self.asn = asn
        self.budget = budget


class LookingGlassService:
    """Front-end for every Looking Glass in the internetwork.

    Parameters
    ----------
    net:
        The internetwork (used only for AS validation).
    available_ases:
        ASes that operate a public LG.  Queries to other ASes return
        ``None`` — the troubleshooter must fall back to another LG on the
        path, mirroring the paper's "if the Looking Glass of the source AS
        is not available, then AS-X queries the first available Looking
        Glass on the path".
    """

    def __init__(self, net: Internetwork, available_ases: Iterable[int]) -> None:
        self.net = net
        self._available: FrozenSet[int] = frozenset(available_ases)
        for asn in self._available:
            net.autonomous_system(asn)  # validate

    @classmethod
    def everywhere(cls, net: Internetwork) -> "LookingGlassService":
        """An LG in every AS (the Figure 11 assumption)."""
        return cls(net, (autsys.asn for autsys in net.ases()))

    @property
    def available_ases(self) -> FrozenSet[int]:
        """The set of ASes operating an LG."""
        return self._available

    def has_lg(self, asn: int) -> bool:
        """True when AS ``asn`` operates a Looking Glass."""
        return asn in self._available

    def query(
        self, asn: int, prefix: str, routing: RoutingState
    ) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` towards ``prefix`` as its LG reports it.

        Returns ``None`` when the AS has no LG *or* holds no route for the
        prefix; the caller cannot distinguish the two, just like a real
        operator staring at an empty LG response.
        """
        if prefix not in routing.prefixes:
            raise MeasurementError(
                f"LG query for prefix {prefix} outside the converged set"
            )
        if asn not in self._available:
            return None
        return routing.as_path(asn, prefix)


class FlakyLookingGlassService:
    """A :class:`LookingGlassService` behind an imperfect network.

    Real Looking Glasses time out, shed load, and rate-limit scripted
    clients; the paper's troubleshooter must keep working anyway.  This
    wrapper consults a :class:`~repro.faults.FaultPlan` on every query:

    * with probability ``lg_failure_rate`` a given attempt raises
      :class:`LookingGlassUnavailable` (transient — retryable);
    * after ``lg_query_budget`` answered queries to one AS within the
      event, every further query raises :class:`LookingGlassRateLimited`
      (permanent for this event).

    Flakiness is deterministic per (asn, destination, epoch, attempt),
    so a retry is a genuinely new draw yet the whole schedule replays
    bit-for-bit under the same plan seed.  The rate-limit counter is the
    only mutable state; it is local to this wrapper instance (one per
    diagnosed event), never shared across processes.
    """

    def __init__(self, inner: LookingGlassService, faults: FaultPlan) -> None:
        self.inner = inner
        self.faults = faults
        self._queries: Dict[int, int] = {}

    @property
    def available_ases(self) -> FrozenSet[int]:
        return self.inner.available_ases

    def has_lg(self, asn: int) -> bool:
        return self.inner.has_lg(asn)

    def query(
        self,
        asn: int,
        prefix: str,
        routing: RoutingState,
        dst_address: str = "",
        epoch: str = "",
        attempt: int = 0,
    ) -> Optional[Tuple[int, ...]]:
        """One query attempt; raises on injected transient/permanent faults.

        ``dst_address``/``epoch``/``attempt`` only key the deterministic
        fault draws; the routing answer itself is the inner service's.
        """
        budget = self.faults.config.lg_query_budget
        if budget and self._queries.get(asn, 0) >= budget:
            raise LookingGlassRateLimited(asn, budget)
        if self.faults.lg_attempt_fails(asn, dst_address, epoch, attempt):
            raise LookingGlassUnavailable(asn, attempt)
        self._queries[asn] = self._queries.get(asn, 0) + 1
        return self.inner.query(asn, prefix, routing)
