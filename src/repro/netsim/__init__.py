"""Network simulation substrate (the C-BGP replacement).

Public surface: topology construction (:mod:`repro.netsim.topology`,
:mod:`repro.netsim.builders`, :mod:`repro.netsim.gen`), converged routing
(:class:`~repro.netsim.bgp.BgpEngine`), data-plane measurement
(:func:`~repro.netsim.traceroute.trace_route`), control-plane observation
(:func:`~repro.netsim.igp.igp_link_down_events`,
:func:`~repro.netsim.bgp.withdrawals_observed_by`), Looking Glasses, and
the :class:`~repro.netsim.simulator.Simulator` facade gluing them together.
"""

from repro.netsim.addressing import IpToAsMapper, PrefixAllocator
from repro.netsim.bgp import (
    BgpEngine,
    BgpRoute,
    BgpWithdrawal,
    EventDrivenBgp,
    RoutingState,
    withdrawals_observed_by,
)
from repro.netsim.builders import TopologyBuilder, chain_network, figure2_network
from repro.netsim.events import (
    CompositeEvent,
    Event,
    LinkFailureEvent,
    MisconfigurationEvent,
    RouterFailureEvent,
    WeightChangeEvent,
)
from repro.netsim.forwarding import ForwardingResult, IgpCache, data_path
from repro.netsim.igp import IgpView, igp_link_down_events
from repro.netsim.lookingglass import LookingGlassService
from repro.netsim.multipath import enumerate_data_paths
from repro.netsim.simulator import Simulator
from repro.netsim.validate import ValidationIssue, validate_gao_rexford
from repro.netsim.topology import (
    AutonomousSystem,
    ExportFilter,
    Internetwork,
    Link,
    NetworkState,
    Relationship,
    Router,
    Tier,
)
from repro.netsim.traceroute import TraceHop, TraceResult, trace_route

__all__ = [
    "AutonomousSystem",
    "BgpEngine",
    "BgpRoute",
    "BgpWithdrawal",
    "CompositeEvent",
    "Event",
    "EventDrivenBgp",
    "ExportFilter",
    "ForwardingResult",
    "IgpCache",
    "IgpView",
    "Internetwork",
    "IpToAsMapper",
    "Link",
    "LinkFailureEvent",
    "LookingGlassService",
    "MisconfigurationEvent",
    "NetworkState",
    "PrefixAllocator",
    "Relationship",
    "Router",
    "RouterFailureEvent",
    "RoutingState",
    "Simulator",
    "Tier",
    "ValidationIssue",
    "TopologyBuilder",
    "TraceHop",
    "TraceResult",
    "WeightChangeEvent",
    "chain_network",
    "data_path",
    "enumerate_data_paths",
    "figure2_network",
    "igp_link_down_events",
    "trace_route",
    "validate_gao_rexford",
    "withdrawals_observed_by",
]
