"""Traceroute simulation, including ASes that block probes.

A simulated traceroute walks the data plane (:mod:`repro.netsim.forwarding`)
and reports one hop per router.  Routers in *blocked* ASes answer nothing —
the hop shows up as a ``'*'`` (address ``None``) exactly like the paper's
"unidentified hops" (UHs).  Per the paper's assumption, blocking is all or
nothing per AS: "if an AS blocks traceroutes, then no router in that AS will
respond, and if an AS allows traceroutes, each router in that AS will
respond with a valid IP address" (§3.4).

Ground truth (the actual router ids) is retained on every hop so that
experiments can score the diagnosis; the diagnosis algorithms themselves
only ever look at ``address``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.netsim.bgp.rib import RoutingState
from repro.netsim.forwarding import ForwardingResult, IgpCache, data_path
from repro.netsim.topology import Internetwork, NetworkState

__all__ = [
    "TraceHop",
    "TraceResult",
    "FORGED_ROUTER_ID",
    "trace_route",
    "degrade_trace",
    "corrupt_trace",
]

#: Ground-truth router id carried by a forged hop: no real router has a
#: negative id, so scoring code can never mistake a lie for a topology
#: router.
FORGED_ROUTER_ID = -1


@dataclass(frozen=True)
class TraceHop:
    """One traceroute hop.

    ``address`` is what the probing sensor sees (``None`` for a ``'*'``);
    ``router_id`` is simulator ground truth, never consumed by diagnosis.
    """

    address: Optional[str]
    router_id: int

    @property
    def identified(self) -> bool:
        """True when the hop answered with a usable address."""
        return self.address is not None


@dataclass(frozen=True)
class TraceResult:
    """A complete traceroute between two routers.

    ``reached`` mirrors end-to-end reachability: a failed trace ends at the
    last responding position before the blackhole.  ``hops`` starts at the
    source router and, when reached, ends at the destination router.
    """

    src_router: int
    dst_router: int
    hops: Tuple[TraceHop, ...]
    reached: bool
    failure_reason: Optional[str] = None

    def __post_init__(self) -> None:
        # Results live in the simulator's LRU cache and are re-read by every
        # scenario that hits them, so the derived sequences are materialised
        # once here instead of on every addresses()/router_path() call.
        object.__setattr__(
            self, "_addresses", tuple(hop.address for hop in self.hops)
        )
        object.__setattr__(
            self, "_router_path", tuple(hop.router_id for hop in self.hops)
        )

    def addresses(self) -> Tuple[Optional[str], ...]:
        """The address sequence as the sensor records it."""
        return self._addresses

    def router_path(self) -> Tuple[int, ...]:
        """Ground-truth router id sequence."""
        return self._router_path


def trace_route(
    net: Internetwork,
    routing: RoutingState,
    state: NetworkState,
    src_router: int,
    dst_router: int,
    blocked_ases: FrozenSet[int] = frozenset(),
    igp_cache: Optional[IgpCache] = None,
) -> TraceResult:
    """Simulate one traceroute from ``src_router`` to ``dst_router``.

    Every router on the forwarding path contributes a hop; routers whose AS
    is in ``blocked_ases`` contribute a star.  Source and destination
    routers are the sensors' gateways: the probing host knows its own
    gateway and the destination responds as an end host, so both endpoints
    are reported identified even inside blocking ASes (the interior of a
    blocking AS stays dark).
    """
    outcome: ForwardingResult = data_path(
        net, routing, state, src_router, dst_router, igp_cache=igp_cache
    )
    hops = []
    last = len(outcome.router_path) - 1
    for position, rid in enumerate(outcome.router_path):
        asn = net.asn_of_router(rid)
        endpoint = position == 0 or (outcome.reached and position == last)
        if asn in blocked_ases and not endpoint:
            hops.append(TraceHop(address=None, router_id=rid))
        else:
            hops.append(TraceHop(address=net.router(rid).address, router_id=rid))
    return TraceResult(
        src_router=src_router,
        dst_router=dst_router,
        hops=tuple(hops),
        reached=outcome.reached,
        failure_reason=outcome.failure_reason,
    )


def degrade_trace(
    trace: TraceResult,
    truncate_at: Optional[int] = None,
    anonymize: Iterable[int] = (),
) -> TraceResult:
    """Apply measurement-plane faults to a clean traceroute.

    ``truncate_at`` keeps only the first that-many hops and marks the
    trace as not reached (a probe that dies mid-path cannot confirm the
    destination); ``anonymize`` stars out the hops at those positions —
    transient anonymous answers on top of AS-level blocking.  The input
    is never mutated: clean traces stay cacheable and fault application
    stays a pure function of the fault plan's decisions.
    """
    anonymize = frozenset(anonymize)
    hops = trace.hops
    reached = trace.reached
    failure_reason = trace.failure_reason
    if truncate_at is not None and 0 < truncate_at < len(hops):
        hops = hops[:truncate_at]
        reached = False
        failure_reason = "fault:truncated"
    if anonymize:
        hops = tuple(
            TraceHop(address=None, router_id=hop.router_id)
            if index in anonymize and hop.identified
            else hop
            for index, hop in enumerate(hops)
        )
    if hops == trace.hops and reached == trace.reached:
        return trace
    return TraceResult(
        src_router=trace.src_router,
        dst_router=trace.dst_router,
        hops=hops,
        reached=reached,
        failure_reason=failure_reason,
    )


def _nearest_identified(
    hops: Tuple[TraceHop, ...], index: int, lo: int, hi: int
) -> Optional[int]:
    """The identified hop position in ``[lo, hi]`` closest to ``index``
    (ties resolve toward the start — deterministic)."""
    best = None
    for position in range(lo, hi + 1):
        if not hops[position].identified:
            continue
        if best is None or abs(position - index) < abs(best - index):
            best = position
    return best


def corrupt_trace(
    trace: TraceResult,
    forge: Optional[Tuple[int, str]] = None,
    duplicate_at: Optional[int] = None,
    loop: Optional[Tuple[int, int]] = None,
) -> Tuple[TraceResult, Tuple[str, ...]]:
    """Apply *corruption* faults — the measurement plane lying.

    Unlike :func:`degrade_trace` (data goes missing), these faults add
    records that were never true: ``forge`` inserts a hop with an
    off-topology address at the given position; ``duplicate_at``
    re-reports the identified hop at that position as two consecutive
    hops; ``loop`` ``(earlier, later)`` re-inserts the hop at ``earlier``
    after position ``later``, fabricating a routing loop.  Positions
    refer to the input trace and are clamped/retargeted to the nearest
    identified hop where the scheduled position is a star (a duplicated
    star is indistinguishable from a fresh UH node, i.e. not a lie).

    Returns the corrupted trace plus the tuple of corruption kinds that
    actually applied (``"hop-forge"``, ``"hop-dup"``, ``"loop-inject"``)
    so callers count only real injections.  The input is never mutated —
    clean traces stay cacheable, and every corruption is a pure function
    of the scheduled decisions.
    """
    hops = list(trace.hops)
    applied = []
    if forge is not None and len(hops) >= 2:
        index, address = forge
        index = max(1, min(index, len(hops) - 1))
        hops.insert(index, TraceHop(address=address, router_id=FORGED_ROUTER_ID))
        applied.append("hop-forge")
    if duplicate_at is not None and len(hops) >= 3:
        index = max(1, min(duplicate_at, len(hops) - 2))
        target = _nearest_identified(tuple(hops), index, 1, len(hops) - 2)
        if target is not None:
            hops.insert(target + 1, hops[target])
            applied.append("hop-dup")
    if loop is not None and len(hops) >= 3:
        earlier, later = loop
        later = max(1, min(later, len(hops) - 2))
        earlier = _nearest_identified(tuple(hops), earlier, 0, later - 1)
        if earlier is not None:
            hops.insert(later + 1, hops[earlier])
            applied.append("loop-inject")
    if not applied:
        return trace, ()
    return (
        TraceResult(
            src_router=trace.src_router,
            dst_router=trace.dst_router,
            hops=tuple(hops),
            reached=trace.reached,
            failure_reason=trace.failure_reason,
        ),
        tuple(applied),
    )
