"""Control-plane observations of AS-X: BGP withdrawals between two states.

Section 3.3 of the paper has AS-X log the BGP withdrawal messages its border
routers receive after a failure event, and use them to exonerate links
upstream of the session the withdrawal arrived on.  With a fixpoint engine
the messages are recovered by diffing the per-session Adj-RIB-Out between
the pre-failure and post-failure converged states.

Only *explicit* withdrawals are modelled: if the session link itself died,
the routes over it vanish because the session reset, and no message saying
"the problem is beyond me" was ever received — treating a reset as a
withdrawal would wrongly exonerate the failed session link itself, so those
sessions are skipped (see ``DESIGN.md`` §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netsim.bgp.rib import RoutingState
from repro.netsim.topology import Internetwork, NetworkState

__all__ = ["BgpWithdrawal", "withdrawals_observed_by"]


@dataclass(frozen=True)
class BgpWithdrawal:
    """One withdrawal message logged by AS-X.

    ``at_router`` is AS-X's border router on the session; ``from_router``
    the neighbour's router that sent the withdrawal; ``from_asn`` the
    neighbour AS.  The pair (``at_router``, ``from_router``) identifies the
    directed session the message arrived on, which is what the exoneration
    rule of §3.3 keys on.
    """

    prefix: str
    link_id: int
    from_asn: int
    from_router: int
    at_router: int


def withdrawals_observed_by(
    net: Internetwork,
    asx: int,
    before: RoutingState,
    after: RoutingState,
    state_after: NetworkState,
) -> List[BgpWithdrawal]:
    """Withdrawal messages AS-X's routers received between two states.

    A withdrawal for prefix P exists on a session when the neighbour
    advertised P before the event, no longer advertises it after, and the
    session itself is still up (otherwise the loss is a session reset, not
    a message).
    """
    withdrawals: List[BgpWithdrawal] = []
    for link in net.inter_links_of_as(asx):
        if not net.link_up(link.lid, state_after):
            continue  # session reset, no explicit withdrawal received
        own_router = net.endpoint_in_as(link.lid, asx)
        nbr_router = link.other(own_router)
        nbr_asn = net.asn_of_router(nbr_router)
        if nbr_asn == asx:
            continue  # defensive: inter_links_of_as never yields these
        was = before.advertised(link.lid, nbr_asn)
        now = after.advertised(link.lid, nbr_asn)
        for prefix in sorted(was - now):
            withdrawals.append(
                BgpWithdrawal(
                    prefix=prefix,
                    link_id=link.lid,
                    from_asn=nbr_asn,
                    from_router=nbr_router,
                    at_router=own_router,
                )
            )
    return withdrawals
