"""Converged routing state: per-AS RIBs and per-session Adj-RIB-Out.

A :class:`RoutingState` is the output of one
:class:`~repro.netsim.bgp.engine.BgpEngine` convergence for one
:class:`~repro.netsim.topology.NetworkState`.  It answers the three
questions the rest of the system asks of BGP:

* ``best(asn, prefix)`` — which route does this AS use (drives the data
  plane and therefore traceroute)?
* ``as_path(asn, prefix)`` — what AS path would this AS's Looking Glass
  report (drives §3.4's UH mapping)?
* ``advertised(link_id, exporter_asn)`` — which prefixes flow over this
  eBGP session (diffing two states yields the withdrawal messages of §3.3)?

**Copy-on-write RIB sharing.**  The incremental engine derives many
failure states from one baseline; a failure perturbs few prefixes, so
most per-prefix RIB dicts are *shared by object* between the baseline
state and its derivatives.  :class:`CowRibTable` makes that sharing an
explicit structure instead of an engine-internal convention: a derived
table starts from a baseline, :meth:`CowRibTable.share` aliases the
baseline's per-prefix dict, and :meth:`CowRibTable.write` records a
copy-on-write divergence for a re-converged prefix.  The resulting
:class:`RibSharingStats` counters are surfaced through
``Simulator.cache_stats()`` and ``RunnerStats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import RoutingError
from repro.netsim.bgp.route import BgpRoute

__all__ = ["CowRibTable", "RibSharingStats", "RoutingState"]


@dataclass
class RibSharingStats:
    """Accounting of per-prefix RIB ownership across one or more tables.

    ``prefixes_owned`` counts RIBs built from scratch (full convergence),
    ``prefixes_shared`` counts baseline dicts aliased untouched, and
    ``cow_copies`` counts prefixes that started from a baseline but had to
    diverge (re-converged because a failure touched their dependency set).
    ``prefixes_shared`` mirrors the engine's ``prefixes_reused`` counter —
    the two are cross-checked in tests.
    """

    prefixes_owned: int = 0
    prefixes_shared: int = 0
    cow_copies: int = 0

    def absorb(self, other: "RibSharingStats") -> None:
        """Accumulate another table's counters into this one."""
        self.prefixes_owned += other.prefixes_owned
        self.prefixes_shared += other.prefixes_shared
        self.cow_copies += other.cow_copies

    @property
    def sharing_rate(self) -> float:
        """Fraction of baseline-derived prefixes that stayed shared."""
        derived = self.prefixes_shared + self.cow_copies
        return self.prefixes_shared / derived if derived else 0.0


class CowRibTable:
    """Per-prefix RIB mapping with explicit copy-on-write bookkeeping.

    Built by the engine while converging one state.  Three entry points:

    * :meth:`own` — a RIB computed from scratch (no baseline involved);
    * :meth:`share` — alias the baseline state's per-prefix dict *by
      object* (the reader-visible contract of
      :meth:`RoutingState.shares_rib_with`);
    * :meth:`write` — a baseline-derived prefix whose routes had to be
      recomputed: the new dict replaces — never mutates — the shared one.
    """

    def __init__(self, base: Optional["RoutingState"] = None) -> None:
        self._base = base
        self._ribs: Dict[str, Dict[int, BgpRoute]] = {}
        self.stats = RibSharingStats()

    def own(self, prefix: str, rib: Dict[int, BgpRoute]) -> None:
        """Record a RIB this table exclusively owns."""
        self._ribs[prefix] = rib
        self.stats.prefixes_owned += 1

    def share(self, prefix: str) -> None:
        """Alias the baseline's RIB for ``prefix`` (same object, read-only)."""
        if self._base is None:
            raise RoutingError("cannot share a RIB without a baseline")
        self._ribs[prefix] = self._base.rib(prefix)
        self.stats.prefixes_shared += 1

    def write(self, prefix: str, rib: Dict[int, BgpRoute]) -> None:
        """Record a copy-on-write divergence from the baseline."""
        if self._base is None:
            raise RoutingError("cannot copy-on-write a RIB without a baseline")
        self._ribs[prefix] = rib
        self.stats.cow_copies += 1

    def is_shared(self, prefix: str) -> bool:
        """True when ``prefix`` still aliases the baseline's dict."""
        return (
            self._base is not None
            and prefix in self._ribs
            and self._ribs[prefix] is self._base.rib(prefix)
        )

    def mapping(self) -> Dict[str, Dict[int, BgpRoute]]:
        """The ``prefix -> asn -> route`` mapping for :class:`RoutingState`."""
        return self._ribs


class RoutingState:
    """Immutable snapshot of converged BGP routing.

    Built by the engine; user code should treat it as read-only.
    """

    def __init__(
        self,
        ribs: Dict[str, Dict[int, BgpRoute]],
        adj_out: Dict[Tuple[int, int], FrozenSet[str]],
        prefixes: Dict[str, int],
    ) -> None:
        # prefix -> asn -> selected route
        self._ribs = ribs
        # (link id, exporter asn) -> prefixes advertised over that session
        self._adj_out = adj_out
        # prefix -> origin asn
        self._prefixes = prefixes

    def best(self, asn: int, prefix: str) -> Optional[BgpRoute]:
        """Selected route of ``asn`` for ``prefix`` (``None`` = no route)."""
        if prefix not in self._ribs:
            raise RoutingError(f"prefix {prefix} was not part of this convergence")
        return self._ribs[prefix].get(asn)

    def rib(self, prefix: str) -> Dict[int, BgpRoute]:
        """The per-prefix RIB: ``asn -> selected route`` (read-only).

        The engine's incremental path *shares* these dicts between the
        baseline and derived routing states, so callers must never mutate
        the returned mapping.
        """
        if prefix not in self._ribs:
            raise RoutingError(f"prefix {prefix} was not part of this convergence")
        return self._ribs[prefix]

    def shares_rib_with(self, other: "RoutingState", prefix: str) -> bool:
        """True when both states hold the *same object* as ``prefix``'s RIB.

        Object identity (not equality): this is how tests observe that
        incremental re-convergence reused the baseline's routing objects
        for an unaffected prefix.
        """
        return self.rib(prefix) is other.rib(prefix)

    def equivalent_to(self, other: "RoutingState") -> bool:
        """Value equality of the full routing content.

        Compares every per-prefix RIB, the per-session Adj-RIB-Out and the
        prefix origins — the exact identity the incremental engine must
        preserve against a full recomputation.
        """
        return (
            self._prefixes == other._prefixes
            and self._ribs == other._ribs
            and self._adj_out == other._adj_out
        )

    def has_route(self, asn: int, prefix: str) -> bool:
        """True when ``asn`` holds any route towards ``prefix``."""
        return self.best(asn, prefix) is not None

    def as_path(self, asn: int, prefix: str) -> Optional[Tuple[int, ...]]:
        """Full AS path from ``asn`` to the origin, own AS included first.

        This is exactly what a Looking Glass located in ``asn`` reports for
        a query on ``prefix``.  ``None`` when the AS has no route.
        """
        route = self.best(asn, prefix)
        if route is None:
            return None
        return (asn,) + route.as_path

    def advertised(self, link_id: int, exporter_asn: int) -> FrozenSet[str]:
        """Prefixes the exporter announces over the given session.

        Empty when the session does not exist or is down in the state this
        routing was converged for.
        """
        return self._adj_out.get((link_id, exporter_asn), frozenset())

    def origin_of(self, prefix: str) -> int:
        """The AS that originates ``prefix``."""
        try:
            return self._prefixes[prefix]
        except KeyError:
            raise RoutingError(
                f"prefix {prefix} was not part of this convergence"
            ) from None

    @property
    def prefixes(self) -> Tuple[str, ...]:
        """All prefixes this state was converged for, sorted."""
        return tuple(sorted(self._prefixes))

    def reachable_ases(self, prefix: str) -> FrozenSet[int]:
        """ASes holding at least one route towards ``prefix``."""
        return frozenset(self._ribs[prefix])
