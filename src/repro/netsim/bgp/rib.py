"""Converged routing state: per-AS RIBs and per-session Adj-RIB-Out.

A :class:`RoutingState` is the output of one
:class:`~repro.netsim.bgp.engine.BgpEngine` convergence for one
:class:`~repro.netsim.topology.NetworkState`.  It answers the three
questions the rest of the system asks of BGP:

* ``best(asn, prefix)`` — which route does this AS use (drives the data
  plane and therefore traceroute)?
* ``as_path(asn, prefix)`` — what AS path would this AS's Looking Glass
  report (drives §3.4's UH mapping)?
* ``advertised(link_id, exporter_asn)`` — which prefixes flow over this
  eBGP session (diffing two states yields the withdrawal messages of §3.3)?
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import RoutingError
from repro.netsim.bgp.route import BgpRoute

__all__ = ["RoutingState"]


class RoutingState:
    """Immutable snapshot of converged BGP routing.

    Built by the engine; user code should treat it as read-only.
    """

    def __init__(
        self,
        ribs: Dict[str, Dict[int, BgpRoute]],
        adj_out: Dict[Tuple[int, int], FrozenSet[str]],
        prefixes: Dict[str, int],
    ) -> None:
        # prefix -> asn -> selected route
        self._ribs = ribs
        # (link id, exporter asn) -> prefixes advertised over that session
        self._adj_out = adj_out
        # prefix -> origin asn
        self._prefixes = prefixes

    def best(self, asn: int, prefix: str) -> Optional[BgpRoute]:
        """Selected route of ``asn`` for ``prefix`` (``None`` = no route)."""
        if prefix not in self._ribs:
            raise RoutingError(f"prefix {prefix} was not part of this convergence")
        return self._ribs[prefix].get(asn)

    def rib(self, prefix: str) -> Dict[int, BgpRoute]:
        """The per-prefix RIB: ``asn -> selected route`` (read-only).

        The engine's incremental path *shares* these dicts between the
        baseline and derived routing states, so callers must never mutate
        the returned mapping.
        """
        if prefix not in self._ribs:
            raise RoutingError(f"prefix {prefix} was not part of this convergence")
        return self._ribs[prefix]

    def shares_rib_with(self, other: "RoutingState", prefix: str) -> bool:
        """True when both states hold the *same object* as ``prefix``'s RIB.

        Object identity (not equality): this is how tests observe that
        incremental re-convergence reused the baseline's routing objects
        for an unaffected prefix.
        """
        return self.rib(prefix) is other.rib(prefix)

    def equivalent_to(self, other: "RoutingState") -> bool:
        """Value equality of the full routing content.

        Compares every per-prefix RIB, the per-session Adj-RIB-Out and the
        prefix origins — the exact identity the incremental engine must
        preserve against a full recomputation.
        """
        return (
            self._prefixes == other._prefixes
            and self._ribs == other._ribs
            and self._adj_out == other._adj_out
        )

    def has_route(self, asn: int, prefix: str) -> bool:
        """True when ``asn`` holds any route towards ``prefix``."""
        return self.best(asn, prefix) is not None

    def as_path(self, asn: int, prefix: str) -> Optional[Tuple[int, ...]]:
        """Full AS path from ``asn`` to the origin, own AS included first.

        This is exactly what a Looking Glass located in ``asn`` reports for
        a query on ``prefix``.  ``None`` when the AS has no route.
        """
        route = self.best(asn, prefix)
        if route is None:
            return None
        return (asn,) + route.as_path

    def advertised(self, link_id: int, exporter_asn: int) -> FrozenSet[str]:
        """Prefixes the exporter announces over the given session.

        Empty when the session does not exist or is down in the state this
        routing was converged for.
        """
        return self._adj_out.get((link_id, exporter_asn), frozenset())

    def origin_of(self, prefix: str) -> int:
        """The AS that originates ``prefix``."""
        try:
            return self._prefixes[prefix]
        except KeyError:
            raise RoutingError(
                f"prefix {prefix} was not part of this convergence"
            ) from None

    @property
    def prefixes(self) -> Tuple[str, ...]:
        """All prefixes this state was converged for, sorted."""
        return tuple(sorted(self._prefixes))

    def reachable_ases(self, prefix: str) -> FrozenSet[int]:
        """ASes holding at least one route towards ``prefix``."""
        return frozenset(self._ribs[prefix])
