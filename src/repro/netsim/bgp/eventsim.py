"""Event-driven (message-level) BGP simulation.

The production engine (:mod:`repro.netsim.bgp.engine`) computes converged
states directly with a Gauss-Seidel fixpoint — fast, but an abstraction.
This module is the *validator*: a C-BGP-style discrete-event simulator
that exchanges individual UPDATE messages (announcements and withdrawals)
over per-session FIFO channels until the network quiesces.

For Gao-Rexford-compliant policies the stable state is unique (Gao &
Rexford 2001), so the event-driven outcome must match the fixpoint
exactly — for *any* message timing.  The property tests drive both
engines over randomized topologies and delay schedules and require
identical RIBs; this is the strongest evidence the substitution of C-BGP
by a fixpoint preserves every observable the paper's evaluation consumes.

The simulator also exposes what the fixpoint cannot: the *message log*,
used by tests to sanity-check the withdrawal semantics of
:mod:`repro.netsim.bgp.messages` (e.g. "an explicit withdrawal is only
ever received over a session that is still up").
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConvergenceError, RoutingError
from repro.netsim.bgp import policy
from repro.netsim.bgp.rib import RoutingState
from repro.netsim.bgp.route import BgpRoute
from repro.netsim.topology import Internetwork, NetworkState

__all__ = ["BgpMessage", "EventDrivenBgp"]

#: Safety valve: no sane simulation of our topologies needs more.
_MAX_MESSAGES = 2_000_000


@dataclass(frozen=True)
class BgpMessage:
    """One UPDATE on the wire.

    ``route`` is ``None`` for a withdrawal.  ``link_id``/``from_asn``/
    ``to_asn`` identify the directed session.
    """

    prefix: str
    link_id: int
    from_asn: int
    to_asn: int
    route: Optional[Tuple[int, ...]]  # the announced AS path, None = withdraw


@dataclass
class _Speaker:
    """Per-AS BGP state for one prefix."""

    asn: int
    #: (link_id, neighbour asn) -> last announced AS path from there.
    rib_in: Dict[Tuple[int, int], Tuple[int, ...]] = field(default_factory=dict)
    #: (link_id, neighbour asn) -> AS path we last advertised to them.
    adj_out: Dict[Tuple[int, int], Optional[Tuple[int, ...]]] = field(
        default_factory=dict
    )
    best: Optional[BgpRoute] = None


class EventDrivenBgp:
    """Message-level convergence for a fixed topology and prefix set.

    Parameters mirror :class:`~repro.netsim.bgp.engine.BgpEngine`; the
    extra ``rng`` randomises per-message propagation delays (per-session
    FIFO order is always preserved, like TCP) so callers can probe
    timing-independence.
    """

    def __init__(
        self,
        net: Internetwork,
        prefixes: Dict[str, int],
        rng: Optional[random.Random] = None,
    ) -> None:
        self.net = net
        self._prefixes = dict(prefixes)
        self._rng = rng
        for prefix, asn in self._prefixes.items():
            if net.autonomous_system(asn).prefix != prefix:
                raise RoutingError(
                    f"prefix {prefix} is not the allocated prefix of AS {asn}"
                )
        self._sessions = self._enumerate_sessions()
        self.message_log: List[BgpMessage] = []

    def _enumerate_sessions(self) -> Dict[int, List[Tuple[int, int, int]]]:
        sessions: Dict[int, List[Tuple[int, int, int]]] = {
            autsys.asn: [] for autsys in self.net.ases()
        }
        for link in self.net.inter_links():
            asn_a = self.net.asn_of_router(link.a)
            asn_b = self.net.asn_of_router(link.b)
            sessions[asn_a].append((link.lid, asn_b, link.a))
            sessions[asn_b].append((link.lid, asn_a, link.b))
        for asn in sessions:
            sessions[asn].sort()
        return sessions

    # ----------------------------------------------------------------- run

    def converge(self, state: NetworkState) -> RoutingState:
        """Run the event simulation to quiescence and extract the state."""
        self.message_log = []
        ribs: Dict[str, Dict[int, BgpRoute]] = {}
        adj_out: Dict[Tuple[int, int], set] = {}
        for prefix in sorted(self._prefixes):
            speakers = self._converge_prefix(prefix, state)
            ribs[prefix] = {
                asn: speaker.best
                for asn, speaker in speakers.items()
                if speaker.best is not None
            }
            for asn, speaker in speakers.items():
                for (link_id, _nbr), path in speaker.adj_out.items():
                    if path is not None:
                        adj_out.setdefault((link_id, asn), set()).add(prefix)
        return RoutingState(
            ribs,
            {key: frozenset(v) for key, v in adj_out.items()},
            dict(self._prefixes),
        )

    # ------------------------------------------------------------ internals

    def _converge_prefix(
        self, prefix: str, state: NetworkState
    ) -> Dict[int, _Speaker]:
        origin = self._prefixes[prefix]
        speakers = {
            autsys.asn: _Speaker(asn=autsys.asn) for autsys in self.net.ases()
        }
        origin_alive = any(
            rid not in state.failed_routers
            for rid in self.net.autonomous_system(origin).router_ids
        )

        # Event queue: (deliver_time, seq, message).  Per-session FIFO is
        # guaranteed by making each session's next delivery strictly later
        # than its previous one.
        queue: List[Tuple[int, int, BgpMessage]] = []
        session_clock: Dict[Tuple[int, int, int], int] = {}
        seq = [0]

        def send(message: BgpMessage, now: int) -> None:
            jitter = self._rng.randint(1, 16) if self._rng else 1
            key = (message.link_id, message.from_asn, message.to_asn)
            deliver = max(now + jitter, session_clock.get(key, 0) + 1)
            session_clock[key] = deliver
            seq[0] += 1
            heapq.heappush(queue, (deliver, seq[0], message))
            self.message_log.append(message)

        def alive(link_id: int) -> bool:
            return self.net.link_up(link_id, state)

        def exports_of(speaker: _Speaker) -> None:
            """Send updates wherever our advertisement must change."""
            for link_id, nbr_asn, _own_router in self._sessions[speaker.asn]:
                if not alive(link_id):
                    continue
                wanted = self._export_path(speaker, prefix, link_id, nbr_asn, state)
                key = (link_id, nbr_asn)
                if speaker.adj_out.get(key) == wanted:
                    continue
                speaker.adj_out[key] = wanted
                send(
                    BgpMessage(
                        prefix=prefix,
                        link_id=link_id,
                        from_asn=speaker.asn,
                        to_asn=nbr_asn,
                        route=wanted,
                    ),
                    now=clock[0],
                )

        clock = [0]
        if origin_alive:
            speakers[origin].best = BgpRoute(
                prefix=prefix,
                as_path=(),
                local_pref=policy.LOCAL_PREF_CUSTOMER,
                ingress_link=None,
                egress_router=None,
            )
            exports_of(speakers[origin])

        processed = 0
        while queue:
            processed += 1
            if processed > _MAX_MESSAGES:
                raise ConvergenceError(
                    f"event simulation for {prefix} exceeded {_MAX_MESSAGES} "
                    "messages; the configuration oscillates"
                )
            deliver, _seq, message = heapq.heappop(queue)
            clock[0] = deliver
            receiver = speakers[message.to_asn]
            key = (message.link_id, message.from_asn)
            if message.route is None:
                receiver.rib_in.pop(key, None)
            else:
                receiver.rib_in[key] = message.route
            receiver.best = self._select(receiver, prefix)
            # Recompute exports unconditionally: adj_out diffing suppresses
            # the no-op messages, so this stays cheap and obviously right.
            exports_of(receiver)
        return speakers

    def _select(self, speaker: _Speaker, prefix: str) -> Optional[BgpRoute]:
        if speaker.asn == self._prefixes[prefix]:
            return speaker.best  # the origin never changes its mind
        best: Optional[BgpRoute] = None
        for (link_id, nbr_asn), as_path in sorted(speaker.rib_in.items()):
            if speaker.asn in as_path:
                continue  # receiver-side loop prevention
            rel = self.net.relationship(speaker.asn, nbr_asn)
            assert rel is not None
            candidate = BgpRoute(
                prefix=prefix,
                as_path=as_path,
                local_pref=policy.local_pref(rel),
                ingress_link=link_id,
                egress_router=self.net.endpoint_in_as(link_id, speaker.asn),
            )
            if best is None or candidate.preference_key() > best.preference_key():
                best = candidate
        return best

    def _export_path(
        self,
        speaker: _Speaker,
        prefix: str,
        link_id: int,
        nbr_asn: int,
        state: NetworkState,
    ) -> Optional[Tuple[int, ...]]:
        """What we should currently advertise over one session (None = nothing)."""
        route = speaker.best
        if route is None:
            return None
        # Sender-side loop prevention.
        if nbr_asn == speaker.asn or route.traverses(nbr_asn):
            return None
        learned_from = (
            None
            if route.is_origin
            else self.net.relationship(speaker.asn, route.neighbor_asn)
        )
        to_rel = self.net.relationship(speaker.asn, nbr_asn)
        assert to_rel is not None
        if not policy.may_export(learned_from, to_rel):
            return None
        exporting_router = self.net.endpoint_in_as(link_id, speaker.asn)
        if policy.filtered(state.filters, link_id, exporting_router, prefix):
            return None
        return (speaker.asn,) + route.as_path
