"""AS-level path-vector convergence engine (the C-BGP substitute).

The paper uses the event-driven C-BGP simulator, but only ever consumes
*converged* routing states (traceroutes are taken "after letting C-BGP
converge to a stable network state") plus the withdrawal messages one AS
logs between two states.  We therefore compute stable states directly with
a Gauss-Seidel path-vector iteration, which for Gao-Rexford-compliant
policies converges to the unique stable solution (Gao & Rexford 2001); the
withdrawal log falls out of diffing the per-session Adj-RIB-Out of two
states (:mod:`repro.netsim.bgp.messages`).

Each prefix converges independently, so the engine iterates per prefix:
within a sweep every AS (in ascending ASN order) recomputes its best route
from its neighbours' *current* selections; sweeps repeat until a full pass
changes nothing.
"""

from __future__ import annotations

import logging
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import ConvergenceError, RoutingError
from repro.netsim.bgp import policy
from repro.netsim.bgp.rib import RoutingState
from repro.netsim.bgp.route import BgpRoute
from repro.netsim.topology import Internetwork, NetworkState, Relationship

__all__ = ["BgpEngine"]

logger = logging.getLogger(__name__)


class BgpEngine:
    """Computes :class:`RoutingState` fixpoints for a fixed topology.

    Parameters
    ----------
    net:
        The internetwork.
    prefixes:
        Mapping ``prefix -> origin ASN``.  In the experiments this is the
        set of sensor-AS prefixes (plus AS-X's own prefix) — the only
        destinations the paper's measurements ever exercise — which keeps
        convergence cheap without changing any observable the algorithms
        consume.
    """

    def __init__(self, net: Internetwork, prefixes: Mapping[str, int]) -> None:
        self.net = net
        self._prefixes: Dict[str, int] = dict(prefixes)
        for prefix, asn in self._prefixes.items():
            autsys = net.autonomous_system(asn)  # validates the ASN
            if autsys.prefix != prefix:
                # Allow extra prefixes, but they must at least be registered
                # to a real AS; originating someone else's block would break
                # the IP-to-AS mapping assumptions.
                raise RoutingError(
                    f"prefix {prefix} is not the allocated prefix of AS {asn}"
                )
        self._sessions = self._enumerate_sessions()
        self._cache: Dict[NetworkState, RoutingState] = {}

    @classmethod
    def for_sensor_ases(
        cls, net: Internetwork, asns: Mapping[int, None] | List[int]
    ) -> "BgpEngine":
        """Convenience constructor: converge the prefixes of ``asns``."""
        prefixes = {
            net.autonomous_system(asn).prefix: asn for asn in sorted(set(asns))
        }
        return cls(net, prefixes)

    # ----------------------------------------------------------------- public

    @property
    def prefixes(self) -> Dict[str, int]:
        """Mapping prefix -> origin ASN this engine converges."""
        return dict(self._prefixes)

    def converge(self, state: NetworkState) -> RoutingState:
        """Return the stable routing state under ``state`` (cached)."""
        cached = self._cache.get(state)
        if cached is not None:
            return cached
        ribs: Dict[str, Dict[int, BgpRoute]] = {}
        for prefix in sorted(self._prefixes):
            ribs[prefix] = self._converge_prefix(prefix, state)
        adj_out = self._compute_adj_out(ribs, state)
        routing = RoutingState(ribs, adj_out, dict(self._prefixes))
        self._cache[state] = routing
        return routing

    # --------------------------------------------------------------- internal

    def _enumerate_sessions(self) -> Dict[int, List[Tuple[int, int, int]]]:
        """Per-AS import sessions: asn -> [(link id, neighbor asn, own router)].

        Sorted by link id for determinism.
        """
        sessions: Dict[int, List[Tuple[int, int, int]]] = {
            autsys.asn: [] for autsys in self.net.ases()
        }
        for link in self.net.inter_links():
            asn_a = self.net.asn_of_router(link.a)
            asn_b = self.net.asn_of_router(link.b)
            sessions[asn_a].append((link.lid, asn_b, link.a))
            sessions[asn_b].append((link.lid, asn_a, link.b))
        for asn in sessions:
            sessions[asn].sort()
        return sessions

    def _converge_prefix(
        self, prefix: str, state: NetworkState
    ) -> Dict[int, BgpRoute]:
        origin = self._prefixes[prefix]
        rib: Dict[int, Optional[BgpRoute]] = {
            autsys.asn: None for autsys in self.net.ases()
        }
        if self._as_alive(origin, state):
            rib[origin] = BgpRoute(
                prefix=prefix,
                as_path=(),
                local_pref=policy.LOCAL_PREF_CUSTOMER,
                ingress_link=None,
                egress_router=None,
            )
        order = sorted(rib)
        max_sweeps = self.net.num_ases + 5
        for _sweep in range(max_sweeps):
            changed = False
            for asn in order:
                if asn == origin:
                    continue
                best = self._select(asn, prefix, rib, state)
                if best != rib[asn]:
                    rib[asn] = best
                    changed = True
            if not changed:
                logger.debug(
                    "prefix %s converged in %d sweeps", prefix, _sweep + 1
                )
                return {asn: route for asn, route in rib.items() if route is not None}
        raise ConvergenceError(
            f"prefix {prefix} did not converge within {max_sweeps} sweeps; "
            "the policy configuration is not Gao-Rexford safe"
        )

    def _select(
        self,
        asn: int,
        prefix: str,
        rib: Dict[int, Optional[BgpRoute]],
        state: NetworkState,
    ) -> Optional[BgpRoute]:
        """Best candidate route of ``asn`` given neighbours' selections."""
        best: Optional[BgpRoute] = None
        for link_id, nbr_asn, own_router in self._sessions[asn]:
            candidate = self._import_over(
                asn, prefix, link_id, nbr_asn, own_router, rib, state
            )
            if candidate is None:
                continue
            if best is None or candidate.preference_key() > best.preference_key():
                best = candidate
        return best

    def _import_over(
        self,
        asn: int,
        prefix: str,
        link_id: int,
        nbr_asn: int,
        own_router: int,
        rib: Dict[int, Optional[BgpRoute]],
        state: NetworkState,
    ) -> Optional[BgpRoute]:
        """The route ``asn`` would learn over one session, or ``None``."""
        if not self.net.link_up(link_id, state):
            return None
        nbr_route = rib.get(nbr_asn)
        if nbr_route is None:
            return None
        # Sender-side loop prevention: never announce a path back into it.
        if asn == nbr_asn or nbr_route.traverses(asn):
            return None
        learned_from = self._learned_relationship(nbr_asn, nbr_route)
        to_rel = self.net.relationship(nbr_asn, asn)
        assert to_rel is not None  # add_link enforced a declared relationship
        if not policy.may_export(learned_from, to_rel):
            return None
        exporting_router = self.net.endpoint_in_as(link_id, nbr_asn)
        if policy.filtered(state.filters, link_id, exporting_router, prefix):
            return None
        rel_to_nbr = self.net.relationship(asn, nbr_asn)
        assert rel_to_nbr is not None
        return BgpRoute(
            prefix=prefix,
            as_path=(nbr_asn,) + nbr_route.as_path,
            local_pref=policy.local_pref(rel_to_nbr),
            ingress_link=link_id,
            egress_router=own_router,
        )

    def _learned_relationship(
        self, holder_asn: int, route: BgpRoute
    ) -> Optional[Relationship]:
        """Relationship of the route holder towards the AS it learned from."""
        if route.is_origin:
            return None
        rel = self.net.relationship(holder_asn, route.neighbor_asn)
        assert rel is not None
        return rel

    def _compute_adj_out(
        self, ribs: Dict[str, Dict[int, BgpRoute]], state: NetworkState
    ) -> Dict[Tuple[int, int], FrozenSet[str]]:
        """Per directed session, the prefixes actually advertised."""
        adj: Dict[Tuple[int, int], set] = {}
        for link in self.net.inter_links():
            if not self.net.link_up(link.lid, state):
                continue
            asn_a = self.net.asn_of_router(link.a)
            asn_b = self.net.asn_of_router(link.b)
            for exporter, importer in ((asn_a, asn_b), (asn_b, asn_a)):
                key = (link.lid, exporter)
                adj.setdefault(key, set())
                for prefix, per_as in ribs.items():
                    route = per_as.get(exporter)
                    if route is None:
                        continue
                    if importer == exporter or route.traverses(importer):
                        continue
                    learned_from = self._learned_relationship(exporter, route)
                    to_rel = self.net.relationship(exporter, importer)
                    assert to_rel is not None
                    if not policy.may_export(learned_from, to_rel):
                        continue
                    exporting_router = self.net.endpoint_in_as(link.lid, exporter)
                    if policy.filtered(
                        state.filters, link.lid, exporting_router, prefix
                    ):
                        continue
                    adj[key].add(prefix)
        return {key: frozenset(prefixes) for key, prefixes in adj.items()}

    def _as_alive(self, asn: int, state: NetworkState) -> bool:
        """True when the AS still has at least one alive router."""
        autsys = self.net.autonomous_system(asn)
        return any(rid not in state.failed_routers for rid in autsys.router_ids)
