"""AS-level path-vector convergence engine (the C-BGP substitute).

The paper uses the event-driven C-BGP simulator, but only ever consumes
*converged* routing states (traceroutes are taken "after letting C-BGP
converge to a stable network state") plus the withdrawal messages one AS
logs between two states.  We therefore compute stable states directly with
a Gauss-Seidel path-vector iteration, which for Gao-Rexford-compliant
policies converges to the unique stable solution (Gao & Rexford 2001); the
withdrawal log falls out of diffing the per-session Adj-RIB-Out of two
states (:mod:`repro.netsim.bgp.messages`).

Each prefix converges independently, so the engine iterates per prefix:
within a sweep every AS (in ascending ASN order) recomputes its best route
from its neighbours' *current* selections; sweeps repeat until a full pass
changes nothing.

**Incremental re-convergence.**  The experiment loop converges a baseline
state once and then many failure states derived from it.  A failure only
perturbs the prefixes whose converged routes actually traverse the failed
element: for Gao-Rexford-safe policies the stable state is *unique*, and
removing links/routers/announcements that no selected route of a prefix
uses leaves that prefix's old fixpoint a fixpoint of the degraded network
— hence *the* solution.  The engine therefore records, per prefix, the
inter-AS links its baseline routes were learned over (plus their endpoint
routers and the origin AS's routers), and on a state that is a pure
degradation of the baseline re-runs :meth:`_converge_prefix` only for
prefixes whose dependency set intersects the newly failed/filtered
elements; every other prefix shares the baseline's per-prefix RIB object.
IGP weight overrides never enter the BGP decision process here, so they
never trigger re-convergence.  Setting ``REPRO_FULL_CONVERGE=1`` in the
environment forces the historical full recomputation for every state.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import ConvergenceError, RoutingError
from repro.netsim.bgp import policy
from repro.netsim.bgp.rib import CowRibTable, RibSharingStats, RoutingState
from repro.netsim.bgp.route import BgpRoute
from repro.netsim.cache import LruCache
from repro.netsim.topology import Internetwork, NetworkState, Relationship

__all__ = ["BgpEngine", "ConvergenceCounters", "DEFAULT_ROUTING_CACHE_CAPACITY"]

logger = logging.getLogger(__name__)

#: Converged states kept per engine; one baseline plus the live working set
#: of failure states of a batch fit comfortably.
DEFAULT_ROUTING_CACHE_CAPACITY = 256


def full_converge_forced() -> bool:
    """True when ``REPRO_FULL_CONVERGE`` disables the incremental path."""
    return os.environ.get("REPRO_FULL_CONVERGE", "") not in ("", "0")


@dataclass
class ConvergenceCounters:
    """Accounting of one engine's convergence work.

    ``prefixes_converged`` counts :meth:`BgpEngine._converge_prefix` runs
    (the expensive fixpoint sweeps); ``prefixes_reused`` counts prefixes
    whose baseline routes were shared instead.  Their ratio is the direct
    measure of what incremental re-convergence saves.
    """

    full_converges: int = 0
    incremental_converges: int = 0
    prefixes_converged: int = 0
    prefixes_reused: int = 0


class BgpEngine:
    """Computes :class:`RoutingState` fixpoints for a fixed topology.

    Parameters
    ----------
    net:
        The internetwork.
    prefixes:
        Mapping ``prefix -> origin ASN``.  In the experiments this is the
        set of sensor-AS prefixes (plus AS-X's own prefix) — the only
        destinations the paper's measurements ever exercise — which keeps
        convergence cheap without changing any observable the algorithms
        consume.
    cache_capacity:
        Converged states kept in the LRU cache (``0`` = unbounded).  The
        baseline state is pinned outside the cache and never evicted.
    incremental:
        Enables baseline-relative incremental re-convergence (see the
        module docstring).  ``REPRO_FULL_CONVERGE=1`` overrides this at
        call time.
    """

    def __init__(
        self,
        net: Internetwork,
        prefixes: Mapping[str, int],
        cache_capacity: int = DEFAULT_ROUTING_CACHE_CAPACITY,
        incremental: bool = True,
    ) -> None:
        self.net = net
        self._prefixes: Dict[str, int] = dict(prefixes)
        for prefix, asn in self._prefixes.items():
            autsys = net.autonomous_system(asn)  # validates the ASN
            if autsys.prefix != prefix:
                # Allow extra prefixes, but they must at least be registered
                # to a real AS; originating someone else's block would break
                # the IP-to-AS mapping assumptions.
                raise RoutingError(
                    f"prefix {prefix} is not the allocated prefix of AS {asn}"
                )
        self._sessions = self._enumerate_sessions()
        self._cache: LruCache[NetworkState, RoutingState] = LruCache(
            cache_capacity
        )
        self.incremental = incremental
        self.counters = ConvergenceCounters()
        # Accumulated copy-on-write RIB accounting across every converge.
        self.rib_sharing = RibSharingStats()
        # (state, routing) of the first converged state; dependency sets are
        # derived from it lazily (prefix -> (inter link ids, router ids)).
        self._baseline: Optional[Tuple[NetworkState, RoutingState]] = None
        self._deps: Optional[
            Dict[str, Tuple[FrozenSet[int], FrozenSet[int]]]
        ] = None

    @classmethod
    def for_sensor_ases(
        cls,
        net: Internetwork,
        asns: Mapping[int, None] | List[int],
        **kwargs,
    ) -> "BgpEngine":
        """Convenience constructor: converge the prefixes of ``asns``."""
        prefixes = {
            net.autonomous_system(asn).prefix: asn for asn in sorted(set(asns))
        }
        return cls(net, prefixes, **kwargs)

    # ----------------------------------------------------------------- public

    @property
    def prefixes(self) -> Dict[str, int]:
        """Mapping prefix -> origin ASN this engine converges."""
        return dict(self._prefixes)

    def converge(self, state: NetworkState) -> RoutingState:
        """Return the stable routing state under ``state`` (cached).

        The first state ever converged becomes the engine's *baseline*:
        it is pinned (never evicted) and later states that only add
        failures/filters on top of it re-converge only the affected
        prefixes (see the module docstring).
        """
        if self._baseline is not None and state == self._baseline[0]:
            self._cache.hits += 1  # the pinned entry is logically cached
            return self._baseline[1]
        cached = self._cache.get(state)
        if cached is not None:
            return cached
        if self._baseline is None:
            routing = self._full_converge(state)
            self._baseline = (state, routing)
            return routing
        if (
            self.incremental
            and not full_converge_forced()
            and self._is_degradation_of_baseline(state)
        ):
            routing = self._incremental_converge(state)
        else:
            routing = self._full_converge(state)
        self._cache.put(state, routing)
        return routing

    # --------------------------------------------------------------- internal

    def _full_converge(self, state: NetworkState) -> RoutingState:
        """The historical path: fixpoint every prefix from scratch."""
        table = CowRibTable()
        for prefix in sorted(self._prefixes):
            table.own(prefix, self._converge_prefix(prefix, state))
            self.counters.prefixes_converged += 1
        ribs = table.mapping()
        adj_out = self._compute_adj_out(ribs, state)
        self.counters.full_converges += 1
        self.rib_sharing.absorb(table.stats)
        return RoutingState(ribs, adj_out, dict(self._prefixes))

    def _is_degradation_of_baseline(self, state: NetworkState) -> bool:
        """True when ``state`` only *adds* failures/filters to the baseline.

        Monotone degradations are the only states the dependency argument
        covers: elements coming back up could create routes anywhere, so
        anything else falls back to a full recomputation.  IGP weight
        overrides are ignored — the AS-level decision process never reads
        them.
        """
        base = self._baseline[0]
        return (
            base.failed_links <= state.failed_links
            and base.failed_routers <= state.failed_routers
            and set(base.filters) <= set(state.filters)
        )

    def _dependencies(self) -> Dict[str, Tuple[FrozenSet[int], FrozenSet[int]]]:
        """Per-prefix dependency sets derived from the baseline routing.

        For each prefix: the inter-AS link ids its selected routes were
        learned over (at fixpoint every AS's path is its ingress session
        plus its neighbour's selected path, so the union of ``ingress_link``
        over the RIB covers every link any selected route traverses), and
        the router ids whose failure could perturb the prefix (endpoints of
        those links, plus the origin AS's routers for origin aliveness).
        """
        if self._deps is None:
            _, base_routing = self._baseline
            deps: Dict[str, Tuple[FrozenSet[int], FrozenSet[int]]] = {}
            for prefix, origin in self._prefixes.items():
                links = {
                    route.ingress_link
                    for route in base_routing.rib(prefix).values()
                    if route.ingress_link is not None
                }
                routers = set(self.net.autonomous_system(origin).router_ids)
                for lid in links:
                    link = self.net.link(lid)
                    routers.add(link.a)
                    routers.add(link.b)
                deps[prefix] = (frozenset(links), frozenset(routers))
            self._deps = deps
        return self._deps

    def _incremental_converge(self, state: NetworkState) -> RoutingState:
        """Re-converge only the prefixes the state's new failures touch."""
        base_state, base_routing = self._baseline
        added_links = state.failed_links - base_state.failed_links
        added_routers = state.failed_routers - base_state.failed_routers
        base_filters = set(base_state.filters)
        added_filters = [f for f in state.filters if f not in base_filters]
        deps = self._dependencies()

        table = CowRibTable(base=base_routing)
        for prefix in sorted(self._prefixes):
            dep_links, dep_routers = deps[prefix]
            affected = (
                bool(added_links & dep_links)
                or bool(added_routers & dep_routers)
                or any(
                    f.link_id in dep_links and prefix in f.prefixes
                    for f in added_filters
                )
            )
            if affected:
                # Copy-on-write divergence: the prefix's routes are
                # recomputed; the baseline's dict is never mutated.
                table.write(prefix, self._converge_prefix(prefix, state))
                self.counters.prefixes_converged += 1
            else:
                # Shares the baseline's per-prefix RIB object (read-only).
                table.share(prefix)
                self.counters.prefixes_reused += 1
        ribs = table.mapping()
        adj_out = self._compute_adj_out(ribs, state)
        self.counters.incremental_converges += 1
        self.rib_sharing.absorb(table.stats)
        return RoutingState(ribs, adj_out, dict(self._prefixes))

    def _enumerate_sessions(self) -> Dict[int, List[Tuple[int, int, int]]]:
        """Per-AS import sessions: asn -> [(link id, neighbor asn, own router)].

        Sorted by link id for determinism.
        """
        sessions: Dict[int, List[Tuple[int, int, int]]] = {
            autsys.asn: [] for autsys in self.net.ases()
        }
        for link in self.net.inter_links():
            asn_a = self.net.asn_of_router(link.a)
            asn_b = self.net.asn_of_router(link.b)
            sessions[asn_a].append((link.lid, asn_b, link.a))
            sessions[asn_b].append((link.lid, asn_a, link.b))
        for asn in sessions:
            sessions[asn].sort()
        return sessions

    def _converge_prefix(
        self, prefix: str, state: NetworkState
    ) -> Dict[int, BgpRoute]:
        origin = self._prefixes[prefix]
        rib: Dict[int, Optional[BgpRoute]] = {
            autsys.asn: None for autsys in self.net.ases()
        }
        if self._as_alive(origin, state):
            rib[origin] = BgpRoute(
                prefix=prefix,
                as_path=(),
                local_pref=policy.LOCAL_PREF_CUSTOMER,
                ingress_link=None,
                egress_router=None,
            )
        order = sorted(rib)
        max_sweeps = self.net.num_ases + 5
        for _sweep in range(max_sweeps):
            changed = False
            for asn in order:
                if asn == origin:
                    continue
                best = self._select(asn, prefix, rib, state)
                if best != rib[asn]:
                    rib[asn] = best
                    changed = True
            if not changed:
                logger.debug(
                    "prefix %s converged in %d sweeps", prefix, _sweep + 1
                )
                return {asn: route for asn, route in rib.items() if route is not None}
        raise ConvergenceError(
            f"prefix {prefix} did not converge within {max_sweeps} sweeps; "
            "the policy configuration is not Gao-Rexford safe"
        )

    def _select(
        self,
        asn: int,
        prefix: str,
        rib: Dict[int, Optional[BgpRoute]],
        state: NetworkState,
    ) -> Optional[BgpRoute]:
        """Best candidate route of ``asn`` given neighbours' selections."""
        best: Optional[BgpRoute] = None
        for link_id, nbr_asn, own_router in self._sessions[asn]:
            candidate = self._import_over(
                asn, prefix, link_id, nbr_asn, own_router, rib, state
            )
            if candidate is None:
                continue
            if best is None or candidate.preference_key() > best.preference_key():
                best = candidate
        return best

    def _import_over(
        self,
        asn: int,
        prefix: str,
        link_id: int,
        nbr_asn: int,
        own_router: int,
        rib: Dict[int, Optional[BgpRoute]],
        state: NetworkState,
    ) -> Optional[BgpRoute]:
        """The route ``asn`` would learn over one session, or ``None``."""
        if not self.net.link_up(link_id, state):
            return None
        nbr_route = rib.get(nbr_asn)
        if nbr_route is None:
            return None
        # Sender-side loop prevention: never announce a path back into it.
        if asn == nbr_asn or nbr_route.traverses(asn):
            return None
        learned_from = self._learned_relationship(nbr_asn, nbr_route)
        to_rel = self.net.relationship(nbr_asn, asn)
        assert to_rel is not None  # add_link enforced a declared relationship
        if not policy.may_export(learned_from, to_rel):
            return None
        exporting_router = self.net.endpoint_in_as(link_id, nbr_asn)
        if policy.filtered(state.filters, link_id, exporting_router, prefix):
            return None
        rel_to_nbr = self.net.relationship(asn, nbr_asn)
        assert rel_to_nbr is not None
        return BgpRoute(
            prefix=prefix,
            as_path=(nbr_asn,) + nbr_route.as_path,
            local_pref=policy.local_pref(rel_to_nbr),
            ingress_link=link_id,
            egress_router=own_router,
        )

    def _learned_relationship(
        self, holder_asn: int, route: BgpRoute
    ) -> Optional[Relationship]:
        """Relationship of the route holder towards the AS it learned from."""
        if route.is_origin:
            return None
        rel = self.net.relationship(holder_asn, route.neighbor_asn)
        assert rel is not None
        return rel

    def _compute_adj_out(
        self, ribs: Dict[str, Dict[int, BgpRoute]], state: NetworkState
    ) -> Dict[Tuple[int, int], FrozenSet[str]]:
        """Per directed session, the prefixes actually advertised."""
        adj: Dict[Tuple[int, int], set] = {}
        for link in self.net.inter_links():
            if not self.net.link_up(link.lid, state):
                continue
            asn_a = self.net.asn_of_router(link.a)
            asn_b = self.net.asn_of_router(link.b)
            for exporter, importer in ((asn_a, asn_b), (asn_b, asn_a)):
                key = (link.lid, exporter)
                adj.setdefault(key, set())
                for prefix, per_as in ribs.items():
                    route = per_as.get(exporter)
                    if route is None:
                        continue
                    if importer == exporter or route.traverses(importer):
                        continue
                    learned_from = self._learned_relationship(exporter, route)
                    to_rel = self.net.relationship(exporter, importer)
                    assert to_rel is not None
                    if not policy.may_export(learned_from, to_rel):
                        continue
                    exporting_router = self.net.endpoint_in_as(link.lid, exporter)
                    if policy.filtered(
                        state.filters, link.lid, exporting_router, prefix
                    ):
                        continue
                    adj[key].add(prefix)
        return {key: frozenset(prefixes) for key, prefixes in adj.items()}

    def _as_alive(self, asn: int, state: NetworkState) -> bool:
        """True when the AS still has at least one alive router."""
        autsys = self.net.autonomous_system(asn)
        return any(rid not in state.failed_routers for rid in autsys.router_ids)
