"""AS-level BGP substrate: routes, policies, fixpoint engine, messages."""

from repro.netsim.bgp.engine import BgpEngine
from repro.netsim.bgp.eventsim import BgpMessage, EventDrivenBgp
from repro.netsim.bgp.messages import BgpWithdrawal, withdrawals_observed_by
from repro.netsim.bgp.rib import CowRibTable, RibSharingStats, RoutingState
from repro.netsim.bgp.route import BgpRoute

__all__ = [
    "BgpEngine",
    "BgpMessage",
    "BgpRoute",
    "BgpWithdrawal",
    "CowRibTable",
    "EventDrivenBgp",
    "RibSharingStats",
    "RoutingState",
    "withdrawals_observed_by",
]
