"""BGP route representation.

A :class:`BgpRoute` is the AS-level view of one path towards one prefix, as
held in the RIB of a single AS.  The AS path convention follows real BGP:
``as_path`` lists the ASes the route traverses starting at the neighbour the
route was learned from and ending at the origin AS; the holding AS itself is
*not* included.  Self-originated routes therefore have an empty AS path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["BgpRoute"]


@dataclass(frozen=True)
class BgpRoute:
    """One candidate (or selected) route of an AS towards ``prefix``.

    Attributes
    ----------
    prefix:
        Destination prefix in CIDR notation.
    as_path:
        ASes towards the origin, neighbour first, origin last.  Empty for a
        self-originated route.
    local_pref:
        Policy preference derived from the business relationship with the
        neighbour the route was learned from (customer > peer > provider).
    ingress_link:
        Link id of the eBGP session the route was learned over; ``None``
        for self-originated routes.
    egress_router:
        Router id of the holding AS's border router on ``ingress_link``
        (where traffic towards the prefix leaves the AS); ``None`` for
        self-originated routes.
    """

    prefix: str
    as_path: Tuple[int, ...]
    local_pref: int
    ingress_link: Optional[int]
    egress_router: Optional[int]

    @property
    def neighbor_asn(self) -> Optional[int]:
        """The AS the route was learned from (``None`` if self-originated)."""
        return self.as_path[0] if self.as_path else None

    @property
    def origin_asn(self) -> Optional[int]:
        """The AS that originated the prefix (``None`` if self-originated —
        the holder *is* the origin in that case)."""
        return self.as_path[-1] if self.as_path else None

    @property
    def is_origin(self) -> bool:
        """True when the holding AS originates the prefix itself."""
        return not self.as_path

    def preference_key(self) -> Tuple[int, int, int, int]:
        """Total order used by the decision process (max wins).

        Mirrors the standard BGP decision steps we model: highest
        local-pref, then shortest AS path, then lowest neighbour ASN, then
        lowest ingress link id (a deterministic stand-in for the
        router-id/oldest-route tie-breakers).
        """
        return (
            self.local_pref,
            -len(self.as_path),
            -(self.neighbor_asn if self.neighbor_asn is not None else 0),
            -(self.ingress_link if self.ingress_link is not None else 0),
        )

    def traverses(self, asn: int) -> bool:
        """True if ``asn`` appears in the AS path (loop prevention)."""
        return asn in self.as_path

    def __str__(self) -> str:  # pragma: no cover - debug convenience
        path = " ".join(str(a) for a in self.as_path) or "(origin)"
        return f"{self.prefix} via [{path}] pref={self.local_pref}"
