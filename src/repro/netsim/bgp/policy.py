"""Gao-Rexford routing policies and export filters.

The paper's topology is a customer-provider hierarchy with a full mesh of
peering core ASes, so we implement the standard policy model:

* **import**: routes learned from customers get the highest local-pref,
  peers the middle, providers the lowest (prefer revenue, then free, then
  paid transit);
* **export** (valley-free): self-originated routes and routes learned from
  customers are exported to everyone; routes learned from peers or
  providers are exported to customers only.

Router misconfigurations (§3.1 of the paper) are modelled as
:class:`~repro.netsim.topology.ExportFilter` objects carried by the
:class:`~repro.netsim.topology.NetworkState`; :func:`filtered` checks them
for one directed session.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import RoutingError
from repro.netsim.topology import ExportFilter, Relationship

__all__ = [
    "LOCAL_PREF_CUSTOMER",
    "LOCAL_PREF_PEER",
    "LOCAL_PREF_PROVIDER",
    "local_pref",
    "may_export",
    "filtered",
]

LOCAL_PREF_CUSTOMER = 100
LOCAL_PREF_PEER = 80
LOCAL_PREF_PROVIDER = 60


def local_pref(rel_to_neighbor: Relationship) -> int:
    """Local-pref assigned to a route learned from a neighbour.

    ``rel_to_neighbor`` is the relationship *of the importing AS towards the
    neighbour*: ``PROVIDER_CUSTOMER`` means the neighbour is a customer.
    """
    if rel_to_neighbor is Relationship.PROVIDER_CUSTOMER:
        return LOCAL_PREF_CUSTOMER
    if rel_to_neighbor is Relationship.PEER:
        return LOCAL_PREF_PEER
    if rel_to_neighbor is Relationship.CUSTOMER_PROVIDER:
        return LOCAL_PREF_PROVIDER
    raise RoutingError(f"unknown relationship {rel_to_neighbor!r}")


def may_export(
    learned_from: Optional[Relationship], to_neighbor: Relationship
) -> bool:
    """Valley-free export rule.

    ``learned_from`` is the exporter's relationship towards the AS the route
    was learned from (``None`` for self-originated routes); ``to_neighbor``
    is the exporter's relationship towards the AS being exported to.
    """
    if learned_from is None:
        return True  # own prefix: advertise to the whole world
    if learned_from is Relationship.PROVIDER_CUSTOMER:
        return True  # customer route: advertise to everyone
    # Peer or provider route: only customers may hear about it.
    return to_neighbor is Relationship.PROVIDER_CUSTOMER


def filtered(
    filters: Iterable[ExportFilter],
    link_id: int,
    exporting_router: int,
    prefix: str,
) -> bool:
    """True if any active export filter suppresses ``prefix`` on the directed
    session identified by (``link_id``, ``exporting_router``)."""
    return any(f.blocks(link_id, exporting_router, prefix) for f in filters)
