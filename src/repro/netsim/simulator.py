"""Simulator facade: one object tying topology, routing and measurement.

The experiments follow the paper's loop — converge, traceroute the sensor
mesh, inject an event, re-converge, traceroute again, hand everything to
the diagnosis algorithms.  :class:`Simulator` packages the substrate pieces
(IGP cache, BGP engine, traceroute, control-plane observation) behind the
small API that loop needs, with caching keyed on the immutable
:class:`~repro.netsim.topology.NetworkState`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.netsim.bgp.engine import (
    DEFAULT_ROUTING_CACHE_CAPACITY,
    BgpEngine,
)
from repro.netsim.bgp.messages import BgpWithdrawal, withdrawals_observed_by
from repro.netsim.bgp.rib import RoutingState
from repro.netsim.cache import LruCache
from repro.netsim.events import Event
from repro.netsim.forwarding import IgpCache
from repro.netsim.igp import igp_link_down_events
from repro.netsim.topology import Internetwork, Link, NetworkState
from repro.netsim.traceroute import TraceResult, trace_route
from repro.netsim.validate import validate_gao_rexford
from repro.errors import TopologyError

__all__ = ["Simulator", "DEFAULT_TRACE_CACHE_CAPACITY"]

#: Cached traceroutes kept per simulator.  A batch touches
#: ``O(pairs × states)`` distinct keys; this default holds the working set
#: of the standard figure batches while bounding week-long sweeps.
DEFAULT_TRACE_CACHE_CAPACITY = 65536


class Simulator:
    """Converged-state network simulator for one topology.

    Parameters
    ----------
    net:
        The internetwork.
    destination_asns:
        ASes whose prefixes routing must be converged for — the sensor ASes
        (and AS-X).  Restricting convergence to the prefixes measurements
        actually target keeps the fixpoint cheap without changing any
        observable (see :class:`~repro.netsim.bgp.engine.BgpEngine`).
    trace_cache_capacity:
        Traceroutes kept in the LRU cache (``0`` = unbounded).
    routing_cache_capacity:
        Converged routing states kept by the BGP engine (``0`` =
        unbounded; the baseline state is pinned regardless).
    incremental:
        Enables the engine's incremental re-convergence; overridden by
        ``REPRO_FULL_CONVERGE=1``.
    validate:
        Run :func:`~repro.netsim.validate.validate_gao_rexford` on the
        topology up front and raise a
        :class:`~repro.errors.TopologyError` naming the offending
        AS/link instead of failing later with a
        :class:`~repro.errors.ConvergenceError` deep inside an
        experiment.  Disable only for deliberately unsafe test fixtures.
    """

    def __init__(
        self,
        net: Internetwork,
        destination_asns: Iterable[int],
        trace_cache_capacity: int = DEFAULT_TRACE_CACHE_CAPACITY,
        routing_cache_capacity: int = DEFAULT_ROUTING_CACHE_CAPACITY,
        incremental: bool = True,
        validate: bool = True,
    ) -> None:
        if validate:
            issues = validate_gao_rexford(net)
            if issues:
                details = "; ".join(
                    f"[{issue.kind}] {issue.detail}" for issue in issues
                )
                raise TopologyError(
                    f"topology failed validation with {len(issues)} "
                    f"issue(s): {details}"
                )
        self.net = net
        self._dest_asns = tuple(sorted(set(destination_asns)))
        self.engine = BgpEngine.for_sensor_ases(
            net,
            list(self._dest_asns),
            cache_capacity=routing_cache_capacity,
            incremental=incremental,
        )
        self.igp_cache = IgpCache(net)
        self._trace_cache: LruCache[tuple, TraceResult] = LruCache(
            trace_cache_capacity
        )
        self._mapper = net.ip_to_as_mapper()

    @property
    def mapper(self):
        """Shared IP-to-AS mapper (prefix allocations are fixed at build
        time, so one mapper serves every snapshot of this topology)."""
        return self._mapper

    # ------------------------------------------------------------- routing

    @property
    def destination_asns(self) -> tuple:
        """ASes whose prefixes this simulator converges."""
        return self._dest_asns

    def routing(self, state: NetworkState) -> RoutingState:
        """Converged routing under ``state`` (cached by the engine)."""
        return self.engine.converge(state)

    def apply(self, event: Event, base: Optional[NetworkState] = None) -> NetworkState:
        """Apply ``event`` on top of ``base`` (default: the nominal state)."""
        return event.apply_to(base or NetworkState.nominal())

    # --------------------------------------------------------- measurement

    def trace(
        self,
        state: NetworkState,
        src_router: int,
        dst_router: int,
        blocked_ases: FrozenSet[int] = frozenset(),
    ) -> TraceResult:
        """Traceroute between two routers under ``state`` (cached)."""
        key = (state, src_router, dst_router, blocked_ases)
        cached = self._trace_cache.get(key)
        if cached is None:
            cached = trace_route(
                self.net,
                self.routing(state),
                state,
                src_router,
                dst_router,
                blocked_ases=blocked_ases,
                igp_cache=self.igp_cache,
            )
            self._trace_cache.put(key, cached)
        return cached

    # ---------------------------------------------------------- accounting

    def cache_stats(self) -> Dict[str, int]:
        """Flat counter snapshot of both caches and the convergence work.

        Keys are prefixed ``trace_cache_*`` / ``routing_cache_*`` plus the
        engine's :class:`~repro.netsim.bgp.engine.ConvergenceCounters`
        fields — the exact numbers
        :class:`~repro.experiments.runner.PlacementStats` records.
        """
        stats = {
            f"trace_cache_{key}": value
            for key, value in self._trace_cache.counters().items()
        }
        stats.update(
            {
                f"routing_cache_{key}": value
                for key, value in self.engine._cache.counters().items()
            }
        )
        counters = self.engine.counters
        stats.update(
            full_converges=counters.full_converges,
            incremental_converges=counters.incremental_converges,
            prefixes_converged=counters.prefixes_converged,
            prefixes_reused=counters.prefixes_reused,
        )
        sharing = self.engine.rib_sharing
        stats.update(
            rib_prefixes_owned=sharing.prefixes_owned,
            rib_prefixes_shared=sharing.prefixes_shared,
            rib_cow_copies=sharing.cow_copies,
        )
        return stats

    # ------------------------------------------------------- control plane

    def igp_link_down(self, asx: int, state: NetworkState) -> List[Link]:
        """IGP "link down" messages AS-X observes under ``state`` (§3.3)."""
        return igp_link_down_events(self.net, asx, state)

    def withdrawals(
        self, asx: int, before: NetworkState, after: NetworkState
    ) -> List[BgpWithdrawal]:
        """BGP withdrawals AS-X logged between the two states (§3.3)."""
        return withdrawals_observed_by(
            self.net, asx, self.routing(before), self.routing(after), after
        )
