"""Simulator facade: one object tying topology, routing and measurement.

The experiments follow the paper's loop — converge, traceroute the sensor
mesh, inject an event, re-converge, traceroute again, hand everything to
the diagnosis algorithms.  :class:`Simulator` packages the substrate pieces
(IGP cache, BGP engine, traceroute, control-plane observation) behind the
small API that loop needs, with caching keyed on the immutable
:class:`~repro.netsim.topology.NetworkState`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.netsim.bgp.engine import BgpEngine
from repro.netsim.bgp.messages import BgpWithdrawal, withdrawals_observed_by
from repro.netsim.bgp.rib import RoutingState
from repro.netsim.events import Event
from repro.netsim.forwarding import IgpCache
from repro.netsim.igp import igp_link_down_events
from repro.netsim.topology import Internetwork, Link, NetworkState
from repro.netsim.traceroute import TraceResult, trace_route

__all__ = ["Simulator"]


class Simulator:
    """Converged-state network simulator for one topology.

    Parameters
    ----------
    net:
        The internetwork.
    destination_asns:
        ASes whose prefixes routing must be converged for — the sensor ASes
        (and AS-X).  Restricting convergence to the prefixes measurements
        actually target keeps the fixpoint cheap without changing any
        observable (see :class:`~repro.netsim.bgp.engine.BgpEngine`).
    """

    def __init__(self, net: Internetwork, destination_asns: Iterable[int]) -> None:
        self.net = net
        self._dest_asns = tuple(sorted(set(destination_asns)))
        self.engine = BgpEngine.for_sensor_ases(net, list(self._dest_asns))
        self.igp_cache = IgpCache(net)
        self._trace_cache: Dict[tuple, TraceResult] = {}
        self._mapper = net.ip_to_as_mapper()

    @property
    def mapper(self):
        """Shared IP-to-AS mapper (prefix allocations are fixed at build
        time, so one mapper serves every snapshot of this topology)."""
        return self._mapper

    # ------------------------------------------------------------- routing

    @property
    def destination_asns(self) -> tuple:
        """ASes whose prefixes this simulator converges."""
        return self._dest_asns

    def routing(self, state: NetworkState) -> RoutingState:
        """Converged routing under ``state`` (cached by the engine)."""
        return self.engine.converge(state)

    def apply(self, event: Event, base: Optional[NetworkState] = None) -> NetworkState:
        """Apply ``event`` on top of ``base`` (default: the nominal state)."""
        return event.apply_to(base or NetworkState.nominal())

    # --------------------------------------------------------- measurement

    def trace(
        self,
        state: NetworkState,
        src_router: int,
        dst_router: int,
        blocked_ases: FrozenSet[int] = frozenset(),
    ) -> TraceResult:
        """Traceroute between two routers under ``state`` (cached)."""
        key = (state, src_router, dst_router, blocked_ases)
        cached = self._trace_cache.get(key)
        if cached is None:
            cached = trace_route(
                self.net,
                self.routing(state),
                state,
                src_router,
                dst_router,
                blocked_ases=blocked_ases,
                igp_cache=self.igp_cache,
            )
            self._trace_cache[key] = cached
        return cached

    # ------------------------------------------------------- control plane

    def igp_link_down(self, asx: int, state: NetworkState) -> List[Link]:
        """IGP "link down" messages AS-X observes under ``state`` (§3.3)."""
        return igp_link_down_events(self.net, asx, state)

    def withdrawals(
        self, asx: int, before: NetworkState, after: NetworkState
    ) -> List[BgpWithdrawal]:
        """BGP withdrawals AS-X logged between the two states (§3.3)."""
        return withdrawals_observed_by(
            self.net, asx, self.routing(before), self.routing(after), after
        )
