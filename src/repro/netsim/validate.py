"""Topology validation: is this configuration safe to converge?

The fixpoint engine is only guaranteed to terminate for Gao-Rexford-safe
configurations: the customer→provider digraph must be acyclic (no AS is,
transitively, its own provider).  The generators always produce safe
hierarchies, but hand-built topologies can violate it — and the failure
mode (a :class:`~repro.errors.ConvergenceError` deep inside an experiment)
is unpleasant to debug.  :func:`validate_gao_rexford` gives the immediate,
named answer up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.netsim.topology import Internetwork, Relationship

__all__ = ["ValidationIssue", "validate_gao_rexford"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found by the validator."""

    kind: str
    detail: str


def validate_gao_rexford(net: Internetwork) -> List[ValidationIssue]:
    """Check the configuration for Gao-Rexford safety hazards.

    Returns the (possibly empty) list of issues:

    * ``provider-cycle`` — the customer→provider relation has a cycle;
      path-vector convergence is no longer guaranteed;
    * ``undeclared-relationship`` — an interdomain link whose AS pair has
      no declared relationship (construction normally prevents this; a
      deserialised or hand-patched topology might not);
    * ``isolated-as`` — an AS with routers but no interdomain link at all
      (its prefix can never be reached; usually a wiring bug).
    """
    issues: List[ValidationIssue] = []

    # Build the customer -> provider digraph.
    providers: Dict[int, List[int]] = {a.asn: [] for a in net.ases()}
    connected = set()
    for link in net.inter_links():
        asn_a, asn_b = net.link_asns(link.lid)
        connected.update((asn_a, asn_b))
        rel = net.relationship(asn_a, asn_b)
        if rel is None:
            issues.append(
                ValidationIssue(
                    kind="undeclared-relationship",
                    detail=f"link {link.lid} joins AS{asn_a}-AS{asn_b} "
                    "without a declared relationship",
                )
            )
            continue
        if rel is Relationship.CUSTOMER_PROVIDER:
            providers[asn_a].append(asn_b)
        elif rel is Relationship.PROVIDER_CUSTOMER:
            providers[asn_b].append(asn_a)

    cycle = _find_cycle(providers)
    if cycle:
        pretty = " -> ".join(f"AS{asn}" for asn in cycle)
        issues.append(
            ValidationIssue(
                kind="provider-cycle",
                detail=f"customer/provider cycle: {pretty}",
            )
        )

    for autsys in net.ases():
        if autsys.router_ids and autsys.asn not in connected and net.num_ases > 1:
            issues.append(
                ValidationIssue(
                    kind="isolated-as",
                    detail=f"AS{autsys.asn} ({autsys.name}) has no "
                    "interdomain link",
                )
            )
    return issues


def _find_cycle(providers: Dict[int, List[int]]) -> Tuple[int, ...]:
    """First cycle of the customer->provider digraph (empty if acyclic)."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {asn: WHITE for asn in providers}

    def dfs(asn: int, stack: List[int]) -> Tuple[int, ...]:
        colour[asn] = GREY
        stack.append(asn)
        for provider in providers[asn]:
            if colour[provider] == GREY:
                start = stack.index(provider)
                return tuple(stack[start:] + [provider])
            if colour[provider] == WHITE:
                found = dfs(provider, stack)
                if found:
                    return found
        stack.pop()
        colour[asn] = BLACK
        return ()

    for asn in sorted(providers):
        if colour[asn] == WHITE:
            found = dfs(asn, [])
            if found:
                return found
    return ()
