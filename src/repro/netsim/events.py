"""Failure events: the ground-truth perturbations the experiments inject.

The paper's evaluation exercises three event families (§4, "Failure
scenarios"):

* **link failures** — x ∈ {1, 2, 3} links break simultaneously;
* **router failures** — all links attached to one router break (the paper
  likens this to a Shared Risk Link Group failure);
* **router misconfigurations** — an outbound route filter at one end of an
  interdomain link stops announcing selected routes to that peer.

Events are small immutable descriptions; applying one to a
:class:`~repro.netsim.topology.NetworkState` yields the post-event state.
Each event also knows its *physical ground truth*: the set of link ids an
ideal troubleshooter should name (for a misconfiguration that is the
misconfigured link; the logical-link ground truth is derived separately by
the experiment runner because it depends on the routing state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.errors import ScenarioError
from repro.netsim.topology import ExportFilter, Internetwork, NetworkState

__all__ = [
    "Event",
    "LinkFailureEvent",
    "RouterFailureEvent",
    "MisconfigurationEvent",
    "WeightChangeEvent",
    "CompositeEvent",
]


class Event:
    """Base class for ground-truth events."""

    def apply_to(self, state: NetworkState) -> NetworkState:
        """Return ``state`` with this event applied."""
        raise NotImplementedError

    def physical_ground_truth(self, net: Internetwork) -> FrozenSet[int]:
        """Link ids a perfect diagnosis should blame."""
        raise NotImplementedError

    def describe(self, net: Internetwork) -> str:
        """Human-readable one-liner for reports."""
        raise NotImplementedError


@dataclass(frozen=True)
class LinkFailureEvent(Event):
    """Simultaneous failure of one or more links."""

    link_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.link_ids:
            raise ScenarioError("a link failure event needs at least one link")
        if len(set(self.link_ids)) != len(self.link_ids):
            raise ScenarioError("duplicate link ids in failure event")

    def apply_to(self, state: NetworkState) -> NetworkState:
        return state.with_failed_links(self.link_ids)

    def physical_ground_truth(self, net: Internetwork) -> FrozenSet[int]:
        return frozenset(self.link_ids)

    def describe(self, net: Internetwork) -> str:
        parts = []
        for lid in self.link_ids:
            link = net.link(lid)
            parts.append(f"{net.router(link.a).name}-{net.router(link.b).name}")
        return f"link failure: {', '.join(parts)}"


@dataclass(frozen=True)
class RouterFailureEvent(Event):
    """Failure of a whole router (all attached links go down with it)."""

    router_id: int

    def apply_to(self, state: NetworkState) -> NetworkState:
        return state.with_failed_routers((self.router_id,))

    def physical_ground_truth(self, net: Internetwork) -> FrozenSet[int]:
        return frozenset(l.lid for l in net.links_of_router(self.router_id))

    def describe(self, net: Internetwork) -> str:
        return f"router failure: {net.router(self.router_id).name}"


@dataclass(frozen=True)
class MisconfigurationEvent(Event):
    """An outbound route-filter misconfiguration on one eBGP session.

    ``export_filter.at_router`` stops announcing ``export_filter.prefixes``
    to the peer across ``export_filter.link_id``.  The link keeps working
    for every other route — a *partial* failure, the case plain Boolean
    tomography cannot express (§2.5 limitation 1).
    """

    export_filter: ExportFilter

    def apply_to(self, state: NetworkState) -> NetworkState:
        return state.with_filter(self.export_filter)

    def physical_ground_truth(self, net: Internetwork) -> FrozenSet[int]:
        return frozenset((self.export_filter.link_id,))

    def describe(self, net: Internetwork) -> str:
        f = self.export_filter
        link = net.link(f.link_id)
        peer = net.router(link.other(f.at_router)).name
        return (
            f"misconfiguration: {net.router(f.at_router).name} no longer "
            f"announces {sorted(f.prefixes)} to {peer}"
        )


@dataclass(frozen=True)
class WeightChangeEvent(Event):
    """An IGP traffic-engineering metric change (no failure at all).

    Operators retune link weights routinely; the resulting internal path
    shifts are visible to the sensors as reroutes with no unreachability.
    On its own this event never invokes the troubleshooter, but combined
    with a real failure it plants *innocent* reroute evidence — the
    robustness experiments measure how gracefully the algorithms absorb
    it.  Its physical ground truth is empty: nothing failed.
    """

    link_id: int
    new_weight: int

    def apply_to(self, state: NetworkState) -> NetworkState:
        return state.with_weight(self.link_id, self.new_weight)

    def physical_ground_truth(self, net: Internetwork) -> FrozenSet[int]:
        return frozenset()

    def describe(self, net: Internetwork) -> str:
        link = net.link(self.link_id)
        return (
            f"IGP weight change: {net.router(link.a).name}-"
            f"{net.router(link.b).name} {link.weight} -> {self.new_weight}"
        )


@dataclass(frozen=True)
class CompositeEvent(Event):
    """Several events striking at once (e.g. misconfig + link failure)."""

    events: Tuple[Event, ...]

    def __post_init__(self) -> None:
        if not self.events:
            raise ScenarioError("a composite event needs at least one sub-event")

    def apply_to(self, state: NetworkState) -> NetworkState:
        for event in self.events:
            state = event.apply_to(state)
        return state

    def physical_ground_truth(self, net: Internetwork) -> FrozenSet[int]:
        truth: FrozenSet[int] = frozenset()
        for event in self.events:
            truth |= event.physical_ground_truth(net)
        return truth

    def describe(self, net: Internetwork) -> str:
        return " + ".join(event.describe(net) for event in self.events)
