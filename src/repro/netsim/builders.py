"""Programmatic topology construction helpers and paper-figure fixtures.

:class:`TopologyBuilder` wraps :class:`~repro.netsim.topology.Internetwork`
with a fluent, name-based API that keeps hand-built test topologies short.
Two fixtures reproduce the paper's illustrative figures:

* :func:`figure2_network` — the multi-AS example of Figure 2/3 (ASes A, X,
  Y, B, C) used to demonstrate Tomo, logical links, and withdrawal
  exoneration;
* :func:`chain_network` — a linear chain of single-router ASes, the shape
  of Figure 4's UH-mapping example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.netsim.topology import (
    Internetwork,
    Link,
    Relationship,
    Router,
    Tier,
)

__all__ = ["TopologyBuilder", "Figure2Network", "figure2_network", "chain_network"]


class TopologyBuilder:
    """Fluent construction of an :class:`Internetwork` with named elements."""

    def __init__(self) -> None:
        self.net = Internetwork()
        self._routers: Dict[str, Router] = {}
        self._asn_by_name: Dict[str, int] = {}
        self._next_asn = 1

    # ----------------------------------------------------------------- adds

    def autonomous_system(
        self,
        name: str,
        tier: Tier = Tier.STUB,
        routers: int = 1,
        asn: Optional[int] = None,
    ) -> int:
        """Create an AS called ``name`` with ``routers`` routers named
        ``<name>1 .. <name>N`` (lower-cased), returning its ASN."""
        if name in self._asn_by_name:
            raise TopologyError(f"AS name {name!r} already used")
        if asn is None:
            asn = self._next_asn
        self._next_asn = max(self._next_asn, asn + 1)
        self.net.add_as(asn, name, tier)
        self._asn_by_name[name] = asn
        for index in range(routers):
            rname = f"{name.lower()}{index + 1}"
            self._routers[rname] = self.net.add_router(asn, rname)
        return asn

    def router(self, name: str) -> Router:
        """Look a router up by its builder name."""
        try:
            return self._routers[name]
        except KeyError:
            raise TopologyError(f"unknown router name {name!r}") from None

    def asn(self, name: str) -> int:
        """Look an AS number up by its builder name."""
        try:
            return self._asn_by_name[name]
        except KeyError:
            raise TopologyError(f"unknown AS name {name!r}") from None

    def link(self, a: str, b: str, weight: int = 1) -> Link:
        """Connect two named routers (relationship must exist if inter-AS)."""
        return self.net.add_link(self.router(a).rid, self.router(b).rid, weight)

    def relationship(self, a: str, b: str, rel: Relationship) -> None:
        """Declare the relationship of AS ``a`` towards AS ``b``."""
        self.net.set_relationship(self.asn(a), self.asn(b), rel)

    def customer_of(self, customer: str, provider: str) -> None:
        """Declare ``customer`` buys transit from ``provider``."""
        self.relationship(customer, provider, Relationship.CUSTOMER_PROVIDER)

    def peers(self, a: str, b: str) -> None:
        """Declare a settlement-free peering between two ASes."""
        self.relationship(a, b, Relationship.PEER)


@dataclass
class Figure2Network:
    """The paper's Figure 2 example, with every named element resolvable.

    Sensors: ``s1`` homes at router ``a1`` (AS A), ``s2`` at ``b2`` (AS B),
    ``s3`` at ``c2`` (AS C).  The expected pre-failure forwarding paths are::

        s1 -> s2 : a1 a2 x1 x2 y1 y4 b1 b2
        s1 -> s3 : a1 a2 x1 x2 y1 y4 c1 c2

    matching the text: AS-Y sees out-neighbours B and C, AS-X sees
    out-neighbour Y.
    """

    builder: TopologyBuilder
    sensor_routers: Dict[str, int] = field(default_factory=dict)

    @property
    def net(self) -> Internetwork:
        return self.builder.net

    def router(self, name: str) -> Router:
        return self.builder.router(name)

    def asn(self, name: str) -> int:
        return self.builder.asn(name)

    def link_between(self, a: str, b: str) -> Link:
        link = self.net.link_between(self.router(a).rid, self.router(b).rid)
        if link is None:
            raise TopologyError(f"no link between {a} and {b}")
        return link


def figure2_network() -> Figure2Network:
    """Build the Figure 2 internetwork (ASes A, X, Y, B, C)."""
    b = TopologyBuilder()
    b.autonomous_system("A", Tier.STUB, routers=2)
    b.autonomous_system("X", Tier.TIER2, routers=2)
    b.autonomous_system("Y", Tier.CORE, routers=4)
    b.autonomous_system("B", Tier.STUB, routers=2)
    b.autonomous_system("C", Tier.STUB, routers=2)

    b.customer_of("A", "X")
    b.customer_of("X", "Y")
    b.customer_of("B", "Y")
    b.customer_of("C", "Y")

    # Intradomain links.
    b.link("a1", "a2")
    b.link("x1", "x2")
    b.link("y1", "y4")
    b.link("y1", "y2")
    b.link("y2", "y3")
    b.link("y3", "y4", weight=5)  # keep y1-y4 the preferred internal path
    b.link("b1", "b2")
    b.link("c1", "c2")

    # Interdomain links.
    b.link("a2", "x1")
    b.link("x2", "y1")
    b.link("y4", "b1")
    b.link("y4", "c1")

    return Figure2Network(
        builder=b,
        sensor_routers={
            "s1": b.router("a1").rid,
            "s2": b.router("b2").rid,
            "s3": b.router("c2").rid,
        },
    )


def chain_network(
    n_ases: int = 5, routers_per_as: int = 1
) -> Tuple[TopologyBuilder, List[str]]:
    """A linear chain of ASes (Figure 4 shape): AS1 - AS2 - ... - ASn.

    Each AS is named ``N1 .. Nn``; consecutive ASes are customer→provider
    up to the middle and provider→customer after it, producing valley-free
    end-to-end paths through the chain.  Returns the builder and the AS
    names in chain order.
    """
    if n_ases < 2:
        raise TopologyError("a chain needs at least two ASes")
    b = TopologyBuilder()
    names = [f"N{i + 1}" for i in range(n_ases)]
    middle = n_ases // 2
    for index, name in enumerate(names):
        tier = Tier.CORE if index == middle else Tier.STUB
        b.autonomous_system(name, tier, routers=routers_per_as)
    for index in range(n_ases - 1):
        left, right = names[index], names[index + 1]
        if index < middle:
            b.customer_of(left, right)  # climbing towards the middle
        else:
            b.customer_of(right, left)  # descending after it
        # Chain the last router of the left AS to the first of the right.
        b.link(f"{left.lower()}{routers_per_as}", f"{right.lower()}1")
        # Internally chain each AS's routers once (idempotent per AS).
    for name in names:
        for k in range(1, routers_per_as):
            b.link(f"{name.lower()}{k}", f"{name.lower()}{k + 1}")
    return b, names
