"""Multipath data-plane enumeration (the Paris-traceroute substrate).

The paper sets load balancing aside ("a tool such as Paris traceroute can
discover all paths between a pair of sensors", footnote 2) — this module
provides that tool for the simulator.  BGP selects one egress per AS (we
model no BGP multipath), so path multiplicity comes from IGP equal-cost
multipath inside each AS: the enumeration walks the AS-level route exactly
like :func:`repro.netsim.forwarding.data_path`, but expands every
intradomain segment into all its equal-cost alternatives and takes the
cartesian product (capped).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import RoutingError
from repro.netsim.bgp.rib import RoutingState
from repro.netsim.forwarding import IgpCache
from repro.netsim.topology import Internetwork, NetworkState

__all__ = ["enumerate_data_paths"]


def enumerate_data_paths(
    net: Internetwork,
    routing: RoutingState,
    state: NetworkState,
    src_router: int,
    dst_router: int,
    igp_cache: Optional[IgpCache] = None,
    max_paths: int = 32,
) -> List[Tuple[int, ...]]:
    """All equal-cost forwarding paths from ``src_router`` to ``dst_router``.

    Returns the list of router-id paths a load-balanced flow could take
    (empty when the destination is unreachable).  The first entry is the
    deterministic single path :func:`~repro.netsim.forwarding.data_path`
    would walk.
    """
    if max_paths < 1:
        raise RoutingError("max_paths must be at least 1")
    cache = igp_cache or IgpCache(net)
    if src_router in state.failed_routers or dst_router in state.failed_routers:
        return []

    dst_asn = net.asn_of_router(dst_router)
    prefix = net.autonomous_system(dst_asn).prefix

    # Stage 1: the AS-level skeleton — (entry router, egress router, exit
    # link) per transit AS.  One skeleton: BGP picks a single route per AS.
    skeleton: List[Tuple[int, int, Optional[int]]] = []
    cur = src_router
    visited = set()
    while net.asn_of_router(cur) != dst_asn:
        asn = net.asn_of_router(cur)
        if asn in visited:
            return []  # forwarding loop: no usable path
        visited.add(asn)
        route = routing.best(asn, prefix)
        if route is None:
            return []
        assert route.egress_router is not None and route.ingress_link is not None
        if not net.link_up(route.ingress_link, state):
            return []
        skeleton.append((cur, route.egress_router, route.ingress_link))
        cur = net.link(route.ingress_link).other(route.egress_router)
    skeleton.append((cur, dst_router, None))

    # Stage 2: expand each intradomain segment into its ECMP alternatives
    # and combine (cartesian product, capped).
    partials: List[List[int]] = [[]]
    for entry, egress, exit_link in skeleton:
        asn = net.asn_of_router(entry)
        segments = cache.view(asn, state).all_shortest_paths(
            entry, egress, cap=max_paths
        )
        if not segments:
            return []  # intradomain partition
        expanded: List[List[int]] = []
        for partial in partials:
            for segment in segments:
                combined = partial + segment
                if exit_link is not None:
                    combined = combined + [net.link(exit_link).other(egress)]
                expanded.append(combined)
                if len(expanded) >= max_paths:
                    break
            if len(expanded) >= max_paths:
                break
        partials = expanded

    # Deduplicate the next-AS entry hop we appended after each segment
    # (the entry of AS k+1 is also the first element of its own segment).
    paths = []
    for partial in partials:
        deduped = [partial[0]]
        for rid in partial[1:]:
            if rid != deduped[-1]:
                deduped.append(rid)
        paths.append(tuple(deduped))
    return sorted(set(paths))[:max_paths]
