"""Bounded LRU caches for the simulation substrate.

Long experiment batches used to grow the per-state routing cache
(:class:`~repro.netsim.bgp.engine.BgpEngine`) and the per-trace cache
(:class:`~repro.netsim.simulator.Simulator`) without bound: every sampled
failure scenario is a distinct :class:`~repro.netsim.topology.NetworkState`
and therefore a fresh set of keys.  :class:`LruCache` caps those maps at a
configurable capacity, evicting the least-recently-used entry, and counts
hits/misses/evictions so the runner's accounting
(:class:`~repro.experiments.runner.RunnerStats`) can report cache
effectiveness instead of just cache size.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Hashable, List, Optional, Tuple, TypeVar

from repro.errors import ReproError

__all__ = ["LruCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LruCache(Generic[K, V]):
    """A dict with LRU eviction and hit/miss/eviction counters.

    ``capacity`` is the maximum number of entries kept; inserting beyond it
    evicts the least recently *used* entry (both :meth:`get` hits and
    :meth:`put` refresh recency).  A capacity of ``0`` disables bounding —
    the cache then behaves like the historical plain dict, counters
    included.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ReproError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K) -> Optional[V]:
        """The cached value, refreshed as most-recently-used; ``None`` on miss."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry if full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self.capacity and len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def pop(self, key: K) -> Optional[V]:
        """Remove and return an entry without counting a hit or miss.

        Eviction-by-policy (a sliding window dropping stale observations)
        is not a lookup: it must not skew the hit-rate accounting.
        Returns ``None`` when the key is absent.
        """
        return self._data.pop(key, None)

    def items(self) -> List[Tuple[K, V]]:
        """Snapshot of ``(key, value)`` pairs, LRU first.

        Iteration does not touch recency or the counters — callers that
        scan for stale entries (:mod:`repro.stream.window`) must not
        refresh everything they merely look at.
        """
        return list(self._data.items())

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        """Membership test without touching recency or counters."""
        return key in self._data

    def counters(self) -> Dict[str, int]:
        """Snapshot of the accounting counters plus the current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._data),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"LruCache(capacity={self.capacity}, entries={len(self._data)}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
