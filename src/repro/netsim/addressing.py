"""Prefix and address allocation for the simulated internetwork.

The paper's troubleshooter relies on a "well-known IP-to-AS mapping
technique" (Mao et al., SIGCOMM 2003) to decide which AS owns each
traceroute hop.  In the simulator we control the address plan, so the
mapping technique reduces to longest-prefix lookup over the allocation
table — which is exactly what the real technique converges to when the
registry data is accurate.

Address plan
------------
Every autonomous system ``asn`` receives one IPv4 prefix carved out of
``10.0.0.0/8``.  The default plan allocates /20 blocks (4096 addresses:
enough routers for the largest core AS and enough sensor hosts for the
densest Figure 5 placement), which caps the internetwork at 4095 ASes.
Internet-scale topologies (:mod:`repro.netsim.gen.powerlaw`) pass a
longer ``as_prefix_len`` — /24 blocks support 65535 ASes with 256
addresses each, plenty for their one-to-three-router ASes.  Within an AS
block:

* router ``k`` of the AS gets the *router address* ``base + k + 1``
  (traceroute hops answer with this canonical address — see
  ``DESIGN.md`` §5 on router-granularity hops),
* sensors get host addresses allocated downwards from the top of the
  block.

The allocator is deliberately deterministic: the same construction order
always yields the same addresses, which keeps every simulation seed
reproducible.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import AddressingError

__all__ = ["PrefixAllocator", "IpToAsMapper"]

#: Default prefix length of each AS block.
_AS_PREFIX_LEN = 20
#: Default number of host addresses reserved per AS block for sensors.
_SENSOR_POOL = 1024


class PrefixAllocator:
    """Allocates one block per AS and deterministic addresses inside it.

    Parameters
    ----------
    base:
        Network the AS blocks are carved from.  The default uses
        ``10.0.0.0/8``.
    as_prefix_len:
        Prefix length of each AS block.  The default /20 gives 4096
        possible AS blocks of 4096 addresses; internet-scale generators
        use /24 (65536 blocks of 256 addresses).
    sensor_pool:
        Host addresses reserved at the top of each block for sensors;
        the rest of the block (minus network/broadcast) is the router
        pool.
    """

    def __init__(
        self,
        base: str = "10.0.0.0/8",
        as_prefix_len: int = _AS_PREFIX_LEN,
        sensor_pool: int = _SENSOR_POOL,
    ) -> None:
        self._base = ipaddress.ip_network(base)
        if not self._base.prefixlen < as_prefix_len <= 30:
            raise AddressingError(
                f"as_prefix_len {as_prefix_len} must lie strictly between "
                f"the base prefix ({self._base.prefixlen}) and 31"
            )
        self.as_prefix_len = as_prefix_len
        self.block_size = 1 << (32 - as_prefix_len)
        if not 0 < sensor_pool < self.block_size - 2:
            raise AddressingError(
                f"sensor_pool {sensor_pool} does not fit a /{as_prefix_len} block"
            )
        self.sensor_pool = sensor_pool
        self.router_pool = self.block_size - sensor_pool - 2
        self._as_prefix: Dict[int, ipaddress.IPv4Network] = {}
        self._router_counter: Dict[int, int] = {}
        self._sensor_counter: Dict[int, int] = {}
        self._max_asn = 1 << (as_prefix_len - self._base.prefixlen)

    @property
    def base(self) -> str:
        """The network the AS blocks are carved from."""
        return str(self._base)

    @property
    def max_asn(self) -> int:
        """Highest AS number this plan can allocate a block for."""
        return self._max_asn - 1

    def plan(self) -> Dict[str, object]:
        """The allocator parameters as a serialisable dict (see
        :func:`repro.serialize.topology_to_dict`)."""
        return {
            "base": self.base,
            "as_prefix_len": self.as_prefix_len,
            "sensor_pool": self.sensor_pool,
        }

    def allocate_as(self, asn: int) -> str:
        """Reserve the block for ``asn`` and return it as a string."""
        if asn in self._as_prefix:
            raise AddressingError(f"AS {asn} already has a prefix allocated")
        if not 0 < asn < self._max_asn:
            raise AddressingError(
                f"AS number {asn} outside supported range 1..{self._max_asn - 1}"
            )
        net = ipaddress.ip_network(
            f"{self._base.network_address + asn * self.block_size}"
            f"/{self.as_prefix_len}"
        )
        self._as_prefix[asn] = net
        self._router_counter[asn] = 0
        self._sensor_counter[asn] = 0
        return str(net)

    def prefix_of(self, asn: int) -> str:
        """Return the prefix string previously allocated to ``asn``."""
        try:
            return str(self._as_prefix[asn])
        except KeyError:
            raise AddressingError(f"AS {asn} has no allocated prefix") from None

    def next_router_address(self, asn: int) -> str:
        """Return the canonical address for the next router created in ``asn``."""
        net = self._need(asn)
        index = self._router_counter[asn]
        if index >= self.router_pool:
            raise AddressingError(f"AS {asn} exhausted its router address pool")
        self._router_counter[asn] = index + 1
        return str(net.network_address + index + 1)

    def next_sensor_address(self, asn: int) -> str:
        """Return the address for the next sensor attached inside ``asn``."""
        net = self._need(asn)
        index = self._sensor_counter[asn]
        if index >= self.sensor_pool:
            raise AddressingError(f"AS {asn} exhausted its sensor address pool")
        self._sensor_counter[asn] = index + 1
        return str(net.broadcast_address - 1 - index)

    def allocations(self) -> Iterator[Tuple[int, str]]:
        """Yield ``(asn, prefix_string)`` pairs in allocation order."""
        for asn, net in self._as_prefix.items():
            yield asn, str(net)

    def _need(self, asn: int) -> ipaddress.IPv4Network:
        try:
            return self._as_prefix[asn]
        except KeyError:
            raise AddressingError(f"AS {asn} has no allocated prefix") from None


class IpToAsMapper:
    """Longest-prefix IP-to-AS mapping over an allocation table.

    This plays the role of the IP-to-AS mapping technique [Mao et al. 2003]
    the paper assumes: given any hop address observed in a traceroute, return
    the owning AS number, or ``None`` for addresses outside every allocation
    (the simulated analogue of private/unroutable space).
    """

    def __init__(self) -> None:
        self._table: Dict[ipaddress.IPv4Network, int] = {}
        self._memo: Dict[str, Optional[int]] = {}
        # prefixlen -> {masked network address int -> network}; longest-prefix
        # lookup then probes one dict per distinct length instead of scanning
        # the whole table (internet-scale plans register tens of thousands
        # of prefixes).
        self._by_len: Dict[int, Dict[int, ipaddress.IPv4Network]] = {}

    @classmethod
    def from_allocator(cls, allocator: PrefixAllocator) -> "IpToAsMapper":
        """Build a mapper that knows every prefix in ``allocator``."""
        mapper = cls()
        for asn, prefix in allocator.allocations():
            mapper.register(prefix, asn)
        return mapper

    def register(self, prefix: str, asn: int) -> None:
        """Register that ``prefix`` belongs to ``asn``."""
        net = ipaddress.ip_network(prefix)
        if net in self._table and self._table[net] != asn:
            raise AddressingError(
                f"prefix {prefix} registered to both AS {self._table[net]} and AS {asn}"
            )
        self._table[net] = asn
        self._by_len.setdefault(net.prefixlen, {})[
            int(net.network_address)
        ] = net
        self._memo.clear()

    def _longest_match(
        self, ip: ipaddress.IPv4Address
    ) -> Optional[ipaddress.IPv4Network]:
        """Most specific registered prefix containing ``ip`` (or ``None``)."""
        value = int(ip)
        for prefixlen in sorted(self._by_len, reverse=True):
            masked = value & ~((1 << (32 - prefixlen)) - 1)
            net = self._by_len[prefixlen].get(masked)
            if net is not None:
                return net
        return None

    def asn_of(self, address: str) -> Optional[int]:
        """Map ``address`` to its owning AS number (``None`` if unknown).

        Memoised: traceroute meshes look the same addresses up thousands of
        times per diagnosis.
        """
        if address in self._memo:
            return self._memo[address]
        try:
            ip = ipaddress.ip_address(address)
        except ValueError:
            raise AddressingError(f"not an IP address: {address!r}") from None
        best = self._longest_match(ip)
        result = self._table[best] if best is not None else None
        self._memo[address] = result
        return result

    def prefix_containing(self, address: str) -> Optional[str]:
        """Return the most specific registered prefix containing ``address``."""
        best = self._longest_match(ipaddress.ip_address(address))
        return str(best) if best is not None else None

    def __len__(self) -> int:
        return len(self._table)
