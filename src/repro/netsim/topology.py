"""Router-level multi-AS topology model.

This module holds the *static* description of the internetwork: autonomous
systems, routers, links (intra- and inter-domain) and the business
relationships between ASes.  Dynamic conditions — which links/routers are
currently failed and which export filters are misconfigured — live in
:class:`NetworkState` so that a single topology can be evaluated under many
failure scenarios without mutation.

Terminology follows the paper:

* an **intradomain link** connects two routers of the same AS and carries an
  IGP weight,
* an **interdomain link** connects border routers of two ASes and carries a
  BGP session whose policies derive from the AS relationship
  (:class:`Relationship`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import TopologyError
from repro.netsim.addressing import IpToAsMapper, PrefixAllocator

__all__ = [
    "Tier",
    "Relationship",
    "Router",
    "Link",
    "AutonomousSystem",
    "ExportFilter",
    "NetworkState",
    "Internetwork",
]


class Tier(enum.Enum):
    """Position of an AS in the scaled-down research-Internet hierarchy."""

    CORE = "core"
    TIER2 = "tier2"
    STUB = "stub"


class Relationship(enum.Enum):
    """Business relationship of an inter-AS link, seen from the lower ASN.

    ``PEER``                the two ASes exchange customer routes for free;
    ``CUSTOMER_PROVIDER``   the *first* AS of the link pays the second;
    ``PROVIDER_CUSTOMER``   the *first* AS of the link is paid by the second.
    """

    PEER = "peer"
    CUSTOMER_PROVIDER = "customer-provider"
    PROVIDER_CUSTOMER = "provider-customer"


@dataclass(frozen=True)
class Router:
    """A router: the unit at which traceroute hops are reported.

    ``address`` is the canonical (loopback) address the router answers
    traceroute probes with; see ``DESIGN.md`` §5 for why hops are reported
    at router granularity.
    """

    rid: int
    asn: int
    name: str
    address: str

    def __str__(self) -> str:  # pragma: no cover - debug convenience
        return f"{self.name}({self.address})"


@dataclass(frozen=True)
class Link:
    """An undirected physical link between two routers.

    ``lid`` orders links deterministically; ``weight`` is the IGP metric
    (meaningful for intradomain links only, but stored uniformly).
    """

    lid: int
    a: int  # router id, a < b by construction
    b: int
    weight: int = 1

    def other(self, rid: int) -> int:
        """Return the router id at the far end from ``rid``."""
        if rid == self.a:
            return self.b
        if rid == self.b:
            return self.a
        raise TopologyError(f"router {rid} is not an endpoint of link {self.lid}")

    def endpoints(self) -> Tuple[int, int]:
        """Return the endpoint router ids as an ordered pair."""
        return (self.a, self.b)


@dataclass
class AutonomousSystem:
    """An AS: a set of routers, one originated prefix and a tier."""

    asn: int
    name: str
    tier: Tier
    prefix: str
    router_ids: List[int] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - debug convenience
        return f"AS{self.asn}[{self.name}]"


@dataclass(frozen=True)
class ExportFilter:
    """A (mis)configured outbound route filter on one eBGP session.

    The router ``at_router`` stops announcing routes for ``prefixes`` to the
    peer at the far end of ``link_id``.  This models the paper's §3.1
    misconfiguration: "apply an export-filter such that the selected routes
    are not advertised to the peer (only the peer at the other end of the
    misconfigured link)".
    """

    link_id: int
    at_router: int
    prefixes: FrozenSet[str]

    def blocks(self, link_id: int, exporting_router: int, prefix: str) -> bool:
        """True if this filter suppresses ``prefix`` on that directed session."""
        return (
            link_id == self.link_id
            and exporting_router == self.at_router
            and prefix in self.prefixes
        )


@dataclass(frozen=True)
class NetworkState:
    """Dynamic network condition: failed elements, misconfigs, TE tweaks.

    Immutable and hashable so routing computations can be cached per state.
    ``weight_overrides`` models IGP traffic engineering: operators retune
    link metrics routinely, shifting internal paths without any failure —
    a classic source of BGP-visible path changes ("hot-potato" events)
    that the robustness experiments inject alongside failures.
    """

    failed_links: FrozenSet[int] = frozenset()
    failed_routers: FrozenSet[int] = frozenset()
    filters: Tuple[ExportFilter, ...] = ()
    weight_overrides: Tuple[Tuple[int, int], ...] = ()

    @classmethod
    def nominal(cls) -> "NetworkState":
        """The healthy network: nothing failed, nothing misconfigured."""
        return cls()

    def with_failed_links(self, link_ids: Iterable[int]) -> "NetworkState":
        """Return a copy with ``link_ids`` added to the failed-link set."""
        return NetworkState(
            failed_links=self.failed_links | frozenset(link_ids),
            failed_routers=self.failed_routers,
            filters=self.filters,
            weight_overrides=self.weight_overrides,
        )

    def with_failed_routers(self, router_ids: Iterable[int]) -> "NetworkState":
        """Return a copy with ``router_ids`` added to the failed-router set."""
        return NetworkState(
            failed_links=self.failed_links,
            failed_routers=self.failed_routers | frozenset(router_ids),
            filters=self.filters,
            weight_overrides=self.weight_overrides,
        )

    def with_filter(self, export_filter: ExportFilter) -> "NetworkState":
        """Return a copy with one more export filter applied."""
        return NetworkState(
            failed_links=self.failed_links,
            failed_routers=self.failed_routers,
            filters=self.filters + (export_filter,),
            weight_overrides=self.weight_overrides,
        )

    def with_weight(self, link_id: int, weight: int) -> "NetworkState":
        """Return a copy with one IGP metric retuned (later wins)."""
        if weight < 1:
            raise TopologyError(f"IGP weight must be >= 1, got {weight}")
        return NetworkState(
            failed_links=self.failed_links,
            failed_routers=self.failed_routers,
            filters=self.filters,
            weight_overrides=self.weight_overrides + ((link_id, weight),),
        )

    def weight_of(self, link: "Link") -> int:
        """The effective IGP weight of ``link`` under this state."""
        weight = link.weight
        for lid, override in self.weight_overrides:
            if lid == link.lid:
                weight = override
        return weight

    def is_nominal(self) -> bool:
        """True when nothing is failed, filtered or retuned."""
        return not (
            self.failed_links
            or self.failed_routers
            or self.filters
            or self.weight_overrides
        )


class Internetwork:
    """The full multi-AS topology plus its address plan.

    Construction is incremental (``add_as`` / ``add_router`` / ``add_link``)
    and validating: inter-AS links require a declared relationship, parallel
    links between the same router pair are rejected (traceroute hops are
    reported at router granularity, so a parallel link would be
    indistinguishable — see ``DESIGN.md`` §5).
    """

    def __init__(self, allocator: Optional[PrefixAllocator] = None) -> None:
        self.allocator = allocator or PrefixAllocator()
        self._ases: Dict[int, AutonomousSystem] = {}
        self._routers: Dict[int, Router] = {}
        self._links: Dict[int, Link] = {}
        self._link_by_pair: Dict[Tuple[int, int], int] = {}
        self._adj: Dict[int, List[int]] = {}  # router id -> sorted link ids
        self._relationships: Dict[Tuple[int, int], Relationship] = {}
        self._router_by_address: Dict[str, int] = {}
        self._next_rid = 0
        self._next_lid = 0

    # ------------------------------------------------------------------ build

    def add_as(self, asn: int, name: str, tier: Tier) -> AutonomousSystem:
        """Create an AS, allocating its prefix."""
        if asn in self._ases:
            raise TopologyError(f"AS {asn} already exists")
        prefix = self.allocator.allocate_as(asn)
        autsys = AutonomousSystem(asn=asn, name=name, tier=tier, prefix=prefix)
        self._ases[asn] = autsys
        return autsys

    def add_router(self, asn: int, name: Optional[str] = None) -> Router:
        """Create a router inside AS ``asn`` and return it."""
        if asn not in self._ases:
            raise TopologyError(f"cannot add router to unknown AS {asn}")
        rid = self._next_rid
        self._next_rid += 1
        address = self.allocator.next_router_address(asn)
        router = Router(
            rid=rid,
            asn=asn,
            name=name or f"r{rid}.as{asn}",
            address=address,
        )
        self._routers[rid] = router
        self._router_by_address[address] = rid
        self._adj[rid] = []
        self._ases[asn].router_ids.append(rid)
        return router

    def add_link(self, rid_a: int, rid_b: int, weight: int = 1) -> Link:
        """Connect two routers; inter-AS pairs must have a relationship set
        beforehand via :meth:`set_relationship`."""
        if rid_a == rid_b:
            raise TopologyError("self-links are not allowed")
        for rid in (rid_a, rid_b):
            if rid not in self._routers:
                raise TopologyError(f"unknown router {rid}")
        lo, hi = min(rid_a, rid_b), max(rid_a, rid_b)
        if (lo, hi) in self._link_by_pair:
            raise TopologyError(f"parallel link between routers {lo} and {hi}")
        asn_a = self._routers[lo].asn
        asn_b = self._routers[hi].asn
        if asn_a != asn_b and self.relationship(asn_a, asn_b) is None:
            raise TopologyError(
                f"inter-AS link AS{asn_a}-AS{asn_b} requires a declared relationship"
            )
        if weight < 1:
            raise TopologyError(f"IGP weight must be >= 1, got {weight}")
        lid = self._next_lid
        self._next_lid += 1
        link = Link(lid=lid, a=lo, b=hi, weight=weight)
        self._links[lid] = link
        self._link_by_pair[(lo, hi)] = lid
        self._adj[lo].append(lid)
        self._adj[hi].append(lid)
        return link

    def set_relationship(self, asn_a: int, asn_b: int, rel: Relationship) -> None:
        """Declare the business relationship between two ASes.

        Stored canonically under ``(min, max)``; :meth:`relationship` returns
        the view from whichever AS is asked first.
        """
        if asn_a == asn_b:
            raise TopologyError("relationship requires two distinct ASes")
        for asn in (asn_a, asn_b):
            if asn not in self._ases:
                raise TopologyError(f"unknown AS {asn}")
        key = (min(asn_a, asn_b), max(asn_a, asn_b))
        if key in self._relationships:
            raise TopologyError(f"relationship for AS pair {key} already declared")
        if asn_a > asn_b:
            rel = _flip(rel)
        self._relationships[key] = rel

    # ----------------------------------------------------------------- lookup

    def autonomous_system(self, asn: int) -> AutonomousSystem:
        """Return the AS object for ``asn``."""
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown AS {asn}") from None

    def router(self, rid: int) -> Router:
        """Return the router object for ``rid``."""
        try:
            return self._routers[rid]
        except KeyError:
            raise TopologyError(f"unknown router {rid}") from None

    def router_by_address(self, address: str) -> Router:
        """Return the router answering with ``address``."""
        try:
            return self._routers[self._router_by_address[address]]
        except KeyError:
            raise TopologyError(f"no router with address {address}") from None

    def link(self, lid: int) -> Link:
        """Return the link object for ``lid``."""
        try:
            return self._links[lid]
        except KeyError:
            raise TopologyError(f"unknown link {lid}") from None

    def link_between(self, rid_a: int, rid_b: int) -> Optional[Link]:
        """Return the link connecting two routers, or ``None``."""
        lid = self._link_by_pair.get((min(rid_a, rid_b), max(rid_a, rid_b)))
        return self._links[lid] if lid is not None else None

    def relationship(self, asn_from: int, asn_to: int) -> Optional[Relationship]:
        """Relationship of ``asn_from`` towards ``asn_to`` (``None`` if
        undeclared)."""
        key = (min(asn_from, asn_to), max(asn_from, asn_to))
        rel = self._relationships.get(key)
        if rel is None:
            return None
        return rel if asn_from <= asn_to else _flip(rel)

    # -------------------------------------------------------------- iteration

    def ases(self) -> Iterator[AutonomousSystem]:
        """All ASes in ASN order."""
        for asn in sorted(self._ases):
            yield self._ases[asn]

    def routers(self) -> Iterator[Router]:
        """All routers in id order."""
        for rid in sorted(self._routers):
            yield self._routers[rid]

    def links(self) -> Iterator[Link]:
        """All links in id order."""
        for lid in sorted(self._links):
            yield self._links[lid]

    def links_of_router(self, rid: int) -> List[Link]:
        """Links incident to a router, in link-id order."""
        if rid not in self._adj:
            raise TopologyError(f"unknown router {rid}")
        return [self._links[lid] for lid in sorted(self._adj[rid])]

    def intra_links(self, asn: int) -> List[Link]:
        """Intradomain links of one AS, in link-id order."""
        autsys = self.autonomous_system(asn)
        rset = set(autsys.router_ids)
        seen = set()
        out: List[Link] = []
        for rid in autsys.router_ids:
            for link in self.links_of_router(rid):
                if link.lid in seen:
                    continue
                if link.a in rset and link.b in rset:
                    seen.add(link.lid)
                    out.append(link)
        return sorted(out, key=lambda l: l.lid)

    def inter_links(self) -> List[Link]:
        """Every interdomain link, in link-id order."""
        return [l for l in self.links() if self.is_interdomain(l.lid)]

    def inter_links_of_as(self, asn: int) -> List[Link]:
        """Interdomain links with one endpoint in AS ``asn``."""
        autsys = self.autonomous_system(asn)
        out: List[Link] = []
        for rid in autsys.router_ids:
            for link in self.links_of_router(rid):
                if self.is_interdomain(link.lid) and link not in out:
                    out.append(link)
        return sorted(out, key=lambda l: l.lid)

    # ------------------------------------------------------------- predicates

    def is_interdomain(self, lid: int) -> bool:
        """True if the link connects two different ASes."""
        link = self.link(lid)
        return self._routers[link.a].asn != self._routers[link.b].asn

    def link_up(self, lid: int, state: NetworkState) -> bool:
        """True if the link and both endpoint routers are alive in ``state``."""
        if lid in state.failed_links:
            return False
        link = self.link(lid)
        return (
            link.a not in state.failed_routers and link.b not in state.failed_routers
        )

    def asn_of_router(self, rid: int) -> int:
        """AS number owning ``rid``."""
        return self.router(rid).asn

    def link_asns(self, lid: int) -> Tuple[int, ...]:
        """The (one or two) AS numbers a link touches, sorted."""
        link = self.link(lid)
        asns = {self._routers[link.a].asn, self._routers[link.b].asn}
        return tuple(sorted(asns))

    def endpoint_in_as(self, lid: int, asn: int) -> int:
        """Return the router id of the link endpoint inside AS ``asn``."""
        link = self.link(lid)
        if self._routers[link.a].asn == asn:
            return link.a
        if self._routers[link.b].asn == asn:
            return link.b
        raise TopologyError(f"link {lid} has no endpoint in AS {asn}")

    def ip_to_as_mapper(self) -> IpToAsMapper:
        """Build the IP-to-AS mapper from this topology's address plan."""
        return IpToAsMapper.from_allocator(self.allocator)

    # ------------------------------------------------------------------ sizes

    @property
    def num_ases(self) -> int:
        return len(self._ases)

    @property
    def num_routers(self) -> int:
        return len(self._routers)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"Internetwork(ases={self.num_ases}, routers={self.num_routers}, "
            f"links={self.num_links})"
        )


def _flip(rel: Relationship) -> Relationship:
    """Reverse the point of view of a relationship."""
    if rel is Relationship.CUSTOMER_PROVIDER:
        return Relationship.PROVIDER_CUSTOMER
    if rel is Relationship.PROVIDER_CUSTOMER:
        return Relationship.CUSTOMER_PROVIDER
    return rel
