"""Data-plane path resolution over converged routing state.

Given a converged :class:`~repro.netsim.bgp.rib.RoutingState` and a
:class:`~repro.netsim.topology.NetworkState`, :func:`data_path` walks a
packet hop by hop from a source router to a destination router:

* inside an AS the packet follows IGP shortest paths to the egress border
  router chosen by the AS's BGP best route for the destination prefix,
* at the border it crosses the eBGP session link into the next AS,
* in the destination AS the IGP delivers it to the destination router.

The walk fails — producing the "unreachability" the sensors observe — when
an AS on the way holds no route (withdrawal/blackhole), when an intradomain
partition separates ingress from egress, or when a forwarding loop is
detected (possible transiently in real networks; in our converged states it
would indicate an engine bug, but the guard keeps the walk total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.netsim.bgp.rib import RoutingState
from repro.netsim.igp import IgpView
from repro.netsim.topology import Internetwork, NetworkState

__all__ = ["ForwardingResult", "IgpCache", "data_path"]

#: Failure reason constants.
NO_ROUTE = "no-route"
IGP_PARTITION = "igp-partition"
LOOP = "as-loop"
DEAD_ENDPOINT = "dead-endpoint"


@dataclass(frozen=True)
class ForwardingResult:
    """Outcome of one data-plane walk.

    ``router_path`` lists every router the packet visited (source first).
    When ``reached`` is false the path ends at the router where forwarding
    stopped and ``failure_reason`` says why.
    """

    reached: bool
    router_path: Tuple[int, ...]
    failure_reason: Optional[str] = None

    def __len__(self) -> int:
        return len(self.router_path)


class IgpCache:
    """Caches :class:`IgpView` objects per (AS, state).

    IGP views are pure functions of the topology and the failed elements
    inside one AS; memoising them makes repeated traceroute meshes cheap.
    """

    def __init__(self, net: Internetwork) -> None:
        self.net = net
        self._views: Dict[Tuple[int, NetworkState], IgpView] = {}

    def view(self, asn: int, state: NetworkState) -> IgpView:
        """Return the (cached) IGP view of ``asn`` under ``state``."""
        key = (asn, state)
        view = self._views.get(key)
        if view is None:
            view = IgpView(self.net, asn, state)
            self._views[key] = view
        return view


def data_path(
    net: Internetwork,
    routing: RoutingState,
    state: NetworkState,
    src_router: int,
    dst_router: int,
    igp_cache: Optional[IgpCache] = None,
) -> ForwardingResult:
    """Walk a packet from ``src_router`` to ``dst_router``.

    The destination prefix is the prefix of the destination router's AS
    (the only granularity the paper's sensors exercise).
    """
    cache = igp_cache or IgpCache(net)
    if src_router in state.failed_routers:
        return ForwardingResult(False, (), DEAD_ENDPOINT)
    if dst_router in state.failed_routers:
        # The walk can still progress; model the common observable instead:
        # probes towards a dead host die inside the destination AS.  We walk
        # normally and fail at delivery (handled below by the IGP view).
        pass

    dst_asn = net.asn_of_router(dst_router)
    prefix = net.autonomous_system(dst_asn).prefix
    path = [src_router]
    cur = src_router
    visited_ases = set()

    while net.asn_of_router(cur) != dst_asn:
        asn = net.asn_of_router(cur)
        if asn in visited_ases:
            return ForwardingResult(False, tuple(path), LOOP)
        visited_ases.add(asn)
        route = routing.best(asn, prefix)
        if route is None:
            return ForwardingResult(False, tuple(path), NO_ROUTE)
        assert route.egress_router is not None and route.ingress_link is not None
        segment = cache.view(asn, state).path(cur, route.egress_router)
        if segment is None:
            return ForwardingResult(False, tuple(path), IGP_PARTITION)
        path.extend(segment[1:])
        link = net.link(route.ingress_link)
        if not net.link_up(link.lid, state):
            # The engine never selects a dead session; treat defensively.
            return ForwardingResult(False, tuple(path), NO_ROUTE)
        cur = link.other(route.egress_router)
        path.append(cur)

    segment = cache.view(dst_asn, state).path(cur, dst_router)
    if segment is None:
        return ForwardingResult(False, tuple(path), IGP_PARTITION)
    path.extend(segment[1:])
    return ForwardingResult(True, tuple(path), None)
