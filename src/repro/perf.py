"""Process accounting and benchmark-artifact helpers.

The perf benches (``benchmarks/test_perf_*.py``) all need the same two
things: a correct peak-RSS reading, and a crash-tolerant way to merge
their measurements into the ``BENCH_<name>.json`` trajectory artifacts.
Both used to live inside individual benchmark files, which is how the
two bugs this module fixes crept in:

* ``getrusage().ru_maxrss`` is **KiB on Linux but bytes on macOS** (and
  on the BSDs); dividing by 1024 unconditionally reported Darwin RSS
  1024x too high.  :func:`peak_rss_mb` carries the platform guard.
* artifacts were written only under ``results/``, so the repo-root
  ``BENCH_*.json`` perf trajectory stayed empty.
  :func:`write_bench_artifact` writes/merges **both** copies with the
  same read-update-write discipline (a tier measured by a different
  test run — the slow 20k tier, the overload lane — accumulates into
  the same file instead of clobbering it).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = [
    "maxrss_to_mb",
    "peak_rss_mb",
    "merge_bench_artifact",
    "write_bench_artifact",
    "bench_artifact_paths",
]


def maxrss_to_mb(ru_maxrss: float, platform: Optional[str] = None) -> float:
    """Convert a raw ``ru_maxrss`` reading to MiB for ``platform``.

    POSIX leaves the unit to the implementation: Linux reports KiB,
    macOS (and the BSDs) report bytes.  ``platform`` defaults to
    :data:`sys.platform` and is injectable so both conversions are unit
    testable on any host.
    """
    plat = sys.platform if platform is None else platform
    if plat == "darwin":
        return ru_maxrss / (1024.0 * 1024.0)
    return ru_maxrss / 1024.0


def peak_rss_mb(platform: Optional[str] = None) -> float:
    """Peak resident set size of this process so far, in MiB.

    ``ru_maxrss`` is monotonic, so callers measuring multiple tiers must
    measure them in ascending size order for per-tier numbers to be
    attributable.  Returns ``0.0`` where :mod:`resource` is unavailable
    (non-POSIX hosts) rather than failing the whole bench.
    """
    if resource is None:  # pragma: no cover - non-POSIX only
        return 0.0
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return maxrss_to_mb(raw, platform)


def merge_bench_artifact(
    path: Union[str, Path],
    schema: str,
    merge: Callable[[Dict[str, Any]], None],
) -> Dict[str, Any]:
    """Read-update-write one benchmark JSON artifact.

    Loads ``path`` when it already holds a document of the same
    ``schema`` (anything else — missing file, corrupt JSON, a different
    schema — starts fresh), lets ``merge`` fold the new measurements
    into the document in place, and writes it back sorted and indented.
    """
    target = Path(path)
    data: Dict[str, Any] = {"schema": schema}
    if target.exists():
        try:
            existing = json.loads(target.read_text())
        except json.JSONDecodeError:
            existing = None
        if isinstance(existing, dict) and existing.get("schema") == schema:
            data = existing
    merge(data)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def bench_artifact_paths(name: str, repo_root: Union[str, Path]) -> tuple:
    """The two homes of ``BENCH_<name>.json``: repo root and ``results/``."""
    root = Path(repo_root)
    return (root / f"BENCH_{name}.json", root / "results" / f"BENCH_{name}.json")


def write_bench_artifact(
    name: str,
    schema: str,
    merge: Callable[[Dict[str, Any]], None],
    repo_root: Union[str, Path],
) -> Dict[str, Any]:
    """Merge one benchmark's measurements into both artifact copies.

    The repo-root ``BENCH_<name>.json`` is the perf trajectory the CI
    lanes upload and diff across PRs; the ``results/`` copy sits next to
    the figure renders.  Both are merged independently (each may hold
    tiers the other run didn't measure); the returned document is the
    repo-root one.
    """
    merged: Dict[str, Any] = {}
    for path in reversed(bench_artifact_paths(name, repo_root)):
        merged = merge_bench_artifact(path, schema, merge)
    return merged
