"""NetDiagnoser (CoNEXT 2007) reproduction.

Troubleshooting network unreachabilities using end-to-end probes and
routing data: multi-AS Boolean tomography (Tomo), logical links and
reroute sets (ND-edge), AS-X control-plane integration (ND-bgpigp), and
Looking-Glass-based AS localisation under blocked traceroutes (ND-LG) —
plus the complete routing/measurement substrate the evaluation needs.

Quick start::

    from repro import NetDiagnoser
    from repro.netsim import figure2_network, LinkFailureEvent, Simulator
    from repro.measurement import deploy_sensors, take_snapshot

See ``examples/quickstart.py`` for the full loop.
"""

from repro.core import (
    DiagnosisResult,
    InferredGraph,
    MeasurementSnapshot,
    NetDiagnoser,
    diagnosability,
    physical_metrics,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "DiagnosisResult",
    "InferredGraph",
    "MeasurementSnapshot",
    "NetDiagnoser",
    "ReproError",
    "__version__",
    "diagnosability",
    "physical_metrics",
]
