"""Failure-scenario samplers (§4, "Failure scenarios").

The paper samples events uniformly over the measured infrastructure and
only keeps events that cause *unreachability* between some sensor pair
("the algorithm aims to diagnose only those failures that lead to
unreachability among some sensors"; reroutable-only events never invoke
the troubleshooter).  The samplers here mirror that admission loop:

* ``link-x`` — break x ∈ {1, 2, 3} random links currently on probed paths;
* ``router`` — break one random non-gateway router on a probed path
  (failing a sensor's own gateway kills the sensor, not a path — the
  overlay cannot probe from a dead vantage point);
* ``misconfig`` — pick a random probed interdomain link, one of its end
  routers, and some sensor route(s) it currently exports across that
  session; filter them (§3.1);
* ``misconfig+link`` — a misconfiguration and a link failure at once.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.errors import ScenarioError
from repro.measurement.sensors import Sensor
from repro.netsim.events import (
    CompositeEvent,
    Event,
    LinkFailureEvent,
    MisconfigurationEvent,
    RouterFailureEvent,
)
from repro.netsim.simulator import Simulator
from repro.netsim.topology import ExportFilter, NetworkState

__all__ = ["Scenario", "ScenarioSampler", "SCENARIO_KINDS"]

logger = logging.getLogger(__name__)

SCENARIO_KINDS = (
    "link-1",
    "link-2",
    "link-3",
    "router",
    "misconfig",
    "misconfig+link",
)


@dataclass(frozen=True)
class Scenario:
    """One admitted failure scenario."""

    kind: str
    event: Event
    after_state: NetworkState


class ScenarioSampler:
    """Samples admissible failure scenarios for one sensor deployment.

    Probed links/routers are discovered once from the ground-truth
    forwarding paths of the pre-failure mesh; every sampler then resamples
    until the event breaks at least one sensor pair (or the attempt budget
    runs out, raising :class:`~repro.errors.ScenarioError` — e.g. when the
    deployment is so redundant that single failures are always rerouted).
    """

    def __init__(
        self,
        sim: Simulator,
        sensors: Sequence[Sensor],
        rng: random.Random,
        base_state: Optional[NetworkState] = None,
        max_attempts: int = 300,
        intra_failures_only: bool = False,
    ) -> None:
        self.sim = sim
        self.sensors = list(sensors)
        self.rng = rng
        self.base_state = base_state or NetworkState.nominal()
        self.max_attempts = max_attempts
        #: Restrict link-failure sampling to intradomain links.  Used by
        #: the blocked-traceroute experiments (Figures 11-12), where each
        #: failure must be attributable to a single — blockable — AS so
        #: that "a failure lands in a blocking AS with probability f_b".
        self.intra_failures_only = intra_failures_only
        self._discover_probed()

    def _discover_probed(self) -> None:
        net = self.sim.net
        links: Set[int] = set()
        routers: Set[int] = set()
        for src in self.sensors:
            for dst in self.sensors:
                if src.sensor_id == dst.sensor_id:
                    continue
                trace = self.sim.trace(self.base_state, src.router_id, dst.router_id)
                path = trace.router_path()
                routers.update(path)
                for a, b in zip(path, path[1:]):
                    link = net.link_between(a, b)
                    assert link is not None
                    links.add(link.lid)
        gateways = {s.router_id for s in self.sensors}
        self.probed_links: List[int] = sorted(links)
        self.probed_inter_links: List[int] = sorted(
            lid for lid in links if net.is_interdomain(lid)
        )
        self.probed_intra_links: List[int] = sorted(
            lid for lid in links if not net.is_interdomain(lid)
        )
        self.probed_routers: List[int] = sorted(routers - gateways)
        if not self.probed_links:
            raise ScenarioError("the sensor mesh probed no links at all")
        self.failure_pool: List[int] = (
            self.probed_intra_links
            if self.intra_failures_only
            else self.probed_links
        )
        if not self.failure_pool:
            raise ScenarioError("no probed links eligible for failure sampling")

    # ------------------------------------------------------------- sampling

    def sample(self, kind: str) -> Scenario:
        """Sample one admissible scenario of the given kind."""
        if kind.startswith("link-"):
            return self.sample_link_failures(int(kind.split("-", 1)[1]))
        if kind == "router":
            return self.sample_router_failure()
        if kind == "misconfig":
            return self.sample_misconfiguration()
        if kind == "misconfig+link":
            return self.sample_misconfig_plus_link()
        raise ScenarioError(f"unknown scenario kind {kind!r}")

    def sample_link_failures(self, count: int) -> Scenario:
        """x simultaneous link failures among the eligible probed links."""
        if count < 1 or count > len(self.failure_pool):
            raise ScenarioError(
                f"cannot fail {count} links out of {len(self.failure_pool)} eligible"
            )
        for _ in range(self.max_attempts):
            chosen = tuple(sorted(self.rng.sample(self.failure_pool, count)))
            event = LinkFailureEvent(chosen)
            scenario = self._admit(f"link-{count}", event)
            if scenario is not None:
                return scenario
        raise ScenarioError(
            f"no admissible {count}-link failure in {self.max_attempts} attempts"
        )

    def sample_router_failure(self) -> Scenario:
        """One router failure (all attached links break — an SRLG)."""
        if not self.probed_routers:
            raise ScenarioError("no probed non-gateway router to fail")
        for _ in range(self.max_attempts):
            event = RouterFailureEvent(self.rng.choice(self.probed_routers))
            scenario = self._admit("router", event)
            if scenario is not None:
                return scenario
        raise ScenarioError(
            f"no admissible router failure in {self.max_attempts} attempts"
        )

    def sample_misconfiguration(
        self, granularity: str = "neighbor", require_partial: bool = True
    ) -> Scenario:
        """One BGP export-filter misconfiguration (§4).

        ``granularity="neighbor"`` (default) filters the whole group of
        routes the exporter learned from one of its neighbours — the
        realistic shape, since "BGP policies are usually set on a
        per-neighbor basis" (§3.1), and the shape the per-neighbour logical
        links of NetDiagnoser are designed to capture.
        ``granularity="prefix"`` filters a single prefix instead; it is the
        finer failure the paper explicitly declares out of logical-link
        reach, kept here for the granularity ablation.

        ``require_partial`` additionally demands that the misconfigured
        link still carries at least one working probe path *in the filtered
        direction* after the event — the defining property of a
        misconfiguration ("the link works for a subset of paths but not for
        others", §1); without it the filter degenerates into an ordinary
        link failure.
        """
        event = self._draw_misconfig(granularity)
        for _ in range(self.max_attempts):
            scenario = self._admit("misconfig", event)
            if scenario is not None and (
                not require_partial
                or self._misconfig_is_partial(event, scenario.after_state)
            ):
                return scenario
            event = self._draw_misconfig(granularity)
        raise ScenarioError(
            f"no admissible misconfiguration in {self.max_attempts} attempts"
        )

    def sample_misconfig_plus_link(self) -> Scenario:
        """A misconfiguration and an unrelated link failure together."""
        for _ in range(self.max_attempts):
            misconfig = self._draw_misconfig("neighbor")
            pool = [
                lid
                for lid in self.probed_links
                if lid != misconfig.export_filter.link_id
            ]
            if not pool:
                raise ScenarioError("no second link available to fail")
            link_event = LinkFailureEvent((self.rng.choice(pool),))
            event = CompositeEvent((misconfig, link_event))
            scenario = self._admit("misconfig+link", event)
            if scenario is not None and self._misconfig_is_partial(
                misconfig, scenario.after_state
            ):
                return scenario
        raise ScenarioError(
            f"no admissible misconfig+link in {self.max_attempts} attempts"
        )

    # -------------------------------------------------------------- helpers

    def _draw_misconfig(self, granularity: str) -> MisconfigurationEvent:
        """Draw a candidate misconfiguration (admission checked separately).

        Picks a probed interdomain link, one end router as the
        misconfigured exporter, and — per ``granularity`` — either the full
        group of exported sensor routes learned from one of the exporter's
        neighbours, or a single exported prefix.
        """
        if granularity not in ("neighbor", "prefix"):
            raise ScenarioError(f"unknown misconfig granularity {granularity!r}")
        if not self.probed_inter_links:
            raise ScenarioError("no probed interdomain link to misconfigure")
        routing = self.sim.routing(self.base_state)
        net = self.sim.net
        for _ in range(self.max_attempts):
            lid = self.rng.choice(self.probed_inter_links)
            link = net.link(lid)
            at_router = self.rng.choice(link.endpoints())
            exporter_asn = net.asn_of_router(at_router)
            exported = sorted(routing.advertised(lid, exporter_asn))
            if not exported:
                continue
            if granularity == "prefix":
                chosen = [self.rng.choice(exported)]
            else:
                # Group exported routes by the neighbour the exporter AS
                # learned them from (its own prefix forms the origin group).
                groups: dict = {}
                for prefix in exported:
                    route = routing.best(exporter_asn, prefix)
                    assert route is not None
                    groups.setdefault(route.neighbor_asn, []).append(prefix)
                key = self.rng.choice(sorted(groups, key=lambda k: (k is None, k)))
                chosen = groups[key]
            return MisconfigurationEvent(
                ExportFilter(
                    link_id=lid,
                    at_router=at_router,
                    prefixes=frozenset(chosen),
                )
            )
        raise ScenarioError(
            "could not find an interdomain session exporting any sensor route"
        )

    def _admit(self, kind: str, event: Event) -> Optional[Scenario]:
        """Return the scenario when the event breaks some pair, else None."""
        after = event.apply_to(self.base_state)
        if self._mesh_broken(after):
            logger.debug("admitted %s: %s", kind, event.describe(self.sim.net))
            return Scenario(kind=kind, event=event, after_state=after)
        logger.debug("rejected %s (no unreachability): %s",
                     kind, event.describe(self.sim.net))
        return None

    def _misconfig_is_partial(
        self, event: MisconfigurationEvent, state: NetworkState
    ) -> bool:
        """True when some working probe path still crosses the misconfigured
        session in the filtered direction.

        An export filter at router r towards peer q suppresses routes q
        uses to forward traffic q→r, so "the link still partially works"
        means a working post-event path crosses the hop pair (q, r) — the
        same directed token the filter breaks for other destinations.  The
        reverse direction is routed off q's own announcements and says
        nothing about the filter.
        """
        export_filter = event.export_filter
        net = self.sim.net
        link = net.link(export_filter.link_id)
        peer = link.other(export_filter.at_router)
        wanted = (peer, export_filter.at_router)
        for src in self.sensors:
            for dst in self.sensors:
                if src.sensor_id == dst.sensor_id:
                    continue
                trace = self.sim.trace(state, src.router_id, dst.router_id)
                if not trace.reached:
                    continue
                path = trace.router_path()
                if any((a, b) == wanted for a, b in zip(path, path[1:])):
                    return True
        return False

    def _mesh_broken(self, state: NetworkState) -> bool:
        for src in self.sensors:
            for dst in self.sensors:
                if src.sensor_id == dst.sensor_id:
                    continue
                if not self.sim.trace(state, src.router_id, dst.router_id).reached:
                    return True
        return False
