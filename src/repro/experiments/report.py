"""Text rendering of figure results.

The paper's figures are plots; our harness regenerates the underlying
series and prints them as aligned text tables (one per series) — plus an
optional ASCII chart overlaying all series — followed by per-series
summary statistics and the notes stating which qualitative claims the
series should exhibit.  ``EXPERIMENTS.md`` records these renderings next
to the paper's claims.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.experiments.figures.base import FigureResult, Series
    from repro.experiments.runner import RunnerStats
    from repro.stream.replay import StreamRunResult

__all__ = [
    "render_figure",
    "render_ascii_chart",
    "render_runner_stats",
    "render_stream_report",
]

#: Marker characters assigned to series in order.
_MARKERS = "ox+*#@%&"


def render_ascii_chart(
    series_list: Sequence["Series"], width: int = 60, height: int = 16
) -> str:
    """Overlay every series on one character grid (terminal plot).

    Each series gets a marker from ``o x + * ...``; axes are annotated
    with the data ranges.  Intended for quick visual inspection of the
    regenerated figures — the tables remain the authoritative record.
    """
    points = [p for series in series_list for p in series.points]
    if not points:
        return "(no data points)"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in series.points:
            col = round((x - x_lo) / x_span * (width - 1))
            row = (height - 1) - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = [f"{y_hi:8.2f} |" + "".join(grid[0])]
    lines += ["         |" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{y_lo:8.2f} |" + "".join(grid[-1]))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<10.3g}{'':>{max(0, width - 20)}}{x_hi:>10.3g}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={series.name}"
        for i, series in enumerate(series_list)
    )
    lines.append(f"          {legend}")
    return "\n".join(lines)


def render_runner_stats(stats: "RunnerStats") -> str:
    """Aligned accounting block for one batch's :class:`RunnerStats`.

    Not part of a figure's golden output: every timing in it is
    wall-clock, so it is rendered as an appendix after the series data.
    Phase times are labelled *CPU seconds* because they are summed over
    every placement's (worker) process; only ``wall`` is the batch's
    elapsed time, and under ``workers > 1`` the CPU total legitimately
    exceeds it — their ratio is the realised parallel speedup.
    """
    from repro.experiments.stats import ratio

    cpu_seconds = stats.setup_seconds + stats.scenario_seconds
    speedup = ratio(cpu_seconds, stats.wall_seconds)
    trace_rate = ratio(
        stats.trace_cache_hits, stats.trace_cache_hits + stats.trace_cache_misses
    )
    routing_rate = ratio(
        stats.routing_cache_hits,
        stats.routing_cache_hits + stats.routing_cache_misses,
    )
    reuse_rate = ratio(
        stats.prefixes_reused, stats.prefixes_reused + stats.prefixes_converged
    )
    lines = [
        "-- runner stats",
        f"   workers={stats.workers}  placements={stats.placements}  "
        f"records={stats.records}",
        f"   scenarios: sampled={stats.scenarios_sampled}  "
        f"rejected={stats.scenarios_rejected}  "
        f"budget-exhaustions={stats.budget_exhaustions}",
        f"   trace cache: entries={stats.trace_cache_entries}  "
        f"hits={stats.trace_cache_hits}  misses={stats.trace_cache_misses}  "
        f"evictions={stats.trace_cache_evictions}  "
        f"(hit-rate={trace_rate:.2f})",
        f"   routing cache: entries={stats.routing_cache_entries}  "
        f"hits={stats.routing_cache_hits}  "
        f"misses={stats.routing_cache_misses}  "
        f"evictions={stats.routing_cache_evictions}  "
        f"(hit-rate={routing_rate:.2f})",
        f"   convergence: full={stats.full_converges}  "
        f"incremental={stats.incremental_converges}  "
        f"prefixes converged={stats.prefixes_converged}  "
        f"reused={stats.prefixes_reused}  (reuse-rate={reuse_rate:.2f})",
        f"   rib sharing: owned={stats.rib_prefixes_owned}  "
        f"shared={stats.rib_prefixes_shared}  "
        f"cow-copies={stats.rib_cow_copies}",
        f"   time: setup-cpu={stats.setup_seconds:.2f}s  "
        f"scenarios-cpu={stats.scenario_seconds:.2f}s  "
        f"(aggregate CPU seconds across {stats.workers} worker(s))",
        f"   wall={stats.wall_seconds:.2f}s  (cpu/wall={speedup:.2f}x)",
    ]
    if stats.any_faults_seen():
        lines[-1:-1] = [
            f"   faults: probes dropped={stats.probes_dropped}  "
            f"truncated={stats.probes_truncated}  "
            f"hops anonymized={stats.hops_anonymized}  "
            f"sensors down={stats.sensors_down}  "
            f"pairs discarded={stats.pairs_discarded}  "
            f"failures masked={stats.masked_failures}",
            f"   looking glass: failures={stats.lg_failures}  "
            f"retries={stats.lg_retries}  exhausted={stats.lg_exhausted}  "
            f"rate-limited={stats.lg_rate_limited}",
            f"   control feed: outages={stats.feed_outages}  "
            f"withdrawals lost={stats.withdrawals_lost}  "
            f"delayed={stats.withdrawals_delayed}  "
            f"igp lost={stats.igp_lost}  delayed={stats.igp_delayed}",
            f"   degraded diagnoses={stats.degraded_diagnoses}",
        ]
    if stats.any_corruption_seen():
        lines[-1:-1] = [
            f"   corruption: hops forged={stats.hops_forged}  "
            f"duplicated={stats.hops_duplicated}  "
            f"loops injected={stats.loops_injected}  "
            f"reach bits flipped={stats.reach_bits_flipped}  "
            f"stale replays={stats.stale_replays}",
            f"   corrupted feeds: duplicated={stats.feed_messages_duplicated}  "
            f"misordered={stats.feed_messages_misordered}  "
            f"lg stale answers={stats.lg_stale_answers}",
        ]
    if stats.any_ensemble_seen():
        disagreement = stats.ensemble_disagreement()
        lines[-1:-1] = [
            f"   ensemble: agree={stats.ensemble_agreements}  "
            f"partial={stats.ensemble_partials}  "
            f"conflict={stats.ensemble_conflicts}  "
            f"(agreement-rate={disagreement.agreement_rate():.2f})",
        ]
    if stats.any_validation_seen():
        lines[-1:-1] = [
            f"   validation: violations={stats.invariant_violations}  "
            f"traces repaired={stats.traces_repaired}  "
            f"quarantined={stats.traces_quarantined}  "
            f"stale rounds dropped={stats.stale_rounds_dropped}",
            f"   validated feeds: repaired={stats.feed_messages_repaired}  "
            f"quarantined={stats.feed_messages_quarantined}  "
            f"lg paths quarantined={stats.lg_paths_quarantined}",
            f"   consistency: sensors excluded={stats.sensors_excluded}  "
            f"re-diagnoses={stats.rediagnoses}",
        ]
    resilience = (
        stats.jobs_timed_out,
        stats.jobs_crashed,
        stats.jobs_retried,
        stats.jobs_failed,
        stats.serial_fallbacks,
        stats.placements_resumed,
    )
    if any(resilience):
        lines.append(
            f"   resilience: timed out={stats.jobs_timed_out}  "
            f"crashed={stats.jobs_crashed}  retried={stats.jobs_retried}  "
            f"failed={stats.jobs_failed}  "
            f"serial fallbacks={stats.serial_fallbacks}  "
            f"resumed={stats.placements_resumed}"
        )
    breakers = (
        stats.breaker_opened,
        stats.breaker_reclosed,
        stats.breaker_short_circuits,
        stats.breaker_probes,
        stats.dead_lettered,
    )
    if any(breakers):
        lines.append(
            f"   breakers: opened={stats.breaker_opened}  "
            f"reclosed={stats.breaker_reclosed}  "
            f"short-circuited={stats.breaker_short_circuits}  "
            f"probes={stats.breaker_probes}  "
            f"dead-lettered={stats.dead_lettered}"
        )
    return "\n".join(lines)


def render_stream_report(result: "StreamRunResult") -> str:
    """Aligned accounting block for one stream replay.

    Episode reports themselves are deterministic; this block mixes them
    with wall-clock throughput, so (like :func:`render_runner_stats`)
    it is an appendix, never golden output.  Latency is in logical
    ticks: how long a scheduled episode transition waited in the
    bounded queue before its diagnosis ran.
    """
    from repro.experiments.stats import percentile, ratio

    engine = result.engine_counters
    ingest = result.ingest_counters
    window = result.window_counters
    detector = result.detector_counters
    events_per_second = ratio(result.events_total, result.wall_seconds)
    latencies = sorted(result.latencies)
    lines = [
        "-- stream replay",
        f"   events={result.events_total}  "
        f"episodes injected={len(result.episodes)}  "
        f"reports={engine['reports_emitted']}  "
        f"wall={result.wall_seconds:.2f}s  "
        f"({events_per_second:.0f} events/s)",
        f"   ingest: screened={ingest['events_screened']}  "
        f"quarantined={ingest['events_quarantined']}  "
        f"repaired={ingest['events_repaired']}",
        f"   window: baseline pairs={window['baseline_pairs']}  "
        f"current pairs={window['current_pairs']}  "
        f"stale evictions={window['stale_evictions']}  "
        f"lru evictions={window['lru_evictions']}  "
        f"dark sensors={window['dark_sensors']}",
        f"   episodes: detected={detector['episodes_total']}  "
        f"open at end={detector['episodes_open']}  "
        f"transitions={detector['transitions']}  "
        f"flaps={detector.get('flaps', 0)}  "
        f"pairs alarmed={detector['pairs_alarmed']}",
        f"   backpressure: coalesced={engine['episodes_coalesced']}  "
        f"deferred={engine['transitions_deferred']}  "
        f"reused={engine['reports_reused']}  "
        f"degraded diagnoses={engine['diagnoses_failed']}",
        *(
            [
                f"   ensemble verdicts: agree={engine['ensemble_agree']}  "
                f"partial={engine['ensemble_partial']}  "
                f"conflict={engine['ensemble_conflict']}"
            ]
            if engine.get("ensemble_agree", 0)
            + engine.get("ensemble_partial", 0)
            + engine.get("ensemble_conflict", 0)
            else []
        ),
        f"   latency (ticks): p50={percentile(latencies, 0.50):.0f}  "
        f"p99={percentile(latencies, 0.99):.0f}  "
        f"max={latencies[-1] if latencies else 0:.0f}",
        f"   stage cpu: ingest={result.stage_seconds['ingest']:.2f}s  "
        f"window={result.stage_seconds['window']:.2f}s  "
        f"detect={result.stage_seconds['detect']:.2f}s  "
        f"diagnose={result.stage_seconds['diagnose']:.2f}s",
    ]
    if result.shard_stats:
        lines.append(
            f"   shards: n={engine.get('shards', len(result.shard_stats))}  "
            f"broadcast events={engine.get('events_broadcast', 0)}  "
            f"cross-shard episodes={engine.get('cross_shard_episodes', 0)}"
        )
        for stats in result.shard_stats:
            lines.append(
                f"     shard {stats['shard']}: "
                f"offered={stats['events_offered']}  "
                f"admitted={stats['events_admitted']}  "
                f"pairs tracked={stats['pairs_tracked']}  "
                f"alarmed={stats['pairs_alarmed']}"
            )
        if engine.get("admission_shed", 0) or engine.get(
            "admission_rejected_unknown", 0
        ):
            lines.append(
                f"   admission: admitted={engine.get('admission_admitted', 0)}  "
                f"shed={engine.get('admission_shed', 0)}  "
                f"unknown tenant={engine.get('admission_rejected_unknown', 0)}"
            )
    if result.supervision is not None:
        sup = result.supervision["counters"]
        recoveries = result.supervision["ticks_to_recover"]
        mean_recover = (
            sum(recoveries) / len(recoveries) if recoveries else 0.0
        )
        lines.append(
            f"   supervision: crashes={sup['shard_crashes']}  "
            f"stalls={sup['shard_stalls']}  slow ticks={sup['slow_ticks']}  "
            f"recoveries={sup['recoveries']}  "
            f"mean ticks-to-recover={mean_recover:.1f}"
        )
        lines.append(
            f"   degraded coverage: ticks dark={sup['ticks_dark']}  "
            f"pairs uncovered={sup['pairs_uncovered']}  "
            f"episodes delayed={sup['episodes_delayed']}  "
            f"buffered={sup['events_buffered']}  "
            f"checkpoints={sup['checkpoints_saved']}"
        )
        breakers = result.supervision["breakers"]
        opened = sum(b["times_opened"] for b in breakers.values())
        if opened or result.supervision["diagnoses_short_circuited"]:
            open_now = sorted(
                label
                for label, b in breakers.items()
                if b["state"] != "closed"
            )
            lines.append(
                f"   breakers: opened={opened}  "
                f"reclosed={sum(b['times_reclosed'] for b in breakers.values())}  "
                f"short-circuited="
                f"{result.supervision['diagnoses_short_circuited']}  "
                f"probes={sum(b['probes'] for b in breakers.values())}  "
                f"open now={','.join(open_now) or 'none'}"
            )
        dead = (
            result.supervision["dead_letters"]
            + result.supervision["transitions_dead_lettered"]
        )
        if dead or result.supervision["diagnoses_poisoned"]:
            lines.append(
                f"   dead letters: entries={result.supervision['dead_letters']}  "
                f"transitions={result.supervision['transitions_dead_lettered']}  "
                f"poisoned diagnoses={result.supervision['diagnoses_poisoned']}"
            )
    return "\n".join(lines)


def render_figure(result: "FigureResult", chart: bool = True) -> str:
    """Render one figure's series, summaries and notes as text."""
    lines: List[str] = []
    lines.append(f"=== {result.figure_id}: {result.title} ===")
    if chart and result.series:
        lines.append("")
        lines.append(render_ascii_chart(result.series))
    for series in result.series:
        lines.append("")
        lines.append(f"-- {series.name}")
        lines.append(f"   {series.x_label:>14s}  {series.y_label:>12s}")
        for x, y in series.points:
            lines.append(f"   {x:14.4f}  {y:12.4f}")
    if result.summaries:
        lines.append("")
        lines.append("-- summaries")
        for name, summary in result.summaries.items():
            parts = ", ".join(
                f"{key}={value:.3f}" for key, value in summary.items() if key != "n"
            )
            lines.append(f"   {name} (n={int(summary.get('n', 0))}): {parts}")
    if result.notes:
        lines.append("")
        lines.append("-- expected shape (from the paper)")
        for note in result.notes:
            lines.append(f"   * {note}")
    if result.runner_stats is not None:
        lines.append("")
        lines.append(render_runner_stats(result.runner_stats))
    return "\n".join(lines)
