"""Figure 6: Tomo sensitivity under different failure scenarios (§5.1).

Top plot: CDF of Tomo's sensitivity for one, two and three simultaneous
link failures.  Bottom plot: CDF for one router misconfiguration and for
misconfiguration + link failure.  Expected shape: single-link sensitivity
≈ 1 almost everywhere; multi-link sensitivity much lower (Tomo ignores
rerouted paths); misconfiguration sensitivity zero in the vast majority of
instances (Tomo exonerates any link carrying a working path).
"""

from __future__ import annotations

from repro.diagnosers import make_diagnosers
from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.jobs import ResearchTopoFactory, StubPlacement
from repro.experiments.runner import RunnerStats, run_kind_batch
from repro.experiments.stats import cdf, summarize

__all__ = ["run", "KINDS"]

KINDS = ("link-1", "link-2", "link-3", "misconfig", "misconfig+link")


def run(config: FigureConfig = FigureConfig()) -> FigureResult:
    """Regenerate Figure 6: Tomo sensitivity CDFs per scenario kind."""
    stats = RunnerStats()
    records = run_kind_batch(
        topo_factory=ResearchTopoFactory(topo_seed=config.topo_seed),
        placement_fn=StubPlacement(config.n_sensors),
        kinds=KINDS,
        diagnosers=make_diagnosers(("tomo",)),
        placements=config.placements,
        failures_per_placement=config.failures_per_placement,
        seed=config.seed,
        workers=config.workers,
        stats=stats,
    )
    result = FigureResult(
        figure_id="fig6",
        title="Tomo under different failure scenarios (sensitivity CDFs)",
        notes=[
            "single link failures: sensitivity is one in almost all instances",
            "two/three link failures: much lower sensitivity",
            "misconfiguration: sensitivity is zero in the vast majority of instances",
        ],
    )
    for kind in KINDS:
        values = [r.scores["tomo"].link.sensitivity for r in records[kind]]
        if not values:
            continue
        result.series.append(
            Series(
                name=kind,
                points=cdf(values),
                x_label="sensitivity",
                y_label="P[<=x]",
            )
        )
        result.summaries[kind] = summarize(values)
    result.runner_stats = stats
    return result
