"""Degradation curves: diagnosis quality vs measurement fault rate.

The paper assumes a clean measurement plane; this harness asks how each
algorithm holds up when it is not.  A uniform
:class:`~repro.faults.FaultConfig` sweeps the fault rate from 0 to 0.5
across every injected fault mode at once — dropped/truncated/anonymised
traceroutes, sensor dropout, flaky and rate-limited Looking Glasses, and
a lossy BGP/IGP control feed — and every diagnoser (Tomo, ND-edge,
ND-bgpigp, ND-LG) is scored on single intradomain link failures at each
rate.

Expected shape: all curves start at their clean-measurement values and
decay as faults eat measurements; the runs themselves must *never* crash
— a diagnoser that cannot cope with the partial inputs is scored with an
empty best-effort hypothesis, and the accounting shows up in the
``-- runner stats`` block (probes dropped, sensors down, LG retries,
feed outages, degraded diagnoses...).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.diagnosers import make_diagnosers
from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.jobs import CoreAsx, ResearchTopoFactory, StubPlacement
from repro.experiments.runner import RunnerStats, run_kind_batch
from repro.experiments.stats import mean
from repro.faults import FaultConfig

__all__ = ["run", "DEFAULT_FAULT_RATES"]

DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def _journal_path(
    base: Union[str, Path, None], rate: float
) -> Optional[Path]:
    """One journal file per swept rate (each rate is its own batch)."""
    if base is None:
        return None
    base = Path(base)
    return base.with_name(f"{base.name}.rate{rate:.2f}")


def run(
    config: FigureConfig = FigureConfig(),
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    job_timeout: Optional[float] = None,
    journal: Union[str, Path, None] = None,
    resume: bool = False,
    corrupt: bool = False,
    validation: Optional[str] = None,
) -> FigureResult:
    """Sweep the uniform fault rate and score every algorithm at each.

    ``journal``/``resume`` checkpoint each rate's batch to
    ``<journal>.rate<r>`` files; ``job_timeout`` bounds each placement
    (parallel backend only).

    ``corrupt=True`` switches the swept axis from *omission* faults
    (:meth:`~repro.faults.FaultConfig.uniform`) to *corruption* modes
    (:meth:`~repro.faults.FaultConfig.corruption` — forged/duplicated
    hops, injected loops, flipped reachability bits, stale replayed
    rounds, duplicated/misordered feed messages, stale LG answers).
    ``validation`` screens every run's inputs under the named
    :mod:`repro.validate` policy; a corruption sweep without validation
    shows what lying data does to undefended algorithms, while
    ``validation="quarantine"`` (the CI smoke configuration) must
    complete every rate with zero unhandled exceptions.
    """
    diagnosers = make_diagnosers(
        {"tomo": None,
         "nd-edge": None,
         "nd-bgpigp": {"ignore_unidentified": True},
         "nd-lg": None}
    )
    curves = {
        f"{label}/{metric}": []
        for label in diagnosers
        for metric in ("sensitivity", "fp-rate")
    }
    stats = RunnerStats()
    for rate in fault_rates:
        records = run_kind_batch(
            topo_factory=ResearchTopoFactory(topo_seed=config.topo_seed),
            placement_fn=StubPlacement(config.n_sensors),
            kinds=("link-1",),
            diagnosers=diagnosers,
            placements=config.placements,
            failures_per_placement=config.failures_per_placement,
            seed=config.seed,
            asx_selector=CoreAsx(),
            # The corruption axis needs ND-LG to actually *query* external
            # Looking Glasses (lg-stale answers) — blocked ASes force that;
            # the omission axis keeps the historical all-visible setup.
            blocked_fraction=0.3 if corrupt else 0.0,
            lg_fraction=1.0,
            intra_failures_only=True,
            fault_config=(
                FaultConfig.corruption(rate)
                if corrupt
                else FaultConfig.uniform(rate)
            ),
            validation=validation,
            workers=config.workers,
            stats=stats,
            job_timeout=job_timeout,
            journal=_journal_path(journal, rate),
            resume=resume,
        )
        recs = records["link-1"]
        if not recs:
            continue
        for label in diagnosers:
            curves[f"{label}/sensitivity"].append(
                (rate, mean([r.scores[label].link.sensitivity for r in recs]))
            )
            curves[f"{label}/fp-rate"].append(
                (rate, mean([1.0 - r.scores[label].link.specificity for r in recs]))
            )
    if corrupt:
        title = (
            "Diagnosis quality vs measurement corruption rate "
            f"(validation={validation or 'off'})"
        )
        notes = [
            "all algorithms start at their clean-measurement accuracy",
            "corrupt records lie instead of vanishing; without validation "
            "they flow into the hypothesis set",
            "under repair/quarantine every screened record is accounted in "
            "the runner-stats block; no run crashes",
        ]
    else:
        title = "Diagnosis quality vs measurement fault rate (all fault modes)"
        notes = [
            "all algorithms start at their clean-measurement accuracy",
            "sensitivity decays as faults remove measurements; no run crashes",
            "ND-LG additionally degrades through flaky/rate-limited LGs",
            "the runner-stats block accounts for every fault injected",
        ]
    result = FigureResult(
        figure_id="degradation",
        title=title,
        notes=notes,
    )
    for name, points in curves.items():
        result.series.append(
            Series(
                name=name,
                points=points,
                x_label="uniform fault rate",
                y_label=name.split("/", 1)[1],
            )
        )
    result.runner_stats = stats
    return result
