"""Figure 5: sensor placement vs diagnosability (§4).

Four placements swept over the number of sensors N:

* ``same-as`` — all N sensors in one core AS (Abilene): paths exercise the
  AS's internal mesh diversely → highest diagnosability;
* ``distant-as`` — N/2 in Abilene, N/2 in GEANT: every cross pair shares
  the same inter-AS link sequence → low diagnosability;
* ``distant-split`` — distant-as plus sensors at the border routers
  between the two ASes → splits the shared sequence, improving on
  distant-as;
* ``random`` — sensors at random stub ASes: the worst case, and the
  placement every other experiment uses.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.core.diagnosability import diagnosability
from repro.core.graph import InferredGraph
from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.stats import mean
from repro.measurement.probing import probe_mesh
from repro.measurement.sensors import (
    deploy_sensors,
    distant_as_placement,
    distant_split_placement,
    random_stub_placement,
    same_as_placement,
)
from repro.netsim.gen.internet import research_internet
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState

__all__ = ["run", "DEFAULT_SENSOR_COUNTS", "PLACEMENTS"]

DEFAULT_SENSOR_COUNTS: Tuple[int, ...] = (4, 8, 16, 32, 64)
PLACEMENTS: Tuple[str, ...] = ("same-as", "distant-as", "distant-split", "random")


def _distant_pair(topo) -> Tuple[int, int]:
    """Two tier-2 ASes homed to different cores: genuinely distant networks
    whose cross paths share a long inter-AS link sequence."""
    abilene, geant = topo.core_asns[0], topo.core_asns[1]
    as_a = next(a for a in topo.tier2_asns if topo.providers[a] == [abilene])
    as_b = next(a for a in topo.tier2_asns if topo.providers[a] == [geant])
    return as_a, as_b


def _intermediate_routers(topo, asn_a: int, asn_b: int) -> List[int]:
    """Routers on the forwarding path between the two distant ASes,
    excluding the ASes themselves (Figure 5's "intermediate nodes")."""
    net = topo.net
    sim = Simulator(net, [asn_a, asn_b])
    src = net.autonomous_system(asn_a).router_ids[0]
    dst = net.autonomous_system(asn_b).router_ids[0]
    trace = sim.trace(NetworkState.nominal(), src, dst)
    return [
        rid
        for rid in trace.router_path()
        if net.asn_of_router(rid) not in (asn_a, asn_b)
    ]


def _placement_routers(
    name: str, topo, n: int, rng: random.Random
) -> List[int]:
    net = topo.net
    abilene = topo.core_asns[0]
    if name == "same-as":
        return same_as_placement(net, abilene, n, rng)
    if name == "distant-as":
        as_a, as_b = _distant_pair(topo)
        return distant_as_placement(net, as_a, as_b, n, rng)
    if name == "distant-split":
        as_a, as_b = _distant_pair(topo)
        return distant_split_placement(
            net,
            as_a,
            as_b,
            n,
            rng,
            intermediate_routers=_intermediate_routers(topo, as_a, as_b),
            split=max(2, n // 4),
        )
    if name == "random":
        return random_stub_placement(topo, n, rng)
    raise ValueError(f"unknown placement {name!r}")


def placement_diagnosability(
    placement: str,
    n_sensors: int,
    topo_seed: int,
    rng: random.Random,
) -> float:
    """D(G) of one deployment (fresh topology per call)."""
    topo = research_internet(seed=topo_seed)
    routers = _placement_routers(placement, topo, n_sensors, rng)
    sensors = deploy_sensors(topo.net, routers)
    sensor_asns = {topo.net.asn_of_router(s.router_id) for s in sensors}
    sim = Simulator(topo.net, sensor_asns)
    store = probe_mesh(sim, sensors, NetworkState.nominal())
    return diagnosability(InferredGraph.from_paths(store.paths()))


def run(
    config: FigureConfig = FigureConfig(),
    sensor_counts: Sequence[int] = DEFAULT_SENSOR_COUNTS,
) -> FigureResult:
    """Regenerate Figure 5: one series per placement, D(G) vs N."""
    result = FigureResult(
        figure_id="fig5",
        title="Sensor placement and diagnosability",
        notes=[
            "same-as shows the highest diagnosability",
            "distant-split improves on distant-as",
            "random placement shows the worst diagnosability",
        ],
    )
    for placement in PLACEMENTS:
        points = []
        for n in sensor_counts:
            values = []
            for repeat in range(config.placements):
                rng = random.Random(f"{config.seed}/fig5/{placement}/{n}/{repeat}")
                values.append(
                    placement_diagnosability(
                        placement, n, config.topo_seed + repeat, rng
                    )
                )
            points.append((float(n), mean(values)))
        result.series.append(
            Series(
                name=placement,
                points=points,
                x_label="sensors",
                y_label="diagnosability",
            )
        )
    return result
