"""Figure 11: the effect of blocked traceroutes (§5.4).

Average AS-sensitivity and AS-specificity of ND-LG vs ND-bgpigp as the
fraction f_b of (covered, non-sensor) ASes blocking traceroute grows from
0 to 0.8, with every AS providing a Looking Glass.  Failures are single
intradomain link failures, so each failure is attributable to exactly one
— potentially blocking — AS.

Expected shape: ND-LG's AS-sensitivity stays high (≈ 0.8 in the paper)
across the whole range, while ND-bgpigp — which simply ignores
unidentified links — decays like 1 − f_b.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.diagnosers import make_diagnosers
from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.jobs import CoreAsx, ResearchTopoFactory, StubPlacement
from repro.experiments.runner import RunnerStats, run_kind_batch
from repro.experiments.stats import mean

__all__ = ["run", "DEFAULT_BLOCKED_FRACTIONS"]

DEFAULT_BLOCKED_FRACTIONS: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8)


def run(
    config: FigureConfig = FigureConfig(),
    blocked_fractions: Sequence[float] = DEFAULT_BLOCKED_FRACTIONS,
) -> FigureResult:
    """Regenerate Figure 11: AS-level metrics vs blocked fraction."""
    diagnosers = make_diagnosers(
        {"nd-lg": None, "nd-bgpigp": {"ignore_unidentified": True}}
    )
    curves = {
        f"{label}/{metric}": []
        for label in diagnosers
        for metric in ("as-sensitivity", "as-specificity")
    }
    stats = RunnerStats()
    for fraction in blocked_fractions:
        records = run_kind_batch(
            topo_factory=ResearchTopoFactory(topo_seed=config.topo_seed),
            placement_fn=StubPlacement(config.n_sensors),
            kinds=("link-1",),
            diagnosers=diagnosers,
            placements=config.placements,
            failures_per_placement=config.failures_per_placement,
            seed=config.seed,
            asx_selector=CoreAsx(),
            blocked_fraction=fraction,
            lg_fraction=1.0,
            intra_failures_only=True,
            workers=config.workers,
            stats=stats,
        )
        recs = records["link-1"]
        if not recs:
            continue
        for label in diagnosers:
            curves[f"{label}/as-sensitivity"].append(
                (fraction, mean([r.scores[label].as_level.sensitivity for r in recs]))
            )
            curves[f"{label}/as-specificity"].append(
                (fraction, mean([r.scores[label].as_level.specificity for r in recs]))
            )
    result = FigureResult(
        figure_id="fig11",
        title="The effect of blocked traceroutes (single link failures)",
        notes=[
            "ND-LG AS-sensitivity stays high across the whole f_b range",
            "ND-bgpigp AS-sensitivity decays roughly like 1 - f_b",
            "both keep high AS-specificity",
        ],
    )
    for name, points in curves.items():
        result.series.append(
            Series(
                name=name,
                points=points,
                x_label="blocked fraction f_b",
                y_label=name.split("/", 1)[1],
            )
        )
    result.runner_stats = stats
    return result
