"""Figure 9: diagnosability vs specificity (§5.2).

The number of probing sources is swept so the inferred graphs span a wide
diagnosability range; each (placement, failure) pair contributes one
scatter point (D(G), ND-edge specificity).  Expected shape: a positive
relation — higher diagnosability yields higher specificity — with
specificity staying above ~0.75 throughout.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.diagnosers import make_diagnosers
from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.jobs import ResearchTopoFactory, StubPlacement
from repro.experiments.runner import RunnerStats, run_kind_batch
from repro.experiments.stats import binned_means, summarize

__all__ = ["run", "DEFAULT_SENSOR_COUNTS"]

DEFAULT_SENSOR_COUNTS: Tuple[int, ...] = (5, 10, 20, 40)


def run(
    config: FigureConfig = FigureConfig(),
    sensor_counts: Sequence[int] = DEFAULT_SENSOR_COUNTS,
) -> FigureResult:
    """Regenerate Figure 9: (diagnosability, specificity) scatter."""
    points = []
    stats = RunnerStats()
    for n_sensors in sensor_counts:
        records = run_kind_batch(
            topo_factory=ResearchTopoFactory(topo_seed=config.topo_seed),
            placement_fn=StubPlacement(n_sensors),
            kinds=("link-1",),
            diagnosers=make_diagnosers(("nd-edge",)),
            placements=config.placements,
            failures_per_placement=config.failures_per_placement,
            seed=config.seed + n_sensors,
            workers=config.workers,
            stats=stats,
        )
        for record in records["link-1"]:
            points.append(
                (record.diagnosability, record.scores["nd-edge"].link.specificity)
            )
    result = FigureResult(
        figure_id="fig9",
        title="Diagnosability vs specificity (ND-edge, single link failures)",
        notes=[
            "specificity grows with diagnosability",
            "specificity stays above ~0.75 across the whole range",
        ],
    )
    result.series.append(
        Series(
            name="scatter",
            points=sorted(points),
            x_label="diagnosability",
            y_label="specificity",
        )
    )
    result.series.append(
        Series(
            name="trend",
            points=binned_means(points, bins=6),
            x_label="diagnosability",
            y_label="mean specificity",
        )
    )
    result.summaries["specificity"] = summarize([y for _x, y in points])
    result.summaries["diagnosability"] = summarize([x for x, _y in points])
    result.runner_stats = stats
    return result
