"""Figure 8: specificity of ND-edge (§5.2).

CDF of ND-edge's specificity for a single link failure and for a single
router misconfiguration.  Expected shape: specificity above 0.9 nearly
everywhere, and *better* for misconfigurations than for link failures —
a misconfiguration appears as one failed logical link, and the working
paths eliminate the physical links around it.
"""

from __future__ import annotations

from repro.diagnosers import make_diagnosers
from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.jobs import ResearchTopoFactory, StubPlacement
from repro.experiments.runner import RunnerStats, run_kind_batch
from repro.experiments.stats import cdf, summarize

__all__ = ["run", "KINDS"]

KINDS = ("link-1", "misconfig")


def run(config: FigureConfig = FigureConfig()) -> FigureResult:
    """Regenerate Figure 8: ND-edge specificity CDFs."""
    stats = RunnerStats()
    records = run_kind_batch(
        topo_factory=ResearchTopoFactory(topo_seed=config.topo_seed),
        placement_fn=StubPlacement(config.n_sensors),
        kinds=KINDS,
        diagnosers=make_diagnosers(("nd-edge",)),
        placements=config.placements,
        failures_per_placement=config.failures_per_placement,
        seed=config.seed,
        workers=config.workers,
        stats=stats,
    )
    result = FigureResult(
        figure_id="fig8",
        title="Specificity of ND-edge",
        notes=[
            "specificity is high (> 0.9) for single link failures",
            "specificity is even better for misconfigurations",
        ],
    )
    for kind in KINDS:
        values = [r.scores["nd-edge"].link.specificity for r in records[kind]]
        sizes = [
            float(r.scores["nd-edge"].physical_hypothesis_size)
            for r in records[kind]
        ]
        if not values:
            continue
        result.series.append(
            Series(
                name=kind,
                points=cdf(values),
                x_label="specificity",
                y_label="P[<=x]",
            )
        )
        result.summaries[kind] = summarize(values)
        result.summaries[f"{kind}/|H|"] = summarize(sizes)
    result.runner_stats = stats
    return result
