"""Figure 10: ND-edge vs ND-bgpigp (§5.3).

Sensitivity and specificity CDFs for three simultaneous link failures,
with AS-X at a core AS.  Expected shape: identical sensitivity, and
ND-bgpigp's specificity at least as good as ND-edge's (IGP link-down
messages pin AS-X-internal failures exactly; BGP withdrawals prune
upstream links from the failure sets).

The §5.3 position study (AS-X core vs stub) is exposed through the
``asx_position`` parameter and exercised by the ablation bench.
"""

from __future__ import annotations

from repro.diagnosers import make_diagnosers
from repro.errors import ScenarioError
from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.jobs import (
    CoreAsx,
    RandomStubAsx,
    ResearchTopoFactory,
    StubPlacement,
)
from repro.experiments.runner import RunnerStats, run_kind_batch
from repro.experiments.stats import cdf, summarize

__all__ = ["run"]


def _asx_selector(position: str):
    if position == "core":
        return CoreAsx()
    if position == "stub":
        # A stub AS-X still has eBGP sessions to learn withdrawals from;
        # it has no multi-link IGP to speak of, mirroring the paper's
        # "AS-X is a stub" case.
        return RandomStubAsx()
    raise ScenarioError(f"unknown AS-X position {position!r}")


def run(
    config: FigureConfig = FigureConfig(), asx_position: str = "core"
) -> FigureResult:
    """Regenerate Figure 10: ND-edge vs ND-bgpigp CDFs (3 link failures)."""
    diagnosers = make_diagnosers(("nd-edge", "nd-bgpigp"))
    stats = RunnerStats()
    records = run_kind_batch(
        topo_factory=ResearchTopoFactory(topo_seed=config.topo_seed),
        placement_fn=StubPlacement(config.n_sensors),
        kinds=("link-3",),
        diagnosers=diagnosers,
        placements=config.placements,
        failures_per_placement=config.failures_per_placement,
        seed=config.seed,
        asx_selector=_asx_selector(asx_position),
        workers=config.workers,
        stats=stats,
    )
    result = FigureResult(
        figure_id="fig10",
        title=f"ND-edge vs ND-bgpigp (3 link failures, AS-X={asx_position})",
        notes=[
            "both algorithms reach the same (near-one) sensitivity",
            "control-plane information improves (never hurts) specificity",
        ],
    )
    recs = records["link-3"]
    for label in diagnosers:
        sens = [r.scores[label].link.sensitivity for r in recs]
        spec = [r.scores[label].link.specificity for r in recs]
        if not sens:
            continue
        result.series.append(
            Series(
                name=f"{label}/sensitivity",
                points=cdf(sens),
                x_label="sensitivity",
                y_label="P[<=x]",
            )
        )
        result.series.append(
            Series(
                name=f"{label}/specificity",
                points=cdf(spec),
                x_label="specificity",
                y_label="P[<=x]",
            )
        )
        result.summaries[f"{label}/sensitivity"] = summarize(sens)
        result.summaries[f"{label}/specificity"] = summarize(spec)
    result.runner_stats = stats
    return result
