"""Per-figure harnesses: one module per evaluation figure of the paper.

Each module exposes ``run(config) -> FigureResult``; the registry below
maps figure ids to the runners (used by ``python -m repro.experiments``
and the benchmark suite).
"""

from repro.experiments.figures import (
    degradation,
    fig5_placement,
    fig6_tomo,
    fig7_ndedge,
    fig8_specificity,
    fig9_diag_vs_spec,
    fig10_bgpigp,
    fig11_blocked,
    fig12_lg,
)
from repro.experiments.figures.base import FigureConfig, FigureResult, Series

FIGURES = {
    "5": fig5_placement.run,
    "6": fig6_tomo.run,
    "7": fig7_ndedge.run,
    "8": fig8_specificity.run,
    "9": fig9_diag_vs_spec.run,
    "10": fig10_bgpigp.run,
    "11": fig11_blocked.run,
    "12": fig12_lg.run,
    "degradation": degradation.run,
}


def figure_sort_key(figure_id: str):
    """Numeric figures first in numeric order, named harnesses after."""
    return (0, int(figure_id), "") if figure_id.isdigit() else (1, 0, figure_id)


__all__ = [
    "FIGURES",
    "FigureConfig",
    "FigureResult",
    "Series",
    "figure_sort_key",
    "degradation",
    "fig5_placement",
    "fig6_tomo",
    "fig7_ndedge",
    "fig8_specificity",
    "fig9_diag_vs_spec",
    "fig10_bgpigp",
    "fig11_blocked",
    "fig12_lg",
]
