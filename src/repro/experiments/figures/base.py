"""Shared types for the per-figure harnesses.

Every module in :mod:`repro.experiments.figures` exposes
``run(config) -> FigureResult``.  A :class:`FigureResult` carries named
series of (x, y) points — CDFs, sweeps or scatters — plus the summary
lines the paper's prose states about the figure, so a bench run prints
both the data and the claims it should be checked against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import render_figure
from repro.experiments.runner import RunnerStats

__all__ = ["FigureConfig", "Series", "FigureResult"]


@dataclass
class FigureConfig:
    """Knobs common to all figure harnesses.

    The paper uses 10 placements × 100 failures; the defaults here are
    deliberately small so benches finish in seconds.  Paper scale:
    ``FigureConfig(placements=10, failures_per_placement=100)`` (also
    reachable via ``python -m repro.experiments --paper-scale``).

    ``workers`` fans each batch's placements out over that many processes
    (``0`` = every core); results are bit-identical to ``workers=1``.
    """

    seed: int = 0
    topo_seed: int = 100
    placements: int = 3
    failures_per_placement: int = 10
    n_sensors: int = 10
    workers: int = 1


@dataclass
class Series:
    """One named line/scatter of a figure."""

    name: str
    points: List[Tuple[float, float]]
    x_label: str = "x"
    y_label: str = "y"


@dataclass
class FigureResult:
    """Everything a figure harness produced."""

    figure_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    summaries: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: batch accounting (appended to the rendering when present).
    runner_stats: Optional[RunnerStats] = None

    def series_by_name(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"figure {self.figure_id} has no series {name!r}")

    def render(self) -> str:
        """Human-readable text rendering (what the bench prints)."""
        return render_figure(self)
