"""Figure 7: sensitivity of Tomo vs ND-edge (§5.2).

Top plot: three simultaneous link failures.  Bottom plot: misconfiguration
combined with a link failure.  Expected shape: ND-edge's sensitivity is
(almost) always one — logical links catch the misconfigurations and
reroute sets catch the reroutable failures — while Tomo stays low.
"""

from __future__ import annotations

from repro.diagnosers import make_diagnosers
from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.jobs import ResearchTopoFactory, StubPlacement
from repro.experiments.runner import RunnerStats, run_kind_batch
from repro.experiments.stats import cdf, summarize

__all__ = ["run", "KINDS"]

KINDS = ("link-3", "misconfig+link")


def run(config: FigureConfig = FigureConfig()) -> FigureResult:
    """Regenerate Figure 7: Tomo vs ND-edge sensitivity CDFs."""
    diagnosers = make_diagnosers(("tomo", "nd-edge"))
    stats = RunnerStats()
    records = run_kind_batch(
        topo_factory=ResearchTopoFactory(topo_seed=config.topo_seed),
        placement_fn=StubPlacement(config.n_sensors),
        kinds=KINDS,
        diagnosers=diagnosers,
        placements=config.placements,
        failures_per_placement=config.failures_per_placement,
        seed=config.seed,
        workers=config.workers,
        stats=stats,
    )
    result = FigureResult(
        figure_id="fig7",
        title="Sensitivity of Tomo and ND-edge",
        notes=[
            "ND-edge sensitivity is almost always one for 3 link failures",
            "ND-edge sensitivity is almost always one for misconfig+link",
            "Tomo is far below ND-edge in both scenarios",
        ],
    )
    for kind in KINDS:
        for label in diagnosers:
            values = [r.scores[label].link.sensitivity for r in records[kind]]
            if not values:
                continue
            name = f"{label}/{kind}"
            result.series.append(
                Series(
                    name=name,
                    points=cdf(values),
                    x_label="sensitivity",
                    y_label="P[<=x]",
                )
            )
            result.summaries[name] = summarize(values)
    result.runner_stats = stats
    return result
