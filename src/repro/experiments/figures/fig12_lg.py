"""Figure 12: the effect of Looking Glass availability (§5.4).

With f_b ∈ {0.25, 0.5, 0.75} of covered ASes blocking traceroute, the
fraction of ASes providing Looking Glasses is swept from 5 % to 100 %.
Expected shape: ND-LG gains over ND-bgpigp even with few LGs, the gain
grows quickly with availability, and returns diminish beyond roughly half
of the ASes providing LGs; ND-bgpigp does not depend on LGs at all
(horizontal reference lines).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.diagnosers import make_diagnosers
from repro.experiments.figures.base import FigureConfig, FigureResult, Series
from repro.experiments.jobs import CoreAsx, ResearchTopoFactory, StubPlacement
from repro.experiments.runner import RunnerStats, run_kind_batch
from repro.experiments.stats import mean

__all__ = ["run", "DEFAULT_BLOCKED_FRACTIONS", "DEFAULT_LG_FRACTIONS"]

DEFAULT_BLOCKED_FRACTIONS: Tuple[float, ...] = (0.25, 0.5, 0.75)
DEFAULT_LG_FRACTIONS: Tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 1.0)


def run(
    config: FigureConfig = FigureConfig(),
    blocked_fractions: Sequence[float] = DEFAULT_BLOCKED_FRACTIONS,
    lg_fractions: Sequence[float] = DEFAULT_LG_FRACTIONS,
) -> FigureResult:
    """Regenerate Figure 12: ND-LG AS-sensitivity vs LG availability."""
    result = FigureResult(
        figure_id="fig12",
        title="The effect of Looking Glass servers (single link failures)",
        notes=[
            "ND-LG gains over ND-bgpigp even with few LGs",
            "diminishing returns after about half the ASes provide LGs",
            "ND-bgpigp is independent of LG availability (flat reference)",
        ],
    )
    stats = RunnerStats()
    for blocked in blocked_fractions:
        lg_curve = []
        reference_values = []
        for lg_fraction in lg_fractions:
            records = run_kind_batch(
                topo_factory=ResearchTopoFactory(topo_seed=config.topo_seed),
                placement_fn=StubPlacement(config.n_sensors),
                kinds=("link-1",),
                diagnosers=make_diagnosers(
                    {"nd-lg": None,
                     "nd-bgpigp": {"ignore_unidentified": True}}
                ),
                placements=config.placements,
                failures_per_placement=config.failures_per_placement,
                seed=config.seed,
                asx_selector=CoreAsx(),
                blocked_fraction=blocked,
                lg_fraction=lg_fraction,
                intra_failures_only=True,
                workers=config.workers,
                stats=stats,
            )
            recs = records["link-1"]
            if not recs:
                continue
            lg_curve.append(
                (
                    lg_fraction,
                    mean([r.scores["nd-lg"].as_level.sensitivity for r in recs]),
                )
            )
            reference_values.extend(
                r.scores["nd-bgpigp"].as_level.sensitivity for r in recs
            )
        result.series.append(
            Series(
                name=f"nd-lg/f_b={blocked}",
                points=lg_curve,
                x_label="fraction of ASes with LG",
                y_label="AS-sensitivity",
            )
        )
        if reference_values:
            flat = mean(reference_values)
            result.series.append(
                Series(
                    name=f"nd-bgpigp/f_b={blocked}",
                    points=[(min(lg_fractions), flat), (max(lg_fractions), flat)],
                    x_label="fraction of ASes with LG",
                    y_label="AS-sensitivity",
                )
            )
    result.runner_stats = stats
    return result
