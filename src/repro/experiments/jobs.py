"""Picklable callables for parallel placement jobs.

:func:`~repro.experiments.runner.run_kind_batch` ships its
:class:`~repro.experiments.runner.PlacementJob` work units to worker
processes, so the job callables (topology factory, placement function,
AS-X selector) must survive pickling.  Lambdas don't; these small frozen
dataclasses do, and they cover every configuration the figure harnesses
use.  Anything with the same call signature works too — a module-level
function, a ``functools.partial`` of one, or your own dataclass.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.measurement.sensors import random_stub_placement
from repro.netsim.gen.internet import ResearchInternet, research_internet

__all__ = [
    "ResearchTopoFactory",
    "StubPlacement",
    "CoreAsx",
    "RandomStubAsx",
]


@dataclass(frozen=True)
class ResearchTopoFactory:
    """``topo_factory``: a fresh research Internet per placement.

    Seeds ``topo_seed + placement_index`` so every placement gets its own
    topology draw, like the historical per-figure lambdas did.
    """

    topo_seed: int = 100
    n_tier2: int = 22
    n_stub: int = 140
    tier2_style: str = "hubspoke"

    def __call__(self, placement_index: int) -> ResearchInternet:
        return research_internet(
            n_tier2=self.n_tier2,
            n_stub=self.n_stub,
            seed=self.topo_seed + placement_index,
            tier2_style=self.tier2_style,
        )


@dataclass(frozen=True)
class StubPlacement:
    """``placement_fn``: sensors at ``n_sensors`` random stub ASes."""

    n_sensors: int = 10

    def __call__(self, topo: ResearchInternet, rng: random.Random):
        return random_stub_placement(topo, self.n_sensors, rng)


@dataclass(frozen=True)
class CoreAsx:
    """``asx_selector``: AS-X is the ``index``-th core AS."""

    index: int = 0

    def __call__(self, topo: ResearchInternet, rng: random.Random) -> int:
        return topo.core_asns[self.index]


@dataclass(frozen=True)
class RandomStubAsx:
    """``asx_selector``: AS-X is a random stub AS (the §5.3 stub case)."""

    def __call__(self, topo: ResearchInternet, rng: random.Random) -> int:
        return rng.choice(topo.stub_asns)
