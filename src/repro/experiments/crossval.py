"""Cross-validation: hitting-set vs empathy on the same fault scenarios.

The two families localize the same events from disjoint evidence — one
builds minimum hitting sets over changed paths, the other clusters
traceroutes that change together.  This experiment runs both (or any set
of registry diagnosers) on identical sampled scenarios and reports, per
fault kind, each engine's precision/recall/cost plus the pairwise
agreement matrix graded with the ensemble verdicts
(``agree``/``partial``/``conflict``).  It is the batch twin of the
streaming :class:`~repro.empathy.EnsembleDiagnoser` and the experiment
behind ``python -m repro crossval``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.linkspace import physical_link
from repro.diagnosers import make_diagnosers
from repro.empathy.ensemble import EnsembleDisagreement, compare_hypotheses
from repro.errors import ControlPlaneFeedError, EmpathyError, ScenarioError
from repro.experiments.jobs import CoreAsx, ResearchTopoFactory, StubPlacement
from repro.experiments.runner import ground_truth_links, make_session
from repro.measurement.collector import collect_control_plane, take_snapshot

__all__ = ["CrossvalConfig", "CrossvalResult", "ScenarioOutcome", "run_crossval"]


@dataclass(frozen=True)
class CrossvalConfig:
    """Knobs of one cross-validation sweep (research-165 by default)."""

    seed: int = 0
    topo_seed: int = 100
    placements: int = 2
    failures_per_kind: int = 6
    n_sensors: int = 8
    kinds: Tuple[str, ...] = ("link-1", "link-2", "misconfig")
    diagnosers: Tuple[str, ...] = ("nd-edge", "empathy")


@dataclass(frozen=True)
class ScenarioOutcome:
    """One diagnoser's score on one sampled scenario."""

    kind: str
    label: str
    precision: float
    recall: float
    cost_ms: float
    hypothesis_size: int


@dataclass
class CrossvalResult:
    """Everything one sweep measured: per-scenario scores + agreement."""

    config: CrossvalConfig
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    matrix: Dict[Tuple[str, str], EnsembleDisagreement] = field(
        default_factory=dict
    )
    scenarios_run: int = 0
    scenarios_rejected: int = 0

    def _select(self, label: str, kind=None, metric="recall") -> List[float]:
        return [
            getattr(o, metric)
            for o in self.outcomes
            if o.label == label and (kind is None or o.kind == kind)
        ]

    def mean_recall(self, label: str, kind=None) -> float:
        values = self._select(label, kind, "recall")
        return sum(values) / len(values) if values else 0.0

    def mean_precision(self, label: str, kind=None) -> float:
        values = self._select(label, kind, "precision")
        return sum(values) / len(values) if values else 0.0

    def mean_cost_ms(self, label: str, kind=None) -> float:
        values = self._select(label, kind, "cost_ms")
        return sum(values) / len(values) if values else 0.0

    def agreement_rate(self, a: str, b: str) -> float:
        """Fraction of scenarios where ``a`` and ``b`` at least overlap."""
        key = (a, b) if (a, b) in self.matrix else (b, a)
        try:
            return self.matrix[key].agreement_rate()
        except KeyError:
            raise EmpathyError(
                f"no agreement recorded between {a!r} and {b!r}"
            ) from None

    def render(self) -> str:
        lines = [
            "== crossval: per-kind diagnoser metrics ==",
            f"   scenarios={self.scenarios_run}  "
            f"rejected={self.scenarios_rejected}  "
            f"placements={self.config.placements}  "
            f"sensors={self.config.n_sensors}",
            "",
            f"   {'kind':<16}{'diagnoser':<12}{'n':>4}"
            f"{'recall':>9}{'precision':>11}{'cost-ms':>10}",
        ]
        for kind in self.config.kinds:
            for label in self.config.diagnosers:
                n = len(self._select(label, kind))
                if not n:
                    continue
                lines.append(
                    f"   {kind:<16}{label:<12}{n:>4}"
                    f"{self.mean_recall(label, kind):>9.3f}"
                    f"{self.mean_precision(label, kind):>11.3f}"
                    f"{self.mean_cost_ms(label, kind):>10.2f}"
                )
        lines.append("")
        lines.append("-- agreement matrix (ensemble verdicts)")
        for (a, b), tally in sorted(self.matrix.items()):
            lines.append(
                f"   {a}|{b}: agree={tally.agree}  partial={tally.partial}  "
                f"conflict={tally.conflict}  "
                f"(rate={tally.agreement_rate():.2f})"
            )
        return "\n".join(lines)


def run_crossval(config: CrossvalConfig = CrossvalConfig()) -> CrossvalResult:
    """Run the sweep: same scenarios, every diagnoser, graded agreement.

    Sampling mirrors :class:`~repro.experiments.runner.PlacementJob`
    (same topology factory, stub placement and resample budget), so the
    scenarios are the familiar batch population — only the scoring keeps
    the raw hypotheses long enough to grade pairwise agreement.
    """
    if len(config.diagnosers) < 2:
        raise EmpathyError(
            "cross-validation needs at least two diagnosers to compare, "
            f"got {list(config.diagnosers)}"
        )
    if "nd-lg" in config.diagnosers:
        raise EmpathyError(
            "nd-lg needs a Looking Glass deployment; crossval compares "
            "the snapshot-only engines"
        )
    diagnosers = make_diagnosers(config.diagnosers)
    result = CrossvalResult(config=config)
    labels = list(diagnosers)
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            result.matrix[(a, b)] = EnsembleDisagreement()

    topo_factory = ResearchTopoFactory(topo_seed=config.topo_seed)
    placement_fn = StubPlacement(config.n_sensors)
    asx_selector = CoreAsx()
    for placement in range(config.placements):
        rng = random.Random(f"{config.seed}/crossval/{placement}")
        topo = topo_factory(placement)
        session = make_session(topo, placement_fn(topo, rng), rng)
        asx = asx_selector(topo, rng)
        probed_physical = None
        for kind in config.kinds:
            produced = 0
            budget = 5 * config.failures_per_kind
            while produced < config.failures_per_kind and budget > 0:
                budget -= 1
                try:
                    scenario = session.sampler.sample(kind)
                except ScenarioError:
                    break  # this placement cannot produce this kind
                snapshot = take_snapshot(
                    session.sim,
                    session.sensors,
                    session.base_state,
                    scenario.after_state,
                )
                if not snapshot.any_failure():
                    result.scenarios_rejected += 1
                    continue
                if probed_physical is None:
                    probed_physical = frozenset(
                        physical_link(
                            session.net.router(session.net.link(lid).a).address,
                            session.net.router(session.net.link(lid).b).address,
                        )
                        for lid in session.sampler.probed_links
                    )
                truth = (
                    ground_truth_links(session.net, scenario.event)
                    & probed_physical
                )
                if not truth:
                    result.scenarios_rejected += 1
                    continue
                try:
                    control = collect_control_plane(
                        session.sim, asx, session.base_state, scenario.after_state
                    )
                except ControlPlaneFeedError:
                    control = None
                hypotheses: Dict[str, frozenset] = {}
                for label, diagnoser in diagnosers.items():
                    started = time.perf_counter()
                    diagnosis = diagnoser.diagnose(snapshot, control=control)
                    cost_ms = (time.perf_counter() - started) * 1000.0
                    hypothesis = diagnosis.physical_hypothesis()
                    hypotheses[label] = hypothesis
                    found = len(hypothesis & truth)
                    result.outcomes.append(
                        ScenarioOutcome(
                            kind=kind,
                            label=label,
                            precision=(
                                found / len(hypothesis) if hypothesis else 0.0
                            ),
                            recall=found / len(truth),
                            cost_ms=cost_ms,
                            hypothesis_size=len(hypothesis),
                        )
                    )
                for i, a in enumerate(labels):
                    for b in labels[i + 1:]:
                        result.matrix[(a, b)].record(
                            compare_hypotheses(hypotheses[a], hypotheses[b])
                        )
                result.scenarios_run += 1
                produced += 1
    if not result.scenarios_run:
        raise EmpathyError(
            "cross-validation produced no admissible scenarios; widen "
            "placements/failures_per_kind or change the seed"
        )
    return result
