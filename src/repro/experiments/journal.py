"""Checkpoint journal for experiment sweeps.

A week-long sweep must survive its host: the runner appends every
completed placement's :class:`~repro.experiments.runner.PlacementResult`
to an on-disk journal, and a re-run with ``resume=True`` replays the
completed placements from disk and executes only the missing ones.
Because every placement is a pure function of its job (seed-derived
RNGs, no shared state), a resumed sweep's merged output is bit-identical
to an uninterrupted run.

The journal is a header record followed by one pickle per placement.
Appends are flushed and fsync'd, so a crash loses at most the placement
being written; a truncated trailing record is detected and ignored on
load.  The header carries a fingerprint of the batch parameters — a
journal written by a *different* sweep refuses to resume instead of
silently mixing results.
"""

from __future__ import annotations

import logging
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import ReproError

__all__ = ["RunJournal", "append_pickle_record", "iter_pickle_records"]

logger = logging.getLogger(__name__)

_FORMAT = "repro-run-journal-v1"


def append_pickle_record(
    path: Path, record: Any, header: Dict[str, Any]
) -> None:
    """Durably append one pickle record, writing ``header`` first on a
    fresh file.  Flush + fsync per append: a crash loses at most the
    record being written.  Shared by :class:`RunJournal` and the
    per-shard :class:`~repro.stream.checkpoint.CheckpointStore`."""
    new_file = not path.exists()
    with open(path, "ab") as handle:
        if new_file:
            pickle.dump(header, handle)
        pickle.dump(record, handle)
        handle.flush()
        os.fsync(handle.fileno())


def iter_pickle_records(
    path: Path,
    expected_format: str,
    fingerprint: Any,
    error_cls: type = ReproError,
):
    """Yield the records of a pickle journal, torn-tail tolerantly.

    Validates the header's format tag and fingerprint (mismatch raises
    ``error_cls`` — a journal written by a *different* run must refuse
    to load rather than silently mix state).  A truncated trailing
    record (crash mid-append) is dropped with a warning; an unreadable
    header means "not our file yet", yielding nothing.
    """
    if not path.exists():
        return
    with open(path, "rb") as handle:
        try:
            header = pickle.load(handle)
        except (EOFError, pickle.UnpicklingError, AttributeError):
            logger.warning("journal %s has no readable header; ignoring", path)
            return
        if not isinstance(header, dict) or header.get("format") != expected_format:
            raise error_cls(
                f"{path} is not a {expected_format} journal (header {header!r})"
            )
        if header.get("fingerprint") != fingerprint:
            raise error_cls(
                f"journal {path} was written by a different run "
                "(fingerprint mismatch); refusing to load it"
            )
        count = 0
        while True:
            try:
                record = pickle.load(handle)
            except EOFError:
                return
            except (pickle.UnpicklingError, AttributeError, IndexError,
                    ValueError) as exc:
                logger.warning(
                    "journal %s has a truncated trailing record (%s); "
                    "recovered %d records",
                    path, exc, count,
                )
                return
            count += 1
            yield record


class RunJournal:
    """Append-only checkpoint store for one sweep's placement results.

    Parameters
    ----------
    path:
        Journal file location (created on first append).
    fingerprint:
        Any picklable, equality-comparable description of the batch
        (seed, sizes, kinds, fault config...).  Loading a journal whose
        fingerprint differs raises :class:`~repro.errors.ReproError`.
    """

    def __init__(self, path: Union[str, Path], fingerprint: Any) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, result: Any) -> None:
        """Durably append one completed placement result."""
        append_pickle_record(
            self.path,
            result,
            {"format": _FORMAT, "fingerprint": self.fingerprint},
        )

    def load_completed(self) -> Dict[int, Any]:
        """Completed results by placement index; ``{}`` when absent.

        A truncated trailing record (crash mid-append) is dropped with a
        warning; everything before it is recovered.
        """
        completed: Dict[int, Any] = {}
        for result in iter_pickle_records(
            self.path, _FORMAT, self.fingerprint, error_cls=ReproError
        ):
            completed[result.placement_index] = result
        return completed
