"""Checkpoint journal for experiment sweeps.

A week-long sweep must survive its host: the runner appends every
completed placement's :class:`~repro.experiments.runner.PlacementResult`
to an on-disk journal, and a re-run with ``resume=True`` replays the
completed placements from disk and executes only the missing ones.
Because every placement is a pure function of its job (seed-derived
RNGs, no shared state), a resumed sweep's merged output is bit-identical
to an uninterrupted run.

The journal is a header record followed by one pickle per placement.
Appends are flushed and fsync'd, so a crash loses at most the placement
being written; a truncated trailing record is detected and ignored on
load.  The header carries a fingerprint of the batch parameters — a
journal written by a *different* sweep refuses to resume instead of
silently mixing results.
"""

from __future__ import annotations

import logging
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import ReproError

__all__ = ["RunJournal"]

logger = logging.getLogger(__name__)

_FORMAT = "repro-run-journal-v1"


class RunJournal:
    """Append-only checkpoint store for one sweep's placement results.

    Parameters
    ----------
    path:
        Journal file location (created on first append).
    fingerprint:
        Any picklable, equality-comparable description of the batch
        (seed, sizes, kinds, fault config...).  Loading a journal whose
        fingerprint differs raises :class:`~repro.errors.ReproError`.
    """

    def __init__(self, path: Union[str, Path], fingerprint: Any) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, result: Any) -> None:
        """Durably append one completed placement result."""
        new_file = not self.path.exists()
        with open(self.path, "ab") as handle:
            if new_file:
                pickle.dump(
                    {"format": _FORMAT, "fingerprint": self.fingerprint},
                    handle,
                )
            pickle.dump(result, handle)
            handle.flush()
            os.fsync(handle.fileno())

    def load_completed(self) -> Dict[int, Any]:
        """Completed results by placement index; ``{}`` when absent.

        A truncated trailing record (crash mid-append) is dropped with a
        warning; everything before it is recovered.
        """
        if not self.path.exists():
            return {}
        completed: Dict[int, Any] = {}
        with open(self.path, "rb") as handle:
            try:
                header = pickle.load(handle)
            except (EOFError, pickle.UnpicklingError, AttributeError):
                logger.warning("journal %s has no readable header; ignoring", self.path)
                return {}
            if (
                not isinstance(header, dict)
                or header.get("format") != _FORMAT
            ):
                raise ReproError(
                    f"{self.path} is not a repro run journal (header {header!r})"
                )
            if header.get("fingerprint") != self.fingerprint:
                raise ReproError(
                    f"journal {self.path} was written by a different sweep "
                    "(fingerprint mismatch); refusing to resume from it"
                )
            while True:
                try:
                    result = pickle.load(handle)
                except EOFError:
                    break
                except (pickle.UnpicklingError, AttributeError, IndexError,
                        ValueError) as exc:
                    logger.warning(
                        "journal %s has a truncated trailing record (%s); "
                        "recovered %d placements",
                        self.path, exc, len(completed),
                    )
                    break
                completed[result.placement_index] = result
        return completed
