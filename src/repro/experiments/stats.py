"""Small statistics helpers for the figure harnesses.

The paper reports cumulative distributions (Figures 6-8, 10), averages
(Figures 11-12) and scatters (Figure 9); these helpers turn lists of
per-run metric values into those shapes deterministically.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["cdf", "mean", "percentile", "ratio", "summarize", "binned_means"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (a silent 0 would read as a
    terrible experiment result instead of a missing one)."""
    if not values:
        raise ReproError("mean of an empty value list")
    return sum(values) / len(values)


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator``, or ``0.0`` for an empty denominator.

    Accounting rates (cache hit rates, cpu/wall speedups) legitimately
    have zero denominators on empty batches — unlike :func:`mean`, a zero
    is the honest rendering there, not a masked error.
    """
    return numerator / denominator if denominator else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: the element at rank ``round(q * (n-1))``.

    This is the one shared definition for every latency/benchmark
    report (``render_stream_report``, the perf benches): the result is
    always an element of ``values`` (never interpolated), ``q=0`` is
    the minimum, ``q=1`` the maximum, and on small samples high
    quantiles round up to the maximum (``n<=50`` makes ``q=0.99`` the
    max).  Empty input returns ``0.0`` — latency accounting over an
    empty report list is an honest zero, not an error.
    """
    if not 0.0 <= q <= 1.0:
        raise ReproError(f"percentile q must be within [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return float(ordered[rank])


def cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF points: (x, P[value <= x]) at each distinct value."""
    if not values:
        raise ReproError("cdf of an empty value list")
    ordered = sorted(values)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if index == n or ordered[index] != value:
            points.append((value, index / n))
    return points


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean, quartile-ish percentiles, and mass at the 0/1 extremes.

    ``frac_zero``/``frac_one`` matter because the paper phrases several
    results that way ("sensitivity is zero in almost 90% of instances").
    """
    if not values:
        raise ReproError("summary of an empty value list")
    ordered = sorted(values)
    n = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(n - 1, int(q * n))]

    return {
        "n": float(n),
        "mean": mean(values),
        "p10": pct(0.10),
        "p50": pct(0.50),
        "p90": pct(0.90),
        "frac_zero": sum(1 for v in values if v == 0.0) / n,
        "frac_one": sum(1 for v in values if v == 1.0) / n,
    }


def binned_means(
    points: Sequence[Tuple[float, float]], bins: int = 8
) -> List[Tuple[float, float]]:
    """Average y per equal-width x bin — the trend line of a scatter."""
    if not points:
        raise ReproError("binned means of an empty point list")
    xs = [x for x, _y in points]
    lo, hi = min(xs), max(xs)
    if hi == lo:
        return [(lo, mean([y for _x, y in points]))]
    width = (hi - lo) / bins
    out: List[Tuple[float, float]] = []
    for b in range(bins):
        left = lo + b * width
        right = hi if b == bins - 1 else left + width
        ys = [
            y
            for x, y in points
            if left <= x <= right and (b == 0 or x > left)
        ]
        if ys:
            out.append(((left + right) / 2, mean(ys)))
    return out
