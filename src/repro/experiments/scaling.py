"""Scaling study: how the pipeline behaves as the internetwork grows.

§5.3 of the paper speculates: "these results are from simulations on a
relatively small topology.  If these simulations were at the scale of the
real Internet, the benefit of using BGP and IGP information would be
greater."  This harness makes the growth measurable: for a sweep of
topology sizes it records substrate costs (convergence, probing) and
diagnosis quality (diagnosability, ND-edge and ND-bgpigp metrics on
sampled single-link failures), so the trend — not just the 165-AS point —
is part of the reproduction.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import List, Sequence, Tuple

from repro.core.diagnoser import NetDiagnoser
from repro.errors import ScenarioError
from repro.experiments.runner import make_session, run_scenario
from repro.experiments.stats import mean
from repro.measurement.sensors import random_stub_placement
from repro.netsim.gen.internet import research_internet
from repro.netsim.gen.powerlaw import powerlaw_internet
from repro.netsim.topology import NetworkState

__all__ = ["ScalePoint", "scaling_sweep", "render_scaling", "TOPOLOGY_STYLES"]

#: (tier-2 count, stub count) sweeps; the paper's point is (22, 140).
DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = (
    (6, 40),
    (12, 80),
    (22, 140),
    (33, 210),
)

#: Topology tiers a sweep can run on.  ``research`` sizes are
#: (tier-2 count, stub count) pairs; ``powerlaw`` sizes are total AS
#: counts (the internet-scale tier of :mod:`repro.netsim.gen.powerlaw`).
TOPOLOGY_STYLES = ("research", "powerlaw")


def _build_topology(topology: str, size, seed: int):
    """Construct one sweep topology; returns (topo, (n_tier2, n_stub))."""
    if topology == "research":
        n_tier2, n_stub = size
        topo = research_internet(n_tier2=n_tier2, n_stub=n_stub, seed=seed)
        return topo, (n_tier2, n_stub)
    if topology == "powerlaw":
        n_ases = size if isinstance(size, int) else size[0] + size[1]
        topo = powerlaw_internet(n_ases, seed=seed)
        return topo, (len(topo.transit_asns), len(topo.stub_asns))
    raise ScenarioError(
        f"unknown topology style {topology!r}; choose from {TOPOLOGY_STYLES}"
    )


@dataclass
class ScalePoint:
    """Measurements at one topology size."""

    n_tier2: int
    n_stub: int
    n_ases: int
    n_routers: int
    n_links: int
    convergence_seconds: float
    mesh_seconds: float
    diagnosis_seconds: float
    diagnosability: float
    nd_edge_sensitivity: float
    nd_edge_specificity: float
    bgpigp_specificity: float


def _scale_point(
    size: Tuple[int, int],
    n_sensors: int,
    failures: int,
    seed: int,
    topology: str = "research",
) -> ScalePoint:
    """Measure one topology size (self-contained: safe in a worker)."""
    topo, (n_tier2, n_stub) = _build_topology(topology, size, seed)
    rng = random.Random(f"scaling/{seed}/{n_tier2}/{n_stub}")
    session = make_session(
        topo, random_stub_placement(topo, n_sensors, rng), rng
    )

    # Time a *fresh* engine: the session's own is already converged
    # (the sampler probed the mesh during construction).
    from repro.netsim.bgp import BgpEngine

    sensor_asns = sorted(
        topo.net.asn_of_router(s.router_id) for s in session.sensors
    )
    started = time.perf_counter()
    BgpEngine.for_sensor_ases(topo.net, sensor_asns).converge(
        NetworkState.nominal()
    )
    convergence = time.perf_counter() - started

    started = time.perf_counter()
    # The sampler already probed the mesh; time a fresh walk.
    session.sim._trace_cache.clear()
    for src in session.sensors:
        for dst in session.sensors:
            if src.sensor_id != dst.sensor_id:
                session.sim.trace(
                    session.base_state, src.router_id, dst.router_id
                )
    mesh = time.perf_counter() - started

    diagnosers = {
        "nd-edge": NetDiagnoser("nd-edge"),
        "nd-bgpigp": NetDiagnoser("nd-bgpigp"),
    }
    sens, spec, bgpigp_spec, diag = [], [], [], []
    diagnosis_time = 0.0
    produced = 0
    while produced < failures:
        try:
            scenario = session.sampler.sample("link-1")
        except ScenarioError:
            break
        started = time.perf_counter()
        try:
            record = run_scenario(
                session, scenario, diagnosers, asx=topo.core_asns[0]
            )
        except ScenarioError:
            continue
        diagnosis_time += time.perf_counter() - started
        produced += 1
        sens.append(record.scores["nd-edge"].link.sensitivity)
        spec.append(record.scores["nd-edge"].link.specificity)
        bgpigp_spec.append(record.scores["nd-bgpigp"].link.specificity)
        diag.append(record.diagnosability)
    if not produced:
        raise ScenarioError(
            f"no admissible failures at size ({n_tier2}, {n_stub})"
        )
    return ScalePoint(
        n_tier2=n_tier2,
        n_stub=n_stub,
        n_ases=topo.net.num_ases,
        n_routers=topo.net.num_routers,
        n_links=topo.net.num_links,
        convergence_seconds=convergence,
        mesh_seconds=mesh,
        diagnosis_seconds=diagnosis_time / produced,
        diagnosability=mean(diag),
        nd_edge_sensitivity=mean(sens),
        nd_edge_specificity=mean(spec),
        bgpigp_specificity=mean(bgpigp_spec),
    )


def scaling_sweep(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    n_sensors: int = 10,
    failures: int = 5,
    seed: int = 0,
    workers: int = 1,
    topology: str = "research",
) -> List[ScalePoint]:
    """Measure substrate cost and diagnosis quality across sizes.

    Each size is seeded independently (``f"scaling/{seed}/{size}"``), so
    with ``workers > 1`` the points are computed in parallel processes;
    every non-timing field matches the serial sweep exactly (the
    ``*_seconds`` fields are wall-clock measurements and naturally vary
    run to run).  ``workers=0`` uses every core.  ``topology`` selects the
    tier (see :data:`TOPOLOGY_STYLES`); ``powerlaw`` sizes are total AS
    counts.
    """
    from repro.experiments.runner import resolve_workers

    point_fn = partial(
        _scale_point,
        n_sensors=n_sensors,
        failures=failures,
        seed=seed,
        topology=topology,
    )
    n_workers = resolve_workers(workers, len(list(sizes)))
    if n_workers > 1:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            return list(pool.map(point_fn, sizes))
    return [point_fn(size) for size in sizes]


def render_scaling(points: Sequence[ScalePoint]) -> str:
    """Aligned text table of a scaling sweep."""
    header = (
        f"{'ASes':>5s} {'routers':>8s} {'links':>6s} "
        f"{'converge':>9s} {'mesh':>7s} {'diagnose':>9s} "
        f"{'D(G)':>6s} {'sens':>5s} {'spec':>6s} {'bgpigp':>7s}"
    )
    lines = [header]
    for p in points:
        lines.append(
            f"{p.n_ases:>5d} {p.n_routers:>8d} {p.n_links:>6d} "
            f"{p.convergence_seconds:>8.3f}s {p.mesh_seconds:>6.3f}s "
            f"{p.diagnosis_seconds:>8.3f}s "
            f"{p.diagnosability:>6.3f} {p.nd_edge_sensitivity:>5.2f} "
            f"{p.nd_edge_specificity:>6.3f} {p.bgpigp_specificity:>7.3f}"
        )
    return "\n".join(lines)
