"""Experiment runner: the converge → inject → measure → diagnose → score loop.

One :class:`Session` is a sensor deployment over a topology (the paper's
"sensor placement"); :func:`run_scenario` executes a sampled failure
against it with a set of configured diagnosers and scores every diagnosis
at link and AS granularity.  Figure modules drive batches of these runs.

Batches are embarrassingly parallel across placements: each placement
builds its own topology, session and RNG (seeded ``f"{seed}/{i}"``), so
:func:`run_kind_batch` packages every placement as a self-contained
:class:`PlacementJob` and can execute them through a
``ProcessPoolExecutor`` (``workers=`` knob) with bit-identical results to
the serial path.  Parallel execution requires the job callables
(``topo_factory`` etc.) to be picklable — use the ready-made callables in
:mod:`repro.experiments.jobs`; unpicklable jobs fall back to serial with
a warning.
"""

from __future__ import annotations

import logging
import os
import pickle
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.consistency import (
    exclude_sensor_reports,
    implicated_sensors,
    suspect_working_pairs,
)
from repro.core.diagnosability import diagnosability
from repro.core.diagnoser import NetDiagnoser
from repro.core.graph import InferredGraph
from repro.core.linkspace import PhysicalLink, physical_link
from repro.core.metrics import MetricPair, as_projection, sensitivity, specificity
from repro.core.result import DiagnosisResult
from repro.errors import ControlPlaneFeedError, JobTimeoutError, ScenarioError
from repro.faults import DegradationReport, FaultConfig, FaultPlan
from repro.measurement.collector import (
    collect_control_plane,
    make_lg_lookup,
    take_snapshot,
)
from repro.measurement.sensors import Sensor, deploy_sensors
from repro.netsim.events import Event
from repro.netsim.gen.internet import ResearchInternet
from repro.netsim.lookingglass import LookingGlassService
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Internetwork, NetworkState
from repro.validate import Validator
from repro.experiments.journal import RunJournal
from repro.experiments.scenarios import Scenario, ScenarioSampler

logger = logging.getLogger(__name__)

__all__ = [
    "Session",
    "AlgorithmScore",
    "RunRecord",
    "PlacementJob",
    "PlacementResult",
    "PlacementStats",
    "RunnerStats",
    "make_session",
    "choose_blocked_ases",
    "ground_truth_links",
    "covered_ases",
    "run_scenario",
    "build_placement_jobs",
    "run_kind_batch",
    "resolve_workers",
    "DEFAULT_MAX_JOB_RETRIES",
    "DEFAULT_RETRY_BACKOFF_SECONDS",
]

#: Total attempts per placement job = 1 + this many retries.
DEFAULT_MAX_JOB_RETRIES = 2

#: Base of the exponential backoff between job retries, in seconds
#: (retry ``k`` waits ``base * 2**(k-1)``).
DEFAULT_RETRY_BACKOFF_SECONDS = 0.5


@dataclass
class Session:
    """One sensor deployment ready to take failures."""

    topo: ResearchInternet
    sim: Simulator
    sensors: List[Sensor]
    base_state: NetworkState
    sampler: ScenarioSampler

    @property
    def net(self) -> Internetwork:
        return self.sim.net


@dataclass
class AlgorithmScore:
    """Scores of one diagnoser on one scenario."""

    algorithm: str
    link: MetricPair
    as_level: MetricPair
    hypothesis_size: int
    physical_hypothesis_size: int
    fully_explained: bool


@dataclass
class RunRecord:
    """Everything recorded about one (placement, failure) run.

    ``degradation`` is populated when the run executed under an active
    fault plan: it accounts for every measurement the faults took away
    and every diagnoser that had to settle for an empty best-effort
    hypothesis.
    """

    kind: str
    description: str
    diagnosability: float
    n_failed_pairs: int
    n_rerouted_pairs: int
    scores: Dict[str, AlgorithmScore] = field(default_factory=dict)
    degradation: Optional[DegradationReport] = None


def make_session(
    topo: ResearchInternet,
    router_ids: Sequence[int],
    rng: random.Random,
    intra_failures_only: bool = False,
) -> Session:
    """Deploy sensors on the given gateways and prepare a sampler."""
    sensors = deploy_sensors(topo.net, list(router_ids))
    sensor_asns = {topo.net.asn_of_router(s.router_id) for s in sensors}
    sim = Simulator(topo.net, sensor_asns)
    base = NetworkState.nominal()
    sampler = ScenarioSampler(
        sim, sensors, rng, base_state=base, intra_failures_only=intra_failures_only
    )
    return Session(
        topo=topo, sim=sim, sensors=sensors, base_state=base, sampler=sampler
    )


def choose_blocked_ases(
    session: Session,
    fraction: float,
    rng: random.Random,
    protected: FrozenSet[int] = frozenset(),
) -> FrozenSet[int]:
    """Pick the ASes that block traceroutes (§5.4).

    Blocking is sampled among the ASes the probes actually cover ("the
    ASes on the paths"), excluding sensor host ASes (their single gateway
    is an identified probe endpoint anyway) and anything in ``protected``
    (AS-X never hides from itself).
    """
    sensor_asns = {
        session.net.asn_of_router(s.router_id) for s in session.sensors
    }
    pool = sorted(
        covered_ases(session, session.base_state)
        - sensor_asns
        - set(protected)
    )
    count = round(fraction * len(pool))
    return frozenset(rng.sample(pool, count)) if count else frozenset()


def ground_truth_links(
    net: Internetwork, event: Event
) -> FrozenSet[PhysicalLink]:
    """The failed/misconfigured links as metric-space physical tokens."""
    truth = set()
    for lid in event.physical_ground_truth(net):
        link = net.link(lid)
        truth.add(
            physical_link(net.router(link.a).address, net.router(link.b).address)
        )
    return frozenset(truth)


def ground_truth_ases(net: Internetwork, event: Event) -> FrozenSet[int]:
    """The ASes containing the failed/misconfigured links."""
    ases: Set[int] = set()
    for lid in event.physical_ground_truth(net):
        ases.update(net.link_asns(lid))
    return frozenset(ases)


def covered_ases(session: Session, state: NetworkState) -> FrozenSet[int]:
    """Ground-truth ASes the probe mesh traverses under ``state``."""
    ases: Set[int] = set()
    for src in session.sensors:
        for dst in session.sensors:
            if src.sensor_id == dst.sensor_id:
                continue
            trace = session.sim.trace(state, src.router_id, dst.router_id)
            for rid in trace.router_path():
                ases.add(session.net.asn_of_router(rid))
    return frozenset(ases)


def run_scenario(
    session: Session,
    scenario: Scenario,
    diagnosers: Mapping[str, NetDiagnoser],
    asx: Optional[int] = None,
    blocked_ases: FrozenSet[int] = frozenset(),
    lg_service: Optional[LookingGlassService] = None,
    faults: Optional[FaultPlan] = None,
    validation: Optional[str] = None,
) -> RunRecord:
    """Measure, diagnose with every configured diagnoser, and score.

    With an active fault plan the run is *best-effort*: measurement
    faults degrade the inputs, a control-feed outage degrades to
    ``control=None``, and a diagnoser that cannot cope with the partial
    inputs is scored with an empty hypothesis instead of crashing the
    sweep.  Everything taken away is accounted on the record's
    :class:`~repro.faults.DegradationReport`.

    ``validation`` (a :mod:`repro.validate` policy name) screens every
    measurement input against the typed invariants before diagnosis:
    ``strict`` raises :class:`~repro.errors.ValidationError` on the
    first lying record, ``repair``/``quarantine`` fix or drop records
    with full accounting.  Under an active validation policy a diagnosis
    whose hypothesis is physically contradicted by a working-pair report
    triggers one bounded re-diagnosis with the most-implicated sensor's
    reports excluded (the ``core.consistency`` loop).
    """
    sim, sensors = session.sim, session.sensors
    before, after = session.base_state, scenario.after_state
    report = (
        DegradationReport()
        if faults is not None or validation is not None
        else None
    )
    validator = (
        Validator(validation, degradation=report)
        if validation is not None
        else None
    )

    snapshot = take_snapshot(
        sim,
        sensors,
        before,
        after,
        blocked_ases,
        faults=faults,
        report=report,
        validator=validator,
    )
    control = None
    if asx is not None:
        try:
            control = collect_control_plane(
                sim,
                asx,
                before,
                after,
                faults=faults,
                report=report,
                validator=validator,
            )
        except ControlPlaneFeedError:
            control = None  # diagnose without control-plane inputs
    lg_lookup = (
        make_lg_lookup(
            sim,
            lg_service,
            before,
            after,
            asx=asx,
            faults=faults,
            report=report,
            validator=validator,
        )
        if lg_service is not None
        else None
    )

    truth_links = ground_truth_links(session.net, scenario.event)
    truth_ases = ground_truth_ases(session.net, scenario.event)
    universe_ases = covered_ases(session, before) | truth_ases
    before_graph = InferredGraph.from_paths(snapshot.before.paths())
    # Ground-truth probed links: under blocked traceroutes a probed link may
    # be invisible in the *measured* universe (it shows up as UH tokens),
    # yet it still belongs to the sensitivity denominator — the algorithm
    # is rightly penalised for being unable to name it.
    probed_physical = frozenset(
        physical_link(
            session.net.router(session.net.link(lid).a).address,
            session.net.router(session.net.link(lid).b).address,
        )
        for lid in session.sampler.probed_links
    )
    visible_truth = truth_links & probed_physical
    if not visible_truth:
        raise ScenarioError(
            "scenario admitted but none of its failed links were probed"
        )

    record = RunRecord(
        kind=scenario.kind,
        description=scenario.event.describe(session.net),
        diagnosability=diagnosability(before_graph),
        n_failed_pairs=len(snapshot.failed_pairs()),
        n_rerouted_pairs=len(snapshot.rerouted_pairs()),
        degradation=report,
    )
    masked = report is not None and not snapshot.any_failure()
    if masked:
        # The event did break pairs (the sampler admitted it) but the
        # surviving measurements no longer show any unreachability —
        # the faults (or the screening) masked or removed every failed
        # pair.  Nothing to hand the algorithms; every diagnoser scores
        # an empty hypothesis.
        report.masked_failures += 1
        report.note("failure masked by measurement faults")
    for label, diagnoser in diagnosers.items():
        if masked:
            result = _empty_result(label, diagnoser, before_graph)
        elif report is not None:
            try:
                result = diagnoser.diagnose(
                    snapshot, control=control, lg_lookup=lg_lookup
                )
            except Exception as exc:  # best-effort: degrade, never crash
                logger.debug(
                    "%s failed on degraded inputs (%s: %s); scoring an "
                    "empty hypothesis",
                    label, type(exc).__name__, exc,
                )
                report.record_diagnoser_error(label)
                result = _empty_result(label, diagnoser, before_graph)
            else:
                if validator is not None:
                    result = _rediagnose_on_contradiction(
                        label,
                        diagnoser,
                        snapshot,
                        control,
                        lg_lookup,
                        result,
                        report,
                        before_graph,
                    )
        else:
            result = diagnoser.diagnose(
                snapshot, control=control, lg_lookup=lg_lookup
            )
        if report is not None:
            ensemble = result.details.get("ensemble") or {}
            verdict = ensemble.get("verdict")
            if verdict is not None:
                report.record_ensemble_verdict(verdict)
        record.scores[label] = _score(
            result, snapshot.asn_of, visible_truth, truth_ases, universe_ases
        )
        logger.debug(
            "%s on '%s': sens=%.2f spec=%.3f |H|=%d",
            label,
            record.description,
            record.scores[label].link.sensitivity,
            record.scores[label].link.specificity,
            record.scores[label].hypothesis_size,
        )
    return record


def _empty_result(
    label: str, diagnoser: NetDiagnoser, graph: InferredGraph
) -> DiagnosisResult:
    """Best-effort stand-in when a diagnosis could not run at all."""
    return DiagnosisResult(
        algorithm=diagnoser.variant,
        hypothesis=frozenset(),
        graph=graph,
        details={"degraded": True},
    )


def _rediagnose_on_contradiction(
    label: str,
    diagnoser: NetDiagnoser,
    snapshot,
    control,
    lg_lookup,
    result: DiagnosisResult,
    report: DegradationReport,
    before_graph: InferredGraph,
) -> DiagnosisResult:
    """The validation-mode consistency loop: one bounded re-diagnosis.

    A hard physical contradiction — a pair *reported working* whose
    current path crosses a link the hypothesis claims broken — means a
    measurement lied in a way input screening cannot catch (the lying
    record is locally well-formed).  The most-implicated source sensor's
    reports are excluded and the diagnoser runs once more; the pass is
    bounded at one exclusion so a pathological snapshot cannot send the
    sweep spiralling.  If the re-diagnosis cannot run on the reduced
    snapshot, the original (contradicted) result stands — it is still
    the best available answer, and the exclusion is accounted either way.
    """
    suspects = suspect_working_pairs(snapshot, result)
    culprits = implicated_sensors(suspects)
    if not culprits:
        return result
    culprit = culprits[0]
    reduced = exclude_sensor_reports(snapshot, culprit)
    report.sensors_excluded += 1
    report.note(f"excluded sensor {culprit} after physical contradiction")
    if not reduced.any_failure():
        # Every failed pair was the excluded sensor's own claim; with
        # its reports gone there is nothing left to diagnose.
        return result
    report.rediagnoses += 1
    try:
        return diagnoser.diagnose(
            reduced, control=control, lg_lookup=lg_lookup
        )
    except Exception as exc:  # same best-effort contract as above
        logger.debug(
            "%s failed on the reduced snapshot (%s: %s); keeping the "
            "original diagnosis",
            label, type(exc).__name__, exc,
        )
        report.record_diagnoser_error(label)
        return result


def _score(
    result: DiagnosisResult,
    asn_of,
    visible_truth: FrozenSet[PhysicalLink],
    truth_ases: FrozenSet[int],
    universe_ases: FrozenSet[int],
) -> AlgorithmScore:
    universe = result.physical_universe()
    hypothesis = result.physical_hypothesis()
    uh_tags = result.details.get("uh_tags", {})
    hypothesis_ases = as_projection(result.hypothesis, asn_of, uh_tags)
    return AlgorithmScore(
        algorithm=result.algorithm,
        link=MetricPair(
            sensitivity(visible_truth, hypothesis),
            specificity(universe, visible_truth, hypothesis),
        ),
        as_level=MetricPair(
            sensitivity(truth_ases, hypothesis_ases),
            specificity(universe_ases, truth_ases, hypothesis_ases),
        ),
        hypothesis_size=len(result.hypothesis),
        physical_hypothesis_size=len(hypothesis),
        fully_explained=result.fully_explained,
    )


@dataclass
class PlacementStats:
    """Timing and accounting of one placement job.

    ``setup_seconds``/``scenario_seconds`` are CPU-phase time measured
    inside the (possibly child) process running the placement.  The cache
    and convergence counters mirror
    :meth:`~repro.netsim.simulator.Simulator.cache_stats`:
    ``prefixes_converged`` counts expensive per-prefix fixpoint runs,
    ``prefixes_reused`` counts baseline RIBs shared by the engine's
    incremental path.
    """

    placement_index: int
    records: int = 0
    scenarios_sampled: int = 0
    scenarios_rejected: int = 0
    budget_exhaustions: int = 0
    trace_cache_entries: int = 0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    trace_cache_evictions: int = 0
    routing_cache_entries: int = 0
    routing_cache_hits: int = 0
    routing_cache_misses: int = 0
    routing_cache_evictions: int = 0
    full_converges: int = 0
    incremental_converges: int = 0
    prefixes_converged: int = 0
    prefixes_reused: int = 0
    rib_prefixes_owned: int = 0
    rib_prefixes_shared: int = 0
    rib_cow_copies: int = 0
    probes_dropped: int = 0
    probes_truncated: int = 0
    hops_anonymized: int = 0
    sensors_down: int = 0
    pairs_discarded: int = 0
    masked_failures: int = 0
    lg_failures: int = 0
    lg_retries: int = 0
    lg_exhausted: int = 0
    lg_rate_limited: int = 0
    withdrawals_lost: int = 0
    withdrawals_delayed: int = 0
    igp_lost: int = 0
    igp_delayed: int = 0
    feed_outages: int = 0
    degraded_diagnoses: int = 0
    hops_forged: int = 0
    hops_duplicated: int = 0
    loops_injected: int = 0
    reach_bits_flipped: int = 0
    stale_replays: int = 0
    feed_messages_duplicated: int = 0
    feed_messages_misordered: int = 0
    lg_stale_answers: int = 0
    invariant_violations: int = 0
    traces_repaired: int = 0
    traces_quarantined: int = 0
    stale_rounds_dropped: int = 0
    feed_messages_repaired: int = 0
    feed_messages_quarantined: int = 0
    lg_paths_quarantined: int = 0
    sensors_excluded: int = 0
    rediagnoses: int = 0
    ensemble_agreements: int = 0
    ensemble_partials: int = 0
    ensemble_conflicts: int = 0
    setup_seconds: float = 0.0
    scenario_seconds: float = 0.0

    def record_cache_stats(self, cache_stats: Mapping[str, int]) -> None:
        """Copy a simulator's ``cache_stats()`` snapshot into the fields."""
        for key, value in cache_stats.items():
            if hasattr(self, key):
                setattr(self, key, value)

    def record_degradation(self, report: Optional[DegradationReport]) -> None:
        """Add one run's fault accounting into the placement counters."""
        if report is None:
            return
        for key, value in report.as_dict().items():
            setattr(self, key, getattr(self, key) + value)


@dataclass
class RunnerStats:
    """Aggregated accounting of one :func:`run_kind_batch` call.

    ``setup_seconds``/``scenario_seconds`` are **aggregate CPU seconds**:
    per-phase time summed over every placement's (worker) process.
    ``wall_seconds`` is the batch's wall clock as seen by the caller — the
    only number comparable to "how long did it take".  Under
    ``workers > 1`` the CPU sums legitimately exceed the wall time, and
    the cpu/wall ratio is the realised parallel speedup.

    The resilience counters account for the batch executor itself:
    placements that timed out (``jobs_timed_out``), died with their
    worker process (``jobs_crashed``), were re-submitted
    (``jobs_retried``), exhausted their retry budget (``jobs_failed``),
    were replayed from a resume journal (``placements_resumed``), and
    whole batches that degraded to serial because the jobs were not
    picklable (``serial_fallbacks``).  The ``breaker_*`` and
    ``dead_lettered`` counters mirror a supervised stream run's circuit
    breakers and dead-letter queue (folded in via
    :meth:`absorb_supervision`), so mixed batch + stream harnesses
    report one resilience block.
    """

    workers: int = 1
    placements: int = 0
    records: int = 0
    scenarios_sampled: int = 0
    scenarios_rejected: int = 0
    budget_exhaustions: int = 0
    trace_cache_entries: int = 0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    trace_cache_evictions: int = 0
    routing_cache_entries: int = 0
    routing_cache_hits: int = 0
    routing_cache_misses: int = 0
    routing_cache_evictions: int = 0
    full_converges: int = 0
    incremental_converges: int = 0
    prefixes_converged: int = 0
    prefixes_reused: int = 0
    rib_prefixes_owned: int = 0
    rib_prefixes_shared: int = 0
    rib_cow_copies: int = 0
    probes_dropped: int = 0
    probes_truncated: int = 0
    hops_anonymized: int = 0
    sensors_down: int = 0
    pairs_discarded: int = 0
    masked_failures: int = 0
    lg_failures: int = 0
    lg_retries: int = 0
    lg_exhausted: int = 0
    lg_rate_limited: int = 0
    withdrawals_lost: int = 0
    withdrawals_delayed: int = 0
    igp_lost: int = 0
    igp_delayed: int = 0
    feed_outages: int = 0
    degraded_diagnoses: int = 0
    hops_forged: int = 0
    hops_duplicated: int = 0
    loops_injected: int = 0
    reach_bits_flipped: int = 0
    stale_replays: int = 0
    feed_messages_duplicated: int = 0
    feed_messages_misordered: int = 0
    lg_stale_answers: int = 0
    invariant_violations: int = 0
    traces_repaired: int = 0
    traces_quarantined: int = 0
    stale_rounds_dropped: int = 0
    feed_messages_repaired: int = 0
    feed_messages_quarantined: int = 0
    lg_paths_quarantined: int = 0
    sensors_excluded: int = 0
    rediagnoses: int = 0
    ensemble_agreements: int = 0
    ensemble_partials: int = 0
    ensemble_conflicts: int = 0
    jobs_timed_out: int = 0
    jobs_crashed: int = 0
    jobs_retried: int = 0
    jobs_failed: int = 0
    serial_fallbacks: int = 0
    placements_resumed: int = 0
    breaker_opened: int = 0
    breaker_reclosed: int = 0
    breaker_short_circuits: int = 0
    breaker_probes: int = 0
    dead_lettered: int = 0
    setup_seconds: float = 0.0
    scenario_seconds: float = 0.0
    wall_seconds: float = 0.0
    per_placement: List[PlacementStats] = field(default_factory=list)

    _SUMMED_FIELDS = (
        "records",
        "scenarios_sampled",
        "scenarios_rejected",
        "budget_exhaustions",
        "trace_cache_entries",
        "trace_cache_hits",
        "trace_cache_misses",
        "trace_cache_evictions",
        "routing_cache_entries",
        "routing_cache_hits",
        "routing_cache_misses",
        "routing_cache_evictions",
        "full_converges",
        "incremental_converges",
        "prefixes_converged",
        "prefixes_reused",
        "rib_prefixes_owned",
        "rib_prefixes_shared",
        "rib_cow_copies",
        "probes_dropped",
        "probes_truncated",
        "hops_anonymized",
        "sensors_down",
        "pairs_discarded",
        "masked_failures",
        "lg_failures",
        "lg_retries",
        "lg_exhausted",
        "lg_rate_limited",
        "withdrawals_lost",
        "withdrawals_delayed",
        "igp_lost",
        "igp_delayed",
        "feed_outages",
        "degraded_diagnoses",
        "hops_forged",
        "hops_duplicated",
        "loops_injected",
        "reach_bits_flipped",
        "stale_replays",
        "feed_messages_duplicated",
        "feed_messages_misordered",
        "lg_stale_answers",
        "invariant_violations",
        "traces_repaired",
        "traces_quarantined",
        "stale_rounds_dropped",
        "feed_messages_repaired",
        "feed_messages_quarantined",
        "lg_paths_quarantined",
        "sensors_excluded",
        "rediagnoses",
        "ensemble_agreements",
        "ensemble_partials",
        "ensemble_conflicts",
        "setup_seconds",
        "scenario_seconds",
    )

    _CORRUPTION_FIELDS = (
        "hops_forged",
        "hops_duplicated",
        "loops_injected",
        "reach_bits_flipped",
        "stale_replays",
        "feed_messages_duplicated",
        "feed_messages_misordered",
        "lg_stale_answers",
    )

    _VALIDATION_FIELDS = (
        "invariant_violations",
        "traces_repaired",
        "traces_quarantined",
        "stale_rounds_dropped",
        "feed_messages_repaired",
        "feed_messages_quarantined",
        "lg_paths_quarantined",
        "sensors_excluded",
        "rediagnoses",
    )

    def any_faults_seen(self) -> bool:
        """True when any fault-injection counter is non-zero."""
        return any(
            getattr(self, name)
            for name in DegradationReport._COUNTER_FIELDS
            if name not in DegradationReport._ENSEMBLE_FIELDS
        )

    def any_ensemble_seen(self) -> bool:
        """True when any ensemble diagnosis graded its members."""
        return bool(
            self.ensemble_agreements
            + self.ensemble_partials
            + self.ensemble_conflicts
        )

    def ensemble_disagreement(self):
        """The typed agree/partial/conflict tally of this batch."""
        from repro.empathy.ensemble import EnsembleDisagreement

        return EnsembleDisagreement(
            agree=self.ensemble_agreements,
            partial=self.ensemble_partials,
            conflict=self.ensemble_conflicts,
        )

    def any_corruption_seen(self) -> bool:
        """True when any corruption-injection counter is non-zero."""
        return any(getattr(self, name) for name in self._CORRUPTION_FIELDS)

    def any_validation_seen(self) -> bool:
        """True when input screening detected or acted on anything."""
        return any(getattr(self, name) for name in self._VALIDATION_FIELDS)

    def absorb(self, stats: PlacementStats) -> None:
        """Fold one placement's accounting into the aggregate."""
        self.placements += 1
        for name in self._SUMMED_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(stats, name))
        self.per_placement.append(stats)

    def absorb_supervision(self, supervision: Mapping[str, Any]) -> None:
        """Fold a supervised stream run's breaker/DLQ accounting in.

        Accepts the dict shape produced by
        :meth:`repro.stream.SupervisedStreamEngine.supervision_stats`, so
        harnesses that drive both batch placements and supervised stream
        replays report one consolidated resilience block.
        """
        for breaker in supervision.get("breakers", {}).values():
            self.breaker_opened += breaker["times_opened"]
            self.breaker_reclosed += breaker["times_reclosed"]
            self.breaker_short_circuits += breaker["short_circuits"]
            self.breaker_probes += breaker["probes"]
        counters = supervision.get("counters", {})
        self.dead_lettered += (
            counters.get("events_dead_lettered", 0)
            + supervision.get("transitions_dead_lettered", 0)
        )


@dataclass
class PlacementResult:
    """Records and accounting one :class:`PlacementJob` produced."""

    placement_index: int
    records: Dict[str, List[RunRecord]]
    stats: PlacementStats


@dataclass
class PlacementJob:
    """One placement of the paper's standard batch, self-contained.

    Carries everything needed to build the topology, deploy the sensors
    and run the failures-per-kind loop — so it can execute in a worker
    process.  The RNG is seeded ``f"{seed}/{placement_index}"``, exactly
    as the historical serial loop did, which is what makes parallel and
    serial batches bit-identical.

    ``fault_config`` (when set and non-trivial) activates measurement
    fault injection: the job derives a
    :class:`~repro.faults.FaultPlan` seeded
    ``f"{seed}/{placement_index}"`` and re-scopes it per sampled
    scenario, so every fault draw is a pure function of the batch seed —
    independent of worker count, scheduling, or resume.

    ``validation`` (a :mod:`repro.validate` policy name, or ``None``)
    screens every run's measurement inputs before diagnosis; the policy
    string travels with the job so parallel workers validate exactly
    like the serial path.
    """

    placement_index: int
    seed: int
    topo_factory: object
    placement_fn: object
    kinds: Tuple[str, ...]
    diagnosers: Mapping[str, NetDiagnoser]
    failures_per_placement: int
    asx_selector: object = None
    blocked_fraction: float = 0.0
    lg_fraction: Optional[float] = None
    intra_failures_only: bool = False
    fault_config: Optional[FaultConfig] = None
    validation: Optional[str] = None

    def run(self) -> PlacementResult:
        """Build the session and run every kind's sampling loop."""
        started = time.perf_counter()
        rng = random.Random(f"{self.seed}/{self.placement_index}")
        topo = self.topo_factory(self.placement_index)
        session = make_session(
            topo,
            self.placement_fn(topo, rng),
            rng,
            intra_failures_only=self.intra_failures_only,
        )
        asx = (
            self.asx_selector(topo, rng)
            if self.asx_selector is not None
            else None
        )
        blocked = choose_blocked_ases(
            session,
            self.blocked_fraction,
            rng,
            protected=frozenset() if asx is None else frozenset({asx}),
        )
        lg_service = None
        if self.lg_fraction is not None:
            all_asns = [a.asn for a in session.net.ases()]
            count = round(self.lg_fraction * len(all_asns))
            lg_service = LookingGlassService(
                session.net, rng.sample(all_asns, count)
            )
        plan = (
            FaultPlan(f"{self.seed}/{self.placement_index}", self.fault_config)
            if self.fault_config is not None and self.fault_config.any_faults()
            else None
        )
        stats = PlacementStats(placement_index=self.placement_index)
        stats.setup_seconds = time.perf_counter() - started

        records: Dict[str, List[RunRecord]] = {kind: [] for kind in self.kinds}
        started = time.perf_counter()
        for kind in self.kinds:
            produced = 0
            resample_budget = 5 * self.failures_per_placement
            while produced < self.failures_per_placement and resample_budget > 0:
                resample_budget -= 1
                try:
                    scenario = session.sampler.sample(kind)
                except ScenarioError:
                    break  # this placement cannot produce this kind at all
                stats.scenarios_sampled += 1
                # Each sampled scenario gets its own fault scope so the
                # draws for scenario n never depend on how many probes
                # scenario n-1 happened to send.
                faults = (
                    plan.scoped(f"{kind}/{stats.scenarios_sampled}")
                    if plan is not None
                    else None
                )
                try:
                    record = run_scenario(
                        session,
                        scenario,
                        self.diagnosers,
                        asx=asx,
                        blocked_ases=blocked,
                        lg_service=lg_service,
                        faults=faults,
                        validation=self.validation,
                    )
                except ScenarioError:
                    stats.scenarios_rejected += 1
                    continue  # e.g. no failed link was probed: resample
                stats.record_degradation(record.degradation)
                records[kind].append(record)
                produced += 1
            if produced < self.failures_per_placement and resample_budget == 0:
                stats.budget_exhaustions += 1
        stats.scenario_seconds = time.perf_counter() - started
        stats.records = sum(len(lst) for lst in records.values())
        stats.record_cache_stats(session.sim.cache_stats())
        return PlacementResult(self.placement_index, records, stats)


def _execute_placement_job(job: PlacementJob) -> PlacementResult:
    """Module-level trampoline so executors pickle the job, not a method."""
    return job.run()


def build_placement_jobs(
    topo_factory,
    placement_fn,
    kinds: Sequence[str],
    diagnosers: Mapping[str, NetDiagnoser],
    placements: int,
    failures_per_placement: int,
    seed: int,
    asx_selector=None,
    blocked_fraction: float = 0.0,
    lg_fraction: Optional[float] = None,
    intra_failures_only: bool = False,
    fault_config: Optional[FaultConfig] = None,
    validation: Optional[str] = None,
) -> List[PlacementJob]:
    """The batch's work units, one per placement index."""
    return [
        PlacementJob(
            placement_index=index,
            seed=seed,
            topo_factory=topo_factory,
            placement_fn=placement_fn,
            kinds=tuple(kinds),
            diagnosers=dict(diagnosers),
            failures_per_placement=failures_per_placement,
            asx_selector=asx_selector,
            blocked_fraction=blocked_fraction,
            lg_fraction=lg_fraction,
            intra_failures_only=intra_failures_only,
            fault_config=fault_config,
            validation=validation,
        )
        for index in range(placements)
    ]


def resolve_workers(workers: int, n_jobs: int) -> int:
    """Effective worker count: ``0`` means all cores, capped at the jobs."""
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_jobs))


def _jobs_picklable(jobs: Sequence[PlacementJob]) -> bool:
    try:
        pickle.dumps(list(jobs))
    except (pickle.PicklingError, TypeError, AttributeError):
        return False
    return True


class _JobTracker:
    """Retry accounting shared by the serial and parallel backends.

    An attempt is charged when a job *fails* (crash, timeout, or
    in-worker exception), never when it is merely re-submitted after a
    pool rebuild took innocent bystanders down with it.  A job whose
    charged attempts exceed ``max_retries`` is dropped from the sweep:
    its absence costs one placement's records, not the batch.
    """

    def __init__(
        self,
        jobs: Sequence[PlacementJob],
        max_retries: int,
        backoff_base: float,
        stats: Optional[RunnerStats],
        journal: Optional[RunJournal],
        sleep: Callable[[float], None],
    ) -> None:
        self.queue: List[PlacementJob] = list(jobs)
        self.attempts: Dict[int, int] = {}
        self.results: Dict[int, PlacementResult] = {}
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.stats = stats
        self.journal = journal
        self.sleep = sleep

    def accept(self, result: PlacementResult) -> None:
        self.results[result.placement_index] = result
        if self.journal is not None:
            self.journal.append(result)

    def charge_failure(self, job: PlacementJob, reason: str) -> None:
        """Count one failed attempt; requeue with backoff or drop."""
        index = job.placement_index
        self.attempts[index] = self.attempts.get(index, 0) + 1
        if self.attempts[index] > self.max_retries:
            if self.stats is not None:
                self.stats.jobs_failed += 1
            logger.error(
                "placement %d failed permanently after %d attempts (%s); "
                "continuing the sweep without it",
                index, self.attempts[index], reason,
            )
            return
        if self.stats is not None:
            self.stats.jobs_retried += 1
        logger.warning(
            "placement %d attempt %d failed (%s); retrying",
            index, self.attempts[index], reason,
        )
        if self.backoff_base > 0:
            self.sleep(self.backoff_base * 2 ** (self.attempts[index] - 1))
        self.queue.append(job)


def _run_jobs_serial(tracker: _JobTracker) -> None:
    """In-process execution with bounded retries.

    A hard worker crash (``os._exit``) cannot be isolated without a
    subprocess; serial mode only guards against exceptions.
    """
    while tracker.queue:
        job = tracker.queue.pop(0)
        try:
            result = job.run()
        except Exception as exc:
            tracker.charge_failure(job, f"{type(exc).__name__}: {exc}")
            continue
        tracker.accept(result)


def _rebuild_pool(
    pool: ProcessPoolExecutor, n_workers: int
) -> ProcessPoolExecutor:
    """Replace a broken or clogged pool, reclaiming its worker processes.

    ``shutdown(wait=True)`` would join workers that may be stuck in an
    endless placement, so the processes are terminated first.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
    return ProcessPoolExecutor(max_workers=n_workers)


def _run_jobs_parallel(
    tracker: _JobTracker, n_workers: int, job_timeout: Optional[float]
) -> None:
    """Crash-isolating, deadline-enforcing ProcessPoolExecutor loop.

    A dead worker breaks the whole pool and fails every in-flight
    future, so blame needs care: when more than one job was in flight,
    all of them are re-run one at a time (``isolate``) — an innocent
    job simply completes, and the culprit crashes alone, which is when
    its retry budget is charged.  A job that exceeds ``job_timeout``
    is charged immediately and its stuck worker is reclaimed by
    rebuilding the pool; the other in-flight jobs are re-submitted
    uncharged.
    """
    stats = tracker.stats
    pool = ProcessPoolExecutor(max_workers=n_workers)
    in_flight: Dict[object, Tuple[PlacementJob, Optional[float]]] = {}
    isolate: List[PlacementJob] = []
    try:
        while tracker.queue or isolate or in_flight:
            if isolate:
                if not in_flight:
                    job = isolate.pop(0)
                    future = pool.submit(_execute_placement_job, job)
                    deadline = (
                        time.monotonic() + job_timeout if job_timeout else None
                    )
                    in_flight[future] = (job, deadline)
            else:
                while tracker.queue and len(in_flight) < n_workers:
                    job = tracker.queue.pop(0)
                    future = pool.submit(_execute_placement_job, job)
                    deadline = (
                        time.monotonic() + job_timeout if job_timeout else None
                    )
                    in_flight[future] = (job, deadline)
            deadlines = [d for (_, d) in in_flight.values() if d is not None]
            wait_timeout = (
                max(0.0, min(deadlines) - time.monotonic())
                if deadlines
                else None
            )
            done, _ = wait(
                set(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                job, _deadline = in_flight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    if len(done) == 1 and not in_flight:
                        # The job was alone in flight: it is the culprit.
                        tracker.charge_failure(job, "worker process died")
                    else:
                        isolate.append(job)
                except Exception as exc:
                    tracker.charge_failure(
                        job, f"{type(exc).__name__}: {exc}"
                    )
                else:
                    tracker.accept(result)
            if broken:
                # The pool is unusable and every remaining in-flight
                # future is doomed; move the survivors to the isolation
                # queue (uncharged) and start a fresh pool.
                if stats is not None:
                    stats.jobs_crashed += 1
                for future, (job, _deadline) in list(in_flight.items()):
                    isolate.append(job)
                in_flight.clear()
                pool = _rebuild_pool(pool, n_workers)
                continue
            # Enforce deadlines on whatever is still running.
            now = time.monotonic()
            expired = [
                (future, job)
                for future, (job, deadline) in in_flight.items()
                if deadline is not None and now >= deadline and not future.done()
            ]
            if expired:
                # The stuck workers can only be reclaimed by rebuilding
                # the pool; innocent in-flight jobs are re-queued
                # without touching their retry budget.
                for future, job in expired:
                    del in_flight[future]
                    if stats is not None:
                        stats.jobs_timed_out += 1
                    tracker.charge_failure(
                        job,
                        str(
                            JobTimeoutError(
                                f"placement {job.placement_index} exceeded "
                                f"its {job_timeout:g}s wall-clock budget"
                            )
                        ),
                    )
                for future, (job, _deadline) in list(in_flight.items()):
                    if not future.done():
                        tracker.queue.insert(0, job)
                    else:
                        # Completed in the window between wait() and now.
                        try:
                            tracker.accept(future.result())
                        except Exception as exc:
                            tracker.charge_failure(
                                job, f"{type(exc).__name__}: {exc}"
                            )
                in_flight.clear()
                pool = _rebuild_pool(pool, n_workers)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def run_kind_batch(
    topo_factory,
    placement_fn,
    kinds: Sequence[str],
    diagnosers: Mapping[str, NetDiagnoser],
    placements: int,
    failures_per_placement: int,
    seed: int,
    asx_selector=None,
    blocked_fraction: float = 0.0,
    lg_fraction: Optional[float] = None,
    intra_failures_only: bool = False,
    fault_config: Optional[FaultConfig] = None,
    validation: Optional[str] = None,
    workers: int = 1,
    stats: Optional[RunnerStats] = None,
    job_timeout: Optional[float] = None,
    max_job_retries: int = DEFAULT_MAX_JOB_RETRIES,
    retry_backoff_seconds: float = DEFAULT_RETRY_BACKOFF_SECONDS,
    journal: Union[RunJournal, str, Path, None] = None,
    resume: bool = False,
    sleep: Callable[[float], None] = time.sleep,
) -> Dict[str, List[RunRecord]]:
    """Run the paper's standard batch: placements × failures per kind.

    ``topo_factory(placement_index)`` builds a fresh topology per placement
    (keeps sensor address pools and caches bounded);
    ``placement_fn(topo, rng)`` returns gateway router ids;
    ``asx_selector(topo, rng)`` optionally returns AS-X's ASN;
    ``lg_fraction`` (when not None) equips that fraction of ASes with
    Looking Glasses and enables ND-LG inputs; ``fault_config`` (when not
    None and non-trivial) injects deterministic measurement-plane faults
    into every run (see :mod:`repro.faults`); ``validation`` (a
    :mod:`repro.validate` policy name) screens every run's inputs
    against the typed invariants before diagnosis.

    ``workers`` selects the execution backend: ``1`` (default) runs the
    placements serially in-process, ``0`` uses every core, and ``n > 1``
    fans the placement jobs out over a ``ProcessPoolExecutor``.  Results
    are merged in placement order, so the record lists are bit-identical
    to a serial run.  Callables must be picklable for ``workers != 1``
    (see :mod:`repro.experiments.jobs`); unpicklable batches fall back to
    serial execution with a warning.  ``stats`` (a :class:`RunnerStats`)
    is populated with per-placement accounting when given.

    Resilience knobs: ``job_timeout`` bounds each placement's wall clock
    (parallel backend only — serial mode cannot pre-empt itself);
    ``max_job_retries`` re-runs a crashed/timed-out/raising placement
    with exponential backoff (``retry_backoff_seconds * 2**k``) before
    dropping it; a worker death fails at most the placements it was
    running, never the sweep.  ``journal`` (a path or a
    :class:`~repro.experiments.journal.RunJournal`) appends every
    completed placement to disk; ``resume=True`` replays completed
    placements from it and executes only the missing ones — merged
    output is bit-identical to an uninterrupted run.
    """
    jobs = build_placement_jobs(
        topo_factory,
        placement_fn,
        kinds,
        diagnosers,
        placements,
        failures_per_placement,
        seed,
        asx_selector=asx_selector,
        blocked_fraction=blocked_fraction,
        lg_fraction=lg_fraction,
        intra_failures_only=intra_failures_only,
        fault_config=fault_config,
        validation=validation,
    )
    wall_started = time.perf_counter()

    if journal is not None and not isinstance(journal, RunJournal):
        # Fingerprint every parameter that shapes the results; object
        # identities (factories, diagnoser instances) are reduced to
        # stable descriptions so resuming from another process works.
        fingerprint = {
            "seed": seed,
            "placements": placements,
            "failures_per_placement": failures_per_placement,
            "kinds": tuple(kinds),
            "diagnosers": tuple(
                (label, d.variant) for label, d in diagnosers.items()
            ),
            "blocked_fraction": blocked_fraction,
            "lg_fraction": lg_fraction,
            "intra_failures_only": intra_failures_only,
            "fault_config": fault_config,
            "validation": validation,
        }
        journal = RunJournal(journal, fingerprint)

    n_workers = resolve_workers(workers, len(jobs))
    if n_workers > 1 and not _jobs_picklable(jobs):
        logger.warning(
            "placement jobs are not picklable (lambda callables?); "
            "falling back to serial execution — use the callables in "
            "repro.experiments.jobs to enable workers=%d",
            n_workers,
        )
        if stats is not None:
            stats.serial_fallbacks += 1
        n_workers = 1

    tracker = _JobTracker(
        jobs, max_job_retries, retry_backoff_seconds, stats, journal, sleep
    )
    if resume and journal is not None:
        completed = journal.load_completed()
        if completed:
            tracker.queue = [
                job for job in jobs
                if job.placement_index not in completed
            ]
            tracker.results.update(completed)
            if stats is not None:
                stats.placements_resumed += len(completed)
            logger.info(
                "resumed %d completed placements from %s; %d to run",
                len(completed), journal.path, len(tracker.queue),
            )
    if n_workers > 1:
        _run_jobs_parallel(tracker, n_workers, job_timeout)
    else:
        _run_jobs_serial(tracker)

    records: Dict[str, List[RunRecord]] = {kind: [] for kind in kinds}
    for index in sorted(tracker.results):
        result = tracker.results[index]
        for kind in kinds:
            records[kind].extend(result.records[kind])
        if stats is not None:
            stats.absorb(result.stats)
    if stats is not None:
        stats.workers = n_workers
        stats.wall_seconds += time.perf_counter() - wall_started
    return records
