"""Experiment runner: the converge → inject → measure → diagnose → score loop.

One :class:`Session` is a sensor deployment over a topology (the paper's
"sensor placement"); :func:`run_scenario` executes a sampled failure
against it with a set of configured diagnosers and scores every diagnosis
at link and AS granularity.  Figure modules drive batches of these runs.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from repro.core.diagnosability import diagnosability
from repro.core.diagnoser import NetDiagnoser
from repro.core.graph import InferredGraph
from repro.core.linkspace import PhysicalLink, physical_link
from repro.core.metrics import MetricPair, as_projection, sensitivity, specificity
from repro.core.result import DiagnosisResult
from repro.errors import ScenarioError
from repro.measurement.collector import (
    collect_control_plane,
    make_lg_lookup,
    take_snapshot,
)
from repro.measurement.sensors import Sensor, deploy_sensors
from repro.netsim.events import Event
from repro.netsim.gen.internet import ResearchInternet
from repro.netsim.lookingglass import LookingGlassService
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Internetwork, NetworkState
from repro.experiments.scenarios import Scenario, ScenarioSampler

logger = logging.getLogger(__name__)

__all__ = [
    "Session",
    "AlgorithmScore",
    "RunRecord",
    "make_session",
    "choose_blocked_ases",
    "ground_truth_links",
    "covered_ases",
    "run_scenario",
    "run_kind_batch",
]


@dataclass
class Session:
    """One sensor deployment ready to take failures."""

    topo: ResearchInternet
    sim: Simulator
    sensors: List[Sensor]
    base_state: NetworkState
    sampler: ScenarioSampler

    @property
    def net(self) -> Internetwork:
        return self.sim.net


@dataclass
class AlgorithmScore:
    """Scores of one diagnoser on one scenario."""

    algorithm: str
    link: MetricPair
    as_level: MetricPair
    hypothesis_size: int
    physical_hypothesis_size: int
    fully_explained: bool


@dataclass
class RunRecord:
    """Everything recorded about one (placement, failure) run."""

    kind: str
    description: str
    diagnosability: float
    n_failed_pairs: int
    n_rerouted_pairs: int
    scores: Dict[str, AlgorithmScore] = field(default_factory=dict)


def make_session(
    topo: ResearchInternet,
    router_ids: Sequence[int],
    rng: random.Random,
    intra_failures_only: bool = False,
) -> Session:
    """Deploy sensors on the given gateways and prepare a sampler."""
    sensors = deploy_sensors(topo.net, list(router_ids))
    sensor_asns = {topo.net.asn_of_router(s.router_id) for s in sensors}
    sim = Simulator(topo.net, sensor_asns)
    base = NetworkState.nominal()
    sampler = ScenarioSampler(
        sim, sensors, rng, base_state=base, intra_failures_only=intra_failures_only
    )
    return Session(
        topo=topo, sim=sim, sensors=sensors, base_state=base, sampler=sampler
    )


def choose_blocked_ases(
    session: Session,
    fraction: float,
    rng: random.Random,
    protected: FrozenSet[int] = frozenset(),
) -> FrozenSet[int]:
    """Pick the ASes that block traceroutes (§5.4).

    Blocking is sampled among the ASes the probes actually cover ("the
    ASes on the paths"), excluding sensor host ASes (their single gateway
    is an identified probe endpoint anyway) and anything in ``protected``
    (AS-X never hides from itself).
    """
    sensor_asns = {
        session.net.asn_of_router(s.router_id) for s in session.sensors
    }
    pool = sorted(
        covered_ases(session, session.base_state)
        - sensor_asns
        - set(protected)
    )
    count = round(fraction * len(pool))
    return frozenset(rng.sample(pool, count)) if count else frozenset()


def ground_truth_links(
    net: Internetwork, event: Event
) -> FrozenSet[PhysicalLink]:
    """The failed/misconfigured links as metric-space physical tokens."""
    truth = set()
    for lid in event.physical_ground_truth(net):
        link = net.link(lid)
        truth.add(
            physical_link(net.router(link.a).address, net.router(link.b).address)
        )
    return frozenset(truth)


def ground_truth_ases(net: Internetwork, event: Event) -> FrozenSet[int]:
    """The ASes containing the failed/misconfigured links."""
    ases: Set[int] = set()
    for lid in event.physical_ground_truth(net):
        ases.update(net.link_asns(lid))
    return frozenset(ases)


def covered_ases(session: Session, state: NetworkState) -> FrozenSet[int]:
    """Ground-truth ASes the probe mesh traverses under ``state``."""
    ases: Set[int] = set()
    for src in session.sensors:
        for dst in session.sensors:
            if src.sensor_id == dst.sensor_id:
                continue
            trace = session.sim.trace(state, src.router_id, dst.router_id)
            for rid in trace.router_path():
                ases.add(session.net.asn_of_router(rid))
    return frozenset(ases)


def run_scenario(
    session: Session,
    scenario: Scenario,
    diagnosers: Mapping[str, NetDiagnoser],
    asx: Optional[int] = None,
    blocked_ases: FrozenSet[int] = frozenset(),
    lg_service: Optional[LookingGlassService] = None,
) -> RunRecord:
    """Measure, diagnose with every configured diagnoser, and score."""
    sim, sensors = session.sim, session.sensors
    before, after = session.base_state, scenario.after_state

    snapshot = take_snapshot(sim, sensors, before, after, blocked_ases)
    control = (
        collect_control_plane(sim, asx, before, after) if asx is not None else None
    )
    lg_lookup = (
        make_lg_lookup(sim, lg_service, before, after, asx=asx)
        if lg_service is not None
        else None
    )

    truth_links = ground_truth_links(session.net, scenario.event)
    truth_ases = ground_truth_ases(session.net, scenario.event)
    universe_ases = covered_ases(session, before) | truth_ases
    before_graph = InferredGraph.from_paths(snapshot.before.paths())
    # Ground-truth probed links: under blocked traceroutes a probed link may
    # be invisible in the *measured* universe (it shows up as UH tokens),
    # yet it still belongs to the sensitivity denominator — the algorithm
    # is rightly penalised for being unable to name it.
    probed_physical = frozenset(
        physical_link(
            session.net.router(session.net.link(lid).a).address,
            session.net.router(session.net.link(lid).b).address,
        )
        for lid in session.sampler.probed_links
    )
    visible_truth = truth_links & probed_physical
    if not visible_truth:
        raise ScenarioError(
            "scenario admitted but none of its failed links were probed"
        )

    record = RunRecord(
        kind=scenario.kind,
        description=scenario.event.describe(session.net),
        diagnosability=diagnosability(before_graph),
        n_failed_pairs=len(snapshot.failed_pairs()),
        n_rerouted_pairs=len(snapshot.rerouted_pairs()),
    )
    for label, diagnoser in diagnosers.items():
        result = diagnoser.diagnose(snapshot, control=control, lg_lookup=lg_lookup)
        record.scores[label] = _score(
            result, snapshot.asn_of, visible_truth, truth_ases, universe_ases
        )
        logger.debug(
            "%s on '%s': sens=%.2f spec=%.3f |H|=%d",
            label,
            record.description,
            record.scores[label].link.sensitivity,
            record.scores[label].link.specificity,
            record.scores[label].hypothesis_size,
        )
    return record


def _score(
    result: DiagnosisResult,
    asn_of,
    visible_truth: FrozenSet[PhysicalLink],
    truth_ases: FrozenSet[int],
    universe_ases: FrozenSet[int],
) -> AlgorithmScore:
    universe = result.physical_universe()
    hypothesis = result.physical_hypothesis()
    uh_tags = result.details.get("uh_tags", {})
    hypothesis_ases = as_projection(result.hypothesis, asn_of, uh_tags)
    return AlgorithmScore(
        algorithm=result.algorithm,
        link=MetricPair(
            sensitivity(visible_truth, hypothesis),
            specificity(universe, visible_truth, hypothesis),
        ),
        as_level=MetricPair(
            sensitivity(truth_ases, hypothesis_ases),
            specificity(universe_ases, truth_ases, hypothesis_ases),
        ),
        hypothesis_size=len(result.hypothesis),
        physical_hypothesis_size=len(hypothesis),
        fully_explained=result.fully_explained,
    )


def run_kind_batch(
    topo_factory,
    placement_fn,
    kinds: Sequence[str],
    diagnosers: Mapping[str, NetDiagnoser],
    placements: int,
    failures_per_placement: int,
    seed: int,
    asx_selector=None,
    blocked_fraction: float = 0.0,
    lg_fraction: Optional[float] = None,
    intra_failures_only: bool = False,
) -> Dict[str, List[RunRecord]]:
    """Run the paper's standard batch: placements × failures per kind.

    ``topo_factory(placement_index)`` builds a fresh topology per placement
    (keeps sensor address pools and caches bounded);
    ``placement_fn(topo, rng)`` returns gateway router ids;
    ``asx_selector(topo, rng)`` optionally returns AS-X's ASN;
    ``lg_fraction`` (when not None) equips that fraction of ASes with
    Looking Glasses and enables ND-LG inputs.
    """
    records: Dict[str, List[RunRecord]] = {kind: [] for kind in kinds}
    for placement_index in range(placements):
        rng = random.Random(f"{seed}/{placement_index}")
        topo = topo_factory(placement_index)
        session = make_session(
            topo,
            placement_fn(topo, rng),
            rng,
            intra_failures_only=intra_failures_only,
        )
        asx = asx_selector(topo, rng) if asx_selector is not None else None
        blocked = choose_blocked_ases(
            session,
            blocked_fraction,
            rng,
            protected=frozenset() if asx is None else frozenset({asx}),
        )
        lg_service = None
        if lg_fraction is not None:
            all_asns = [a.asn for a in session.net.ases()]
            count = round(lg_fraction * len(all_asns))
            lg_service = LookingGlassService(
                session.net, rng.sample(all_asns, count)
            )
        for kind in kinds:
            produced = 0
            resample_budget = 5 * failures_per_placement
            while produced < failures_per_placement and resample_budget > 0:
                resample_budget -= 1
                try:
                    scenario = session.sampler.sample(kind)
                except ScenarioError:
                    break  # this placement cannot produce this kind at all
                try:
                    record = run_scenario(
                        session,
                        scenario,
                        diagnosers,
                        asx=asx,
                        blocked_ases=blocked,
                        lg_service=lg_service,
                    )
                except ScenarioError:
                    continue  # e.g. no failed link was probed: resample
                records[kind].append(record)
                produced += 1
    return records
