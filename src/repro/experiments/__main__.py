"""Command-line entry point: regenerate any evaluation figure.

Examples::

    python -m repro.experiments --figure 6
    python -m repro.experiments --figure all --placements 10 --failures 100
    python -m repro.experiments --figure 11 --paper-scale
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.errors import (
    ControlPlaneFeedError,
    EmpathyError,
    StreamError,
    TopologyError,
    ValidationError,
)
from repro.experiments.figures import FIGURES, FigureConfig, figure_sort_key
from repro.serialize import figure_result_to_dict


def _worker_count(text: str) -> int:
    """argparse type for --workers: non-negative int (0 = all cores)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = all cores)")
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the NetDiagnoser evaluation figures (5-12).",
    )
    parser.add_argument(
        "--figure",
        default="all",
        help="figure id (5..12), 'degradation', or 'all'",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--topo-seed", type=int, default=100, help="topology generator seed"
    )
    parser.add_argument(
        "--placements", type=int, default=3, help="sensor placements per figure"
    )
    parser.add_argument(
        "--failures", type=int, default=10, help="failures per placement"
    )
    parser.add_argument(
        "--sensors", type=int, default=10, help="number of sensors (N)"
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's 10 placements x 100 failures (slow)",
    )
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="worker processes per batch (0 = all cores, 1 = serial); "
        "results are identical to a serial run",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="directory to additionally write <figure>.json series files to",
    )
    args = parser.parse_args(argv)

    placements = 10 if args.paper_scale else args.placements
    failures = 100 if args.paper_scale else args.failures
    config = FigureConfig(
        seed=args.seed,
        topo_seed=args.topo_seed,
        placements=placements,
        failures_per_placement=failures,
        n_sensors=args.sensors,
        workers=args.workers,
    )
    wanted = (
        sorted(FIGURES, key=figure_sort_key)
        if args.figure == "all"
        else [args.figure]
    )
    for figure_id in wanted:
        if figure_id not in FIGURES:
            parser.error(f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}")
        started = time.time()
        try:
            result = FIGURES[figure_id](config)
        except (
            ControlPlaneFeedError,
            EmpathyError,
            StreamError,
            TopologyError,
            ValidationError,
        ) as error:
            # Typed pipeline failures are user-diagnosable: one line on
            # stderr, nonzero exit, no traceback.
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(result.render())
        if args.json_out:
            out_dir = pathlib.Path(args.json_out)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / f"{result.figure_id}.json"
            out_path.write_text(json.dumps(figure_result_to_dict(result), indent=1))
            print(f"[series written to {out_path}]")
        print(f"\n[figure {figure_id} regenerated in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
