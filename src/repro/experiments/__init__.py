"""Experiment harnesses reproducing the paper's evaluation (§4-5)."""

from repro.experiments.runner import (
    AlgorithmScore,
    RunRecord,
    Session,
    make_session,
    run_kind_batch,
    run_scenario,
)
from repro.experiments.scenarios import SCENARIO_KINDS, Scenario, ScenarioSampler

__all__ = [
    "AlgorithmScore",
    "RunRecord",
    "SCENARIO_KINDS",
    "Scenario",
    "ScenarioSampler",
    "Session",
    "make_session",
    "run_kind_batch",
    "run_scenario",
]
