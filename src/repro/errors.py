"""Exception hierarchy for the NetDiagnoser reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate the failure domain (topology construction,
routing, measurement, diagnosis).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "AddressingError",
    "RoutingError",
    "ConvergenceError",
    "MeasurementError",
    "DiagnosisError",
    "ScenarioError",
    "FaultInjectionError",
    "ControlPlaneFeedError",
    "JobTimeoutError",
    "ValidationError",
    "EmpathyError",
    "StreamError",
    "EpisodeOverflowError",
    "SupervisionError",
    "CheckpointError",
    "MonitorError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class TopologyError(ReproError):
    """Invalid topology construction or lookup (unknown router, duplicate
    link, inter-AS link without a declared relationship, ...)."""


class AddressingError(ReproError):
    """Prefix or interface address allocation failed, or an address could
    not be mapped back to an autonomous system."""


class RoutingError(ReproError):
    """A routing computation was asked something inconsistent (unknown
    prefix, query against a state the engine never converged, ...)."""


class ConvergenceError(RoutingError):
    """The path-vector fixpoint failed to stabilise within the iteration
    budget.  With valley-free (Gao-Rexford) policies this indicates a bug
    or a deliberately adversarial configuration."""


class MeasurementError(ReproError):
    """Sensor placement or probing was misconfigured (sensor on a failed
    router, duplicate sensor ids, probing an empty overlay, ...)."""


class DiagnosisError(ReproError):
    """A diagnosis algorithm received inconsistent inputs (failure set with
    no candidate links, reachability matrix that disagrees with the path
    store, ...)."""


class EmpathyError(ReproError):
    """The empathy / ensemble machinery was misconfigured: an ensemble
    with fewer than two member diagnosers, a cross-validation run with
    nothing to cross-validate, an unknown diagnoser name handed to the
    registry.  User-diagnosable: both CLIs print the message on stderr
    and exit 2 instead of dumping a traceback."""


class ScenarioError(ReproError):
    """A failure-scenario sampler could not produce an admissible scenario
    (e.g. no sampled failure combination causes an unreachability within
    the attempt budget)."""


class FaultInjectionError(MeasurementError):
    """An injected measurement-plane fault fired: the fault subsystem
    signals transient conditions (a flaky or rate-limited Looking Glass,
    a dead collector feed) with this type so callers can distinguish
    "the measurement plane is misbehaving, degrade gracefully" from a
    misconfigured experiment."""


class ControlPlaneFeedError(FaultInjectionError):
    """AS-X's control-plane feed (IGP listener / BGP route monitor) was
    unavailable for the whole event window; no
    :class:`~repro.core.control_plane.ControlPlaneView` could be
    assembled.  Diagnosis proceeds without control-plane inputs."""


class JobTimeoutError(ReproError):
    """A placement job exceeded its wall-clock budget and was abandoned
    (and retried, attempts permitting) by the resilient runner."""


class StreamError(ReproError):
    """The streaming diagnosis engine was misconfigured or handed an
    unusable event stream (unknown log format, zero-width window,
    non-monotonic logical clock, ...).  User-diagnosable: the CLIs print
    the message on stderr and exit 2 instead of dumping a traceback."""


class EpisodeOverflowError(StreamError):
    """The engine's bounded work queue *and* its deferral buffer are both
    full: episodes are opening faster than diagnoses retire them.  The
    engine refuses to shed diagnosis work silently — the caller must
    widen ``max_pending``/``overflow_limit``, drain more often, or slow
    the event source.

    ``shard`` carries the owning shard id when the overflow happened
    inside a sharded engine (``None`` for the single-shard engine), so
    an overflow crossing a worker-process boundary surfaces as this
    typed error naming the shard instead of a raw
    ``BrokenProcessPool`` loss.  The custom constructor makes the
    exception round-trip through pickle (the default reduction would
    re-call ``__init__`` with only ``args``).
    """

    def __init__(self, message: str, shard: "int | None" = None) -> None:
        super().__init__(message)
        self.shard = shard

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "", self.shard))


class SupervisionError(StreamError):
    """The shard supervisor was misconfigured or asked something
    impossible (supervising an unsharded engine, restarting a shard it
    never registered, a dead-letter queue path that cannot be written)."""


class CheckpointError(StreamError):
    """A per-shard checkpoint could not be written or restored: the store
    signature does not match the run fingerprint, or a record is
    corrupt beyond the tolerated torn tail."""


class MonitorError(ReproError):
    """A long-horizon monitoring scenario was misconfigured or failed.

    Raised by :mod:`repro.monitor` for bad scenario knobs (negative
    dwell, unknown scenario name, empty candidate pools) before any
    expensive log building starts.
    """


class ValidationError(ReproError):
    """A diagnosis input violated one of the typed invariants of
    :mod:`repro.validate` under the ``strict`` policy.

    The message names the offending record and the invariant, so an
    operator can find the lying measurement instead of debugging a
    corrupted hypothesis set.  ``invariant`` is the stable invariant id
    (e.g. ``"trace-loop"``); ``record`` identifies the screened record
    (e.g. ``"probe 10.0.0.1->10.0.9.2 [post]"``).
    """

    def __init__(self, invariant: str, record: str, detail: str = "") -> None:
        message = f"invariant {invariant!r} violated by {record}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.invariant = invariant
        self.record = record
        self.detail = detail
