"""Rendering one monitoring run: timeline, intervals, quality, verdicts.

Two kinds of lines, exactly as in the stream CLI: ``  report ...``
lines are deterministic (pure functions of ``(seed, config)`` — the CI
smoke lane diffs them byte for byte across process layouts) and the
``-- monitor`` accounting block is the wall-clock appendix that never
takes part in identity checks.
"""

from __future__ import annotations

from typing import List

from repro.monitor.runner import MonitorRunResult

__all__ = ["render_monitor_timeline", "render_monitor_report"]

#: Health glyphs for the timeline strip, best to worst.
_GLYPHS = " .:-=+*#%@"


def _health_glyph(health: float) -> str:
    """One character per bucket: ``' '`` = perfect, ``'@'`` = all down."""
    badness = min(1.0, max(0.0, 1.0 - health))
    return _GLYPHS[min(len(_GLYPHS) - 1, int(badness * len(_GLYPHS)))]


def render_monitor_timeline(result: MonitorRunResult, buckets: int = 60) -> str:
    """The at-a-glance downtime strip (deterministic)."""
    strip = "".join(
        _health_glyph(health)
        for health in result.recorder.timeline(result.config.ticks, buckets)
    )
    return f"  report timeline [{strip}]"


def render_monitor_report(result: MonitorRunResult) -> str:
    """The full monitor output: deterministic report lines + accounting."""
    config = result.config
    recorder = result.recorder.counters()
    schedule = result.schedule.counters()
    detection = result.detection
    classifier = result.classifier

    lines: List[str] = [
        f"  report scenario {config.name} seed={result.seed} "
        f"ticks={config.ticks} pairs={result.pairs_monitored}",
        render_monitor_timeline(result),
        f"  report schedule outages={schedule['outages_total']} "
        + " ".join(
            f"{key.replace('outages_', '')}={value}"
            for key, value in sorted(schedule.items())
            if key.startswith("outages_") and key != "outages_total"
        ).strip(),
        f"  report intervals total={recorder['intervals_total']} "
        f"open={recorder['intervals_open']} "
        f"censored={recorder['intervals_censored']} "
        f"flaps={recorder['flaps']}",
        f"  report detection outages={detection.outages_total} "
        f"detected={detection.outages_detected} "
        f"latency_mean={detection.latency_mean:.1f} "
        f"latency_p99={detection.latency_p99} "
        f"false_alarm_rate={detection.false_alarm_rate:.3f}",
        f"  report classifier scored={classifier.scored} "
        f"blocked_precision={classifier.precision_blocked:.3f} "
        f"blocked_recall={classifier.recall_blocked:.3f} "
        f"failed_precision={classifier.precision_failed:.3f} "
        f"failed_recall={classifier.recall_failed:.3f}",
    ]
    for row in result.quality[:10]:
        lines.append(
            f"  report quality as{row.src_asn}->as{row.dst_asn} "
            f"availability={row.availability:.4f} "
            f"intervals={row.intervals} bad_ticks={row.bad_ticks} "
            f"worst={row.worst_interval} flaps={row.flaps}"
        )

    engine = result.engine_counters
    detector = result.detector_counters
    lines += [
        "-- monitor",
        f"   events={result.events_total}  "
        f"thinned={result.observations_skipped}  "
        f"reports={engine['reports_emitted']}  "
        f"reused={engine['reports_reused']}  "
        f"wall={result.wall_seconds:.2f}s  "
        f"({result.events_per_second:.0f} events/s)",
        f"   episodes: detected={detector['episodes_total']}  "
        f"open at end={detector['episodes_open']}  "
        f"transitions={detector['transitions']}  "
        f"flaps={detector.get('flaps', 0)}  "
        f"pairs alarmed={detector['pairs_alarmed']}",
        f"   recorder: pairs={recorder['pairs_tracked']}  "
        f"baselines kept={recorder['baselines_kept']}  "
        f"lg queries={result.lg_queries}  "
        f"pairs skipped={result.pairs_skipped}",
    ]
    if result.shard_stats:
        lines.append(
            f"   shards: n={engine.get('shards', len(result.shard_stats))}  "
            f"broadcast events={engine.get('events_broadcast', 0)}  "
            f"cross-shard episodes={engine.get('cross_shard_episodes', 0)}"
        )
    if result.supervision is not None:
        sup = result.supervision["counters"]
        lines.append(
            f"   supervision: crashes={sup['shard_crashes']}  "
            f"stalls={sup['shard_stalls']}  "
            f"recoveries={sup['recoveries']}  "
            f"checkpoints={sup['checkpoints_saved']}"
        )
    if result.interrupted:
        lines.append("   interrupted: yes (journal checkpoint is durable)")
    return "\n".join(lines)
